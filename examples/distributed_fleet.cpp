// distributed_fleet: the pipeline leaves the process — N agent processes
// each monitor one (simulated) machine and ship their aggregated rows over
// loopback TCP to a collector, where a BusBridge republishes them onto a
// local event bus and a FleetAggregator sums the fleet dimension exactly as
// an in-process FleetMonitor would.
//
// The punchline is the cross-check: after the distributed run, the same
// hosts are monitored again by an ordinary in-process FleetMonitor with the
// same seeds, and the two "(fleet)" power series must agree to 1e-6 W —
// the wire carries doubles bit-exactly, so distribution changes where the
// rows are summed, not what they sum to.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "model/trainer.h"
#include "net/bus_bridge.h"
#include "net/collector_server.h"
#include "net/collector_status.h"
#include "net/telemetry_client.h"
#include "obs/observability.h"
#include "obs/trace_merge.h"
#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "powerapi/power_meter.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/stats.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

/// Deterministic heterogeneous host `i` — same recipe as the fleet_monitor
/// example, so agent process i and reference host i are identical.
std::unique_ptr<os::System> make_host(std::size_t i) {
  auto host = std::make_unique<os::System>(simcpu::i3_2120());
  util::Rng rng(2000 + static_cast<std::uint64_t>(i));
  switch (i % 3) {
    case 0:
      host->spawn("batch", std::make_unique<workloads::SteadyBehavior>(
                               workloads::cpu_stress(0.85), 0));
      break;
    case 1:
      host->spawn("web", std::make_unique<workloads::BurstyBehavior>(
                             workloads::mixed_stress(0.5, 8e6, 0.9),
                             util::ms_to_ns(60), util::ms_to_ns(120), 0, rng.fork(1)));
      break;
    default:
      host->spawn("cache", std::make_unique<workloads::SteadyBehavior>(
                               workloads::memory_stress(24e6), 0));
      break;
  }
  host->spawn("kdaemon", workloads::make_background_daemon(rng.fork(2)));
  return host;
}

api::PipelineSpec make_spec(const model::CpuPowerModel& power_model,
                            util::DurationNs period) {
  api::PipelineSpec spec;
  spec.model = power_model;
  spec.period = period;
  return spec;
}

/// One agent process: a standalone kManual PowerMeter over host `index`,
/// with a RemoteReporter shipping every aggregated row to the collector.
/// With obs_cadence_ms > 0 the agent also ships its own metrics snapshots
/// and trace spans, feeding the collector's merged Chrome trace.
int agent_main(std::size_t index, std::uint16_t port,
               const model::CpuPowerModel& power_model, util::DurationNs period,
               util::DurationNs duration, std::int64_t obs_cadence_ms) {
  obs::Observability obs;
  net::TelemetryClientOptions options;
  options.port = port;
  options.agent_id = "h" + std::to_string(index);
  options.obs = &obs;
  options.obs_interval_ms = obs_cadence_ms;  // 0 = PR-5-identical wire.
  net::TelemetryClient client(options);
  client.start();

  const auto host = make_host(index);
  api::PowerMeter meter(*host, {}, make_spec(power_model, period));
  meter.add_remote_reporter(client);

  // Advance in chunks so each agent records a handful of "agent/run" spans
  // bracketing real wall time — the payload of the merged trace. Chunks are
  // whole monitoring periods: run_for samples at its advance boundaries, so
  // a misaligned chunk would shift sampling points versus the in-process
  // reference and break the bit-exact cross-check.
  const auto run_span = obs.trace.intern("agent/run");
  const util::DurationNs chunk =
      period * std::max<util::DurationNs>(1, duration / 8 / period);
  util::DurationNs remaining = duration;
  std::uint64_t seq = 0;
  while (remaining > 0) {
    const util::DurationNs step = std::min(chunk, remaining);
    const std::int64_t start = obs::wall_now_ns();
    meter.run_for(step);
    obs.trace.complete(run_span, start, obs::wall_now_ns() - start, seq++);
    remaining -= step;
  }
  meter.finish();

  const bool flushed = client.flush(5000);
  client.stop();
  const auto stats = client.stats();
  std::printf("agent h%zu: sent %llu records in %llu frames (%llu bytes)%s\n",
              index, static_cast<unsigned long long>(stats.records_sent),
              static_cast<unsigned long long>(stats.frames_sent),
              static_cast<unsigned long long>(stats.bytes_sent),
              flushed ? "" : " [flush timed out]");
  return flushed && stats.records_dropped == 0 ? 0 : 1;
}

using SeriesKey = std::pair<std::string, util::TimestampNs>;

std::map<SeriesKey, double> fleet_series(const std::vector<api::AggregatedPower>& rows) {
  std::map<SeriesKey, double> series;
  for (const auto& row : rows) {
    if (row.group == "(fleet)") series[{row.formula, row.timestamp}] = row.watts;
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  util::configure_logging(argc, argv);

  std::int64_t agents = 3;
  std::int64_t duration_s = 10;
  std::int64_t period_ms = 250;
  std::int64_t obs_cadence_ms = 200;
  std::int64_t status_port = 0;
  std::string trace_path;
  util::ArgParser parser("distributed_fleet",
                         "Collector + N agent processes over loopback TCP, "
                         "cross-checked against an in-process FleetMonitor.");
  parser.add_int64("agents", &agents, "agent processes (monitored hosts)");
  parser.add_int64("duration", &duration_s, "monitored seconds per host");
  parser.add_int64("period-ms", &period_ms, "monitoring period in ms");
  parser.add_int64("obs-cadence-ms", &obs_cadence_ms,
                   "agents ship metrics snapshots + spans this often (0 = off)");
  parser.add_int64("status-port", &status_port,
                   "TCP status listener port (0 = no listener)");
  parser.add_string("trace", &trace_path,
                    "write the merged fleet Chrome trace (all agents + the "
                    "collector, clock-corrected) to this file");
  if (const auto exit_code = parser.parse(argc, argv)) return *exit_code;
  const auto hosts = static_cast<std::size_t>(agents);
  const util::DurationNs period = util::ms_to_ns(period_ms);
  const util::DurationNs duration = util::seconds_to_ns(duration_s);

  // One model serves the fleet; trained before the fork so every agent
  // inherits the identical model.
  const model::CpuPowerModel power_model = examples::train_quick_model();

  // --- Collector: server + bridge + fleet aggregation over the bridge ---
  actors::ActorSystem system(actors::ActorSystem::Mode::kManual);
  actors::EventBus bus(system);
  net::BusBridgeOptions bridge_options;
  bridge_options.per_agent_topics = false;  // Only the merged topic is consumed.
  net::BusBridge bridge(bus, bridge_options);
  obs::TraceMerger merger;
  net::CollectorStatusOptions status_options;
  status_options.merger = &merger;
  net::CollectorStatus status(bridge, status_options);
  net::CollectorServer server({}, status);
  if (!server.listening()) {
    std::fprintf(stderr, "collector: %s\n", server.error().c_str());
    return 1;
  }
  status.attach_server(&server);
  // The collector is its own trace source: it defines the merged timeline,
  // so its offset is zero by construction.
  const auto collector_src = merger.add_source("collector");
  merger.set_offset(collector_src, 0);
  std::unique_ptr<net::StatusListener> listener;
  if (status_port > 0) {
    listener = std::make_unique<net::StatusListener>(
        static_cast<std::uint16_t>(status_port),
        [&status](std::ostream& out, bool json) {
          json ? status.render_json(out) : status.render_text(out);
        });
    if (listener->listening()) {
      std::printf("status listener on 127.0.0.1:%u\n", listener->port());
    } else {
      std::fprintf(stderr, "status listener: %s\n", listener->error().c_str());
    }
  }
  std::printf("=== distributed_fleet: collector on 127.0.0.1:%u, %zu agents ===\n",
              server.port(), hosts);

  const auto fleet_topic = bus.intern("fleet/power:aggregated");
  auto host_count = std::make_shared<std::size_t>(hosts);
  const auto aggregator = system.spawn_as<api::FleetAggregator>(
      "collector/fleet-aggregator", bus, fleet_topic, host_count);
  bus.subscribe(bridge.aggregated_topic(), aggregator);
  auto owned = std::make_unique<api::MemoryReporter>();
  api::MemoryReporter& collected = *owned;
  bus.subscribe(fleet_topic, system.spawn("collector/reporter", std::move(owned)));

  // --- Fork the agents ---
  std::fflush(stdout);
  std::vector<pid_t> children;
  for (std::size_t i = 0; i < hosts; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      const int code = agent_main(i, server.port(), power_model, period, duration,
                                  obs_cadence_ms);
      std::fflush(stdout);
      ::_exit(code);
    }
    children.push_back(pid);
  }

  // --- Single-threaded collection loop: poll sockets, drain the bus ---
  int failures = 0;
  std::size_t live = children.size();
  std::uint64_t poll_seq = 0;
  while (live > 0 || server.connection_count() > 0) {
    const std::int64_t poll_start = obs::wall_now_ns();
    server.poll_once(20);
    const std::size_t processed = system.drain();
    // Only busy iterations become spans, so the merged trace shows when the
    // collector actually worked rather than a wall of idle polls.
    if (processed > 0) {
      merger.add_span(collector_src, "collector/drain", 0, poll_start,
                      obs::wall_now_ns() - poll_start, poll_seq++);
    }
    if (listener != nullptr) listener->poll_once(0);
    int wait_status = 0;
    const pid_t done = ::waitpid(-1, &wait_status, WNOHANG);
    if (done > 0) {
      --live;
      if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) ++failures;
    }
  }
  server.poll_once(0);  // Final reads raced with the last disconnect.
  system.drain();
  system.stop(aggregator);  // Flush straggler buckets.
  system.drain();

  const auto stats = server.stats();
  std::printf("collector: %llu records in %llu frames from %llu connections "
              "(%llu decode errors, %llu snapshots, %llu span frames)\n",
              static_cast<unsigned long long>(stats.records_decoded),
              static_cast<unsigned long long>(stats.frames_decoded),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.decode_errors),
              static_cast<unsigned long long>(stats.snapshots_decoded),
              static_cast<unsigned long long>(stats.spans_decoded));
  for (const auto& agent : status.agents()) {
    if (agent.snapshots == 0 && agent.spans == 0) continue;
    std::printf("  %-6s %llu snapshots, %llu spans, clock offset %+.3f ms, "
                "self %.3f W\n",
                agent.label.c_str(),
                static_cast<unsigned long long>(agent.snapshots),
                static_cast<unsigned long long>(agent.spans),
                agent.has_offset ? static_cast<double>(agent.clock_offset_ns) / 1e6
                                 : 0.0,
                agent.self_watts);
  }

  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    if (!trace_out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    merger.write_chrome_trace(trace_out);
    std::printf("merged trace: %zu spans -> %s (open in Perfetto / "
                "chrome://tracing)\n",
                merger.size(), trace_path.c_str());
  }

  // --- Reference: the same fleet, in one process ---
  std::vector<std::unique_ptr<os::System>> ref_hosts;
  for (std::size_t i = 0; i < hosts; ++i) ref_hosts.push_back(make_host(i));
  api::FleetMonitor::Options ref_options;
  ref_options.mode = actors::ActorSystem::Mode::kManual;
  api::FleetMonitor reference(ref_options);
  for (auto& host : ref_hosts) {
    reference.add_host(*host, make_spec(power_model, period));
  }
  api::MemoryReporter& expected = reference.add_fleet_reporter();
  reference.run_for(duration);
  reference.finish();

  // --- Cross-check ---
  const auto got = fleet_series(collected.all());
  const auto want = fleet_series(expected.all());
  double worst = 0.0;
  std::size_t missing = 0;
  for (const auto& [key, watts] : want) {
    const auto it = got.find(key);
    if (it == got.end()) {
      ++missing;
      continue;
    }
    worst = std::max(worst, std::fabs(it->second - watts));
  }
  std::printf("cross-check: %zu fleet rows expected, %zu collected, "
              "%zu missing, worst |Δ| = %.3g W\n",
              want.size(), got.size(), missing, worst);

  const bool ok = failures == 0 && missing == 0 && !want.empty() &&
                  got.size() == want.size() && worst <= 1e-6;
  std::printf("%s\n", ok ? "MATCH: distributed == in-process (<= 1e-6 W)"
                         : "MISMATCH between distributed and in-process runs");
  return ok ? 0 : 1;
}
