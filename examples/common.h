// Shared example scaffolding. Every demo used to repeat the same "train a
// quick model" block (reduced stress grid, 1 s per point) before getting to
// the part it actually demonstrates; this header is the one copy.
#pragma once

#include <cstdio>

#include "model/trainer.h"
#include "simcpu/cpu_spec.h"
#include "util/units.h"
#include "workloads/stress.h"

namespace powerapi::examples {

/// Trainer options sized for interactive demos: two duty-cycle levels and
/// one second per grid cell — seconds of simulated sampling instead of the
/// full evaluation sweep, at model quality that is fine for demonstration.
inline model::TrainerOptions quick_trainer_options() {
  model::TrainerOptions options;
  options.grid.intensities = {0.5, 1.0};
  options.point_duration = util::seconds_to_ns(1);
  return options;
}

/// Runs the Figure 1 pipeline with quick_trainer_options() and returns the
/// learned model, logging the sweep size first.
inline model::CpuPowerModel train_quick_model(const simcpu::CpuSpec& spec) {
  const model::TrainerOptions options = quick_trainer_options();
  std::printf("training the power model (%zu workloads x %zu frequencies)...\n",
              workloads::make_stress_grid(options.grid).size(),
              spec.frequencies_hz.size());
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, options);
  return trainer.train().model;
}

inline model::CpuPowerModel train_quick_model() {
  return train_quick_model(simcpu::i3_2120());
}

}  // namespace powerapi::examples
