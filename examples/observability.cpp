// observability: the monitor watching itself.
//
// Runs a single-host PowerMeter with the self-observability bundle
// attached: every pipeline stage records spans and throughput counters,
// mailbox latency and dispatcher behavior are histogrammed, and the
// SelfMonitor converts the monitor's own CPU share into watts — the energy
// spent measuring energy. The run emits:
//
//   - periodic metrics snapshots on stdout (MetricsReporter, text format),
//   - a final registry dump with percentiles,
//   - the self-overhead ledger (CPU share, estimated watts, joules),
//   - powerapi.trace.json — open it in Perfetto (https://ui.perfetto.dev)
//     or chrome://tracing to see the tick → sensor → formula → aggregator
//     message flow, correlated by tick sequence id.
//
//   $ ./observability [--log-level=info]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "common.h"
#include "model/trainer.h"
#include "obs/observability.h"
#include "os/system.h"
#include "powerapi/power_meter.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/stats.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

int main(int argc, char** argv) {
  util::configure_logging(argc, argv);
  std::int64_t duration_s = 10;
  std::int64_t period_ms = 100;
  util::ArgParser parser("observability",
                         "Run a monitored workload with the self-observability "
                         "bundle: metrics snapshots, self-overhead, a trace.");
  parser.add_int64("duration", &duration_s, "simulated seconds to monitor");
  parser.add_int64("period-ms", &period_ms, "monitoring period in ms");
  if (const auto exit_code = parser.parse(argc, argv)) return *exit_code;
  std::printf("=== observability: the monitor watching itself ===\n");

  const model::CpuPowerModel power_model = examples::train_quick_model();

  os::System system(simcpu::i3_2120());
  util::Rng rng(31);
  system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));
  system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                          workloads::mixed_stress(0.6, 16e6, 0.85), 0));

  // The bundle is owned by the caller and must outlive the meter: the actor
  // system and bus unregister their collectors from it on shutdown.
  obs::Observability obs;

  api::PowerMeter::Config config;
  config.period = util::ms_to_ns(period_ms);
  config.observability = &obs;
  api::PowerMeter meter(system, power_model, config);
  meter.pipeline().add_metrics_reporter(std::cout, api::MetricsReporter::Format::kText,
                                        /*every_n_ticks=*/50);
  auto& memory = meter.add_memory_reporter();
  meter.monitor_all();
  meter.run_for(util::seconds_to_ns(duration_s));
  meter.finish();

  const auto estimated = api::MemoryReporter::watts_of(memory.series("powerapi-hpc"));
  std::printf("\nestimated machine power: %.2f W mean over %zu samples\n",
              util::mean(estimated), estimated.size());

  // The energy spent measuring energy. Cumulative fields, not the last
  // window: every metrics snapshot samples (and thus resets) the window.
  const obs::SelfMonitor::Usage usage = obs.self.sample();
  const double wall_s = static_cast<double>(obs::wall_now_ns()) / 1e9;
  std::printf("\n--- self-overhead ---\n");
  std::printf("monitor cpu time : %.3f s over %.3f s of wall time\n",
              usage.total_cpu_seconds, wall_s);
  std::printf("cpu share        : %.4f cores\n", usage.total_cpu_seconds / wall_s);
  std::printf("estimated energy : %.3f J (at %.1f W/core)\n", usage.total_joules,
              obs.self.watts_per_core());

  const obs::MetricsSnapshot snap = obs.metrics.snapshot();
  const auto* latency = snap.find("actors.mailbox.latency_ns");
  if (latency != nullptr && latency->hist.count > 0) {
    std::printf("\nmailbox latency  : p50 %.0f ns, p99 %.0f ns over %llu messages\n",
                latency->hist.percentile(0.5), latency->hist.percentile(0.99),
                static_cast<unsigned long long>(latency->hist.count));
  }

  std::ofstream trace("powerapi.trace.json");
  obs.trace.write_chrome_trace(trace);
  std::printf("\nwrote powerapi.trace.json (%zu events) — open in Perfetto\n",
              obs.trace.size());
  return 0;
}
