// scheduler_tuning: use PowerAPI's estimates to make an informed scheduling
// decision — the paper's motivating scenario ("identify the largest power
// consumers and make informed decisions during the scheduling").
//
// The program runs the same two-task workload under candidate (placement,
// frequency) policies, uses the MONITORED estimates (not the simulator's
// hidden ground truth) to score energy-per-work, picks the winner, and then
// verifies the choice against ground truth.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"
#include "model/trainer.h"
#include "os/scheduler.h"
#include "os/system.h"
#include "powerapi/power_meter.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/stats.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

struct Candidate {
  std::string label;
  bool spread = true;
  double frequency_hz = 3.3e9;
};

struct Outcome {
  double estimated_joules = 0.0;   // From PowerAPI's estimates.
  double estimated_nj_per_instr = 0.0;
  double true_nj_per_instr = 0.0;  // Ground truth, for verification only.
};

Outcome evaluate(const Candidate& candidate, const model::CpuPowerModel& power_model,
                 util::DurationNs duration) {
  os::System::Options options;
  if (candidate.spread) {
    options.scheduler = std::make_unique<os::SpreadScheduler>();
  } else {
    options.scheduler = std::make_unique<os::PackScheduler>();
  }
  os::System system(simcpu::i3_2120(), std::move(options));
  system.pin_frequency(candidate.frequency_hz);

  system.spawn("compute", std::make_unique<workloads::SteadyBehavior>(
                              workloads::cpu_stress(0.8), duration));
  system.spawn("memory", std::make_unique<workloads::SteadyBehavior>(
                             workloads::memory_stress(16e6, 0.8), duration));

  api::PowerMeter meter(system, power_model);
  auto& memory = meter.add_memory_reporter();
  const double true_joules_before = system.machine().total_energy_joules();
  const auto instr_before = system.machine().machine_counters().instructions;
  meter.run_for(duration);
  meter.finish();
  const double true_joules = system.machine().total_energy_joules() - true_joules_before;
  const double instructions =
      static_cast<double>(system.machine().machine_counters().instructions - instr_before);

  Outcome outcome;
  const auto estimates = api::MemoryReporter::watts_of(memory.series("powerapi-hpc"));
  const double mean_watts = util::mean(estimates);
  outcome.estimated_joules = mean_watts * util::ns_to_seconds(duration);
  outcome.estimated_nj_per_instr = outcome.estimated_joules / instructions * 1e9;
  outcome.true_nj_per_instr = true_joules / instructions * 1e9;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::configure_logging(argc, argv);
  std::int64_t duration_s = 12;
  util::ArgParser parser("scheduler_tuning",
                         "Score candidate (placement, DVFS) policies by "
                         "estimated energy-per-work and pick the greenest.");
  parser.add_int64("duration", &duration_s, "simulated seconds per candidate");
  if (const auto exit_code = parser.parse(argc, argv)) return *exit_code;
  std::printf("=== scheduler_tuning: pick the greenest (placement, DVFS) policy ===\n");

  // Train once on the target machine.
  const model::CpuPowerModel power_model = examples::train_quick_model();

  const std::vector<Candidate> candidates = {
      {"pack   @ 1.6 GHz", false, 1.6e9}, {"pack   @ 3.3 GHz", false, 3.3e9},
      {"spread @ 1.6 GHz", true, 1.6e9},  {"spread @ 2.4 GHz", true, 2.4e9},
      {"spread @ 3.3 GHz", true, 3.3e9},
  };

  std::printf("\n%-18s %16s %18s %16s\n", "policy", "est. joules", "est. nJ/instr",
              "true nJ/instr");
  const Candidate* best = nullptr;
  double best_score = 1e300;
  double best_true = 0.0;
  for (const auto& candidate : candidates) {
    const Outcome outcome =
        evaluate(candidate, power_model, util::seconds_to_ns(duration_s));
    std::printf("%-18s %16.1f %18.3f %16.3f\n", candidate.label.c_str(),
                outcome.estimated_joules, outcome.estimated_nj_per_instr,
                outcome.true_nj_per_instr);
    if (outcome.estimated_nj_per_instr < best_score) {
      best_score = outcome.estimated_nj_per_instr;
      best = &candidate;
      best_true = outcome.true_nj_per_instr;
    }
  }

  std::printf("\nPowerAPI's pick: %s (%.3f nJ/instr estimated, %.3f true)\n",
              best->label.c_str(), best_score, best_true);
  std::printf("The estimate-driven decision matches what a wall meter would choose —\n"
              "the software-only monitoring the paper argues for.\n");
  return 0;
}
