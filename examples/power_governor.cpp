// power_governor: close the loop — joules saved at equal work done.
//
//   $ ./power_governor
//   $ ./power_governor --hosts 8 --budget 356 --policy race
//
// A batch fleet idles until a demand spike lands: every host receives two
// memory-bound scan jobs, each with a fixed amount of work (retired
// instructions), and both runs simulate the SAME wall-clock window. The
// uncapped run blasts the jobs at f_max, finishes early and idles out the
// window. The capped run wires a GovernorActor into the FleetMonitor's
// actuation channel (`run_for(duration, on_chunk)`): the governor holds the
// fleet watt budget by stepping DVFS/parking rungs, the jobs take a little
// longer, and the fleet idles a little less. Work is equal by construction
// (each job is killed the chunk its instruction target is reached), wall
// time is equal, so the joule delta is pure efficiency: memory-bound
// throughput barely scales with frequency, while V²-scaled activity energy
// and busy-core static power drop with every rung.
//
// Everything is kManual and seeded, so the example doubles as a determinism
// check: the capped run executes twice and must agree bit-for-bit.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "governor/governor.h"
#include "model/power_model.h"
#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

constexpr util::DurationNs kTimeline = util::seconds_to_ns(30);
constexpr util::DurationNs kSpikeStart = util::seconds_to_ns(6);
constexpr util::DurationNs kMonitorPeriod = util::ms_to_ns(100);
constexpr util::DurationNs kTickInterval = util::ms_to_ns(500);
/// Per-job retired-instruction target: ~12 s of scan at f_max, leaving
/// enough slack in the window for the governed run to finish too.
constexpr std::uint64_t kJobInstructions = 4'500'000'000ULL;
constexpr std::size_t kJobsPerHost = 2;

/// Fixed per-frequency formula standing in for a trained model, with
/// coefficients fit to the simulator's scan operating points so the sensed
/// gauge tracks the wall meter across the whole DVFS ladder. The miss
/// coefficient shrinks with frequency the way a per-frequency regression
/// fits it: DRAM energy itself is voltage-flat, but the busy-core static
/// power that co-varies with the miss rate is not.
model::CpuPowerModel governor_model() {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheMisses};
    const double scale = hz / 3.3e9;
    f.coefficients = {2.0e-9 * scale, 1.85e-7 + 0.75e-7 * scale};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(26.0, std::move(formulas));
}

struct Job {
  std::size_t host = 0;
  os::Pid pid = 0;
  std::uint64_t target = 0;
  workloads::GatedBehavior::Gate gate;
  bool done = false;
};

struct RunResult {
  double joules = 0.0;
  std::uint64_t instructions = 0;
  double peak_fleet_watts = 0.0;     ///< Max over all governor ticks.
  double settled_fleet_watts = 0.0;  ///< Max after the controller settled.
  std::uint64_t actuations = 0;
  util::TimestampNs batch_done_ns = 0;
};

/// One fleet run over the fixed window. budget_watts <= 0 leaves the
/// governor sensing but never stepping (the uncapped reference).
RunResult run_fleet(std::size_t host_count, double budget_watts,
                    governor::Policy policy) {
  std::vector<std::unique_ptr<os::System>> hosts;
  for (std::size_t i = 0; i < host_count; ++i) {
    hosts.push_back(std::make_unique<os::System>(simcpu::i3_2120()));
  }

  api::FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kManual;
  options.fleet_aggregation = false;  // The governor sums hosts itself.
  api::FleetMonitor fleet(options);
  api::PipelineSpec spec;
  spec.period = kMonitorPeriod;
  spec.model = governor_model();
  for (auto& host : hosts) {
    const std::size_t index = fleet.add_host(*host, spec);
    fleet.monitor_all(index);
  }

  governor::GovernorOptions gov_options;
  gov_options.budget_watts = budget_watts;
  gov_options.policy = policy;
  gov_options.hysteresis_watts = 1.5;
  gov_options.cooldown_ns = util::ms_to_ns(2000);
  gov_options.max_step = 2;
  gov_options.formula = "powerapi-hpc";
  std::vector<governor::HostControl> controls;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    controls.push_back(governor::control_for("host" + std::to_string(i), *hosts[i]));
  }
  auto actor = std::make_unique<governor::GovernorActor>(
      fleet.bus(), gov_options, std::move(controls));
  governor::GovernorActor* gov = actor.get();
  const actors::ActorRef gov_ref =
      fleet.actor_system().spawn("governor", std::move(actor));
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    governor::GovernorActor::spawn_sense_relay(
        fleet.actor_system(), fleet.bus(), fleet.pipeline(i).aggregated_topic(),
        gov_ref, i, "sense-h" + std::to_string(i));
  }

  RunResult result;
  std::vector<Job> jobs;
  util::TimestampNs elapsed = 0;
  util::TimestampNs next_tick = kTickInterval;
  // The actuation channel: run_for settles the fleet before and after this
  // callback, so mutating hosts and ticking the governor here is race-free
  // by construction (and deterministic under kManual). `advanced` is
  // cumulative within the run_for call.
  const auto on_chunk = [&](util::DurationNs advanced) {
    elapsed = advanced;
    if (jobs.empty() && elapsed >= kSpikeStart) {
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        for (std::size_t j = 0; j < kJobsPerHost; ++j) {
          Job job;
          job.host = i;
          // Slight per-host/job spread so completion staggers realistically.
          job.target = kJobInstructions + 150'000'000ULL * ((i + j) % 3);
          job.gate = std::make_shared<bool>(true);
          const double working_set = 64e6 * static_cast<double>(1 + (i + j) % 3);
          job.pid = hosts[i]->spawn(
              "scan" + std::to_string(j),
              std::make_unique<workloads::GatedBehavior>(
                  std::make_unique<workloads::SteadyBehavior>(
                      workloads::memory_stress(working_set, 1.0), 0),
                  job.gate));
          jobs.push_back(job);
        }
      }
    }
    // Work-bounded jobs: close each job's gate the chunk its target is
    // reached (the task stays alive at zero activity, so the sense
    // pipeline keeps publishing and the governor steps back up). Both runs
    // overshoot by at most one chunk's retirement, so total work is equal
    // to well under a percent.
    bool all_done = !jobs.empty();
    for (Job& job : jobs) {
      if (!job.done) {
        const auto stat = hosts[job.host]->proc_stat(job.pid);
        if (stat && stat->counters.instructions >= job.target) {
          job.done = true;
          *job.gate = false;
        }
      }
      all_done = all_done && job.done;
    }
    if (all_done && result.batch_done_ns == 0) result.batch_done_ns = elapsed;
    if (elapsed >= next_tick) {
      fleet.actor_system().tell(gov_ref,
                                actors::Payload(governor::GovernorTick{elapsed}));
      fleet.actor_system().drain();
      next_tick += kTickInterval;
      const double watts = gov->last_fleet_watts();
      result.peak_fleet_watts = std::max(result.peak_fleet_watts, watts);
      // "Settled": give the controller time to descend the ladder (two
      // rungs per tick from 3.3 GHz) before holding it to the budget.
      if (elapsed >= kSpikeStart + util::seconds_to_ns(4)) {
        result.settled_fleet_watts = std::max(result.settled_fleet_watts, watts);
      }
    }
  };

  fleet.run_for(kTimeline, on_chunk);
  fleet.finish();

  for (const auto& host : hosts) {
    result.instructions += host->machine_counters().instructions;
    result.joules += host->total_energy_joules();
  }
  result.actuations = gov->actuation_count();
  return result;
}

void print_run(const char* label, const RunResult& run) {
  std::printf("%-9s %9.1f J  %13llu instr  peak %6.1f W  settled %6.1f W  "
              "%3llu actuations  batch done %5.1f s\n",
              label, run.joules,
              static_cast<unsigned long long>(run.instructions),
              run.peak_fleet_watts, run.settled_fleet_watts,
              static_cast<unsigned long long>(run.actuations),
              static_cast<double>(run.batch_done_ns) / 1e9);
}

}  // namespace

int main(int argc, char** argv) {
  util::configure_logging(argc, argv);
  std::size_t hosts = 4;
  double budget = 180.0;
  std::string policy_name = "pace";
  util::ArgParser parser("power_governor",
                         "Capped-vs-uncapped batch fleet: joules saved at "
                         "equal work done, equal wall time.");
  parser.add_size("hosts", &hosts, "fleet size");
  parser.add_double("budget", &budget,
                    "fleet watt budget for the capped run (~45 W/host)");
  parser.add_string("policy", &policy_name, "pace | race");
  if (const auto exit_code = parser.parse(argc, argv)) return *exit_code;
  if (policy_name != "pace" && policy_name != "race") {
    std::fprintf(stderr, "unknown --policy %s (want pace|race)\n",
                 policy_name.c_str());
    return 1;
  }
  const governor::Policy policy = policy_name == "race"
                                      ? governor::Policy::kRaceToIdle
                                      : governor::Policy::kPaceToDeadline;

  std::printf("=== power_governor: %zu hosts, %zu scan jobs each at %.0f s, "
              "%.0f s window, budget %.1f W (%s) ===\n",
              hosts, kJobsPerHost, static_cast<double>(kSpikeStart) / 1e9,
              static_cast<double>(kTimeline) / 1e9, budget,
              policy_name.c_str());

  const RunResult uncapped = run_fleet(hosts, 0.0, policy);
  print_run("uncapped", uncapped);
  const RunResult capped = run_fleet(hosts, budget, policy);
  print_run("capped", capped);

  // Determinism: a second kManual capped run must agree bit-for-bit.
  const RunResult rerun = run_fleet(hosts, budget, policy);
  const bool deterministic = rerun.joules == capped.joules &&
                             rerun.instructions == capped.instructions &&
                             rerun.actuations == capped.actuations &&
                             rerun.peak_fleet_watts == capped.peak_fleet_watts;

  const double saved = uncapped.joules - capped.joules;
  const double work_delta =
      (static_cast<double>(capped.instructions) -
       static_cast<double>(uncapped.instructions)) /
      static_cast<double>(uncapped.instructions);
  std::printf("\njoules saved at equal work: %.1f J (%.2f%% of fleet energy, "
              "work delta %+.3f%%)\n",
              saved, 100.0 * saved / uncapped.joules, 100.0 * work_delta);
  std::printf("settled fleet power: %.1f W -> %.1f W (budget %.1f W)\n",
              uncapped.settled_fleet_watts, capped.settled_fleet_watts, budget);
  std::printf("determinism: two kManual capped runs %s\n",
              deterministic ? "bit-identical" : "DIVERGED");

  const bool equal_work = std::fabs(work_delta) < 0.01;
  const bool batch_finished =
      uncapped.batch_done_ns > 0 && capped.batch_done_ns > 0;
  // Each host holds its share to within the hysteresis band, so the fleet
  // as a whole settles within hosts x hysteresis of the budget.
  const bool bounded_actuations =
      capped.actuations > 0 && capped.actuations <= 16 * hosts;
  const bool held_budget = capped.settled_fleet_watts <=
                           budget + 1.5 * static_cast<double>(hosts) + 2.0;
  const bool ok = deterministic && equal_work && batch_finished &&
                  bounded_actuations && held_budget && saved > 0.0;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: equal_work=%d batch_finished=%d bounded_actuations=%d "
                 "held_budget=%d saved>0=%d deterministic=%d\n",
                 equal_work, batch_finished, bounded_actuations, held_budget,
                 saved > 0.0, deterministic);
  }
  return ok ? 0 : 1;
}
