// scenario_runner: execute a declarative .scenario file (see DESIGN.md
// §"Scenario layer" and examples/scenarios/) against the full middleware.
//
//   $ ./scenario_runner examples/scenarios/rack8.scenario
//   $ ./scenario_runner --mode manual --csv out.csv examples/scenarios/big_little.scenario
//   $ ./scenario_runner --check examples/scenarios/*.scenario   # parse + round-trip
//
// --check parses, serializes and re-parses each file, verifying the specs
// compare equal (the round-trip property CI enforces); --smoke bounds the
// simulated duration for fast pipeline-wide validation runs.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "scenario/scenario_parser.h"
#include "scenario/scenario_runner.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/stats.h"

using namespace powerapi;

namespace {

const char* metric_kind_name(obs::MetricKind kind) {
  switch (kind) {
    case obs::MetricKind::kCounter: return "counter";
    case obs::MetricKind::kGauge: return "gauge";
    case obs::MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Final metrics snapshot as name,kind,value CSV (values in %.17g so reruns
/// diff cleanly).
void write_metrics_csv(std::ostream& out, const obs::MetricsSnapshot& snapshot) {
  out << "name,kind,value\n";
  for (const obs::MetricValue& metric : snapshot.metrics) {
    char value[64];
    std::snprintf(value, sizeof value, "%.17g", metric.value);
    out << metric.name << ',' << metric_kind_name(metric.kind) << ',' << value << '\n';
  }
}

int check_file(const std::string& path) {
  const scenario::ScenarioSpec spec = scenario::ScenarioParser::parse_string(
      [&] {
        std::ifstream in(path);
        if (!in) throw std::runtime_error("cannot open scenario file: " + path);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
      }(),
      path);
  const std::string text = scenario::serialize(spec);
  const scenario::ScenarioSpec reparsed =
      scenario::ScenarioParser::parse_string(text, path + " (serialized)");
  if (!(reparsed == spec)) {
    std::fprintf(stderr, "%s: serialize/parse round trip does NOT reproduce the spec\n",
                 path.c_str());
    return 1;
  }
  std::printf("OK %-40s scenario '%s': %zu host%s, %zu workload%s, %zu injection%s\n",
              path.c_str(), spec.name.c_str(), spec.expanded_host_ids().size(),
              spec.expanded_host_ids().size() == 1 ? "" : "s", spec.workloads.size(),
              spec.workloads.size() == 1 ? "" : "s", spec.injections.size(),
              spec.injections.size() == 1 ? "" : "s");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::configure_logging(argc, argv);
  std::string mode = "threaded";
  std::string csv_path;
  std::string metrics_csv_path;
  std::int64_t duration_s = 0;
  bool check = false;
  bool smoke = false;
  util::ArgParser parser("scenario_runner",
                         "Run a declarative .scenario file through the PowerAPI "
                         "middleware (FleetMonitor + pipelines).");
  parser.add_string("mode", &mode, "dispatch mode: manual (deterministic) or threaded");
  parser.add_string("csv", &csv_path, "write every aggregated row to this CSV file");
  parser.add_string("metrics-csv", &metrics_csv_path,
                    "write the final metrics snapshot (name,kind,value) to this CSV "
                    "file; forces the observability plane on");
  parser.add_int64("duration", &duration_s, "cap the simulated seconds (0 = full spec)");
  parser.add_flag("check", &check, "parse + round-trip the files, run nothing");
  parser.add_flag("smoke", &smoke, "manual mode, duration capped at 2 s (CI)");
  if (const auto exit_code = parser.parse(argc, argv)) return *exit_code;

  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) files.emplace_back(argv[i]);
  if (files.empty()) {
    std::fprintf(stderr, "usage: scenario_runner [options] <file.scenario>...\n");
    return 2;
  }

  try {
    if (check) {
      int rc = 0;
      for (const std::string& file : files) rc |= check_file(file);
      return rc;
    }
    if (files.size() != 1) {
      std::fprintf(stderr, "run mode takes exactly one scenario file\n");
      return 2;
    }

    scenario::ScenarioSpec spec = scenario::ScenarioParser::parse_file(files[0]);
    scenario::RunOptions options;
    if (smoke) mode = "manual";
    if (mode == "manual") {
      options.mode = actors::ActorSystem::Mode::kManual;
    } else if (mode == "threaded") {
      options.mode = actors::ActorSystem::Mode::kThreaded;
    } else {
      std::fprintf(stderr, "unknown --mode '%s' (expected manual or threaded)\n",
                   mode.c_str());
      return 2;
    }
    if (smoke) options.max_duration = util::seconds_to_ns(2);
    if (duration_s > 0) options.max_duration = util::seconds_to_ns(duration_s);
    // The snapshot only exists when the observability plane runs, so the
    // flag enables it even for scenarios without an observe directive.
    if (!metrics_csv_path.empty()) spec.observe.enabled = true;

    std::printf("=== scenario '%s' (%s): %zu hosts, %.1f s @ %s dispatch ===\n",
                spec.name.c_str(), files[0].c_str(), spec.expanded_host_ids().size(),
                util::ns_to_seconds(options.max_duration > 0
                                        ? std::min(options.max_duration, spec.duration)
                                        : spec.duration),
                mode.c_str());

    scenario::ScenarioRunner runner(std::move(spec));
    const scenario::RunResult result = runner.run(options);

    std::printf("\n%-12s %8s", "host", "rows");
    std::map<std::string, bool> formulas;
    for (const auto& host : result.hosts) {
      for (const auto& row : host.rows) formulas[row.formula] = true;
    }
    for (const auto& [formula, _] : formulas) std::printf(" %14s", formula.c_str());
    std::printf("\n");
    for (const auto& host : result.hosts) {
      std::printf("%-12s %8zu", host.id.c_str(), host.rows.size());
      for (const auto& [formula, _] : formulas) {
        std::vector<double> watts;
        for (const auto& row : host.rows) {
          if (row.formula == formula && row.pid == api::kMachinePid) {
            watts.push_back(row.watts);
          }
        }
        if (watts.empty()) {
          std::printf(" %14s", "-");
        } else {
          std::printf(" %12.2fW ", util::mean(watts));
        }
      }
      std::printf("\n");
    }
    if (!result.fleet.empty()) {
      std::printf("fleet dimension: %zu rows\n", result.fleet.size());
    }
    if (result.model_swaps > 0) {
      std::printf("calibration: %zu model swap%s\n", result.model_swaps,
                  result.model_swaps == 1 ? "" : "s");
    }
    if (!result.metrics.metrics.empty()) {
      std::printf("observability: %zu metrics, %llu watchdog alert%s\n",
                  result.metrics.metrics.size(),
                  static_cast<unsigned long long>(result.watchdog_alerts),
                  result.watchdog_alerts == 1 ? "" : "s");
    }
    if (runner.spec().govern.enabled) {
      std::printf("governor: budget %.1f W policy=%s -> %llu actuation%s\n",
                  runner.spec().govern.budget_w, runner.spec().govern.policy.c_str(),
                  static_cast<unsigned long long>(result.governor_actuations),
                  result.governor_actuations == 1 ? "" : "s");
    }

    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
        return 1;
      }
      scenario::write_csv(out, result);
      std::printf("wrote %s\n", csv_path.c_str());
    }
    if (!metrics_csv_path.empty()) {
      std::ofstream out(metrics_csv_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", metrics_csv_path.c_str());
        return 1;
      }
      write_metrics_csv(out, result.metrics);
      std::printf("wrote %s\n", metrics_csv_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    return 1;
  }
  return 0;
}
