// energy_profiler: runs the full Figure-1 learning pipeline and saves the
// resulting power model to a file other tools (process_monitor) can load —
// the "train once, monitor forever" workflow of the paper's middleware.
//
//   $ ./energy_profiler [output-file]     (default: i3_2120.model)
//
// Also demonstrates the extension points: automatic Spearman counter
// selection (the paper's announced future work) and cross-validated fit
// quality reporting.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "mathx/crossval.h"
#include "mathx/ols.h"
#include "model/model_io.h"
#include "model/trainer.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/units.h"

using namespace powerapi;

int main(int argc, char** argv) {
  util::configure_logging(argc, argv);
  std::size_t max_features = 4;
  util::ArgParser parser("energy_profiler",
                         "Learn and save a power model; optional positional "
                         "arg: the output file (default i3_2120.model).");
  parser.add_size("max-features", &max_features,
                  "Spearman-selected counters kept in the model");
  if (const auto exit_code = parser.parse(argc, argv)) return *exit_code;
  const char* path = argc > 1 ? argv[1] : "i3_2120.model";
  const simcpu::CpuSpec spec = simcpu::i3_2120();

  std::printf("=== energy_profiler: learning the %s power profile ===\n",
              spec.model.c_str());

  // Step 1-3 of Figure 1: sample the stress grid at every frequency.
  model::TrainerOptions options;  // Full grid.
  options.auto_select_events = true;  // Spearman-based counter selection.
  options.selection.max_features = max_features;
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, options);
  std::printf("sampling %zu workloads x %zu frequencies...\n",
              workloads::make_stress_grid(options.grid).size(),
              spec.frequencies_hz.size());
  const model::SampleSet samples = trainer.collect();
  std::printf("collected %zu samples; idle floor %.2f W\n", samples.total_samples(),
              samples.idle_watts);

  // Step 4: regression (with automatic event selection).
  const model::TrainingResult result = trainer.fit(samples);
  std::printf("\nSpearman selected events:");
  for (const hpc::EventId id : result.selected_events) {
    std::printf(" %s", std::string(hpc::to_string(id)).c_str());
  }
  std::printf("\n\n%s\n", result.model.describe().c_str());

  // Cross-validated generalization check at the maximum frequency.
  {
    const auto& batch = samples.by_frequency.back();
    mathx::Matrix design(batch.size(), result.selected_events.size());
    std::vector<double> target(batch.size());
    for (std::size_t r = 0; r < batch.size(); ++r) {
      for (std::size_t c = 0; c < result.selected_events.size(); ++c) {
        design(r, c) = model::rate_of(batch[r].rates, result.selected_events[c]);
      }
      target[r] = batch[r].watts - samples.idle_watts;
    }
    util::Rng rng(1);
    const auto cv = mathx::cross_validate(
        design, target, 5, rng, [](const mathx::Matrix& x, std::span<const double> y) {
          const auto fit = mathx::nnls(x, y);
          return [coeffs = fit.coefficients](std::span<const double> row) {
            double out = 0;
            for (std::size_t i = 0; i < coeffs.size(); ++i) out += coeffs[i] * row[i];
            return out;
          };
        });
    std::printf("5-fold CV at %.2f GHz: RMSE %.3f +/- %.3f W\n",
                util::hz_to_ghz(spec.max_frequency_hz()), cv.mean_rmse, cv.stddev_rmse);
  }

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  model::save_model(result.model, out);
  std::printf("\npower model written to %s — feed it to process_monitor.\n", path);
  return 0;
}
