// process_monitor: a "top for watts" over the simulated machine.
//
// Spawns a mixed population of processes (a web-server-like bursty service,
// a batch compute job, a memory-hungry analytics task), monitors ALL of
// them dynamically, and prints a per-process power table every simulated
// second plus a CSV trace — the paper's "identify the largest power
// consumers" use case.
//
//   $ ./process_monitor [model-file]
//
// With a model file (produced by energy_profiler) training is skipped.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>

#include "common.h"
#include "model/model_io.h"
#include "model/trainer.h"
#include "os/system.h"
#include "powerapi/power_meter.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/stats.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

model::CpuPowerModel obtain_model(const char* path) {
  if (path != nullptr) {
    std::ifstream in(path);
    if (in) {
      auto parsed = model::load_model(in);
      if (parsed.ok()) {
        std::printf("loaded power model from %s\n", path);
        return std::move(parsed).take();
      }
      std::fprintf(stderr, "could not parse %s: %s — retraining\n", path,
                   parsed.error_message().c_str());
    }
  }
  // No cached model (energy_profiler writes one) — train a fresh quick one.
  return examples::train_quick_model();
}

}  // namespace

int main(int argc, char** argv) {
  util::configure_logging(argc, argv);
  std::int64_t duration_s = 40;
  std::int64_t period_ms = 250;
  util::ArgParser parser("process_monitor",
                         "Per-process power leaderboard over a mixed workload; "
                         "optional positional arg: a model file to load.");
  parser.add_int64("duration", &duration_s, "simulated seconds to monitor");
  parser.add_int64("period-ms", &period_ms, "monitoring period in ms");
  if (const auto exit_code = parser.parse(argc, argv)) return *exit_code;
  const model::CpuPowerModel power_model = obtain_model(argc > 1 ? argv[1] : nullptr);

  os::System system(simcpu::i3_2120());
  util::Rng rng(2077);
  system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));

  // The process zoo.
  std::map<os::Pid, std::string> names;
  {
    util::Rng wl = rng.fork(2);
    // Bursty request-serving frontend: two threads.
    std::vector<std::unique_ptr<os::TaskBehavior>> web;
    for (int i = 0; i < 2; ++i) {
      web.push_back(std::make_unique<workloads::BurstyBehavior>(
          workloads::mixed_stress(0.3, 2e6), util::ms_to_ns(30), util::ms_to_ns(70),
          /*duration=*/0, wl.fork(10 + i)));
    }
    names[system.spawn("webserver", std::move(web))] = "webserver";
    // Batch compute job.
    names[system.spawn("batch-compute",
                       std::make_unique<workloads::SteadyBehavior>(
                           workloads::cpu_stress(0.9), util::seconds_to_ns(25)))] =
        "batch-compute";
    // Memory-hungry analytics.
    names[system.spawn("analytics",
                       std::make_unique<workloads::SteadyBehavior>(
                           workloads::memory_stress(48e6, 0.8), util::seconds_to_ns(35)))] =
        "analytics";
  }

  api::PowerMeter::Config config;
  config.period = util::ms_to_ns(period_ms);
  config.dimension = api::AggregationDimension::kPid;
  api::PowerMeter meter(system, power_model, config);
  auto& memory = meter.add_memory_reporter();
  std::ofstream csv("process_monitor.csv");
  meter.add_csv_reporter(csv);
  meter.monitor_all();

  // Drive the simulated run, printing a per-second leaderboard.
  std::printf("\n%8s %-14s %12s\n", "t(s)", "process", "est. watts");
  std::map<os::Pid, util::RunningStats> totals;
  std::size_t scanned = 0;
  for (std::int64_t second = 1; second <= duration_s; ++second) {
    meter.run_for(util::seconds_to_ns(1));
    // Latest row per pid among the rows produced THIS second (exited
    // processes produce none and drop off the leaderboard).
    std::map<os::Pid, double> latest;
    for (; scanned < memory.all().size(); ++scanned) {
      const auto& row = memory.all()[scanned];
      if (row.formula == "powerapi-hpc" && row.pid != api::kMachinePid) {
        latest[row.pid] = row.watts;
      }
    }
    if (second % 5 == 0) {
      for (const auto& [pid, watts] : latest) {
        const auto it = names.find(pid);
        if (it == names.end()) continue;
        std::printf("%8lld %-14s %12.2f\n", static_cast<long long>(second),
                    it->second.c_str(), watts);
      }
    }
    for (const auto& [pid, watts] : latest) totals[pid].add(watts);
  }
  meter.finish();

  std::printf("\n=== energy summary over the run ===\n");
  std::printf("%-14s %12s %14s\n", "process", "mean watts", "approx joules");
  for (const auto& [pid, stats] : totals) {
    const auto it = names.find(pid);
    if (it == names.end()) continue;
    std::printf("%-14s %12.2f %14.1f\n", it->second.c_str(), stats.mean(),
                stats.mean() * static_cast<double>(duration_s));
  }
  std::printf("\nfull trace written to process_monitor.csv\n");
  return 0;
}
