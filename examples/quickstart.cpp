// Quickstart: learn a power model for the simulated i3-2120, then monitor a
// workload and compare PowerAPI's estimates against the (simulated)
// PowerSpy wall meter.
//
//   $ ./quickstart
//
// Walks through the whole public API: Trainer (Figure 1), PowerMeter
// (Figure 2), reporters, and the error metrics of Figure 3.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "model/trainer.h"
#include "os/system.h"
#include "powerapi/power_meter.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/stats.h"
#include "workloads/specjbb.h"
#include "workloads/stress.h"

using namespace powerapi;

int main(int argc, char** argv) {
  util::configure_logging(argc, argv);
  std::int64_t period_ms = 250;
  util::ArgParser parser("quickstart",
                         "Train a power model, monitor a SPECjbb-like run, "
                         "compare estimates against the simulated wall meter.");
  parser.add_int64("period-ms", &period_ms, "monitoring period in ms");
  if (const auto exit_code = parser.parse(argc, argv)) return *exit_code;
  const simcpu::CpuSpec spec = simcpu::i3_2120();
  std::cout << "=== Simulated processor (paper, Table 1) ===\n"
            << spec.describe() << "\n";

  // --- Step 1: learn the power model (Figure 1) ---
  const model::TrainerOptions options = examples::quick_trainer_options();
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, options);
  std::cout << "Training the CPU power model (sweeping "
            << workloads::make_stress_grid(options.grid).size() << " workloads x "
            << spec.frequencies_hz.size() << " frequencies)...\n";
  const model::TrainingResult result = trainer.train();
  std::cout << result.model.describe() << "\n";

  // --- Step 2: monitor a workload with the learned model (Figure 2) ---
  os::System system(spec);
  util::Rng rng(2026);
  system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));

  workloads::SpecJbbOptions jbb;
  jbb.warmup = util::seconds_to_ns(10);
  jbb.staircase_step = util::seconds_to_ns(6);
  jbb.search_phase = util::seconds_to_ns(30);
  jbb.cooldown = util::seconds_to_ns(5);
  const os::Pid pid = system.spawn("specjbb", workloads::make_specjbb(jbb, rng.fork(2)));

  api::PowerMeter::Config config;
  config.period = util::ms_to_ns(period_ms);
  config.dimension = api::AggregationDimension::kPid;  // Keep per-pid rows.
  api::PowerMeter meter(system, result.model, config);
  auto& memory = meter.add_memory_reporter();
  meter.monitor({pid});
  meter.run_for(workloads::specjbb_duration(jbb));
  meter.finish();

  // --- Step 3: compare estimation vs measurement (Figure 3) ---
  const auto estimated = api::MemoryReporter::watts_of(memory.series("powerapi-hpc"));
  const auto measured = api::MemoryReporter::watts_of(memory.series("powerspy"));
  const std::size_t n = std::min(estimated.size(), measured.size());
  std::cout << "Collected " << n << " aligned samples.\n";
  if (n > 4) {
    const std::span<const double> ref(measured.data(), n);
    const std::span<const double> est(estimated.data(), n);
    std::printf("PowerSpy mean:  %.2f W\n", util::mean(ref));
    std::printf("PowerAPI mean:  %.2f W\n", util::mean(est));
    std::printf("median error:   %.1f %%\n", util::median_ape(ref, est));
    std::printf("mean error:     %.1f %%\n", util::mape(ref, est));
  }

  // Per-process attribution for the SPECjbb process itself.
  const auto process_rows = memory.series("powerapi-hpc", pid);
  if (!process_rows.empty()) {
    const auto watts = api::MemoryReporter::watts_of(process_rows);
    std::printf("specjbb (pid %lld) mean attributed power: %.2f W\n",
                static_cast<long long>(pid), util::mean(watts));
  }
  return 0;
}
