// green_datacenter: an adaptive strategy for sporadic renewable energy —
// the paper's §2 motivation: "the emergence of renewable energies is
// introducing the need for the development of adaptive strategies that can
// cope with the sporadic nature of these energy feeds."
//
// A small host runs a latency-sensitive service (never deferred) plus a
// batch queue (deferrable). A synthetic solar feed rises and falls with
// cloud noise. The controller polls PowerAPI's ESTIMATES (not the hidden
// ground truth) once per second and gates the batch work + DVFS so
// consumption tracks the supply.
//
// Both strategies — always-on (naive) and estimate-driven (adaptive) — run
// CONCURRENTLY as two hosts of one FleetMonitor on the threaded dispatcher:
// the same compressed day, side by side, one actor system.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "model/trainer.h"
#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

std::int64_t day_seconds = 240;  // A compressed "day" (--day-seconds).

/// Solar supply (watts) at second `t`: half-sine daylight arc with cloud
/// dropouts.
double solar_watts(std::int64_t t, util::Rng& clouds) {
  const double phase = static_cast<double>(t) / static_cast<double>(day_seconds) * M_PI;
  double supply = 75.0 * std::sin(phase);
  if (clouds.bernoulli(0.12)) supply *= clouds.uniform(0.25, 0.6);  // A cloud.
  return std::max(0.0, supply);
}

/// One strategy's world: a host, its deferrable batch gate, and the latest
/// power estimate its controller acts on.
struct Strategy {
  bool adaptive = false;
  std::unique_ptr<os::System> system;
  std::shared_ptr<bool> gate = std::make_shared<bool>(true);
  std::vector<os::Pid> batch_pids;
  double latest_estimate = 0.0;
  util::Rng clouds{0};
  double brown_joules = 0.0;   ///< Demand above the renewable supply.
  double wasted_joules = 0.0;  ///< Unused renewable supply.
  double batch_instr = 0.0;    ///< Work the batch queue completed.
};

std::unique_ptr<Strategy> make_strategy(bool adaptive, double idle_watts) {
  auto s = std::make_unique<Strategy>();
  s->adaptive = adaptive;
  s->system = std::make_unique<os::System>(simcpu::i3_2120());
  s->latest_estimate = idle_watts;
  util::Rng rng(7411);  // Same seed both strategies: identical workloads.
  s->clouds = rng.fork(3);
  s->system->spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));

  // Latency-sensitive service: bursty, never gated.
  util::Rng wl = rng.fork(2);
  s->system->spawn("service", std::make_unique<workloads::BurstyBehavior>(
                                  workloads::mixed_stress(0.4, 4e6, 0.9),
                                  util::ms_to_ns(80), util::ms_to_ns(160), 0,
                                  wl.fork(1)));

  // Batch queue: three compute tasks behind a shared gate.
  for (int i = 0; i < 3; ++i) {
    auto inner =
        std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(0.9), 0);
    s->batch_pids.push_back(s->system->spawn(
        "batch", std::make_unique<workloads::GatedBehavior>(std::move(inner), s->gate)));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::configure_logging(argc, argv);
  util::ArgParser parser("green_datacenter",
                         "Estimate-driven batch gating + DVFS against a "
                         "sporadic solar feed, vs an always-on baseline.");
  parser.add_int64("day-seconds", &day_seconds, "length of the compressed day");
  if (const auto exit_code = parser.parse(argc, argv)) return *exit_code;
  std::printf("=== green_datacenter: tracking a sporadic solar feed ===\n");

  model::TrainerOptions options;
  options.grid.intensities = {0.5, 1.0};
  options.point_duration = util::seconds_to_ns(1);
  model::Trainer trainer(simcpu::i3_2120(), simcpu::GroundTruthParams{}, options);
  const model::CpuPowerModel power_model = trainer.train().model;

  std::vector<std::unique_ptr<Strategy>> strategies;
  strategies.push_back(make_strategy(/*adaptive=*/false, power_model.idle_watts()));
  strategies.push_back(make_strategy(/*adaptive=*/true, power_model.idle_watts()));

  // Both days run concurrently: two hosts, one threaded actor system.
  api::FleetMonitor::Options fleet_options;
  fleet_options.mode = actors::ActorSystem::Mode::kThreaded;
  fleet_options.workers = 2;
  fleet_options.fleet_aggregation = false;  // The days are compared, not summed.
  api::FleetMonitor fleet(fleet_options);
  for (auto& s : strategies) {
    api::PipelineSpec spec;
    spec.model = power_model;
    spec.period = util::ms_to_ns(250);
    const std::size_t index = fleet.add_host(*s->system, spec);
    fleet.add_callback_reporter(index, [state = s.get()](const api::AggregatedPower& row) {
      if (row.formula == "powerapi-hpc") state->latest_estimate = row.watts;
    });
  }

  std::vector<double> batch_start(strategies.size(), 0.0);
  std::vector<double> energy_mark(strategies.size(), 0.0);
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    for (const os::Pid pid : strategies[i]->batch_pids) {
      batch_start[i] += static_cast<double>(
          strategies[i]->system->proc_stat(pid)->counters.instructions);
    }
  }

  std::vector<double> supply_now(strategies.size(), 0.0);
  for (std::int64_t t = 0; t < day_seconds; ++t) {
    for (std::size_t i = 0; i < strategies.size(); ++i) {
      Strategy& s = *strategies[i];
      supply_now[i] = solar_watts(t, s.clouds);

      if (s.adaptive) {
        // Controller: act on the estimate from the previous second.
        const double headroom = supply_now[i] - s.latest_estimate;
        if (headroom < -2.0) {
          *s.gate = false;  // Defer batch work.
          s.system->pin_frequency(1.6e9);
        } else if (headroom > 8.0) {
          *s.gate = true;  // Plenty of sun: full speed ahead.
          s.system->pin_frequency(3.3e9);
        } else if (headroom > 2.0) {
          *s.gate = true;
          s.system->pin_frequency(2.4e9);
        }
      }
      energy_mark[i] = s.system->total_energy_joules();
    }

    fleet.run_for(util::seconds_to_ns(1));  // Both days advance in parallel.

    for (std::size_t i = 0; i < strategies.size(); ++i) {
      Strategy& s = *strategies[i];
      const double used = s.system->total_energy_joules() - energy_mark[i];
      s.brown_joules += std::max(0.0, used - supply_now[i]);
      s.wasted_joules += std::max(0.0, supply_now[i] - used);
    }
  }
  fleet.finish();

  for (std::size_t i = 0; i < strategies.size(); ++i) {
    for (const os::Pid pid : strategies[i]->batch_pids) {
      strategies[i]->batch_instr += static_cast<double>(
          strategies[i]->system->proc_stat(pid)->counters.instructions);
    }
    strategies[i]->batch_instr -= batch_start[i];
  }

  const Strategy& naive = *strategies[0];
  const Strategy& adaptive = *strategies[1];
  std::printf("\n%-26s %14s %14s %16s\n", "strategy", "brown (kJ)", "wasted (kJ)",
              "batch Ginstr");
  std::printf("%-26s %14.2f %14.2f %16.1f\n", "always-on (naive)",
              naive.brown_joules / 1e3, naive.wasted_joules / 1e3,
              naive.batch_instr / 1e9);
  std::printf("%-26s %14.2f %14.2f %16.1f\n", "estimate-driven adaptive",
              adaptive.brown_joules / 1e3, adaptive.wasted_joules / 1e3,
              adaptive.batch_instr / 1e9);

  const double saved =
      (1.0 - adaptive.brown_joules / std::max(1.0, naive.brown_joules)) * 100.0;
  std::printf("\nbrown energy cut by %.0f%% while still completing %.0f%% of the"
              " batch work\n",
              saved, adaptive.batch_instr / std::max(1.0, naive.batch_instr) * 100.0);
  std::printf("(deferred, not dropped: the gate reopens whenever the sun returns)\n");
  return 0;
}
