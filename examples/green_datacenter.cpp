// green_datacenter: an adaptive strategy for sporadic renewable energy —
// the paper's §2 motivation: "the emergence of renewable energies is
// introducing the need for the development of adaptive strategies that can
// cope with the sporadic nature of these energy feeds."
//
// A small host runs a latency-sensitive service (never deferred) plus a
// batch queue (deferrable). A synthetic solar feed rises and falls with
// cloud noise. The controller polls PowerAPI's ESTIMATES (not the hidden
// ground truth) once per second and gates the batch work + DVFS so
// consumption tracks the supply; we compare brown (non-renewable) energy
// with and without the strategy.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "model/trainer.h"
#include "os/system.h"
#include "powerapi/power_meter.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

constexpr int kDaySeconds = 240;  // A compressed "day".

/// Solar supply (watts) at second `t`: half-sine daylight arc with cloud
/// dropouts.
double solar_watts(int t, util::Rng& clouds) {
  const double phase = static_cast<double>(t) / kDaySeconds * M_PI;
  double supply = 75.0 * std::sin(phase);
  if (clouds.bernoulli(0.12)) supply *= clouds.uniform(0.25, 0.6);  // A cloud.
  return std::max(0.0, supply);
}

struct DayResult {
  double brown_joules = 0.0;     ///< Demand above the renewable supply.
  double wasted_joules = 0.0;    ///< Unused renewable supply.
  double batch_instr = 0.0;      ///< Work the batch queue completed.
};

DayResult run_day(bool adaptive, const model::CpuPowerModel& power_model) {
  os::System system(simcpu::i3_2120());
  util::Rng rng(7411);
  system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));

  // Latency-sensitive service: bursty, never gated.
  util::Rng wl = rng.fork(2);
  system.spawn("service", std::make_unique<workloads::BurstyBehavior>(
                              workloads::mixed_stress(0.4, 4e6, 0.9),
                              util::ms_to_ns(80), util::ms_to_ns(160), 0, wl.fork(1)));

  // Batch queue: three compute tasks behind a shared gate.
  auto gate = std::make_shared<bool>(true);
  std::vector<os::Pid> batch_pids;
  for (int i = 0; i < 3; ++i) {
    auto inner = std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(0.9), 0);
    batch_pids.push_back(system.spawn(
        "batch", std::make_unique<workloads::GatedBehavior>(std::move(inner), gate)));
  }

  api::PowerMeter::Config config;
  config.period = util::ms_to_ns(250);
  api::PowerMeter meter(system, power_model, config);
  double latest_estimate = power_model.idle_watts();
  meter.add_callback_reporter([&](const api::AggregatedPower& row) {
    if (row.formula == "powerapi-hpc") latest_estimate = row.watts;
  });

  util::Rng clouds = rng.fork(3);
  DayResult result;
  double batch_instr_start = 0;
  for (const os::Pid pid : batch_pids) {
    batch_instr_start += static_cast<double>(system.proc_stat(pid)->counters.instructions);
  }

  for (int t = 0; t < kDaySeconds; ++t) {
    const double supply = solar_watts(t, clouds);

    if (adaptive) {
      // Controller: act on the estimate from the previous second.
      const double headroom = supply - latest_estimate;
      if (headroom < -2.0) {
        *gate = false;  // Defer batch work.
        system.pin_frequency(1.6e9);
      } else if (headroom > 8.0) {
        *gate = true;  // Plenty of sun: full speed ahead.
        system.pin_frequency(3.3e9);
      } else if (headroom > 2.0) {
        *gate = true;
        system.pin_frequency(2.4e9);
      }
    }

    const double e0 = system.total_energy_joules();
    meter.run_for(util::seconds_to_ns(1));
    const double used = system.total_energy_joules() - e0;
    result.brown_joules += std::max(0.0, used - supply);
    result.wasted_joules += std::max(0.0, supply - used);
  }
  meter.finish();

  for (const os::Pid pid : batch_pids) {
    result.batch_instr +=
        static_cast<double>(system.proc_stat(pid)->counters.instructions);
  }
  result.batch_instr -= batch_instr_start;
  return result;
}

}  // namespace

int main() {
  std::printf("=== green_datacenter: tracking a sporadic solar feed ===\n");

  model::TrainerOptions options;
  options.grid.intensities = {0.5, 1.0};
  options.point_duration = util::seconds_to_ns(1);
  model::Trainer trainer(simcpu::i3_2120(), simcpu::GroundTruthParams{}, options);
  const model::CpuPowerModel power_model = trainer.train().model;

  const DayResult naive = run_day(/*adaptive=*/false, power_model);
  const DayResult adaptive = run_day(/*adaptive=*/true, power_model);

  std::printf("\n%-26s %14s %14s %16s\n", "strategy", "brown (kJ)", "wasted (kJ)",
              "batch Ginstr");
  std::printf("%-26s %14.2f %14.2f %16.1f\n", "always-on (naive)",
              naive.brown_joules / 1e3, naive.wasted_joules / 1e3,
              naive.batch_instr / 1e9);
  std::printf("%-26s %14.2f %14.2f %16.1f\n", "estimate-driven adaptive",
              adaptive.brown_joules / 1e3, adaptive.wasted_joules / 1e3,
              adaptive.batch_instr / 1e9);

  const double saved =
      (1.0 - adaptive.brown_joules / std::max(1.0, naive.brown_joules)) * 100.0;
  std::printf("\nbrown energy cut by %.0f%% while still completing %.0f%% of the"
              " batch work\n",
              saved, adaptive.batch_instr / std::max(1.0, naive.batch_instr) * 100.0);
  std::printf("(deferred, not dropped: the gate reopens whenever the sun returns)\n");
  return 0;
}
