// adaptive_monitor: the online model lifecycle end to end.
//
// A shipped power model is learned against one workload regime (CPU-bound),
// then the machine's workload mix shifts mid-run to a memory-heavy phase
// the model never saw. A plain pipeline would keep mis-estimating forever;
// this one runs with with_calibration enabled, so the CalibrationActor
// pairs the HPC sensor's feature vectors with the PowerSpy ground truth,
// notices the drift, refits per-frequency formulas from the live stream and
// hot-swaps the model registry — and the console shows the estimate error
// collapsing after the swap.
//
//   $ ./adaptive_monitor
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "os/system.h"
#include "powerapi/power_meter.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

/// A model deliberately fitted to the WRONG regime: coefficients that track
/// instruction throughput well but under-charge cache traffic, as a profile
/// trained on CPU-bound sweeps does.
model::CpuPowerModel stale_model() {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events.assign(hpc::paper_events().begin(), hpc::paper_events().end());
    const double scale = hz / 3.3e9;
    f.coefficients = {3.5e-9 * scale, 4.0e-9 * scale, 2.0e-8 * scale};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(31.48, std::move(formulas));
}

}  // namespace

int main(int argc, char** argv) {
  util::configure_logging(argc, argv);
  std::int64_t duration_s = 60;
  util::ArgParser parser("adaptive_monitor",
                         "Online calibration demo: a stale model is refit and "
                         "hot-swapped when the workload regime shifts.");
  parser.add_int64("duration", &duration_s, "simulated seconds to monitor");
  if (const auto exit_code = parser.parse(argc, argv)) return *exit_code;
  os::System system(simcpu::i3_2120());
  util::Rng rng(4242);
  system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));

  // The workload mix shifts at t = 20 s: a CPU-bound phase (the regime the
  // stale model was trained for), then a memory/cache-heavy phase it has
  // never seen, looping so the post-swap model stays exercised.
  std::vector<workloads::Phase> phases;
  phases.push_back({workloads::cpu_stress(0.9), util::seconds_to_ns(20)});
  phases.push_back(
      {workloads::memory_stress(32e6, 0.85), util::seconds_to_ns(40)});
  system.spawn("app", std::make_unique<workloads::PhasedBehavior>(std::move(phases),
                                                                  /*loop=*/true));

  api::PowerMeter::Config config;
  config.period = util::ms_to_ns(250);
  config.with_powerspy = true;  // The ground truth the calibrator pairs with.
  config.with_calibration = true;
  config.calibration.drift_window = 12;
  config.calibration.drift_threshold_watts = 2.0;
  config.calibration.min_samples_per_fit = 24;
  config.calibration.min_refit_interval = util::seconds_to_ns(5);

  api::PowerMeter meter(system, stale_model(), config);
  auto& memory = meter.add_memory_reporter();

  std::vector<api::ModelUpdated> swaps;
  meter.pipeline().add_model_update_callback(
      [&swaps](const api::ModelUpdated& update) {
        std::printf("t=%6.1fs  >>> model v%llu swapped in (rolling error was "
                    "%.2f W, %zu samples, %zu bins)\n",
                    util::ns_to_seconds(static_cast<util::DurationNs>(update.timestamp)),
                    static_cast<unsigned long long>(update.version),
                    update.pre_swap_error_watts, update.samples_used,
                    update.bins_refit);
        swaps.push_back(update);
      });

  std::printf("monitoring with a stale CPU-bound profile; workload shifts to "
              "memory-heavy at t=20s\n\n");
  std::printf("%8s %14s %14s %10s\n", "t(s)", "powerapi-hpc", "powerspy", "err(W)");

  std::size_t scanned = 0;
  double pre_swap_error_sum = 0.0, post_swap_error_sum = 0.0;
  std::size_t pre_swap_n = 0, post_swap_n = 0;
  for (std::int64_t second = 1; second <= duration_s; ++second) {
    meter.run_for(util::seconds_to_ns(1));
    std::map<util::TimestampNs, double> estimated;
    std::map<util::TimestampNs, double> measured;
    for (; scanned < memory.all().size(); ++scanned) {
      const auto& row = memory.all()[scanned];
      if (row.pid != api::kMachinePid) continue;
      if (row.formula == "powerapi-hpc") estimated[row.timestamp] = row.watts;
      if (row.formula == "powerspy") measured[row.timestamp] = row.watts;
    }
    double err = 0.0, est = 0.0, meas = 0.0;
    std::size_t n = 0;
    for (const auto& [t, watts] : estimated) {
      const auto it = measured.find(t);
      if (it == measured.end()) continue;
      est = watts;
      meas = it->second;
      err += std::abs(watts - it->second);
      ++n;
      if (swaps.empty()) {
        pre_swap_error_sum += std::abs(watts - it->second);
        ++pre_swap_n;
      } else {
        post_swap_error_sum += std::abs(watts - it->second);
        ++post_swap_n;
      }
    }
    if (second % 5 == 0 && n > 0) {
      std::printf("%8lld %14.2f %14.2f %10.2f\n", static_cast<long long>(second),
                  est, meas, err / static_cast<double>(n));
    }
  }
  meter.finish();

  std::printf("\n=== model lifecycle summary ===\n");
  std::printf("registry version at end: v%llu (%zu swap%s)\n",
              static_cast<unsigned long long>(meter.pipeline().registry()->version()),
              swaps.size(), swaps.size() == 1 ? "" : "s");
  if (pre_swap_n > 0 && post_swap_n > 0) {
    const double pre = pre_swap_error_sum / static_cast<double>(pre_swap_n);
    const double post = post_swap_error_sum / static_cast<double>(post_swap_n);
    std::printf("mean |estimate - meter| before first swap: %6.2f W\n", pre);
    std::printf("mean |estimate - meter| after  first swap: %6.2f W\n", post);
    std::printf(post < pre ? "calibration reduced the estimate error.\n"
                           : "calibration did NOT reduce the error (unexpected).\n");
  } else {
    std::printf("no swap happened; increase the run length or drift.\n");
  }
  return 0;
}
