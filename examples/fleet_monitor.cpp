// fleet_monitor: one actor system, many machines — the middleware scaled
// from a single host to a (simulated) rack. Eight hosts with heterogeneous
// workloads are advanced concurrently on the threaded work-stealing
// dispatcher; each runs the full PowerAPI pipeline under its own topic
// namespace ("h0/", "h1/", ...), and a fleet-dimension aggregator sums the
// per-host estimates into one rack-level power series.
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "model/trainer.h"
#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/stats.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

/// A rack of unlike machines: web-ish bursty hosts, batch crunchers, a
/// mostly idle spare — each deterministic given its index.
std::unique_ptr<os::System> make_host(std::size_t i) {
  auto host = std::make_unique<os::System>(simcpu::i3_2120());
  util::Rng rng(1000 + static_cast<std::uint64_t>(i));
  switch (i % 4) {
    case 0:  // Batch cruncher: sustained compute.
      host->spawn("batch", std::make_unique<workloads::SteadyBehavior>(
                               workloads::cpu_stress(0.9), 0));
      break;
    case 1:  // Web host: bursty mixed load.
      host->spawn("web", std::make_unique<workloads::BurstyBehavior>(
                             workloads::mixed_stress(0.5, 8e6, 0.9),
                             util::ms_to_ns(60), util::ms_to_ns(120), 0, rng.fork(1)));
      break;
    case 2:  // Cache node: memory-bound.
      host->spawn("cache", std::make_unique<workloads::SteadyBehavior>(
                               workloads::memory_stress(24e6), 0));
      break;
    default:  // Spare: background daemon only.
      break;
  }
  host->spawn("kdaemon", workloads::make_background_daemon(rng.fork(2)));
  return host;
}

}  // namespace

int main(int argc, char** argv) {
  util::configure_logging(argc, argv);
  std::size_t hosts_count = 8;
  std::size_t workers = 4;
  std::int64_t duration_s = 30;
  util::ArgParser parser("fleet_monitor",
                         "Monitor a rack of heterogeneous hosts concurrently "
                         "in one actor system, with a fleet-level power sum.");
  parser.add_size("hosts", &hosts_count, "monitored hosts in the rack");
  parser.add_size("workers", &workers, "dispatcher worker threads");
  parser.add_int64("duration", &duration_s, "monitored seconds per host");
  if (const auto exit_code = parser.parse(argc, argv)) return *exit_code;
  std::printf("=== fleet_monitor: %zu hosts, one actor system ===\n", hosts_count);

  // One model serves the whole (homogeneous-CPU) fleet, as one calibration
  // serves every identical machine in a real deployment.
  model::TrainerOptions options;
  options.grid.intensities = {0.5, 1.0};
  options.point_duration = util::seconds_to_ns(1);
  model::Trainer trainer(simcpu::i3_2120(), simcpu::GroundTruthParams{}, options);
  const model::CpuPowerModel power_model = trainer.train().model;

  std::vector<std::unique_ptr<os::System>> hosts;
  for (std::size_t i = 0; i < hosts_count; ++i) hosts.push_back(make_host(i));

  api::FleetMonitor::Options fleet_options;
  fleet_options.mode = actors::ActorSystem::Mode::kThreaded;
  fleet_options.workers = workers;
  fleet_options.with_observability = true;  // Self-metrics + message-flow trace.
  api::FleetMonitor fleet(fleet_options);

  std::vector<api::MemoryReporter*> per_host;
  for (auto& host : hosts) {
    api::PipelineSpec spec;
    spec.model = power_model;
    spec.period = util::ms_to_ns(250);
    const std::size_t index = fleet.add_host(*host, spec);
    per_host.push_back(&fleet.add_memory_reporter(index));
  }
  api::MemoryReporter& rack = fleet.add_fleet_reporter();

  fleet.run_for(util::seconds_to_ns(duration_s));
  fleet.finish();

  std::printf("\n%-6s %-10s %12s %12s\n", "host", "role", "est (W)", "meter (W)");
  const char* roles[] = {"batch", "web", "cache", "spare"};
  for (std::size_t i = 0; i < hosts_count; ++i) {
    const double est = util::mean(
        api::MemoryReporter::watts_of(per_host[i]->series("powerapi-hpc")));
    const double wall = util::mean(
        api::MemoryReporter::watts_of(per_host[i]->series("powerspy")));
    std::printf("h%-5zu %-10s %12.2f %12.2f\n", i, roles[i % 4], est, wall);
  }

  const auto rack_series = rack.group_series("powerapi-hpc", "(fleet)");
  std::printf("\nrack-level series: %zu samples, mean %.2f W (sum of %zu hosts)\n",
              rack_series.size(),
              util::mean(api::MemoryReporter::watts_of(rack_series)), hosts_count);

  // What did the monitoring itself cost? The observability bundle tracked
  // the monitor's CPU share the whole run.
  const obs::SelfMonitor::Usage usage = fleet.observability()->self.sample();
  std::printf("monitor overhead: %.3f CPU-s (%.4f cores avg), ~%.3f J\n",
              usage.total_cpu_seconds, usage.total_cpu_seconds / usage.wall_seconds,
              usage.total_joules);

  std::ofstream trace("fleet.trace.json");
  fleet.write_chrome_trace(trace);
  std::printf("wrote fleet.trace.json (%zu events) — open in Perfetto\n",
              fleet.observability()->trace.size());
  return 0;
}
