// Schedulers: map runnable tasks onto hardware threads each tick.
//
// The paper motivates power monitoring with "informed decisions during the
// scheduling"; the A3 ablation compares these placement policies under the
// same workload. All schedulers are deterministic given the same input
// ordering (ties broken by task identity), so experiments replay exactly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "os/task.h"
#include "simcpu/cpu_spec.h"

namespace powerapi::os {

/// Assignment result: `slots[i]` is the task placed on hardware thread i
/// (nullptr = idle). Tasks not placed this tick simply wait (no preemption
/// mid-tick; the tick is the timeslice).
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual const char* name() const noexcept = 0;

  /// `runnable` is ordered by (pid, tid); `slots.size()` == hw thread count.
  virtual void assign(std::span<Task* const> runnable, std::span<Task*> slots,
                      const simcpu::CpuSpec& spec) = 0;
};

/// Rotates which task gets placed first across ticks so CPU time is shared
/// fairly when tasks outnumber hardware threads. Fills hw threads in index
/// order (i.e., both hyperthreads of core 0 before core 1).
class RoundRobinScheduler final : public Scheduler {
 public:
  const char* name() const noexcept override { return "round-robin"; }
  void assign(std::span<Task* const> runnable, std::span<Task*> slots,
              const simcpu::CpuSpec& spec) override;

 private:
  std::size_t next_offset_ = 0;
};

/// Packs tasks onto as few cores as possible (both SMT siblings of a core
/// before touching the next core) — maximizes deep C-state residency of the
/// remaining cores at the cost of SMT throughput sharing.
class PackScheduler final : public Scheduler {
 public:
  const char* name() const noexcept override { return "pack"; }
  void assign(std::span<Task* const> runnable, std::span<Task*> slots,
              const simcpu::CpuSpec& spec) override;
};

/// Spreads tasks one per core before using SMT siblings — maximizes
/// per-task throughput, keeps every core awake.
class SpreadScheduler final : public Scheduler {
 public:
  const char* name() const noexcept override { return "spread"; }
  void assign(std::span<Task* const> runnable, std::span<Task*> slots,
              const simcpu::CpuSpec& spec) override;
};

}  // namespace powerapi::os
