// The miniature operating system: owns the machine, the clock, the scheduler
// and the process table; advances everything in fixed ticks and maintains
// the /proc-like accounting that sensors read.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "os/monitorable_host.h"
#include "os/scheduler.h"
#include "os/task.h"
#include "periph/disk.h"
#include "periph/nic.h"
#include "simcpu/machine.h"
#include "util/clock.h"

namespace powerapi::os {

/// Simple DVFS governor in the style of Linux "ondemand".
class OndemandGovernor {
 public:
  struct Options {
    double up_threshold = 0.80;
    double down_threshold = 0.30;
    int hysteresis_ticks = 4;  ///< Consecutive ticks before stepping down.
  };
  OndemandGovernor() : OndemandGovernor(Options{}) {}
  explicit OndemandGovernor(Options options) : options_(options) {}

  /// Returns the frequency to apply given current utilization.
  double decide(double utilization, const simcpu::CpuSpec& spec, double current_hz);

 private:
  Options options_;
  int calm_ticks_ = 0;
};

class System final : public MonitorableHost {
 public:
  struct Options {
    util::DurationNs tick_ns = util::ms_to_ns(1);
    std::unique_ptr<Scheduler> scheduler;  ///< Defaults to RoundRobin.
    bool use_ondemand_governor = false;
    /// Attach the disk/NIC models: task IO demand (ExecProfile io fields)
    /// then burns peripheral power on top of the machine's. Off by default —
    /// the CPU experiments treat non-CPU power as the constant platform
    /// term, as the paper's testbed calibration does.
    bool with_peripherals = false;
    periph::DiskParams disk;
    periph::NicParams nic;
  };

  explicit System(simcpu::CpuSpec spec) : System(std::move(spec), Options{}) {}
  System(simcpu::CpuSpec spec, Options options,
         simcpu::GroundTruthParams ground_truth = {});

  // --- Process management ---
  Pid spawn(std::string name, std::vector<std::unique_ptr<TaskBehavior>> threads);
  Pid spawn(std::string name, std::unique_ptr<TaskBehavior> single_thread);
  /// Assigns the process to a cgroup/VM-style aggregation group; no-op for
  /// unknown pids. An empty string removes the process from its group.
  void set_group(Pid pid, std::string group);
  void kill(Pid pid);
  bool alive(Pid pid) const;
  std::vector<Pid> pids() const override;

  // --- Time ---
  /// Advances one tick: schedule → execute → account.
  void tick();
  /// Advances until `duration` has elapsed, invoking `on_tick` (if set)
  /// after each tick.
  void run_for(util::DurationNs duration,
               const std::function<void(const System&)>& on_tick = {});
  /// MonitorableHost time control: one kernel run, no per-tick callback.
  void advance(util::DurationNs duration) override { run_for(duration); }
  util::TimestampNs now_ns() const override { return clock_.now(); }
  util::DurationNs tick_ns() const noexcept { return tick_ns_; }
  const util::SimClock& clock() const noexcept { return clock_; }

  // --- Introspection (the sensors' substrate) ---
  std::optional<ProcStat> proc_stat(Pid pid) const override;
  SystemStat system_stat() const override;
  /// Whole-system energy (machine + peripherals) — what a wall meter
  /// integrates. Equals machine energy when peripherals are disabled.
  double total_energy_joules() const noexcept override;
  double package_energy_joules() const noexcept override {
    return machine_.package_energy_joules();
  }
  const simcpu::CounterBlock& machine_counters() const noexcept override {
    return machine_.machine_counters();
  }
  std::size_t hw_threads() const noexcept override {
    return machine_.spec().hw_threads();
  }

  const IoTotals& io_totals() const noexcept override { return io_totals_; }
  /// SoA fast path: sums task counters straight into the lanes, skipping
  /// the name/group string copies a full ProcStat materializes.
  void gather_counter_lanes(std::span<const Pid> targets,
                            simcpu::CounterLanes& out) const override;
  const periph::DiskModel* disk() const noexcept override {
    return disk_ ? &*disk_ : nullptr;
  }
  const periph::NicModel* nic() const noexcept override {
    return nic_ ? &*nic_ : nullptr;
  }
  const simcpu::Machine& machine() const noexcept { return machine_; }
  simcpu::Machine& machine() noexcept { return machine_; }
  Scheduler& scheduler() noexcept { return *scheduler_; }

  /// Pins the package frequency (disables the governor for the call's
  /// duration — used by the model-training sampling phase).
  double pin_frequency(double hz);
  /// Pins ONE cluster's frequency on a heterogeneous part (disables the
  /// ondemand governor, which only knows the package ladder).
  double pin_cluster_frequency(std::size_t cluster, double hz);
  void set_governor_enabled(bool enabled) noexcept { governor_enabled_ = enabled; }

  // --- Core parking (governor actuation) ---
  /// Parks the `count` highest-indexed cores (absolute, not incremental);
  /// clamped so at least one core stays unparked. The scheduler stops
  /// placing tasks on parked cores' hardware threads and the machine
  /// power-gates them. Returns the applied parked count.
  std::size_t set_parked_cores(std::size_t count);
  std::size_t parked_cores() const noexcept { return parked_cores_; }

 private:
  const std::vector<Task*>& runnable_tasks();

  simcpu::Machine machine_;
  util::SimClock clock_;
  util::DurationNs tick_ns_;
  std::unique_ptr<Scheduler> scheduler_;
  bool governor_enabled_ = false;
  OndemandGovernor governor_;
  std::map<Pid, std::unique_ptr<Process>> processes_;
  Pid next_pid_ = 1;
  std::size_t parked_cores_ = 0;
  double last_utilization_ = 0.0;
  std::optional<periph::DiskModel> disk_;
  std::optional<periph::NicModel> nic_;
  IoTotals io_totals_;
  // Per-tick scratch (reused across ticks so the kernel loop is
  // allocation-free in steady state).
  std::vector<Task*> runnable_scratch_;
  std::vector<Task*> slots_scratch_;
  std::vector<simcpu::ThreadWork> work_scratch_;
};

}  // namespace powerapi::os
