// MonitorableHost: the narrow host interface the monitoring pipeline needs.
//
// Sensors, counter backends and the pipeline assembly depend on this
// interface rather than on the concrete simulated System, so the same
// pipeline graph can be built over the simulator, a live /proc+perf host,
// or a remote host proxy — and a FleetMonitor can drive many hosts of mixed
// provenance through one actor system. Everything here is an observation
// except advance(), which host drivers use to move simulated time (a live
// host advances itself; its implementation is a no-op).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "simcpu/counter_lanes.h"
#include "simcpu/counters.h"
#include "util/units.h"

namespace powerapi::periph {
class DiskModel;
class NicModel;
}  // namespace powerapi::periph

namespace powerapi::os {

using Pid = std::int64_t;

/// Snapshot of one process's accounting, in the spirit of /proc/<pid>/stat.
struct ProcStat {
  Pid pid = 0;
  std::string name;
  std::string group;  ///< cgroup/VM label; empty when ungrouped.
  bool alive = false;
  std::size_t threads = 0;
  simcpu::CounterBlock counters;     ///< Cumulative over all its tasks.
  util::DurationNs cpu_time_ns = 0;  ///< Summed over tasks.
  /// Ground-truth activity energy (joules) the simulator attributed to this
  /// process — evaluation-only, see Task::attributed_energy_joules.
  double attributed_energy_joules = 0.0;
  double last_utilization = 0.0;     ///< CPU share over the last tick, in
                                     ///< units of hardware threads (0..N).
};

/// Machine-wide view over the last tick.
struct SystemStat {
  double utilization = 0.0;  ///< Busy hw threads / total hw threads, 0..1.
  double power_watts = 0.0;  ///< Ground truth incl. peripherals (meters only).
  double frequency_hz = 0.0;
  util::TimestampNs now_ns = 0;
  double disk_watts = 0.0;   ///< 0 when peripherals are disabled.
  double nic_watts = 0.0;
};

/// Cumulative IO issued since boot (iostat/ifconfig-style counters; zero
/// when peripherals are disabled). Sensors difference these into rates.
struct IoTotals {
  double disk_ops = 0.0;
  double disk_bytes = 0.0;
  double net_bytes = 0.0;
};

class MonitorableHost {
 public:
  virtual ~MonitorableHost() = default;

  // --- Process table ---
  virtual std::vector<Pid> pids() const = 0;
  virtual std::optional<ProcStat> proc_stat(Pid pid) const = 0;

  // --- Machine scope ---
  virtual SystemStat system_stat() const = 0;
  virtual util::TimestampNs now_ns() const = 0;
  /// Cumulative machine-wide hardware counters (the HPC sensor's substrate).
  virtual const simcpu::CounterBlock& machine_counters() const = 0;
  virtual std::size_t hw_threads() const = 0;

  // --- Energy meters ---
  /// Whole-system energy (machine + peripherals) — what a wall meter
  /// integrates.
  virtual double total_energy_joules() const = 0;
  /// Package-domain energy — what RAPL's MSR_PKG_ENERGY_STATUS integrates.
  virtual double package_energy_joules() const = 0;

  // --- Peripherals (null / zero when the host has none) ---
  virtual const IoTotals& io_totals() const = 0;
  virtual const periph::DiskModel* disk() const = 0;
  virtual const periph::NicModel* nic() const = 0;

  // --- Time control (host drivers only) ---
  /// Advances the host by `duration`. Simulated hosts run their kernel;
  /// a wall-clock host would sleep or no-op.
  virtual void advance(util::DurationNs duration) = 0;

  // --- Batch counter gather (SoA hot path) ---
  /// Fills one CounterLanes row per requested target: row i carries the
  /// cumulative counters for `targets[i]`, where a negative pid means
  /// machine scope. Side lanes: cpu_time (process rows; 0 for machine) and
  /// live (0 when the target no longer exists — its lanes are left zeroed
  /// and the caller must drop its sampling window). The base implementation
  /// routes through proc_stat()/machine_counters(); hosts with a cheaper
  /// internal path (the simulator's process table) override it.
  virtual void gather_counter_lanes(std::span<const Pid> targets,
                                    simcpu::CounterLanes& out) const;
};

}  // namespace powerapi::os
