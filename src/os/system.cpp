#include "os/system.h"

#include <algorithm>
#include <stdexcept>

#include "util/logging.h"

namespace powerapi::os {

double OndemandGovernor::decide(double utilization, const simcpu::CpuSpec& spec,
                                double current_hz) {
  const auto& ladder = spec.frequencies_hz;
  const std::size_t idx = spec.frequency_index(spec.closest_frequency_hz(current_hz));
  if (utilization > options_.up_threshold) {
    calm_ticks_ = 0;
    // Ondemand jumps straight to max on pressure.
    return ladder.back();
  }
  if (utilization < options_.down_threshold) {
    if (++calm_ticks_ >= options_.hysteresis_ticks) {
      calm_ticks_ = 0;
      if (idx > 0) return ladder[idx - 1];
    }
    return current_hz;
  }
  calm_ticks_ = 0;
  return current_hz;
}

System::System(simcpu::CpuSpec spec, Options options, simcpu::GroundTruthParams ground_truth)
    : machine_(std::move(spec), ground_truth),
      tick_ns_(options.tick_ns),
      scheduler_(options.scheduler ? std::move(options.scheduler)
                                   : std::make_unique<RoundRobinScheduler>()),
      governor_enabled_(options.use_ondemand_governor) {
  if (tick_ns_ <= 0) throw std::invalid_argument("System: non-positive tick");
  if (options.with_peripherals) {
    disk_.emplace(options.disk);
    nic_.emplace(options.nic);
  }
}

Pid System::spawn(std::string name, std::vector<std::unique_ptr<TaskBehavior>> threads) {
  if (threads.empty()) throw std::invalid_argument("System::spawn: process needs >= 1 thread");
  const Pid pid = next_pid_++;
  auto process = std::make_unique<Process>(pid, std::move(name));
  for (auto& behavior : threads) {
    process->add_task(std::move(behavior));
  }
  POWERAPI_LOG_DEBUG("os") << "spawn pid=" << pid << " name=" << process->name()
                           << " threads=" << process->tasks().size();
  processes_.emplace(pid, std::move(process));
  return pid;
}

Pid System::spawn(std::string name, std::unique_ptr<TaskBehavior> single_thread) {
  std::vector<std::unique_ptr<TaskBehavior>> v;
  v.push_back(std::move(single_thread));
  return spawn(std::move(name), std::move(v));
}

void System::set_group(Pid pid, std::string group) {
  const auto it = processes_.find(pid);
  if (it == processes_.end()) return;
  it->second->set_group(std::move(group));
}

void System::kill(Pid pid) {
  const auto it = processes_.find(pid);
  if (it == processes_.end()) return;
  for (auto& task : it->second->tasks()) task->force_exit();
}

bool System::alive(Pid pid) const {
  const auto it = processes_.find(pid);
  return it != processes_.end() && it->second->alive();
}

std::vector<Pid> System::pids() const {
  std::vector<Pid> out;
  out.reserve(processes_.size());
  for (const auto& [pid, process] : processes_) {
    if (process->alive()) out.push_back(pid);
  }
  return out;
}

const std::vector<Task*>& System::runnable_tasks() {
  runnable_scratch_.clear();
  for (auto& [pid, process] : processes_) {
    for (auto& task : process->tasks()) {
      if (task->state() == RunState::kRunnable) runnable_scratch_.push_back(task.get());
    }
  }
  return runnable_scratch_;
}

void System::tick() {
  const std::size_t slots_n = machine_.spec().hw_threads();
  const auto& runnable = runnable_tasks();
  slots_scratch_.assign(slots_n, nullptr);
  std::vector<Task*>& slots = slots_scratch_;
  // Parked cores are invisible to the scheduler: it only sees the prefix of
  // hardware-thread slots belonging to unparked cores (parking always takes
  // the highest-indexed cores), so tasks pack onto what remains.
  const std::size_t active_n =
      slots_n - parked_cores_ * machine_.spec().threads_per_core;
  scheduler_->assign(runnable, std::span<Task*>(slots.data(), active_n),
                     machine_.spec());

  // Pull each placed task's demand; tasks may exit at this point.
  work_scratch_.assign(slots_n, simcpu::ThreadWork{});
  std::vector<simcpu::ThreadWork>& work = work_scratch_;
  const util::TimestampNs now = clock_.now();
  for (std::size_t i = 0; i < slots_n; ++i) {
    Task* task = slots[i];
    if (task == nullptr) continue;
    const auto profile = task->demand(now, tick_ns_);
    if (!profile) {
      slots[i] = nullptr;
      continue;
    }
    work[i].active = true;
    work[i].task_id = task->pid() * 1'000'000 + task->tid();
    work[i].profile = *profile;
  }

  const auto& result = machine_.tick(work, tick_ns_);

  // Peripheral power: aggregate the scheduled tasks' IO demand, scaled by
  // each task's duty cycle within the tick.
  if (disk_) {
    periph::DiskDemand disk_demand;
    periph::NicDemand nic_demand;
    for (std::size_t i = 0; i < slots_n; ++i) {
      if (!work[i].active) continue;
      const auto& p = work[i].profile;
      const double duty = p.active_fraction;
      disk_demand.iops += p.disk_iops * duty;
      disk_demand.bytes_per_sec += p.disk_bytes_per_sec * duty;
      nic_demand.tx_bytes_per_sec += p.net_tx_bytes_per_sec * duty;
      nic_demand.rx_bytes_per_sec += p.net_rx_bytes_per_sec * duty;
    }
    disk_->tick(disk_demand, tick_ns_);
    nic_->tick(nic_demand, tick_ns_);
    const double dt_s = util::ns_to_seconds(tick_ns_);
    io_totals_.disk_ops += disk_demand.iops * dt_s;
    io_totals_.disk_bytes += disk_demand.bytes_per_sec * dt_s;
    io_totals_.net_bytes +=
        (nic_demand.tx_bytes_per_sec + nic_demand.rx_bytes_per_sec) * dt_s;
  }

  // Accounting.
  double busy = 0.0;
  for (std::size_t i = 0; i < slots_n; ++i) {
    Task* task = slots[i];
    if (task == nullptr) continue;
    const auto& tr = result.threads[i];
    task->counters += tr.delta;
    task->attributed_energy_joules += tr.attributed_joules;
    task->cpu_time_ns += static_cast<util::DurationNs>(
        static_cast<double>(tick_ns_) * tr.utilization);
    task->last_utilization = tr.utilization;
    task->last_hw_thread = static_cast<int>(i);
    busy += tr.utilization;
  }
  // Tasks not scheduled this tick contributed zero.
  for (Task* task : runnable) {
    if (std::find(slots.begin(), slots.end(), task) == slots.end()) {
      task->last_utilization = 0.0;
      task->last_hw_thread = -1;
    }
  }
  last_utilization_ = busy / static_cast<double>(slots_n);

  if (governor_enabled_) {
    const double target = governor_.decide(last_utilization_, machine_.spec(),
                                           machine_.frequency());
    machine_.set_frequency(target);
  }
  clock_.advance(tick_ns_);
}

void System::run_for(util::DurationNs duration,
                     const std::function<void(const System&)>& on_tick) {
  const util::TimestampNs deadline = clock_.now() + duration;
  while (clock_.now() < deadline) {
    tick();
    if (on_tick) on_tick(*this);
  }
}

std::optional<ProcStat> System::proc_stat(Pid pid) const {
  const auto it = processes_.find(pid);
  if (it == processes_.end()) return std::nullopt;
  const Process& p = *it->second;
  ProcStat stat;
  stat.pid = pid;
  stat.name = p.name();
  stat.group = p.group();
  stat.alive = p.alive();
  stat.threads = p.tasks().size();
  for (const auto& task : p.tasks()) {
    stat.counters += task->counters;
    stat.cpu_time_ns += task->cpu_time_ns;
    stat.last_utilization += task->last_utilization;
    stat.attributed_energy_joules += task->attributed_energy_joules;
  }
  return stat;
}

void System::gather_counter_lanes(std::span<const Pid> targets,
                                  simcpu::CounterLanes& out) const {
  out.resize(targets.size());
  for (std::size_t row = 0; row < targets.size(); ++row) {
    if (targets[row] < 0) {
      out.store_block(row, machine_.machine_counters());
      out.cpu_time()[row] = 0;
      out.live()[row] = 1;
      continue;
    }
    const auto it = processes_.find(targets[row]);
    if (it == processes_.end()) {
      out.store_block(row, simcpu::CounterBlock{});
      out.cpu_time()[row] = 0;
      out.live()[row] = 0;
      continue;
    }
    // Same accounting as proc_stat(), minus the string materialization.
    simcpu::CounterBlock sum;
    util::DurationNs cpu_time = 0;
    for (const auto& task : it->second->tasks()) {
      sum += task->counters;
      cpu_time += task->cpu_time_ns;
    }
    out.store_block(row, sum);
    out.cpu_time()[row] = cpu_time;
    out.live()[row] = 1;
  }
}

SystemStat System::system_stat() const {
  SystemStat s;
  s.utilization = last_utilization_;
  s.power_watts = machine_.last_power_watts();
  // Report the frequency the machine actually ran at (turbo-aware), which
  // is what /proc/cpuinfo-style sampling would observe.
  s.frequency_hz = machine_.last_effective_frequency_hz();
  s.now_ns = clock_.now();
  if (disk_) {
    s.disk_watts = disk_->last_power_watts();
    s.nic_watts = nic_->last_power_watts();
    s.power_watts += s.disk_watts + s.nic_watts;
  }
  return s;
}

double System::total_energy_joules() const noexcept {
  double joules = machine_.total_energy_joules();
  if (disk_) joules += disk_->total_energy_joules() + nic_->total_energy_joules();
  return joules;
}

double System::pin_frequency(double hz) {
  governor_enabled_ = false;
  return machine_.set_frequency(hz);
}

double System::pin_cluster_frequency(std::size_t cluster, double hz) {
  governor_enabled_ = false;
  return machine_.set_cluster_frequency(cluster, hz);
}

std::size_t System::set_parked_cores(std::size_t count) {
  const std::size_t cores = machine_.spec().cores;
  count = std::min(count, cores - 1);  // At least one core stays awake.
  for (std::size_t core = 0; core < cores; ++core) {
    machine_.set_core_parked(core, core >= cores - count);
  }
  parked_cores_ = count;
  return parked_cores_;
}

}  // namespace powerapi::os
