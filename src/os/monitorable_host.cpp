#include "os/monitorable_host.h"

namespace powerapi::os {

void MonitorableHost::gather_counter_lanes(std::span<const Pid> targets,
                                           simcpu::CounterLanes& out) const {
  out.resize(targets.size());
  for (std::size_t row = 0; row < targets.size(); ++row) {
    if (targets[row] < 0) {
      out.store_block(row, machine_counters());
      out.cpu_time()[row] = 0;
      out.live()[row] = 1;
      continue;
    }
    const auto stat = proc_stat(targets[row]);
    if (!stat) {
      out.store_block(row, simcpu::CounterBlock{});
      out.cpu_time()[row] = 0;
      out.live()[row] = 0;
      continue;
    }
    out.store_block(row, stat->counters);
    out.cpu_time()[row] = stat->cpu_time_ns;
    out.live()[row] = 1;
  }
}

}  // namespace powerapi::os
