#include "os/scheduler.h"

#include <algorithm>

namespace powerapi::os {

namespace {
/// Places `runnable[offset..]` (wrapping) into the slot order given by
/// `slot_order`, one task per slot, until either runs out.
void place(std::span<Task* const> runnable, std::span<Task*> slots,
           std::span<const std::size_t> slot_order, std::size_t offset) {
  std::fill(slots.begin(), slots.end(), nullptr);
  const std::size_t n = runnable.size();
  if (n == 0) return;
  std::size_t r = offset % n;
  std::size_t placed = 0;
  for (std::size_t slot : slot_order) {
    if (placed >= n) break;
    // `slots` may be a prefix of the hardware threads when trailing cores
    // are parked; slot orders still span the full topology, so skip any
    // slot past the active range instead of indexing out of bounds.
    if (slot >= slots.size()) continue;
    slots[slot] = runnable[r];
    r = (r + 1) % n;
    ++placed;
  }
}

/// Slot order that packs SMT siblings together: 0,1 (core 0), 2,3 (core 1)…
std::vector<std::size_t> packed_order(const simcpu::CpuSpec& spec) {
  std::vector<std::size_t> order(spec.hw_threads());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  return order;
}

/// Slot order that visits thread 0 of every core before any sibling:
/// 0,2 then 1,3 on a 2-core/SMT-2 part.
std::vector<std::size_t> spread_order(const simcpu::CpuSpec& spec) {
  std::vector<std::size_t> order;
  order.reserve(spec.hw_threads());
  for (std::size_t sibling = 0; sibling < spec.threads_per_core; ++sibling) {
    for (std::size_t core = 0; core < spec.cores; ++core) {
      order.push_back(core * spec.threads_per_core + sibling);
    }
  }
  return order;
}
}  // namespace

void RoundRobinScheduler::assign(std::span<Task* const> runnable, std::span<Task*> slots,
                                 const simcpu::CpuSpec& spec) {
  place(runnable, slots, packed_order(spec), next_offset_);
  if (!runnable.empty()) {
    // Advance by the number of slots so waiting tasks move to the front.
    next_offset_ = (next_offset_ + slots.size()) % runnable.size();
  }
}

void PackScheduler::assign(std::span<Task* const> runnable, std::span<Task*> slots,
                           const simcpu::CpuSpec& spec) {
  place(runnable, slots, packed_order(spec), 0);
}

void SpreadScheduler::assign(std::span<Task* const> runnable, std::span<Task*> slots,
                             const simcpu::CpuSpec& spec) {
  place(runnable, slots, spread_order(spec), 0);
}

}  // namespace powerapi::os
