// Tasks and processes of the miniature OS.
//
// A Process owns one or more Tasks (threads). Each Task delegates its
// per-tick CPU demand to a TaskBehavior — the bridge to the workload
// library — and carries the accounting the kernel (System) maintains:
// cumulative counters, CPU time, last-tick utilization.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "simcpu/counters.h"
#include "simcpu/exec_profile.h"
#include "util/units.h"

namespace powerapi::os {

using Pid = std::int64_t;

/// Supplies a task's execution demand tick by tick. Implementations live in
/// the workload library; the OS only calls `next`.
class TaskBehavior {
 public:
  virtual ~TaskBehavior() = default;

  /// Demand for the window [now, now+dt), or nullopt when the task has run
  /// to completion (the kernel then reaps it).
  virtual std::optional<simcpu::ExecProfile> next(util::TimestampNs now,
                                                  util::DurationNs dt) = 0;
};

enum class RunState { kRunnable, kExited };

/// One schedulable thread. Owned by its Process; never copied.
class Task {
 public:
  Task(Pid pid, int tid, std::unique_ptr<TaskBehavior> behavior)
      : pid_(pid), tid_(tid), behavior_(std::move(behavior)) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  Pid pid() const noexcept { return pid_; }
  int tid() const noexcept { return tid_; }
  RunState state() const noexcept { return state_; }

  /// Kernel-side: fetch this tick's demand; flips to kExited when done.
  std::optional<simcpu::ExecProfile> demand(util::TimestampNs now, util::DurationNs dt) {
    if (state_ == RunState::kExited) return std::nullopt;
    auto p = behavior_->next(now, dt);
    if (!p) state_ = RunState::kExited;
    return p;
  }

  void force_exit() noexcept { state_ = RunState::kExited; }

  // --- Accounting, written by the kernel after each tick ---
  simcpu::CounterBlock counters;          ///< Cumulative HPC counts.
  util::DurationNs cpu_time_ns = 0;       ///< Time on a hardware thread.
  /// Ground-truth activity energy attributed by the simulator. Only meters
  /// and evaluation harnesses may read it — estimators must not.
  double attributed_energy_joules = 0.0;
  double last_utilization = 0.0;          ///< Busy fraction of the last tick run.
  int last_hw_thread = -1;                ///< Placement of the last tick (-1 = not run).

 private:
  Pid pid_;
  int tid_;
  std::unique_ptr<TaskBehavior> behavior_;
  RunState state_ = RunState::kRunnable;
};

/// A process: a pid, a name, its threads, and an optional group label.
/// Groups model cgroup/VM-style aggregation scopes: the paper's conclusion
/// singles out virtual machines as the next optimization target, and a VM is
/// (for power attribution) a named group of processes.
class Process {
 public:
  Process(Pid pid, std::string name) : pid_(pid), name_(std::move(name)) {}

  Pid pid() const noexcept { return pid_; }
  const std::string& name() const noexcept { return name_; }
  const std::string& group() const noexcept { return group_; }
  void set_group(std::string group) { group_ = std::move(group); }

  Task& add_task(std::unique_ptr<TaskBehavior> behavior) {
    tasks_.push_back(
        std::make_unique<Task>(pid_, static_cast<int>(tasks_.size()), std::move(behavior)));
    return *tasks_.back();
  }

  const std::vector<std::unique_ptr<Task>>& tasks() const noexcept { return tasks_; }
  std::vector<std::unique_ptr<Task>>& tasks() noexcept { return tasks_; }

  bool alive() const noexcept {
    for (const auto& t : tasks_) {
      if (t->state() != RunState::kExited) return true;
    }
    return false;
  }

 private:
  Pid pid_;
  std::string name_;
  std::string group_;
  std::vector<std::unique_ptr<Task>> tasks_;
};

}  // namespace powerapi::os
