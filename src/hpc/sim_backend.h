// Counter backend over a monitorable host: per-process reads come from the
// host's task accounting, machine-wide reads from the machine counters.
// Depends only on the MonitorableHost interface, so the same backend serves
// the simulated System and any other host implementation.
#pragma once

#include "hpc/backend.h"
#include "os/monitorable_host.h"

namespace powerapi::hpc {

class SimBackend final : public CounterBackend {
 public:
  /// The backend observes but never mutates the host; the reference must
  /// outlive the backend.
  explicit SimBackend(const os::MonitorableHost& host) : host_(&host) {}

  std::string name() const override { return "sim"; }
  bool supports(EventId) const override { return true; }
  util::Result<EventValues> read(Target target) override;
  /// Delegates to the host's batch gather, which fills the SMT and cpu_time
  /// side lanes too — so this returns true (extended lanes valid).
  bool read_rows(std::span<const std::int64_t> pids, simcpu::CounterLanes& out) override;

 private:
  const os::MonitorableHost* host_;
};

}  // namespace powerapi::hpc
