// Counter backend over the simulated OS: per-process reads come from the
// kernel's task accounting, machine-wide reads from the machine counters.
#pragma once

#include "hpc/backend.h"
#include "os/system.h"

namespace powerapi::hpc {

class SimBackend final : public CounterBackend {
 public:
  /// The backend observes but never mutates the system; the reference must
  /// outlive the backend.
  explicit SimBackend(const os::System& system) : system_(&system) {}

  std::string name() const override { return "sim"; }
  bool supports(EventId) const override { return true; }
  util::Result<EventValues> read(Target target) override;

 private:
  const os::System* system_;
};

}  // namespace powerapi::hpc
