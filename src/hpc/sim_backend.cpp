#include "hpc/sim_backend.h"

#include <string>

namespace powerapi::hpc {

util::Result<EventValues> SimBackend::read(Target target) {
  if (target.is_machine()) {
    return EventValues::from_block(host_->machine_counters());
  }
  const auto stat = host_->proc_stat(target.pid);
  if (!stat) {
    return util::Result<EventValues>::failure("sim backend: unknown pid " +
                                              std::to_string(target.pid));
  }
  return EventValues::from_block(stat->counters);
}

bool SimBackend::read_rows(std::span<const std::int64_t> pids, simcpu::CounterLanes& out) {
  host_->gather_counter_lanes(pids, out);
  return true;
}

}  // namespace powerapi::hpc
