// Generic hardware performance events — the vocabulary of the whole library.
//
// These are the portable "generic" events of the perf_event_open man page
// (the paper's reference [8]): available across Intel/AMD, which is exactly
// why the paper restricts itself to them. Both the simulator backend and the
// real perf backend speak this enum.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "simcpu/counters.h"

namespace powerapi::hpc {

enum class EventId {
  kCycles,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranchInstructions,
  kBranchMisses,
  kBusCycles,
  kStalledCyclesFrontend,
  kStalledCyclesBackend,
  kRefCycles,
};

inline constexpr std::size_t kEventCount = 10;

/// All generic events, in enum order.
std::span<const EventId> all_events() noexcept;

/// The three events the paper's study found most correlated with power on
/// multi-core systems: instructions, cache-references, cache-misses.
std::span<const EventId> paper_events() noexcept;

/// perf-style event name ("cache-references", ...).
std::string_view to_string(EventId id) noexcept;

/// Reverse lookup from a perf-style name.
std::optional<EventId> event_from_string(std::string_view name) noexcept;

/// Extracts one event's value from a counter block.
std::uint64_t get_event(const simcpu::CounterBlock& block, EventId id) noexcept;

/// A fixed-size per-event value array, cheaper than a map on hot paths.
class EventValues {
 public:
  std::uint64_t& operator[](EventId id) noexcept {
    return values_[static_cast<std::size_t>(id)];
  }
  std::uint64_t operator[](EventId id) const noexcept {
    return values_[static_cast<std::size_t>(id)];
  }

  /// Populates every event from a counter block.
  static EventValues from_block(const simcpu::CounterBlock& block) noexcept;

  EventValues delta_since(const EventValues& previous) const noexcept;

  bool operator==(const EventValues&) const noexcept = default;

 private:
  std::array<std::uint64_t, kEventCount> values_{};
};

}  // namespace powerapi::hpc
