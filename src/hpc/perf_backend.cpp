#include "hpc/perf_backend.h"

#include <cerrno>
#include <cstring>
#include <vector>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "util/logging.h"

namespace powerapi::hpc {

#ifdef __linux__

namespace {

/// Maps a generic EventId to the PERF_TYPE_HARDWARE config, or -1 when the
/// event has no generic hardware mapping.
long long perf_config(EventId id) noexcept {
  switch (id) {
    case EventId::kCycles:
      return PERF_COUNT_HW_CPU_CYCLES;
    case EventId::kInstructions:
      return PERF_COUNT_HW_INSTRUCTIONS;
    case EventId::kCacheReferences:
      return PERF_COUNT_HW_CACHE_REFERENCES;
    case EventId::kCacheMisses:
      return PERF_COUNT_HW_CACHE_MISSES;
    case EventId::kBranchInstructions:
      return PERF_COUNT_HW_BRANCH_INSTRUCTIONS;
    case EventId::kBranchMisses:
      return PERF_COUNT_HW_BRANCH_MISSES;
    case EventId::kBusCycles:
      return PERF_COUNT_HW_BUS_CYCLES;
    case EventId::kStalledCyclesFrontend:
      return PERF_COUNT_HW_STALLED_CYCLES_FRONTEND;
    case EventId::kStalledCyclesBackend:
      return PERF_COUNT_HW_STALLED_CYCLES_BACKEND;
    case EventId::kRefCycles:
      return PERF_COUNT_HW_REF_CPU_CYCLES;
  }
  return -1;
}

int perf_event_open_fd(pid_t pid, long long config) noexcept {
  perf_event_attr attr{};
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = static_cast<unsigned long long>(config);
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 1;  // Follow threads of the target, like the paper's tool.
  attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, pid, /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0));
}

}  // namespace

struct PerfBackend::OpenCounter {
  int fd = -1;
  EventId id = EventId::kCycles;

  ~OpenCounter() {
    if (fd >= 0) ::close(fd);
  }
};

struct PerfBackend::TargetCounters {
  std::vector<std::unique_ptr<OpenCounter>> counters;
};

PerfBackend::PerfBackend() = default;
PerfBackend::~PerfBackend() = default;

bool PerfBackend::supports(EventId id) const { return perf_config(id) >= 0; }

bool PerfBackend::available() noexcept {
  const int fd = perf_event_open_fd(0, PERF_COUNT_HW_CPU_CYCLES);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

util::Result<PerfBackend::TargetCounters*> PerfBackend::counters_for(Target target) {
  if (target.is_machine()) {
    return util::Result<TargetCounters*>::failure(
        "perf backend: machine-wide counting requires per-CPU attach; "
        "monitor a pid instead");
  }
  auto it = targets_.find(target.pid);
  if (it != targets_.end()) return it->second.get();

  auto tc = std::make_unique<TargetCounters>();
  for (EventId id : all_events()) {
    const long long config = perf_config(id);
    if (config < 0) continue;
    auto counter = std::make_unique<OpenCounter>();
    counter->id = id;
    counter->fd = perf_event_open_fd(static_cast<pid_t>(target.pid), config);
    if (counter->fd < 0) {
      const int err = errno;
      // Missing PMU events (e.g. stalled-cycles on some parts) are fine;
      // a blanket EPERM/EACCES means perf is unusable for this target.
      if (err == EPERM || err == EACCES || err == ENOSYS) {
        return util::Result<TargetCounters*>::failure(
            std::string("perf_event_open denied: ") + std::strerror(err) +
            " (check /proc/sys/kernel/perf_event_paranoid)");
      }
      POWERAPI_LOG_DEBUG("perf") << "event " << to_string(id)
                                 << " unavailable: " << std::strerror(err);
      continue;
    }
    tc->counters.push_back(std::move(counter));
  }
  if (tc->counters.empty()) {
    return util::Result<TargetCounters*>::failure(
        "perf backend: no events could be opened for pid " + std::to_string(target.pid));
  }
  TargetCounters* raw = tc.get();
  targets_.emplace(target.pid, std::move(tc));
  return raw;
}

util::Result<EventValues> PerfBackend::read(Target target) {
  auto counters = counters_for(target);
  if (!counters.ok()) return util::Result<EventValues>::failure(counters.error_message());

  EventValues values;
  for (const auto& c : counters.value()->counters) {
    struct {
      std::uint64_t value;
      std::uint64_t time_enabled;
      std::uint64_t time_running;
    } data{};
    const ssize_t n = ::read(c->fd, &data, sizeof(data));
    if (n != static_cast<ssize_t>(sizeof(data))) {
      return util::Result<EventValues>::failure("perf read failed for " +
                                                std::string(to_string(c->id)));
    }
    std::uint64_t v = data.value;
    if (data.time_running > 0 && data.time_running < data.time_enabled) {
      // Kernel multiplexed this counter: scale to the full window.
      const double scale = static_cast<double>(data.time_enabled) /
                           static_cast<double>(data.time_running);
      v = static_cast<std::uint64_t>(static_cast<double>(v) * scale);
    }
    values[c->id] = v;
  }
  return values;
}

#else  // !__linux__

struct PerfBackend::OpenCounter {};
struct PerfBackend::TargetCounters {};

PerfBackend::PerfBackend() = default;
PerfBackend::~PerfBackend() = default;
bool PerfBackend::supports(EventId) const { return false; }
bool PerfBackend::available() noexcept { return false; }

util::Result<PerfBackend::TargetCounters*> PerfBackend::counters_for(Target) {
  return util::Result<TargetCounters*>::failure("perf backend: not a Linux build");
}

util::Result<EventValues> PerfBackend::read(Target) {
  return util::Result<EventValues>::failure("perf backend: not a Linux build");
}

#endif

}  // namespace powerapi::hpc
