// Real Linux perf_event_open backend.
//
// Used for live monitoring on actual hardware (repro band: "native counter
// access, commodity Linux box"). Counters are opened lazily per (pid,
// event) with TIME_ENABLED/TIME_RUNNING read format so kernel multiplexing
// is scaled out, exactly as libpfm4-based tools do. When the kernel denies
// access (perf_event_paranoid, seccomp, missing PMU in containers) every
// read fails with a descriptive error and callers fall back to the sim
// backend — nothing in the library hard-depends on real counters.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "hpc/backend.h"

namespace powerapi::hpc {

class PerfBackend final : public CounterBackend {
 public:
  PerfBackend();
  ~PerfBackend() override;

  PerfBackend(const PerfBackend&) = delete;
  PerfBackend& operator=(const PerfBackend&) = delete;

  std::string name() const override { return "perf"; }
  bool supports(EventId id) const override;
  util::Result<EventValues> read(Target target) override;

  /// Quick availability probe: can this process count its own cycles?
  static bool available() noexcept;

 private:
  struct OpenCounter;
  struct TargetCounters;

  util::Result<TargetCounters*> counters_for(Target target);

  std::map<std::int64_t, std::unique_ptr<TargetCounters>> targets_;
};

}  // namespace powerapi::hpc
