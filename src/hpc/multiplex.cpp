#include "hpc/multiplex.h"

#include <algorithm>
#include <stdexcept>

namespace powerapi::hpc {

MultiplexingBackend::MultiplexingBackend(std::unique_ptr<CounterBackend> inner,
                                         std::vector<EventId> events,
                                         std::size_t hardware_width)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("MultiplexingBackend: null inner backend");
  if (hardware_width == 0) throw std::invalid_argument("MultiplexingBackend: zero width");
  if (events.empty()) throw std::invalid_argument("MultiplexingBackend: no events");
  for (std::size_t i = 0; i < events.size(); i += hardware_width) {
    const std::size_t end = std::min(i + hardware_width, events.size());
    groups_.emplace_back(events.begin() + static_cast<std::ptrdiff_t>(i),
                         events.begin() + static_cast<std::ptrdiff_t>(end));
  }
}

bool MultiplexingBackend::supports(EventId id) const {
  for (const auto& group : groups_) {
    if (std::find(group.begin(), group.end(), id) != group.end()) {
      return inner_->supports(id);
    }
  }
  return false;
}

MultiplexingBackend::TargetState& MultiplexingBackend::state_for(Target target) {
  for (auto& s : states_) {
    if (s.pid == target.pid) return s;
  }
  states_.push_back(TargetState{target.pid, {}, {}, false});
  return states_.back();
}

util::Result<EventValues> MultiplexingBackend::read(Target target) {
  auto raw = inner_->read(target);
  if (!raw.ok()) return raw;

  TargetState& st = state_for(target);
  if (!st.primed) {
    st.last_raw = raw.value();
    st.scaled_cumulative = raw.value();
    st.primed = true;
    // First observation: report the raw values as the baseline.
    active_group_ = (active_group_ + 1) % groups_.size();
    return st.scaled_cumulative;
  }

  const EventValues delta = raw.value().delta_since(st.last_raw);
  st.last_raw = raw.value();

  // Only the active group was "really counted" this interval; its deltas
  // are scaled by the number of groups to estimate the full-window counts.
  const auto scale = static_cast<std::uint64_t>(groups_.size());
  for (EventId id : groups_[active_group_]) {
    st.scaled_cumulative[id] += delta[id] * scale;
  }
  active_group_ = (active_group_ + 1) % groups_.size();
  return st.scaled_cumulative;
}

}  // namespace powerapi::hpc
