// Counter-backend interface: the seam between PowerAPI's sensors and
// whatever provides hardware counters — the simulator (deterministic
// experiments) or perf_event_open (live monitoring on a real Linux box).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "hpc/events.h"
#include "simcpu/counter_lanes.h"
#include "util/result.h"

namespace powerapi::hpc {

/// Target of a counter read: a process (pid > 0) or the whole machine.
struct Target {
  static constexpr std::int64_t kMachine = -1;
  std::int64_t pid = kMachine;

  static Target machine() noexcept { return Target{kMachine}; }
  static Target process(std::int64_t pid) noexcept { return Target{pid}; }
  bool is_machine() const noexcept { return pid == kMachine; }
};

class CounterBackend {
 public:
  virtual ~CounterBackend() = default;

  virtual std::string name() const = 0;
  virtual bool supports(EventId id) const = 0;

  /// Cumulative event values for the target since it became observable.
  /// Fails (Result error) when the target is unknown or the read races a
  /// process exit — sensors log and skip the tick.
  virtual util::Result<EventValues> read(Target target) = 0;

  /// Batch read for the SoA hot path: fills one lane row per entry of
  /// `pids` (negative pid = machine scope); a failed read leaves its row
  /// zeroed with live()==0. Returns true when the extended side lanes (SMT
  /// co-residency, cpu_time) were also populated; false when only the ten
  /// event lanes are valid and the caller must source extended state
  /// through the host interface. The base implementation loops read()
  /// (event lanes only).
  virtual bool read_rows(std::span<const std::int64_t> pids, simcpu::CounterLanes& out);
};

}  // namespace powerapi::hpc
