// Counter-backend interface: the seam between PowerAPI's sensors and
// whatever provides hardware counters — the simulator (deterministic
// experiments) or perf_event_open (live monitoring on a real Linux box).
#pragma once

#include <cstdint>
#include <string>

#include "hpc/events.h"
#include "util/result.h"

namespace powerapi::hpc {

/// Target of a counter read: a process (pid > 0) or the whole machine.
struct Target {
  static constexpr std::int64_t kMachine = -1;
  std::int64_t pid = kMachine;

  static Target machine() noexcept { return Target{kMachine}; }
  static Target process(std::int64_t pid) noexcept { return Target{pid}; }
  bool is_machine() const noexcept { return pid == kMachine; }
};

class CounterBackend {
 public:
  virtual ~CounterBackend() = default;

  virtual std::string name() const = 0;
  virtual bool supports(EventId id) const = 0;

  /// Cumulative event values for the target since it became observable.
  /// Fails (Result error) when the target is unknown or the read races a
  /// process exit — sensors log and skip the tick.
  virtual util::Result<EventValues> read(Target target) = 0;
};

}  // namespace powerapi::hpc
