// Counter multiplexing emulation.
//
// Real PMUs expose only a handful of programmable counters (4 per core on
// Sandy Bridge); monitoring more events than that forces time-slicing and
// linear scaling of the observed counts — a real accuracy cost the paper's
// "minimal overhead" criterion weighs when choosing few events. The sim
// backend has no such limit, so this adapter imposes one: it rotates the
// requested event set in hardware-width groups and scales each event's
// delta by the inverse of its duty cycle, reproducing both the mechanism
// and its estimation noise.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "hpc/backend.h"

namespace powerapi::hpc {

class MultiplexingBackend final : public CounterBackend {
 public:
  /// Wraps `inner`, pretending the PMU can count only `hardware_width`
  /// events at a time out of `events`. Each call to read() advances the
  /// rotation by one group (one "multiplexing interval").
  MultiplexingBackend(std::unique_ptr<CounterBackend> inner, std::vector<EventId> events,
                      std::size_t hardware_width);

  std::string name() const override { return inner_->name() + "+mux"; }
  bool supports(EventId id) const override;
  util::Result<EventValues> read(Target target) override;

  std::size_t groups() const noexcept { return groups_.size(); }

 private:
  struct TargetState {
    std::int64_t pid = 0;
    EventValues last_raw;          ///< Inner cumulative values at last read.
    EventValues scaled_cumulative; ///< What we report: scaled estimates.
    bool primed = false;
  };

  TargetState& state_for(Target target);

  std::unique_ptr<CounterBackend> inner_;
  std::vector<std::vector<EventId>> groups_;
  std::size_t active_group_ = 0;
  std::vector<TargetState> states_;
};

}  // namespace powerapi::hpc
