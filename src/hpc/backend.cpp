#include "hpc/backend.h"

namespace powerapi::hpc {

bool CounterBackend::read_rows(std::span<const std::int64_t> pids,
                               simcpu::CounterLanes& out) {
  out.resize(pids.size());
  for (std::size_t row = 0; row < pids.size(); ++row) {
    const Target target = pids[row] < 0 ? Target::machine() : Target::process(pids[row]);
    auto result = read(target);
    if (!result.ok()) {
      for (std::size_t l = 0; l < simcpu::CounterLanes::kLanes; ++l) out.lane(l)[row] = 0;
      out.cpu_time()[row] = 0;
      out.live()[row] = 0;
      continue;
    }
    const EventValues& values = result.value();
    for (std::size_t e = 0; e < kEventCount; ++e) {
      out.lane(e)[row] = values[static_cast<EventId>(e)];
    }
    out.lane(simcpu::CounterLanes::kSmtLane)[row] = 0;
    out.cpu_time()[row] = 0;
    out.live()[row] = 1;
  }
  return false;
}

}  // namespace powerapi::hpc
