#include "hpc/events.h"

namespace powerapi::hpc {

namespace {
constexpr std::array<EventId, kEventCount> kAllEvents = {
    EventId::kCycles,
    EventId::kInstructions,
    EventId::kCacheReferences,
    EventId::kCacheMisses,
    EventId::kBranchInstructions,
    EventId::kBranchMisses,
    EventId::kBusCycles,
    EventId::kStalledCyclesFrontend,
    EventId::kStalledCyclesBackend,
    EventId::kRefCycles,
};

constexpr std::array<EventId, 3> kPaperEvents = {
    EventId::kInstructions,
    EventId::kCacheReferences,
    EventId::kCacheMisses,
};

constexpr std::array<std::string_view, kEventCount> kNames = {
    "cycles",
    "instructions",
    "cache-references",
    "cache-misses",
    "branch-instructions",
    "branch-misses",
    "bus-cycles",
    "stalled-cycles-frontend",
    "stalled-cycles-backend",
    "ref-cycles",
};
}  // namespace

std::span<const EventId> all_events() noexcept { return kAllEvents; }

std::span<const EventId> paper_events() noexcept { return kPaperEvents; }

std::string_view to_string(EventId id) noexcept {
  return kNames[static_cast<std::size_t>(id)];
}

std::optional<EventId> event_from_string(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kEventCount; ++i) {
    if (kNames[i] == name) return static_cast<EventId>(i);
  }
  return std::nullopt;
}

std::uint64_t get_event(const simcpu::CounterBlock& block, EventId id) noexcept {
  switch (id) {
    case EventId::kCycles:
      return block.cycles;
    case EventId::kInstructions:
      return block.instructions;
    case EventId::kCacheReferences:
      return block.cache_references;
    case EventId::kCacheMisses:
      return block.cache_misses;
    case EventId::kBranchInstructions:
      return block.branch_instructions;
    case EventId::kBranchMisses:
      return block.branch_misses;
    case EventId::kBusCycles:
      return block.bus_cycles;
    case EventId::kStalledCyclesFrontend:
      return block.stalled_cycles_frontend;
    case EventId::kStalledCyclesBackend:
      return block.stalled_cycles_backend;
    case EventId::kRefCycles:
      return block.ref_cycles;
  }
  return 0;
}

EventValues EventValues::from_block(const simcpu::CounterBlock& block) noexcept {
  EventValues v;
  for (EventId id : all_events()) v[id] = get_event(block, id);
  return v;
}

EventValues EventValues::delta_since(const EventValues& previous) const noexcept {
  EventValues d;
  for (EventId id : all_events()) {
    const std::uint64_t a = (*this)[id];
    const std::uint64_t b = previous[id];
    d[id] = a >= b ? a - b : 0;
  }
  return d;
}

}  // namespace powerapi::hpc
