#include "model/feature_matrix.h"

#include "mathx/kernels.h"
#include "util/units.h"

namespace powerapi::model {

void extract_features_rows(const simcpu::CounterLanes& cur, const simcpu::CounterLanes& prev,
                           const double* window_seconds, std::size_t hw_threads,
                           FeatureMatrix& out) {
  const std::size_t n = out.rows();

  for (std::size_t e = 0; e < hpc::kEventCount; ++e) {
    mathx::saturating_delta_rate(cur.lane(e), prev.lane(e), window_seconds, out.lane(e), n);
  }
  mathx::saturating_delta_rate(cur.lane(simcpu::CounterLanes::kSmtLane),
                               prev.lane(simcpu::CounterLanes::kSmtLane), window_seconds,
                               out.lane(FeatureMatrix::kSmtLane), n);

  double* window_lane = out.lane(FeatureMatrix::kWindowLane);
  for (std::size_t i = 0; i < n; ++i) window_lane[i] = window_seconds[i];

  // Utilization, process form first: cpu-time share of the window. The
  // cpu_time delta is a plain subtraction — the sensor's regression guard
  // re-primes rows whose accounting went backwards before extraction runs.
  double* util_lane = out.lane(FeatureMatrix::kUtilizationLane);
  const std::int64_t* cur_time = cur.cpu_time();
  const std::int64_t* prev_time = prev.cpu_time();
  for (std::size_t i = 0; i < n; ++i) {
    util_lane[i] = util::ns_to_seconds(cur_time[i] - prev_time[i]) / window_seconds[i];
  }

  // Machine rows (pid < 0) use busy-over-available cycles instead.
  const double denominator = out.frequency_hz * static_cast<double>(hw_threads);
  const double* cycles = out.rate_lane(hpc::EventId::kCycles);
  for (std::size_t i = 0; i < n; ++i) {
    if (out.pid(i) < 0) util_lane[i] = cycles[i] / denominator;
  }
}

}  // namespace powerapi::model
