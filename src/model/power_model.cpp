#include "model/power_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "mathx/kernels.h"
#include "util/units.h"

namespace powerapi::model {

double FrequencyFormula::estimate(const EventRates& rates) const noexcept {
  double watts = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    watts += coefficients[i] * rate_of(rates, events[i]);
  }
  return watts;
}

CpuPowerModel::CpuPowerModel(double idle_watts, std::vector<FrequencyFormula> formulas)
    : idle_watts_(idle_watts), formulas_(std::move(formulas)) {
  if (idle_watts_ < 0.0) throw std::invalid_argument("CpuPowerModel: negative idle power");
  for (const auto& f : formulas_) {
    if (f.events.size() != f.coefficients.size()) {
      throw std::invalid_argument("CpuPowerModel: formula events/coefficients mismatch");
    }
  }
  std::sort(formulas_.begin(), formulas_.end(),
            [](const FrequencyFormula& a, const FrequencyFormula& b) {
              return a.frequency_hz < b.frequency_hz;
            });
}

const FrequencyFormula* CpuPowerModel::formula_for(double hz) const noexcept {
  const FrequencyFormula* best = nullptr;
  double best_gap = 0.0;
  for (const auto& f : formulas_) {
    const double gap = std::abs(f.frequency_hz - hz);
    if (best == nullptr || gap < best_gap) {
      best = &f;
      best_gap = gap;
    }
  }
  return best;
}

double CpuPowerModel::estimate_activity(double hz, const EventRates& rates) const {
  const FrequencyFormula* f = formula_for(hz);
  if (f == nullptr) throw std::logic_error("CpuPowerModel: empty model");
  return f->estimate(rates);
}

void CpuPowerModel::estimate_activity_rows(const FeatureMatrix& features,
                                           std::span<double> watts) const {
  if (watts.size() != features.rows()) {
    throw std::invalid_argument("estimate_activity_rows: output size mismatch");
  }
  const FrequencyFormula* f = formula_for(features.frequency_hz);
  if (f == nullptr) throw std::logic_error("CpuPowerModel: empty model");
  const std::size_t n = features.rows();
  mathx::fill(watts.data(), 0.0, n);
  for (std::size_t i = 0; i < f->events.size(); ++i) {
    mathx::axpy(f->coefficients[i], features.rate_lane(f->events[i]), watts.data(), n);
  }
}

std::size_t CpuPowerModel::memory_footprint_bytes() const noexcept {
  std::size_t bytes = sizeof(CpuPowerModel);
  for (const auto& f : formulas_) {
    bytes += sizeof(FrequencyFormula);
    bytes += f.events.capacity() * sizeof(hpc::EventId);
    bytes += f.coefficients.capacity() * sizeof(double);
  }
  return bytes;
}

std::string CpuPowerModel::describe() const {
  std::ostringstream out;
  out << "Power = " << idle_watts_ << " + sum over f of Power_f, with:\n";
  for (const auto& f : formulas_) {
    out << "  Power_" << util::hz_to_ghz(f.frequency_hz) << "GHz =";
    bool first = true;
    for (std::size_t i = 0; i < f.events.size(); ++i) {
      out << (first ? " " : " + ") << f.coefficients[i] << "*"
          << hpc::to_string(f.events[i]);
      first = false;
    }
    out << "   (R^2 = " << f.r_squared << ")\n";
  }
  return out.str();
}

}  // namespace powerapi::model
