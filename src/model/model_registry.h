// Versioned, hot-swappable power-model storage.
//
// The learn→deploy loop needs two things the old "every formula owns a
// CpuPowerModel copy" design could not give: (1) one immutable model shared
// by every consumer (a fleet's 32 RegressionFormulas reference one snapshot
// instead of 32 copies), and (2) atomic replacement while the pipeline is
// running (the CalibrationActor publishes a refit without stopping a tick).
//
// Snapshots are immutable `shared_ptr<const Snapshot>` swapped atomically;
// readers pin whichever snapshot they loaded for the duration of one
// estimate, so a swap never invalidates an in-flight read. Every snapshot
// carries a monotonically increasing version so estimates can be traced to
// the model that produced them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "model/power_model.h"

namespace powerapi::model {

class ModelRegistry {
 public:
  using Version = std::uint64_t;

  /// One immutable (version, model) pair. Readers hold it by shared_ptr.
  struct Snapshot {
    Version version = 0;
    CpuPowerModel model;
  };

  /// The initial model becomes version 1.
  explicit ModelRegistry(CpuPowerModel initial);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The current snapshot; never null. Lock-free on the reader side up to
  /// the shared_ptr refcount.
  std::shared_ptr<const Snapshot> current() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Latest published version (1 at construction).
  Version version() const noexcept { return current()->version; }

  /// Atomically replaces the model with `next`; returns the new version.
  Version publish(CpuPowerModel next);

 private:
  std::atomic<std::shared_ptr<const Snapshot>> current_;
  std::atomic<Version> next_version_;
};

}  // namespace powerapi::model
