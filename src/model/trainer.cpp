#include "model/trainer.h"

#include <cmath>
#include <stdexcept>

#include "mathx/ols.h"
#include "os/system.h"
#include "powermeter/powerspy.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace powerapi::model {

namespace {

/// Builds a hermetic system with the standard background daemon running.
std::unique_ptr<os::System> make_system(const simcpu::CpuSpec& spec,
                                        const simcpu::GroundTruthParams& gt,
                                        util::Rng& rng) {
  os::System::Options options;
  options.tick_ns = util::ms_to_ns(1);
  auto system = std::make_unique<os::System>(spec, std::move(options), gt);
  system->spawn("kdaemon", workloads::make_background_daemon(rng.fork(7)));
  return system;
}

powermeter::PowerSpy make_meter(const os::System& system, util::Rng rng) {
  return powermeter::PowerSpy(
      [&system] { return system.total_energy_joules(); },
      [&system] { return system.now_ns(); }, std::move(rng));
}

}  // namespace

TrainerOptions paper_trainer_options() {
  TrainerOptions options;
  // The paper's sampling phase runs "CPU and memory intensive workloads"
  // flat out — two workload kinds, no duty-cycle or mix sweep. The narrow
  // grid under-identifies the formula exactly the way the paper's
  // conclusion concedes ("only considering the generic counters is not
  // necessarily the most reliable solution, leading to high errors").
  options.grid.intensities = {1.0};
  options.grid.memory_shares = {0.0, 1.0};
  options.grid.working_sets = {2.0 * 1024 * 1024, 24.0 * 1024 * 1024};
  options.events.assign(hpc::paper_events().begin(), hpc::paper_events().end());
  return options;
}

Trainer::Trainer(simcpu::CpuSpec spec, simcpu::GroundTruthParams ground_truth,
                 TrainerOptions options)
    : spec_(std::move(spec)), ground_truth_(ground_truth), options_(std::move(options)) {
  spec_.validate();
  if (options_.sample_period <= 0 || options_.point_duration <= 0) {
    throw std::invalid_argument("Trainer: non-positive sampling windows");
  }
}

double Trainer::measure_idle() const {
  util::Rng rng(options_.seed ^ 0x1d1eULL);
  auto system = make_system(spec_, ground_truth_, rng);
  system->pin_frequency(spec_.min_frequency_hz());
  auto meter = make_meter(*system, rng.fork(1));

  // Let C-states settle before measuring.
  system->run_for(util::seconds_to_ns(1));
  meter.sample();

  util::RunningStats stats;
  for (util::DurationNs t = 0; t < options_.idle_duration; t += options_.sample_period) {
    system->run_for(options_.sample_period);
    if (const auto s = meter.sample()) stats.add(s->watts);
  }
  if (stats.count() == 0) throw std::runtime_error("Trainer: no idle samples collected");
  POWERAPI_LOG_INFO("trainer") << "idle floor: " << stats.mean() << " W over "
                               << stats.count() << " samples";
  return stats.mean();
}

std::vector<TrainingSample> Trainer::sample_frequency(double hz) const {
  util::Rng rng(options_.seed ^ static_cast<std::uint64_t>(hz / 1e6));
  auto system = make_system(spec_, ground_truth_, rng);
  const double pinned = system->pin_frequency(hz);
  auto meter = make_meter(*system, rng.fork(2));

  const auto grid = workloads::make_stress_grid(options_.grid);
  std::vector<TrainingSample> samples;

  for (const auto& point : grid) {
    const util::DurationNs lifetime =
        options_.settle + options_.point_duration + util::ms_to_ns(100);
    const os::Pid pid = system->spawn(point.name, workloads::materialize(point, lifetime));

    system->run_for(options_.settle);
    meter.sample();  // Open the integration window.
    hpc::EventValues prev =
        hpc::EventValues::from_block(system->machine().machine_counters());
    std::uint64_t prev_smt = system->machine().machine_counters().smt_shared_cycles;
    util::TimestampNs prev_time = system->now_ns();

    for (util::DurationNs t = 0; t < options_.point_duration; t += options_.sample_period) {
      system->run_for(options_.sample_period);
      const auto s = meter.sample();
      const hpc::EventValues cur =
          hpc::EventValues::from_block(system->machine().machine_counters());
      const std::uint64_t cur_smt = system->machine().machine_counters().smt_shared_cycles;
      const util::TimestampNs now = system->now_ns();
      if (s && now > prev_time) {
        const double window_s = util::ns_to_seconds(now - prev_time);
        TrainingSample sample;
        // Record the OBSERVED frequency: with TurboBoost the machine may
        // have run above the pinned nominal maximum, and those samples must
        // land in the turbo bin's formula (the paper: "including the
        // TurboBoost ones when available").
        static_cast<FeatureVector&>(sample) = extract_features(
            cur.delta_since(prev), cur_smt - prev_smt, window_s,
            system->machine().last_effective_frequency_hz());
        sample.watts = s->watts;
        // CPU load over the window, derived exactly as top(1) would: busy
        // cycles divided by available cycles (at the PINNED frequency).
        sample.utilization = machine_utilization(sample.rates, pinned, spec_.hw_threads());
        samples.push_back(sample);
      }
      prev = cur;
      prev_smt = cur_smt;
      prev_time = now;
    }
    system->kill(pid);
    system->run_for(util::ms_to_ns(50));  // Drain before the next cell.
  }
  POWERAPI_LOG_INFO("trainer") << "sampled " << samples.size() << " windows at "
                               << util::hz_to_ghz(pinned) << " GHz";
  return samples;
}

SampleSet Trainer::collect() const {
  // Sweep every pinnable (nominal) frequency, but bucket each sample by the
  // frequency it was OBSERVED at — identical when turbo is absent, and the
  // only way to learn turbo-bin formulas when it is present.
  const std::vector<double> all = spec_.all_frequencies_hz();
  SampleSet set;
  set.idle_watts = measure_idle();
  set.frequencies_hz = all;
  set.by_frequency.resize(all.size());

  auto bucket_of = [&all](double hz) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < all.size(); ++i) {
      if (std::abs(all[i] - hz) < std::abs(all[best] - hz)) best = i;
    }
    return best;
  };

  for (double hz : spec_.frequencies_hz) {
    for (auto& sample : sample_frequency(hz)) {
      set.by_frequency[bucket_of(sample.frequency_hz)].push_back(std::move(sample));
    }
  }

  // Drop bins too thin to regress (e.g. turbo bins the workload mix never
  // reached). fit() still validates events + 2 samples per surviving bin
  // and fails loudly, so this threshold only prunes clearly hopeless bins.
  const std::size_t min_samples = 6;
  for (std::size_t i = set.frequencies_hz.size(); i-- > 0;) {
    if (set.by_frequency[i].size() < min_samples) {
      POWERAPI_LOG_WARN("trainer")
          << "dropping frequency bin " << util::hz_to_ghz(set.frequencies_hz[i])
          << " GHz: only " << set.by_frequency[i].size() << " samples";
      set.frequencies_hz.erase(set.frequencies_hz.begin() + static_cast<std::ptrdiff_t>(i));
      set.by_frequency.erase(set.by_frequency.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  return set;
}

TrainingResult Trainer::fit(const SampleSet& samples) const {
  if (samples.by_frequency.empty()) throw std::invalid_argument("Trainer::fit: empty samples");

  // --- Choose the event set ---
  std::vector<hpc::EventId> events = options_.events;
  if (options_.auto_select_events) {
    // Pool samples across frequencies; correlate every generic event's rate
    // with the activity power (watts above idle).
    mathx::Matrix pooled;
    std::vector<double> pooled_target;
    std::vector<std::string> names;
    for (hpc::EventId id : hpc::all_events()) names.emplace_back(hpc::to_string(id));
    for (const auto& batch : samples.by_frequency) {
      for (const auto& s : batch) {
        std::vector<double> row(hpc::kEventCount);
        for (std::size_t e = 0; e < hpc::kEventCount; ++e) row[e] = s.rates[e];
        pooled.append_row(row);
        pooled_target.push_back(s.watts - samples.idle_watts);
      }
    }
    const auto picked =
        mathx::select_features(pooled, pooled_target, names, options_.selection);
    if (picked.empty()) {
      throw std::runtime_error("Trainer::fit: feature selection kept no events");
    }
    events.clear();
    for (const auto& score : picked) {
      events.push_back(static_cast<hpc::EventId>(score.column));
    }
  }
  if (events.empty()) throw std::invalid_argument("Trainer::fit: no events configured");

  // --- Per-frequency regression ---
  TrainingResult result;
  result.samples = samples;
  result.selected_events = events;
  std::vector<FrequencyFormula> formulas;

  for (std::size_t fi = 0; fi < samples.by_frequency.size(); ++fi) {
    const auto& batch = samples.by_frequency[fi];
    if (batch.size() < events.size() + 2) {
      throw std::runtime_error("Trainer::fit: too few samples at frequency index " +
                               std::to_string(fi));
    }
    mathx::Matrix design(batch.size(), events.size());
    std::vector<double> target(batch.size());
    for (std::size_t r = 0; r < batch.size(); ++r) {
      for (std::size_t c = 0; c < events.size(); ++c) {
        design(r, c) = rate_of(batch[r].rates, events[c]);
      }
      target[r] = batch[r].watts - samples.idle_watts;
    }

    const mathx::FitResult fit = options_.non_negative ? mathx::nnls(design, target)
                                                       : mathx::ols(design, target);
    FrequencyFormula formula;
    formula.frequency_hz = samples.frequencies_hz[fi];
    formula.events = events;
    formula.coefficients = fit.coefficients;
    formula.r_squared = fit.r_squared;
    formulas.push_back(formula);

    FitReport report;
    report.frequency_hz = formula.frequency_hz;
    report.samples = batch.size();
    report.r_squared = fit.r_squared;
    report.residual_rmse_watts =
        fit.residual_norm / std::sqrt(static_cast<double>(batch.size()));
    result.reports.push_back(report);
  }

  result.model = CpuPowerModel(samples.idle_watts, std::move(formulas));
  return result;
}

}  // namespace powerapi::model
