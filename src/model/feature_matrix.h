// Batched feature storage: one FeatureVector per row, stored lane-major.
//
// The SoA hot path extracts features for every monitored target of a host
// in one pass: each feature (an event rate, utilization, the SMT rate, the
// window length) occupies a contiguous lane, rows are targets (row 0 is
// machine scope by the sensor's convention). Model evaluation then sweeps
// coefficient × lane with the mathx kernels instead of walking per-row
// structs. row() gathers a classic FeatureVector for consumers that take
// single samples (calibration, baseline estimators).
//
// A FeatureMatrix is published as a shared_ptr<const ...> in one
// api::SensorBatch message and must stay immutable once published — the
// sensor allocates a fresh matrix per tick rather than reusing a buffer,
// because coalesced catch-up ticks can queue several batches at once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/feature_vector.h"
#include "simcpu/counter_lanes.h"

namespace powerapi::model {

class FeatureMatrix {
 public:
  /// Ten event-rate lanes, then utilization, SMT rate, window seconds.
  static constexpr std::size_t kUtilizationLane = hpc::kEventCount;
  static constexpr std::size_t kSmtLane = hpc::kEventCount + 1;
  static constexpr std::size_t kWindowLane = hpc::kEventCount + 2;
  static constexpr std::size_t kLanes = hpc::kEventCount + 3;

  /// Frequency observed for the tick (one governor, one package — shared by
  /// every row of a batch).
  double frequency_hz = 0.0;

  void resize(std::size_t rows) {
    rows_ = rows;
    lanes_.assign(kLanes * rows, 0.0);
    pids_.assign(rows, 0);
  }

  std::size_t rows() const noexcept { return rows_; }
  bool empty() const noexcept { return rows_ == 0; }

  double* lane(std::size_t index) noexcept { return lanes_.data() + index * rows_; }
  const double* lane(std::size_t index) const noexcept {
    return lanes_.data() + index * rows_;
  }
  double* rate_lane(hpc::EventId id) noexcept { return lane(static_cast<std::size_t>(id)); }
  const double* rate_lane(hpc::EventId id) const noexcept {
    return lane(static_cast<std::size_t>(id));
  }

  std::int64_t* pids() noexcept { return pids_.data(); }
  const std::int64_t* pids() const noexcept { return pids_.data(); }
  std::int64_t pid(std::size_t row) const noexcept { return pids_[row]; }
  double window_seconds(std::size_t row) const noexcept { return lane(kWindowLane)[row]; }

  /// Gathers one row into the classic AoS feature struct.
  FeatureVector row(std::size_t r) const noexcept {
    FeatureVector features;
    features.frequency_hz = frequency_hz;
    for (std::size_t e = 0; e < hpc::kEventCount; ++e) features.rates[e] = lane(e)[r];
    features.utilization = lane(kUtilizationLane)[r];
    features.smt_shared_cycles_per_sec = lane(kSmtLane)[r];
    return features;
  }

 private:
  std::size_t rows_ = 0;
  std::vector<double> lanes_;  ///< Lane-major: [lane][row].
  std::vector<std::int64_t> pids_;
};

/// Batch feature extraction over whole lanes: for every row,
///   rate_e = double(saturating(cur_e - prev_e)) / window_seconds[row]
/// for the ten generic events and the SMT lane, then utilization —
/// machine rows (pid < 0) as busy/available cycles, process rows as
/// cpu-time share of the window. Expressions match the scalar
/// extract_features()/HpcSensor path bit-for-bit. `out` must already be
/// sized to the lane row count with pids and frequency_hz set;
/// `window_seconds` points at `out.rows()` entries which are also copied
/// into the window lane.
void extract_features_rows(const simcpu::CounterLanes& cur, const simcpu::CounterLanes& prev,
                           const double* window_seconds, std::size_t hw_threads,
                           FeatureMatrix& out);

}  // namespace powerapi::model
