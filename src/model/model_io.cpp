#include "model/model_io.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/crc32c.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace powerapi::model {

namespace {
constexpr std::string_view kMagic = "powerapi-model";
/// Integrity footer: "# crc32c <8 hex digits>" over every preceding byte.
/// Written as a comment so readers predating the footer (and v1 files,
/// which never carry one) stay compatible — the parser skips '#' lines.
constexpr std::string_view kChecksumPrefix = "# crc32c ";
}  // namespace

void save_model(const CpuPowerModel& model, std::ostream& out) {
  std::ostringstream body;
  body << kMagic << " v" << kModelFormatVersion << "\n";
  body << "idle " << util::format_double(model.idle_watts()) << "\n";
  for (const auto& f : model.formulas()) {
    body << "frequency " << util::format_double(f.frequency_hz) << "\n";
    body << "r2 " << util::format_double(f.r_squared) << "\n";
    for (std::size_t i = 0; i < f.events.size(); ++i) {
      body << hpc::to_string(f.events[i]) << " " << util::format_double(f.coefficients[i])
           << "\n";
    }
  }
  const std::string text = body.str();
  char footer[32];
  std::snprintf(footer, sizeof(footer), "%.*s%08x\n",
                static_cast<int>(kChecksumPrefix.size()), kChecksumPrefix.data(),
                util::crc32c(text.data(), text.size()));
  out << text << footer;
}

std::string model_to_string(const CpuPowerModel& model) {
  std::ostringstream out;
  save_model(model, out);
  return out.str();
}

util::Result<CpuPowerModel> load_model(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return model_from_string(buffer.str());
}

namespace {

/// Verifies the optional "# crc32c XXXXXXXX" footer over the bytes that
/// precede it. Files without one (v1, hand-edited) pass unchecked; a footer
/// that is present must be well-formed and must match.
util::Result<bool> verify_checksum(const std::string& text) {
  using R = util::Result<bool>;
  std::size_t line_start = 0;
  std::size_t checksum_at = std::string::npos;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      if (text.compare(line_start, kChecksumPrefix.size(), kChecksumPrefix) == 0) {
        checksum_at = line_start;
      }
      line_start = i + 1;
    }
  }
  if (checksum_at == std::string::npos) return true;  // No footer: unchecked.
  const std::size_t hex_at = checksum_at + kChecksumPrefix.size();
  const std::size_t hex_end = text.find('\n', hex_at);
  const std::string hex{util::trim(text.substr(
      hex_at, hex_end == std::string::npos ? std::string::npos : hex_end - hex_at))};
  unsigned long stored = 0;
  char trailing = 0;
  if (hex.size() != 8 ||
      std::sscanf(hex.c_str(), "%8lx%c", &stored, &trailing) != 1) {
    return R::failure("malformed crc32c footer '" + hex + "'");
  }
  const std::uint32_t actual = util::crc32c(text.data(), checksum_at);
  if (actual != static_cast<std::uint32_t>(stored)) {
    char expect[16];
    std::snprintf(expect, sizeof(expect), "%08x", actual);
    return R::failure("model file checksum mismatch (footer " + hex + ", content " +
                      expect + "): file corrupt or hand-edited without "
                      "refreshing the footer");
  }
  return true;
}

}  // namespace

util::Result<CpuPowerModel> model_from_string(const std::string& text) {
  using R = util::Result<CpuPowerModel>;
  if (auto checked = verify_checksum(text); !checked) {
    return R::failure(checked.error_message());
  }
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    return R::failure("model parse error at line " + std::to_string(line_no) + ": " + why);
  };

  if (!std::getline(in, line)) return fail("empty input");
  ++line_no;
  const auto header = util::split_trimmed(util::trim(line), ' ');
  if (header.size() != 2 || header[0] != kMagic) {
    return fail("missing 'powerapi-model v<N>' header");
  }
  if (header[1].size() < 2 || header[1].front() != 'v') {
    return fail("malformed format version '" + header[1] + "'");
  }
  const auto parsed_version = util::parse_double(header[1].substr(1));
  if (!parsed_version || *parsed_version < 1 ||
      *parsed_version != static_cast<std::uint32_t>(*parsed_version)) {
    return fail("malformed format version '" + header[1] + "'");
  }
  const auto version = static_cast<std::uint32_t>(*parsed_version);
  if (version > kModelFormatVersion) {
    return fail("unsupported format version " + header[1] + " (this build reads up to v" +
                std::to_string(kModelFormatVersion) + ")");
  }

  bool have_idle = false;
  double idle = 0.0;
  std::vector<FrequencyFormula> formulas;
  FrequencyFormula* current = nullptr;

  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = util::split_trimmed(trimmed, ' ');
    if (fields.size() != 2) return fail("expected '<key> <value>'");
    const std::string& key = fields[0];
    const auto value = util::parse_double(fields[1]);
    if (!value) return fail("unparsable number '" + fields[1] + "'");

    if (key == "idle") {
      if (have_idle) return fail("duplicate idle line");
      if (*value < 0) return fail("negative idle power");
      idle = *value;
      have_idle = true;
    } else if (key == "frequency") {
      if (*value <= 0) return fail("non-positive frequency");
      FrequencyFormula f;
      f.frequency_hz = *value;
      formulas.push_back(std::move(f));
      current = &formulas.back();
    } else if (key == "r2") {
      if (version < 2) return fail("'r2' diagnostic requires format v2");
      if (current == nullptr) return fail("r2 before any frequency line");
      current->r_squared = *value;
    } else {
      const auto event = hpc::event_from_string(key);
      if (!event) return fail("unknown event '" + key + "'");
      if (current == nullptr) return fail("coefficient before any frequency line");
      current->events.push_back(*event);
      current->coefficients.push_back(*value);
    }
  }
  if (!have_idle) return fail("missing idle line");
  if (formulas.empty()) return fail("no frequency formulas");
  for (const auto& f : formulas) {
    if (f.events.empty()) return fail("frequency block without coefficients");
  }
  return CpuPowerModel(idle, std::move(formulas));
}

}  // namespace powerapi::model
