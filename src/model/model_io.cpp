#include "model/model_io.h"

#include <ostream>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace powerapi::model {

namespace {
constexpr std::string_view kHeader = "powerapi-model v1";
}

void save_model(const CpuPowerModel& model, std::ostream& out) {
  out << kHeader << "\n";
  out << "idle " << util::format_double(model.idle_watts()) << "\n";
  for (const auto& f : model.formulas()) {
    out << "frequency " << util::format_double(f.frequency_hz) << "\n";
    for (std::size_t i = 0; i < f.events.size(); ++i) {
      out << hpc::to_string(f.events[i]) << " " << util::format_double(f.coefficients[i])
          << "\n";
    }
  }
}

std::string model_to_string(const CpuPowerModel& model) {
  std::ostringstream out;
  save_model(model, out);
  return out.str();
}

util::Result<CpuPowerModel> load_model(std::istream& in) {
  using R = util::Result<CpuPowerModel>;
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    return R::failure("model parse error at line " + std::to_string(line_no) + ": " + why);
  };

  if (!std::getline(in, line)) return fail("empty input");
  ++line_no;
  if (util::trim(line) != kHeader) return fail("missing 'powerapi-model v1' header");

  bool have_idle = false;
  double idle = 0.0;
  std::vector<FrequencyFormula> formulas;
  FrequencyFormula* current = nullptr;

  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = util::split_trimmed(trimmed, ' ');
    if (fields.size() != 2) return fail("expected '<key> <value>'");
    const std::string& key = fields[0];
    const auto value = util::parse_double(fields[1]);
    if (!value) return fail("unparsable number '" + fields[1] + "'");

    if (key == "idle") {
      if (have_idle) return fail("duplicate idle line");
      if (*value < 0) return fail("negative idle power");
      idle = *value;
      have_idle = true;
    } else if (key == "frequency") {
      if (*value <= 0) return fail("non-positive frequency");
      FrequencyFormula f;
      f.frequency_hz = *value;
      formulas.push_back(std::move(f));
      current = &formulas.back();
    } else {
      const auto event = hpc::event_from_string(key);
      if (!event) return fail("unknown event '" + key + "'");
      if (current == nullptr) return fail("coefficient before any frequency line");
      current->events.push_back(*event);
      current->coefficients.push_back(*value);
    }
  }
  if (!have_idle) return fail("missing idle line");
  if (formulas.empty()) return fail("no frequency formulas");
  for (const auto& f : formulas) {
    if (f.events.empty()) return fail("frequency block without coefficients");
  }
  return CpuPowerModel(idle, std::move(formulas));
}

util::Result<CpuPowerModel> model_from_string(const std::string& text) {
  std::istringstream in(text);
  return load_model(in);
}

}  // namespace powerapi::model
