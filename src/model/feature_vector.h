// The one feature representation of the model stack.
//
// Every consumer of counter-derived features — the offline Trainer, the
// online HpcSensor, the baseline estimators and the experiment harnesses —
// used to carry its own copy of the same four fields (frequency, event
// rates, utilization, SMT co-residency). FeatureVector is that shared
// layer: TrainingSample and api::SensorReport derive from it, and
// estimators consume it directly, so a sample flows from sensor to
// regression to estimate without field-by-field copying.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "hpc/events.h"

namespace powerapi::model {

/// Per-second event rates over one sampling window.
using EventRates = std::array<double, hpc::kEventCount>;

inline double rate_of(const EventRates& rates, hpc::EventId id) noexcept {
  return rates[static_cast<std::size_t>(id)];
}
inline void set_rate(EventRates& rates, hpc::EventId id, double value) noexcept {
  rates[static_cast<std::size_t>(id)] = value;
}

/// Converts a cumulative-counter delta over `seconds` into rates.
EventRates rates_from_delta(const hpc::EventValues& delta, double seconds);

/// The features every power formula consumes. One window's worth of signal
/// for one target (process or machine scope).
struct FeatureVector {
  double frequency_hz = 0.0;
  EventRates rates{};

  // Extra signals used by the baseline models (not generic HPC events):
  /// CPU utilization over the window, 0..1 (Versick-style CPU-load models).
  double utilization = 0.0;
  /// SMT co-resident cycles per second (the HAPPY model's scheduler signal).
  double smt_shared_cycles_per_sec = 0.0;
};

/// Builds the feature vector from a window of cumulative-counter deltas:
/// event rates, SMT co-residency rate and the observed frequency. The
/// utilization field is left for the caller (machine vs process scope
/// derive it differently — see machine_utilization).
FeatureVector extract_features(const hpc::EventValues& delta,
                               std::uint64_t smt_cycles_delta,
                               double window_seconds, double frequency_hz);

/// Machine-scope utilization exactly as top(1) derives it: busy cycles per
/// second over available cycles per second. `frequency_hz` is the rate the
/// caller considers "available" — the pinned nominal frequency during
/// training, the currently governed frequency during monitoring.
double machine_utilization(const EventRates& rates, double frequency_hz,
                           std::size_t hw_threads) noexcept;

}  // namespace powerapi::model
