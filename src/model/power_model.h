// The learned CPU power model.
//
// Mirrors the paper's formulation: one linear formula per DVFS frequency
// over a small set of HPC event rates, plus a global idle constant:
//
//     Power = idle + Σ_f Power_f        (only the active f contributes)
//     Power_f = Σ_e coeff_{f,e} · rate_e
//
// e.g. the paper's i3-2120 maximum-frequency formula:
//     Power_3.30 = 2.22e-9·instructions + 2.48e-8·cache-references
//                + 1.87e-7·cache-misses
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hpc/events.h"
#include "model/feature_matrix.h"
#include "model/sample.h"

namespace powerapi::model {

/// Linear formula over event rates for one frequency point.
struct FrequencyFormula {
  double frequency_hz = 0.0;
  std::vector<hpc::EventId> events;
  std::vector<double> coefficients;  ///< Watts per (event/second); parallel to events.
  double r_squared = 0.0;            ///< Fit quality on the training samples.

  /// Activity power (watts above idle) for the given rates.
  double estimate(const EventRates& rates) const noexcept;
};

class CpuPowerModel {
 public:
  CpuPowerModel() = default;
  CpuPowerModel(double idle_watts, std::vector<FrequencyFormula> formulas);

  double idle_watts() const noexcept { return idle_watts_; }
  const std::vector<FrequencyFormula>& formulas() const noexcept { return formulas_; }

  /// The formula whose frequency is closest to `hz` (the runtime may observe
  /// off-ladder frequencies under governors). Nullopt when the model is empty.
  const FrequencyFormula* formula_for(double hz) const noexcept;

  /// Activity watts of one target (process or machine) at frequency `hz`.
  double estimate_activity(double hz, const EventRates& rates) const;

  /// Batched activity estimate: one watt per matrix row, written to
  /// `watts` (size must equal `features.rows()`). The frequency lookup is
  /// hoisted out (one formula per batch — frequency_hz is per-tick) and the
  /// formula is applied as a coefficient-ordered axpy sweep down the rate
  /// lanes, which accumulates each row in exactly the scalar estimate()
  /// order — results are bit-identical to per-row estimate_activity().
  void estimate_activity_rows(const FeatureMatrix& features, std::span<double> watts) const;

  /// Machine power: idle + activity.
  double estimate_machine(double hz, const EventRates& rates) const {
    return idle_watts_ + estimate_activity(hz, rates);
  }

  // FeatureVector conveniences: every pipeline stage carries the shared
  // feature layer, so estimates read straight off it.
  double estimate_activity(const FeatureVector& features) const {
    return estimate_activity(features.frequency_hz, features.rates);
  }
  double estimate_machine(const FeatureVector& features) const {
    return estimate_machine(features.frequency_hz, features.rates);
  }

  /// Approximate heap + object footprint, for the fleet memory accounting
  /// in bench_pipeline (shared vs per-host model copies).
  std::size_t memory_footprint_bytes() const noexcept;

  /// Human-readable dump in the paper's notation.
  std::string describe() const;

  bool empty() const noexcept { return formulas_.empty(); }

 private:
  double idle_watts_ = 0.0;
  std::vector<FrequencyFormula> formulas_;  ///< Ascending by frequency.
};

}  // namespace powerapi::model
