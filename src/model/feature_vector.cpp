#include "model/feature_vector.h"

#include <stdexcept>

namespace powerapi::model {

EventRates rates_from_delta(const hpc::EventValues& delta, double seconds) {
  if (seconds <= 0.0) throw std::invalid_argument("rates_from_delta: non-positive window");
  EventRates rates{};
  for (hpc::EventId id : hpc::all_events()) {
    set_rate(rates, id, static_cast<double>(delta[id]) / seconds);
  }
  return rates;
}

FeatureVector extract_features(const hpc::EventValues& delta,
                               std::uint64_t smt_cycles_delta,
                               double window_seconds, double frequency_hz) {
  FeatureVector features;
  features.frequency_hz = frequency_hz;
  features.rates = rates_from_delta(delta, window_seconds);
  features.smt_shared_cycles_per_sec =
      static_cast<double>(smt_cycles_delta) / window_seconds;
  return features;
}

double machine_utilization(const EventRates& rates, double frequency_hz,
                           std::size_t hw_threads) noexcept {
  return rate_of(rates, hpc::EventId::kCycles) /
         (frequency_hz * static_cast<double>(hw_threads));
}

}  // namespace powerapi::model
