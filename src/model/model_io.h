// Text serialization for learned power models, so profiling (expensive) and
// monitoring (cheap) can run in separate processes/sessions — train once on
// a machine, ship the profile.
//
// Format (line-oriented, '#' comments), versioned by the header:
//   powerapi-model v2
//   idle <watts>
//   frequency <hz>
//   r2 <r-squared>            # fit diagnostic (v2+)
//   <event-name> <coefficient>
//   ...
//
// Writers emit the current version (v2). The loader accepts every version
// up to the current one — v1 files (no r2 diagnostics) still load — and
// rejects unknown/newer versions with a clear error rather than guessing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "model/power_model.h"
#include "util/result.h"

namespace powerapi::model {

/// The format version save_model writes.
inline constexpr std::uint32_t kModelFormatVersion = 2;

/// Writes the model in the current text format (v2, with r2 diagnostics).
void save_model(const CpuPowerModel& model, std::ostream& out);
std::string model_to_string(const CpuPowerModel& model);

/// Parses a v1 or v2 text model; fails with a line-numbered message on
/// malformed input (unknown event names, missing header, unsupported format
/// version, negative idle, ...).
util::Result<CpuPowerModel> load_model(std::istream& in);
util::Result<CpuPowerModel> model_from_string(const std::string& text);

}  // namespace powerapi::model
