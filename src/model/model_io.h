// Text serialization for learned power models, so profiling (expensive) and
// monitoring (cheap) can run in separate processes/sessions — train once on
// a machine, ship the profile.
//
// Format (line-oriented, '#' comments):
//   powerapi-model v1
//   idle <watts>
//   frequency <hz>
//   <event-name> <coefficient>
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "model/power_model.h"
#include "util/result.h"

namespace powerapi::model {

/// Writes the model in the v1 text format.
void save_model(const CpuPowerModel& model, std::ostream& out);
std::string model_to_string(const CpuPowerModel& model);

/// Parses a v1 text model; fails with a line-numbered message on malformed
/// input (unknown event names, missing header, negative idle, ...).
util::Result<CpuPowerModel> load_model(std::istream& in);
util::Result<CpuPowerModel> model_from_string(const std::string& text);

}  // namespace powerapi::model
