// The Figure 1 learning pipeline.
//
//   (1) run CPU- and memory-intensive workloads at every DVFS frequency
//   (2) record wall power with the (simulated) PowerSpy meter
//   (3) record HPC event rates over the same windows
//   (4) multivariate regression per frequency → the power model
//
// The trainer builds a private simulated System per frequency so sampling is
// hermetic, measures the idle floor first, then sweeps the stress grid.
#pragma once

#include <cstdint>
#include <vector>

#include "mathx/feature_selection.h"
#include "model/power_model.h"
#include "model/sample.h"
#include "simcpu/cpu_spec.h"
#include "simcpu/power_gt.h"
#include "util/units.h"
#include "workloads/stress.h"

namespace powerapi::model {

struct TrainerOptions {
  workloads::StressGridOptions grid;
  util::DurationNs idle_duration = util::seconds_to_ns(10);
  util::DurationNs settle = util::ms_to_ns(300);       ///< Discarded after each change.
  util::DurationNs sample_period = util::ms_to_ns(250);
  util::DurationNs point_duration = util::seconds_to_ns(2);  ///< Sampled part per cell.
  std::uint64_t seed = 42;

  /// Events used by the regression. Default: the paper's three generic
  /// counters (instructions, cache-references, cache-misses).
  std::vector<hpc::EventId> events{hpc::paper_events().begin(), hpc::paper_events().end()};

  /// When true, ignore `events` and auto-select by correlation over the
  /// pooled samples (the paper's Spearman future-work, experiment A1).
  bool auto_select_events = false;
  mathx::SelectionOptions selection;

  /// Constrain coefficients to be non-negative (a watt cannot be refunded
  /// per event). The paper's published coefficients are all positive.
  bool non_negative = true;
};

/// Per-frequency fit diagnostics, reported alongside the model.
struct FitReport {
  double frequency_hz = 0.0;
  std::size_t samples = 0;
  double r_squared = 0.0;
  double residual_rmse_watts = 0.0;
};

struct TrainingResult {
  CpuPowerModel model;
  SampleSet samples;
  std::vector<FitReport> reports;
  std::vector<hpc::EventId> selected_events;  ///< Post-selection event set.
};

/// Paper-faithful training configuration: the stress utility runs each
/// workload flat-out (no duty-cycle sweep), and the regression sees only the
/// three generic counters the paper selected. Duty-cycled server workloads
/// are therefore out-of-distribution at evaluation time — the main source of
/// the double-digit median error the paper reports on SPECjbb (Figure 3).
TrainerOptions paper_trainer_options();

class Trainer {
 public:
  Trainer(simcpu::CpuSpec spec, simcpu::GroundTruthParams ground_truth,
          TrainerOptions options);

  /// Sampling phase only (steps 1–3 of Figure 1).
  SampleSet collect() const;

  /// Regression phase only (step 4): fits per-frequency formulas.
  TrainingResult fit(const SampleSet& samples) const;

  /// The full pipeline.
  TrainingResult train() const {
    return fit(collect());
  }

 private:
  std::vector<TrainingSample> sample_frequency(double hz) const;
  double measure_idle() const;

  simcpu::CpuSpec spec_;
  simcpu::GroundTruthParams ground_truth_;
  TrainerOptions options_;
};

}  // namespace powerapi::model
