#include "model/model_registry.h"

namespace powerapi::model {

ModelRegistry::ModelRegistry(CpuPowerModel initial) : next_version_(2) {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->version = 1;
  snapshot->model = std::move(initial);
  current_.store(std::shared_ptr<const Snapshot>(std::move(snapshot)),
                 std::memory_order_release);
}

ModelRegistry::Version ModelRegistry::publish(CpuPowerModel next) {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->version = next_version_.fetch_add(1, std::memory_order_relaxed);
  snapshot->model = std::move(next);
  const Version version = snapshot->version;
  current_.store(std::shared_ptr<const Snapshot>(std::move(snapshot)),
                 std::memory_order_release);
  return version;
}

}  // namespace powerapi::model
