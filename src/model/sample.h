// Training samples: synchronized (feature vector, measured watts) pairs
// gathered during the sampling phase of Figure 1.
#pragma once

#include <cstddef>
#include <vector>

#include "model/feature_vector.h"

namespace powerapi::model {

/// A FeatureVector labelled with the wall power the meter measured over the
/// same window — the unit of both offline training and online calibration.
struct TrainingSample : FeatureVector {
  double watts = 0.0;  ///< Wall power measured by the meter (includes idle).
};

/// Everything the sampling phase produced: the measured idle floor and the
/// per-frequency sample batches.
struct SampleSet {
  double idle_watts = 0.0;
  std::vector<double> frequencies_hz;             ///< Ascending ladder sampled.
  std::vector<std::vector<TrainingSample>> by_frequency;  ///< Parallel to above.

  std::size_t total_samples() const noexcept {
    std::size_t n = 0;
    for (const auto& v : by_frequency) n += v.size();
    return n;
  }
};

}  // namespace powerapi::model
