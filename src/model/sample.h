// Training samples: synchronized (counter rates, measured watts) pairs
// gathered during the sampling phase of Figure 1.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "hpc/events.h"

namespace powerapi::model {

/// Per-second event rates over one sampling window.
using EventRates = std::array<double, hpc::kEventCount>;

inline double rate_of(const EventRates& rates, hpc::EventId id) noexcept {
  return rates[static_cast<std::size_t>(id)];
}
inline void set_rate(EventRates& rates, hpc::EventId id, double value) noexcept {
  rates[static_cast<std::size_t>(id)] = value;
}

/// Converts a cumulative-counter delta over `seconds` into rates.
EventRates rates_from_delta(const hpc::EventValues& delta, double seconds);

struct TrainingSample {
  double frequency_hz = 0.0;
  EventRates rates{};
  double watts = 0.0;  ///< Wall power measured by the meter (includes idle).

  // Extra signals used by the baseline models (not generic HPC events):
  /// CPU utilization over the window, 0..1 (Versick-style CPU-load models).
  double utilization = 0.0;
  /// SMT co-resident cycles per second (the HAPPY model's scheduler signal).
  double smt_shared_cycles_per_sec = 0.0;
};

/// Everything the sampling phase produced: the measured idle floor and the
/// per-frequency sample batches.
struct SampleSet {
  double idle_watts = 0.0;
  std::vector<double> frequencies_hz;             ///< Ascending ladder sampled.
  std::vector<std::vector<TrainingSample>> by_frequency;  ///< Parallel to above.

  std::size_t total_samples() const noexcept {
    std::size_t n = 0;
    for (const auto& v : by_frequency) n += v.size();
    return n;
  }
};

}  // namespace powerapi::model
