#include "powermeter/powerspy.h"

#include <cmath>
#include <stdexcept>

namespace powerapi::powermeter {

PowerSpy::PowerSpy(std::function<double()> energy_joules,
                   std::function<util::TimestampNs()> now, util::Rng rng, Options options)
    : energy_joules_(std::move(energy_joules)),
      now_(std::move(now)),
      rng_(std::move(rng)),
      options_(options) {
  if (!energy_joules_ || !now_) throw std::invalid_argument("PowerSpy: null source");
  if (options_.smoothing_alpha <= 0.0 || options_.smoothing_alpha > 1.0) {
    throw std::invalid_argument("PowerSpy: smoothing_alpha must be in (0,1]");
  }
}

std::optional<PowerSample> PowerSpy::sample() {
  const util::TimestampNs t = now_();
  const double e = energy_joules_();
  if (!primed_) {
    primed_ = true;
    last_time_ = t;
    last_energy_ = e;
    return std::nullopt;
  }
  if (t <= last_time_) return std::nullopt;

  const double true_watts = (e - last_energy_) / util::ns_to_seconds(t - last_time_);
  last_time_ = t;
  last_energy_ = e;

  if (rng_.bernoulli(options_.drop_probability)) return std::nullopt;

  double w = true_watts + rng_.gaussian(0.0, options_.noise_sigma_watts);
  if (options_.quantum_watts > 0.0) {
    w = std::round(w / options_.quantum_watts) * options_.quantum_watts;
  }
  if (ema_) {
    w = options_.smoothing_alpha * w + (1.0 - options_.smoothing_alpha) * *ema_;
  }
  ema_ = w;
  if (w < 0.0) w = 0.0;

  return PowerSample{t, w};
}

std::vector<PowerSample> record_trace(PowerSpy& meter, util::DurationNs period,
                                      util::DurationNs duration,
                                      const std::function<void(util::DurationNs)>& advance) {
  if (period <= 0 || duration <= 0) throw std::invalid_argument("record_trace: bad periods");
  std::vector<PowerSample> trace;
  trace.reserve(static_cast<std::size_t>(duration / period) + 1);
  meter.sample();  // Prime the integrator.
  for (util::DurationNs elapsed = 0; elapsed < duration; elapsed += period) {
    advance(period);
    if (auto s = meter.sample()) trace.push_back(*s);
  }
  return trace;
}

}  // namespace powerapi::powermeter
