#include "powermeter/rapl.h"

#include <cmath>

namespace powerapi::powermeter {

RaplMsr::RaplMsr(std::function<double()> package_energy_joules,
                 std::function<util::TimestampNs()> now, bool available)
    : package_energy_joules_(std::move(package_energy_joules)),
      now_(std::move(now)),
      available_(available) {
  if (!package_energy_joules_ || !now_) throw std::invalid_argument("RaplMsr: null source");
}

std::uint32_t RaplMsr::read_energy_status() {
  if (!available_) {
    throw std::runtime_error("RAPL unavailable: requires Sandy Bridge or later");
  }
  const util::TimestampNs t = now_();
  // The MSR only refreshes at its update period; repeated reads within one
  // period observe the same value (as on real hardware).
  const util::TimestampNs quantized = t - (t % kUpdatePeriodNs);
  if (quantized != last_update_) {
    last_update_ = quantized;
    const double joules = package_energy_joules_();
    const auto units = static_cast<std::uint64_t>(joules / kJoulesPerUnit);
    cached_ = static_cast<std::uint32_t>(units & 0xffffffffULL);
  }
  return cached_;
}

double RaplMsr::energy_between(std::uint32_t before, std::uint32_t after) noexcept {
  const std::uint32_t delta = after - before;  // Unsigned wraparound is defined.
  return static_cast<double>(delta) * kJoulesPerUnit;
}

}  // namespace powerapi::powermeter
