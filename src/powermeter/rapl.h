// Simulated Intel RAPL (Running Average Power Limit) MSR interface.
//
// The paper discusses RAPL as the architecture-dependent alternative to its
// approach: available only since Sandy Bridge, package-scope only. We
// emulate MSR_PKG_ENERGY_STATUS faithfully — a 32-bit counter in 2^-16 J
// units that wraps around — so the RAPL-based Formula has exactly the same
// limitations as the real thing (no per-process attribution, wraparound
// handling, update granularity).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "util/units.h"

namespace powerapi::powermeter {

class RaplMsr {
 public:
  /// Energy unit of MSR_RAPL_POWER_UNIT's default ESU (2^-16 J).
  static constexpr double kJoulesPerUnit = 1.0 / 65536.0;
  /// MSR update period: the real counter refreshes roughly every ~1 ms.
  static constexpr util::DurationNs kUpdatePeriodNs = 1'000'000;

  /// `package_energy_joules` returns cumulative package-domain energy;
  /// `now` provides timestamps. `available` mirrors the architectural gate
  /// (pre-Sandy-Bridge parts have no RAPL).
  RaplMsr(std::function<double()> package_energy_joules,
          std::function<util::TimestampNs()> now, bool available = true);

  bool available() const noexcept { return available_; }

  /// Raw MSR_PKG_ENERGY_STATUS read: lower 32 bits of the unit counter,
  /// quantized to the MSR update period. Throws std::runtime_error when
  /// RAPL is unavailable on this "architecture".
  std::uint32_t read_energy_status();

  /// Unwrapped energy (joules) between two raw readings, assuming at most
  /// one wraparound (valid when polled faster than ~15 minutes at 65 W).
  static double energy_between(std::uint32_t before, std::uint32_t after) noexcept;

 private:
  std::function<double()> package_energy_joules_;
  std::function<util::TimestampNs()> now_;
  bool available_;
  util::TimestampNs last_update_ = -1;
  std::uint32_t cached_ = 0;
};

}  // namespace powerapi::powermeter
