// Simulated PowerSpy bluetooth wall-power meter.
//
// The real device integrates wall power between samples; we reproduce that
// by differencing the machine's ground-truth energy counter, then layer the
// measurement chain on top: Gaussian noise, ADC quantization, exponential
// smoothing, and occasional bluetooth sample drops. This is the reference
// signal the paper regresses against (Figure 1, step 2) and plots in
// Figure 3.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace powerapi::powermeter {

struct PowerSample {
  util::TimestampNs timestamp = 0;
  double watts = 0.0;
};

class PowerSpy {
 public:
  struct Options {
    double noise_sigma_watts = 0.35;   ///< Sensor noise per sample.
    double quantum_watts = 0.1;        ///< ADC quantization step.
    double smoothing_alpha = 0.6;      ///< EMA weight of the new sample (1 = none).
    double drop_probability = 0.002;   ///< Bluetooth sample loss.
  };

  /// `energy_joules` must return cumulative machine energy at call time;
  /// `now` supplies timestamps (both usually bound to the simulated system).
  PowerSpy(std::function<double()> energy_joules, std::function<util::TimestampNs()> now,
           util::Rng rng)
      : PowerSpy(std::move(energy_joules), std::move(now), std::move(rng), Options{}) {}
  PowerSpy(std::function<double()> energy_joules, std::function<util::TimestampNs()> now,
           util::Rng rng, Options options);

  /// Takes one sample: average true power since the previous call, passed
  /// through the measurement chain. Returns nullopt when the sample is
  /// dropped (bluetooth loss) or no time has elapsed yet.
  std::optional<PowerSample> sample();

  const Options& options() const noexcept { return options_; }

 private:
  std::function<double()> energy_joules_;
  std::function<util::TimestampNs()> now_;
  util::Rng rng_;
  Options options_;
  double last_energy_ = 0.0;
  util::TimestampNs last_time_ = 0;
  bool primed_ = false;
  std::optional<double> ema_;
};

/// Convenience: drives `advance` (e.g. one System tick batch) between
/// samples and collects a whole trace at the given period.
std::vector<PowerSample> record_trace(PowerSpy& meter, util::DurationNs period,
                                      util::DurationNs duration,
                                      const std::function<void(util::DurationNs)>& advance);

}  // namespace powerapi::powermeter
