// Message vocabulary of the PowerAPI pipeline (Figure 2).
//
// Topics:
//   "tick"              MonitorTick   → all sensors
//   "sensor:hpc"        SensorReport  → formulas
//   "sensor:cpu-load"   SensorReport  → CPU-load formula
//   "sensor:powerspy"   SensorReport  → reporters wanting ground truth
//   "sensor:rapl"       SensorReport  → RAPL formula
//   "power:estimate"    PowerEstimate → aggregators
//   "power:aggregated"  AggregatedPower → reporters
#pragma once

#include <cstdint>
#include <string>

#include "model/sample.h"
#include "util/units.h"

namespace powerapi::api {

/// Scope marker for machine-wide rows.
inline constexpr std::int64_t kMachinePid = -1;

/// Periodic monitoring tick, broadcast to sensors.
struct MonitorTick {
  util::TimestampNs timestamp = 0;
};

/// One sensor's observation of one target over the last window.
struct SensorReport {
  util::TimestampNs timestamp = 0;
  std::int64_t pid = kMachinePid;
  std::string sensor;             ///< "hpc", "cpu-load", "powerspy", "rapl".
  double frequency_hz = 0.0;
  double window_seconds = 0.0;
  model::EventRates rates{};      ///< Event rates over the window (hpc sensor).
  double utilization = 0.0;       ///< Target's CPU share over the window.
  double smt_shared_cycles_per_sec = 0.0;
  double measured_watts = 0.0;    ///< Meter sensors only (powerspy, rapl).

  // IO sensor fields (machine scope, "sensor:io"):
  double disk_iops = 0.0;
  double disk_bytes_per_sec = 0.0;
  double net_bytes_per_sec = 0.0;
};

/// A formula's power attribution for one target at one timestamp.
struct PowerEstimate {
  util::TimestampNs timestamp = 0;
  std::int64_t pid = kMachinePid;
  std::string formula;            ///< e.g. "powerapi-hpc", "cpu-load", "rapl".
  double watts = 0.0;
};

/// Aggregated power along a dimension (per PID, per group, or summed per
/// timestamp).
struct AggregatedPower {
  util::TimestampNs timestamp = 0;
  std::int64_t pid = kMachinePid;  ///< kMachinePid for summed rows.
  std::string group;               ///< Set only by group-dimension aggregation.
  std::string formula;
  double watts = 0.0;
};

}  // namespace powerapi::api
