// Message vocabulary of the PowerAPI pipeline (Figure 2).
//
// Topics (within one pipeline's namespace — see pipeline.h):
//   "tick"              MonitorTick   → all sensors
//   "sensor:hpc"        SensorReport  → formulas
//   "sensor:cpu-load"   SensorReport  → CPU-load formula
//   "sensor:powerspy"   SensorReport  → reporters wanting ground truth
//   "sensor:rapl"       SensorReport  → RAPL formula
//   "sensor:io"         SensorReport  → IO datasheet formula
//   "power:estimate"    PowerEstimate → aggregators
//   "power:aggregated"  AggregatedPower → reporters
//
// In a multi-host fleet each host's pipeline lives under a namespace prefix
// ("h3/sensor:hpc"); the fleet dimension adds "fleet/power:aggregated".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/feature_matrix.h"
#include "model/feature_vector.h"
#include "util/units.h"

namespace powerapi::api {

/// Scope marker for machine-wide rows.
inline constexpr std::int64_t kMachinePid = -1;

/// Periodic monitoring tick, broadcast to sensors.
///
/// When the pipeline carries an observability bundle, each tick also gets a
/// per-pipeline sequence number and the real (monitor wall clock) time it
/// was published. Both flow through SensorReport and PowerEstimate so trace
/// spans and end-to-end latency can be correlated per tick; both stay 0
/// when observability is off.
struct MonitorTick {
  util::TimestampNs timestamp = 0;
  std::uint64_t seq = 0;
  std::int64_t wall_ns = 0;  ///< obs::wall_now_ns() at publish.
};

/// Which sensor produced a report. An enum rather than a string: reports are
/// hot-path messages (one per target per tick), and an interned tag removes
/// a heap allocation + string compare per hop.
enum class SensorKind : std::uint8_t {
  kHpc,
  kCpuLoad,
  kPowerSpy,
  kRapl,
  kIo,
};

constexpr std::string_view to_string(SensorKind kind) noexcept {
  switch (kind) {
    case SensorKind::kHpc: return "hpc";
    case SensorKind::kCpuLoad: return "cpu-load";
    case SensorKind::kPowerSpy: return "powerspy";
    case SensorKind::kRapl: return "rapl";
    case SensorKind::kIo: return "io";
  }
  return "?";
}

/// One sensor's observation of one target over the last window. Derives
/// from the shared feature layer (frequency, event rates, utilization, SMT
/// co-residency), so formulas and estimators consume the report directly —
/// no field-by-field repacking between pipeline stages.
struct SensorReport : model::FeatureVector {
  util::TimestampNs timestamp = 0;
  std::int64_t pid = kMachinePid;
  SensorKind sensor = SensorKind::kHpc;
  double window_seconds = 0.0;
  double measured_watts = 0.0;    ///< Meter sensors only (powerspy, rapl).

  // IO sensor fields (machine scope, "sensor:io"):
  double disk_iops = 0.0;
  double disk_bytes_per_sec = 0.0;
  double net_bytes_per_sec = 0.0;

  // Observability correlation (copied from the triggering MonitorTick).
  std::uint64_t seq = 0;
  std::int64_t tick_wall_ns = 0;
};

/// One sensor's observations for EVERY completed target of a tick, as a
/// single lane-major matrix — the SoA hot-path replacement for a burst of
/// per-target SensorReports. Row order is the scalar publish order (machine
/// scope first, then the targets in monitoring order), so a consumer that
/// walks rows front to back sees exactly the scalar message sequence. The
/// matrix is immutable once published; the sensor allocates a fresh one per
/// tick because coalesced catch-up ticks can leave several batches queued
/// in mailboxes at once.
struct SensorBatch {
  util::TimestampNs timestamp = 0;
  SensorKind sensor = SensorKind::kHpc;
  std::shared_ptr<const model::FeatureMatrix> features;

  // Observability correlation (copied from the triggering MonitorTick).
  std::uint64_t seq = 0;
  std::int64_t tick_wall_ns = 0;
};

/// A formula's power attribution for one target at one timestamp.
struct PowerEstimate {
  util::TimestampNs timestamp = 0;
  std::int64_t pid = kMachinePid;
  std::string formula;            ///< e.g. "powerapi-hpc", "cpu-load", "rapl".
  double watts = 0.0;
  /// Registry version of the model that produced this estimate; 0 for
  /// formulas that do not read a versioned model (meters, datasheets).
  std::uint64_t model_version = 0;

  // Observability correlation (carried forward from the SensorReport).
  std::uint64_t seq = 0;
  std::int64_t tick_wall_ns = 0;
};

/// One formula's attributions for every row of a SensorBatch: watts[i]
/// belongs to features->pid(i). The matrix rides along (shared, immutable)
/// so downstream stages can reach pids and features without copying.
struct EstimateBatch {
  util::TimestampNs timestamp = 0;
  std::string formula;
  std::uint64_t model_version = 0;
  std::shared_ptr<const model::FeatureMatrix> features;
  std::vector<double> watts;  ///< Parallel to the matrix rows.

  // Observability correlation.
  std::uint64_t seq = 0;
  std::int64_t tick_wall_ns = 0;
};

/// Aggregated power along a dimension (per PID, per group, or summed per
/// timestamp).
struct AggregatedPower {
  util::TimestampNs timestamp = 0;
  std::int64_t pid = kMachinePid;  ///< kMachinePid for summed rows.
  std::string group;               ///< Set only by group-dimension aggregation.
  std::string formula;
  double watts = 0.0;
  /// Tick sequence id of the estimates this row aggregates (observability
  /// correlation; 0 when off).
  std::uint64_t seq = 0;
};

}  // namespace powerapi::api
