// Message vocabulary of the PowerAPI pipeline (Figure 2).
//
// Topics (within one pipeline's namespace — see pipeline.h):
//   "tick"              MonitorTick   → all sensors
//   "sensor:hpc"        SensorReport  → formulas
//   "sensor:cpu-load"   SensorReport  → CPU-load formula
//   "sensor:powerspy"   SensorReport  → reporters wanting ground truth
//   "sensor:rapl"       SensorReport  → RAPL formula
//   "sensor:io"         SensorReport  → IO datasheet formula
//   "power:estimate"    PowerEstimate → aggregators
//   "power:aggregated"  AggregatedPower → reporters
//
// In a multi-host fleet each host's pipeline lives under a namespace prefix
// ("h3/sensor:hpc"); the fleet dimension adds "fleet/power:aggregated".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "model/sample.h"
#include "util/units.h"

namespace powerapi::api {

/// Scope marker for machine-wide rows.
inline constexpr std::int64_t kMachinePid = -1;

/// Periodic monitoring tick, broadcast to sensors.
struct MonitorTick {
  util::TimestampNs timestamp = 0;
};

/// Which sensor produced a report. An enum rather than a string: reports are
/// hot-path messages (one per target per tick), and an interned tag removes
/// a heap allocation + string compare per hop.
enum class SensorKind : std::uint8_t {
  kHpc,
  kCpuLoad,
  kPowerSpy,
  kRapl,
  kIo,
};

constexpr std::string_view to_string(SensorKind kind) noexcept {
  switch (kind) {
    case SensorKind::kHpc: return "hpc";
    case SensorKind::kCpuLoad: return "cpu-load";
    case SensorKind::kPowerSpy: return "powerspy";
    case SensorKind::kRapl: return "rapl";
    case SensorKind::kIo: return "io";
  }
  return "?";
}

/// One sensor's observation of one target over the last window.
struct SensorReport {
  util::TimestampNs timestamp = 0;
  std::int64_t pid = kMachinePid;
  SensorKind sensor = SensorKind::kHpc;
  double frequency_hz = 0.0;
  double window_seconds = 0.0;
  model::EventRates rates{};      ///< Event rates over the window (hpc sensor).
  double utilization = 0.0;       ///< Target's CPU share over the window.
  double smt_shared_cycles_per_sec = 0.0;
  double measured_watts = 0.0;    ///< Meter sensors only (powerspy, rapl).

  // IO sensor fields (machine scope, "sensor:io"):
  double disk_iops = 0.0;
  double disk_bytes_per_sec = 0.0;
  double net_bytes_per_sec = 0.0;
};

/// A formula's power attribution for one target at one timestamp.
struct PowerEstimate {
  util::TimestampNs timestamp = 0;
  std::int64_t pid = kMachinePid;
  std::string formula;            ///< e.g. "powerapi-hpc", "cpu-load", "rapl".
  double watts = 0.0;
};

/// Aggregated power along a dimension (per PID, per group, or summed per
/// timestamp).
struct AggregatedPower {
  util::TimestampNs timestamp = 0;
  std::int64_t pid = kMachinePid;  ///< kMachinePid for summed rows.
  std::string group;               ///< Set only by group-dimension aggregation.
  std::string formula;
  double watts = 0.0;
};

}  // namespace powerapi::api
