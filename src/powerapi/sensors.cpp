#include "powerapi/sensors.h"

#include <algorithm>
#include <any>
#include <utility>

#include "util/logging.h"

namespace powerapi::api {

namespace {

const MonitorTick* as_tick(const actors::Envelope& envelope) {
  return envelope.payload.get<MonitorTick>();
}

constexpr std::string_view kSensorReports = "pipeline.sensor_reports";

}  // namespace

// --- HpcSensor ---

HpcSensor::HpcSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                     hpc::CounterBackend& backend, TargetsFn targets,
                     const os::MonitorableHost* host, obs::Observability* obs)
    : bus_(&bus),
      out_topic_(out_topic),
      backend_(&backend),
      targets_(std::move(targets)),
      host_(host) {
  stage_.attach(obs, kSensorReports);
}

void HpcSensor::realign_rows(const std::vector<std::int64_t>& new_pids) {
  // The target set changed: rebuild the row layout, carrying surviving
  // targets' windows (previous-snapshot row + primed/last-time state) over
  // by pid so they keep reporting without a re-prime gap.
  const std::size_t rows = new_pids.size();
  realign_lanes_.resize(rows);
  realign_last_time_.assign(rows, 0);
  realign_primed_.assign(rows, 0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < pids_.size(); ++j) {
      if (pids_[j] != new_pids[i]) continue;
      realign_lanes_.copy_row_from(prev_, j, i);
      realign_last_time_[i] = last_time_[j];
      realign_primed_[i] = primed_[j];
      break;
    }
  }
  std::swap(prev_, realign_lanes_);
  last_time_.swap(realign_last_time_);
  primed_.swap(realign_primed_);
  pids_ = new_pids;
}

void HpcSensor::observe(const MonitorTick& tick) {
  const util::TimestampNs now = tick.timestamp;

  // Row layout: machine scope first, then this tick's targets — the scalar
  // publish order.
  const std::vector<std::int64_t> targets = targets_();
  bool layout_changed = pids_.size() != targets.size() + 1;
  if (!layout_changed) {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (pids_[i + 1] != targets[i]) {
        layout_changed = true;
        break;
      }
    }
  }
  if (layout_changed) {
    std::vector<std::int64_t> new_pids;
    new_pids.reserve(targets.size() + 1);
    new_pids.push_back(kMachinePid);
    new_pids.insert(new_pids.end(), targets.begin(), targets.end());
    realign_rows(new_pids);
  }
  const std::size_t rows = pids_.size();

  const bool extended = backend_->read_rows(pids_, cur_);
  if (!extended && host_ != nullptr) {
    // The backend only fills generic event lanes (e.g. a real perf
    // backend): source the SMT co-residency and cpu-time side lanes from
    // the host interface, exactly as the scalar path did.
    for (std::size_t i = 0; i < rows; ++i) {
      if (!cur_.live()[i]) continue;
      if (pids_[i] < 0) {
        cur_.lane(simcpu::CounterLanes::kSmtLane)[i] =
            host_->machine_counters().smt_shared_cycles;
        cur_.cpu_time()[i] = 0;
      } else if (const auto stat = host_->proc_stat(pids_[i])) {
        cur_.lane(simcpu::CounterLanes::kSmtLane)[i] = stat->counters.smt_shared_cycles;
        cur_.cpu_time()[i] = stat->cpu_time_ns;
      }
    }
  }

  // Per-row window state machine — SamplingWindow semantics, row-parallel:
  // a dead target drops its window (re-primes when it returns), a
  // regressed cumulative quantity re-primes from the new baseline, the
  // priming observation completes no window, and a non-advancing timestamp
  // is ignored without rolling state.
  window_seconds_.assign(rows, 1.0);  // Placeholder divisor for idle rows.
  completed_.assign(rows, 0);
  std::size_t completed_count = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    if (!cur_.live()[i]) {
      POWERAPI_LOG_DEBUG("sensor.hpc")
          << "read failed for pid " << pids_[i] << " — dropping window";
      primed_[i] = 0;
      continue;
    }
    if (primed_[i]) {
      bool regressed = cur_.cpu_time()[i] < prev_.cpu_time()[i];
      for (std::size_t l = 0; l < simcpu::CounterLanes::kLanes; ++l) {
        regressed = regressed || cur_.lane(l)[i] < prev_.lane(l)[i];
      }
      if (regressed) {
        POWERAPI_LOG_DEBUG("sensor.hpc")
            << "counters regressed for pid " << pids_[i] << " — re-priming";
        primed_[i] = 0;
      }
    }
    if (!primed_[i]) {
      prev_.copy_row_from(cur_, i, i);
      last_time_[i] = now;
      primed_[i] = 1;
      continue;
    }
    if (now <= last_time_[i]) continue;
    window_seconds_[i] = util::ns_to_seconds(now - last_time_[i]);
    completed_[i] = 1;
    ++completed_count;
  }

  if (completed_count > 0) {
    const double frequency_hz =
        host_ != nullptr ? host_->system_stat().frequency_hz : 0.0;
    const std::size_t hw_threads = host_ != nullptr ? host_->hw_threads() : 0;

    // Fresh matrix per publish: catch-up ticks can queue several batches in
    // mailboxes at once, so a reused buffer would be overwritten while the
    // previous batch is still in flight.
    auto matrix = std::make_shared<model::FeatureMatrix>();
    matrix->frequency_hz = frequency_hz;
    if (completed_count == rows) {
      // Steady state: every row completed — extract straight into the
      // published matrix, whole lanes at a time.
      matrix->resize(rows);
      std::copy(pids_.begin(), pids_.end(), matrix->pids());
      model::extract_features_rows(cur_, prev_, window_seconds_.data(), hw_threads,
                                   *matrix);
    } else {
      // Mixed tick (a priming or dead row among completed ones): extract
      // full-width into scratch, then compact the completed rows.
      extract_scratch_.frequency_hz = frequency_hz;
      extract_scratch_.resize(rows);
      std::copy(pids_.begin(), pids_.end(), extract_scratch_.pids());
      model::extract_features_rows(cur_, prev_, window_seconds_.data(), hw_threads,
                                   extract_scratch_);
      matrix->resize(completed_count);
      std::size_t out_row = 0;
      for (std::size_t i = 0; i < rows; ++i) {
        if (!completed_[i]) continue;
        for (std::size_t l = 0; l < model::FeatureMatrix::kLanes; ++l) {
          matrix->lane(l)[out_row] = extract_scratch_.lane(l)[i];
        }
        matrix->pids()[out_row] = pids_[i];
        ++out_row;
      }
    }
    if (host_ == nullptr) {
      // Scalar parity: without a host there is no utilization signal.
      double* util_lane = matrix->lane(model::FeatureMatrix::kUtilizationLane);
      for (std::size_t i = 0; i < matrix->rows(); ++i) util_lane[i] = 0.0;
    }

    SensorBatch batch;
    batch.timestamp = now;
    batch.sensor = SensorKind::kHpc;
    batch.features = std::move(matrix);
    batch.seq = tick.seq;
    batch.tick_wall_ns = tick.wall_ns;
    bus_->publish(out_topic_, std::move(batch), self());
    for (std::size_t i = 0; i < completed_count; ++i) stage_.count();
  }

  // Roll the completed rows' windows forward (primed rows already rolled).
  for (std::size_t i = 0; i < rows; ++i) {
    if (!completed_[i]) continue;
    prev_.copy_row_from(cur_, i, i);
    last_time_[i] = now;
  }
}

void HpcSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  const auto span = stage_.span(name(), tick->seq);
  observe(*tick);
}

// --- PowerSpySensor ---

PowerSpySensor::PowerSpySensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                               std::shared_ptr<powermeter::PowerSpy> meter,
                               obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), meter_(std::move(meter)) {
  stage_.attach(obs, kSensorReports);
}

void PowerSpySensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  const auto span = stage_.span(name(), tick->seq);
  const auto sample = meter_->sample();
  if (!sample) return;  // Dropped sample or first (priming) call.
  SensorReport report;
  report.timestamp = tick->timestamp;
  report.pid = kMachinePid;
  report.sensor = SensorKind::kPowerSpy;
  report.measured_watts = sample->watts;
  report.seq = tick->seq;
  report.tick_wall_ns = tick->wall_ns;
  bus_->publish(out_topic_, std::move(report), self());
  stage_.count();
}

// --- RaplSensor ---

RaplSensor::RaplSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                       std::shared_ptr<powermeter::RaplMsr> msr,
                       obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), msr_(std::move(msr)) {
  stage_.attach(obs, kSensorReports);
}

void RaplSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  const auto span = stage_.span(name(), tick->seq);
  if (!msr_->available()) return;
  const std::uint32_t raw = msr_->read_energy_status();
  const auto completed = window_.advance(tick->timestamp, raw);
  if (!completed) return;
  const double joules = powermeter::RaplMsr::energy_between(completed->previous, raw);

  SensorReport report;
  report.timestamp = tick->timestamp;
  report.pid = kMachinePid;
  report.sensor = SensorKind::kRapl;
  report.window_seconds = completed->seconds;
  report.measured_watts = joules / completed->seconds;
  report.seq = tick->seq;
  report.tick_wall_ns = tick->wall_ns;
  bus_->publish(out_topic_, std::move(report), self());
  stage_.count();
}

// --- IoSensor ---

IoSensor::IoSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                   const os::MonitorableHost& host, obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), host_(&host) {
  stage_.attach(obs, kSensorReports);
}

void IoSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  const auto span = stage_.span(name(), tick->seq);
  if (host_->disk() == nullptr) return;  // No peripherals on this host.

  const os::IoTotals totals = host_->io_totals();
  // Same underflow guard as the HPC sensor: cumulative IO counters going
  // backwards means the source reset (device re-probe, counter wrap at the
  // OS boundary). Differencing across that would report a negative rate —
  // re-prime from the new baseline instead.
  if (window_.primed()) {
    const os::IoTotals& last = window_.last();
    if (totals.disk_ops < last.disk_ops || totals.disk_bytes < last.disk_bytes ||
        totals.net_bytes < last.net_bytes) {
      POWERAPI_LOG_DEBUG("sensor.io") << "io totals regressed — re-priming";
      window_.reset();
    }
  }
  const auto completed = window_.advance(tick->timestamp, totals);
  if (!completed) return;
  const double window_s = completed->seconds;
  const os::IoTotals& last = completed->previous;

  SensorReport report;
  report.timestamp = tick->timestamp;
  report.pid = kMachinePid;
  report.sensor = SensorKind::kIo;
  report.window_seconds = window_s;
  report.disk_iops = (totals.disk_ops - last.disk_ops) / window_s;
  report.disk_bytes_per_sec = (totals.disk_bytes - last.disk_bytes) / window_s;
  report.net_bytes_per_sec = (totals.net_bytes - last.net_bytes) / window_s;
  report.seq = tick->seq;
  report.tick_wall_ns = tick->wall_ns;
  bus_->publish(out_topic_, std::move(report), self());
  stage_.count();
}

// --- CpuLoadSensor ---

CpuLoadSensor::CpuLoadSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                             const os::MonitorableHost& host, TargetsFn targets,
                             obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), host_(&host), targets_(std::move(targets)) {
  stage_.attach(obs, kSensorReports);
}

void CpuLoadSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  const auto span = stage_.span(name(), tick->seq);

  auto publish = [&](std::int64_t pid, double utilization) {
    SensorReport report;
    report.timestamp = tick->timestamp;
    report.pid = pid;
    report.sensor = SensorKind::kCpuLoad;
    report.frequency_hz = host_->system_stat().frequency_hz;
    report.utilization = utilization;
    report.seq = tick->seq;
    report.tick_wall_ns = tick->wall_ns;
    bus_->publish(out_topic_, std::move(report), self());
    stage_.count();
  };

  // Machine scope: immediate utilization from the last tick.
  publish(kMachinePid, host_->system_stat().utilization);

  for (const std::int64_t pid : targets_()) {
    const auto stat = host_->proc_stat(pid);
    if (!stat) {
      windows_.erase(pid);
      continue;
    }
    SamplingWindow<util::DurationNs>& window = windows_[pid];
    if (window.primed() && stat->cpu_time_ns < window.last()) window.reset();
    const auto completed = window.advance(tick->timestamp, stat->cpu_time_ns);
    if (!completed) continue;
    const double busy_s = util::ns_to_seconds(stat->cpu_time_ns - completed->previous);
    const auto hw = static_cast<double>(host_->hw_threads());
    publish(pid, busy_s / (completed->seconds * hw));
  }
}

}  // namespace powerapi::api
