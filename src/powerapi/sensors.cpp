#include "powerapi/sensors.h"

#include <any>

#include "util/logging.h"

namespace powerapi::api {

namespace {

const MonitorTick* as_tick(const actors::Envelope& envelope) {
  return envelope.payload.get<MonitorTick>();
}

constexpr std::string_view kSensorReports = "pipeline.sensor_reports";

}  // namespace

// --- HpcSensor ---

HpcSensor::HpcSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                     hpc::CounterBackend& backend, TargetsFn targets,
                     const os::MonitorableHost* host, obs::Observability* obs)
    : bus_(&bus),
      out_topic_(out_topic),
      backend_(&backend),
      targets_(std::move(targets)),
      host_(host) {
  stage_.attach(obs, kSensorReports);
}

void HpcSensor::observe(std::int64_t pid, const MonitorTick& tick) {
  const util::TimestampNs now = tick.timestamp;
  const hpc::Target target =
      pid == kMachinePid ? hpc::Target::machine() : hpc::Target::process(pid);
  auto read = backend_->read(target);
  if (!read.ok()) {
    POWERAPI_LOG_DEBUG("sensor.hpc") << "read failed for pid " << pid << ": "
                                     << read.error_message();
    windows_.erase(pid);
    return;
  }

  Snapshot current;
  current.values = read.value();
  if (host_ != nullptr) {
    if (pid == kMachinePid) {
      current.smt_cycles = host_->machine_counters().smt_shared_cycles;
    } else if (const auto stat = host_->proc_stat(pid)) {
      current.smt_cycles = stat->counters.smt_shared_cycles;
      current.cpu_time = stat->cpu_time_ns;
    }
  }

  SamplingWindow<Snapshot>& window = windows_[pid];
  // Counter-delta underflow guard: a cumulative quantity went backwards,
  // which means the pid was reused or the counter source reset. Unsigned
  // subtraction would wrap into an absurd rate, so drop the window and
  // re-prime from the new baseline instead.
  if (window.primed()) {
    const Snapshot& last = window.last();
    bool regressed = current.smt_cycles < last.smt_cycles ||
                     current.cpu_time < last.cpu_time;
    for (const hpc::EventId id : hpc::all_events()) {
      regressed = regressed || current.values[id] < last.values[id];
    }
    if (regressed) {
      POWERAPI_LOG_DEBUG("sensor.hpc")
          << "counters regressed for pid " << pid << " — re-priming";
      window.reset();
    }
  }

  const auto completed = window.advance(now, current);
  if (!completed) return;

  const double window_s = completed->seconds;
  const Snapshot& prev = completed->previous;
  SensorReport report;
  report.timestamp = now;
  report.pid = pid;
  report.sensor = SensorKind::kHpc;
  report.window_seconds = window_s;
  const double frequency_hz =
      host_ != nullptr ? host_->system_stat().frequency_hz : 0.0;
  static_cast<model::FeatureVector&>(report) = model::extract_features(
      current.values.delta_since(prev.values),
      current.smt_cycles - prev.smt_cycles, window_s, frequency_hz);
  if (host_ != nullptr) {
    if (pid == kMachinePid) {
      report.utilization =
          model::machine_utilization(report.rates, frequency_hz, host_->hw_threads());
    } else {
      report.utilization =
          util::ns_to_seconds(current.cpu_time - prev.cpu_time) / window_s;
    }
  }

  report.seq = tick.seq;
  report.tick_wall_ns = tick.wall_ns;
  bus_->publish(out_topic_, std::move(report), self());
  stage_.count();
}

void HpcSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  const auto span = stage_.span(name(), tick->seq);
  observe(kMachinePid, *tick);
  for (const std::int64_t pid : targets_()) observe(pid, *tick);
}

// --- PowerSpySensor ---

PowerSpySensor::PowerSpySensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                               std::shared_ptr<powermeter::PowerSpy> meter,
                               obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), meter_(std::move(meter)) {
  stage_.attach(obs, kSensorReports);
}

void PowerSpySensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  const auto span = stage_.span(name(), tick->seq);
  const auto sample = meter_->sample();
  if (!sample) return;  // Dropped sample or first (priming) call.
  SensorReport report;
  report.timestamp = tick->timestamp;
  report.pid = kMachinePid;
  report.sensor = SensorKind::kPowerSpy;
  report.measured_watts = sample->watts;
  report.seq = tick->seq;
  report.tick_wall_ns = tick->wall_ns;
  bus_->publish(out_topic_, std::move(report), self());
  stage_.count();
}

// --- RaplSensor ---

RaplSensor::RaplSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                       std::shared_ptr<powermeter::RaplMsr> msr,
                       obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), msr_(std::move(msr)) {
  stage_.attach(obs, kSensorReports);
}

void RaplSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  const auto span = stage_.span(name(), tick->seq);
  if (!msr_->available()) return;
  const std::uint32_t raw = msr_->read_energy_status();
  const auto completed = window_.advance(tick->timestamp, raw);
  if (!completed) return;
  const double joules = powermeter::RaplMsr::energy_between(completed->previous, raw);

  SensorReport report;
  report.timestamp = tick->timestamp;
  report.pid = kMachinePid;
  report.sensor = SensorKind::kRapl;
  report.window_seconds = completed->seconds;
  report.measured_watts = joules / completed->seconds;
  report.seq = tick->seq;
  report.tick_wall_ns = tick->wall_ns;
  bus_->publish(out_topic_, std::move(report), self());
  stage_.count();
}

// --- IoSensor ---

IoSensor::IoSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                   const os::MonitorableHost& host, obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), host_(&host) {
  stage_.attach(obs, kSensorReports);
}

void IoSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  const auto span = stage_.span(name(), tick->seq);
  if (host_->disk() == nullptr) return;  // No peripherals on this host.

  const os::IoTotals totals = host_->io_totals();
  // Same underflow guard as the HPC sensor: cumulative IO counters going
  // backwards means the source reset (device re-probe, counter wrap at the
  // OS boundary). Differencing across that would report a negative rate —
  // re-prime from the new baseline instead.
  if (window_.primed()) {
    const os::IoTotals& last = window_.last();
    if (totals.disk_ops < last.disk_ops || totals.disk_bytes < last.disk_bytes ||
        totals.net_bytes < last.net_bytes) {
      POWERAPI_LOG_DEBUG("sensor.io") << "io totals regressed — re-priming";
      window_.reset();
    }
  }
  const auto completed = window_.advance(tick->timestamp, totals);
  if (!completed) return;
  const double window_s = completed->seconds;
  const os::IoTotals& last = completed->previous;

  SensorReport report;
  report.timestamp = tick->timestamp;
  report.pid = kMachinePid;
  report.sensor = SensorKind::kIo;
  report.window_seconds = window_s;
  report.disk_iops = (totals.disk_ops - last.disk_ops) / window_s;
  report.disk_bytes_per_sec = (totals.disk_bytes - last.disk_bytes) / window_s;
  report.net_bytes_per_sec = (totals.net_bytes - last.net_bytes) / window_s;
  report.seq = tick->seq;
  report.tick_wall_ns = tick->wall_ns;
  bus_->publish(out_topic_, std::move(report), self());
  stage_.count();
}

// --- CpuLoadSensor ---

CpuLoadSensor::CpuLoadSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                             const os::MonitorableHost& host, TargetsFn targets,
                             obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), host_(&host), targets_(std::move(targets)) {
  stage_.attach(obs, kSensorReports);
}

void CpuLoadSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  const auto span = stage_.span(name(), tick->seq);

  auto publish = [&](std::int64_t pid, double utilization) {
    SensorReport report;
    report.timestamp = tick->timestamp;
    report.pid = pid;
    report.sensor = SensorKind::kCpuLoad;
    report.frequency_hz = host_->system_stat().frequency_hz;
    report.utilization = utilization;
    report.seq = tick->seq;
    report.tick_wall_ns = tick->wall_ns;
    bus_->publish(out_topic_, std::move(report), self());
    stage_.count();
  };

  // Machine scope: immediate utilization from the last tick.
  publish(kMachinePid, host_->system_stat().utilization);

  for (const std::int64_t pid : targets_()) {
    const auto stat = host_->proc_stat(pid);
    if (!stat) {
      windows_.erase(pid);
      continue;
    }
    SamplingWindow<util::DurationNs>& window = windows_[pid];
    if (window.primed() && stat->cpu_time_ns < window.last()) window.reset();
    const auto completed = window.advance(tick->timestamp, stat->cpu_time_ns);
    if (!completed) continue;
    const double busy_s = util::ns_to_seconds(stat->cpu_time_ns - completed->previous);
    const auto hw = static_cast<double>(host_->hw_threads());
    publish(pid, busy_s / (completed->seconds * hw));
  }
}

}  // namespace powerapi::api
