#include "powerapi/sensors.h"

#include <any>

#include "util/logging.h"

namespace powerapi::api {

namespace {
const MonitorTick* as_tick(const actors::Envelope& envelope) {
  return envelope.payload.get<MonitorTick>();
}
}  // namespace

// --- HpcSensor ---

HpcSensor::HpcSensor(actors::EventBus& bus, hpc::CounterBackend& backend, TargetsFn targets,
                     const os::System* system)
    : bus_(&bus),
      out_topic_(bus.intern("sensor:hpc")),
      backend_(&backend),
      targets_(std::move(targets)),
      system_(system) {}

void HpcSensor::observe(std::int64_t pid, util::TimestampNs now) {
  const hpc::Target target =
      pid == kMachinePid ? hpc::Target::machine() : hpc::Target::process(pid);
  auto read = backend_->read(target);
  if (!read.ok()) {
    POWERAPI_LOG_DEBUG("sensor.hpc") << "read failed for pid " << pid << ": "
                                     << read.error_message();
    states_.erase(pid);
    return;
  }

  TargetState& st = states_[pid];
  std::uint64_t smt_cycles = 0;
  util::DurationNs cpu_time = 0;
  if (system_ != nullptr) {
    if (pid == kMachinePid) {
      smt_cycles = system_->machine().machine_counters().smt_shared_cycles;
    } else if (const auto stat = system_->proc_stat(pid)) {
      smt_cycles = stat->counters.smt_shared_cycles;
      cpu_time = stat->cpu_time_ns;
    }
  }

  if (!st.primed) {
    st.last_values = read.value();
    st.last_smt_cycles = smt_cycles;
    st.last_cpu_time = cpu_time;
    st.last_time = now;
    st.primed = true;
    return;
  }
  if (now <= st.last_time) return;

  const double window_s = util::ns_to_seconds(now - st.last_time);
  SensorReport report;
  report.timestamp = now;
  report.pid = pid;
  report.sensor = "hpc";
  report.window_seconds = window_s;
  report.rates = model::rates_from_delta(read.value().delta_since(st.last_values), window_s);
  report.smt_shared_cycles_per_sec =
      static_cast<double>(smt_cycles - st.last_smt_cycles) / window_s;
  if (system_ != nullptr) {
    const auto sys = system_->system_stat();
    report.frequency_hz = sys.frequency_hz;
    if (pid == kMachinePid) {
      report.utilization = model::rate_of(report.rates, hpc::EventId::kCycles) /
                           (sys.frequency_hz *
                            static_cast<double>(system_->machine().spec().hw_threads()));
    } else {
      report.utilization = util::ns_to_seconds(cpu_time - st.last_cpu_time) / window_s;
    }
  }

  st.last_values = read.value();
  st.last_smt_cycles = smt_cycles;
  st.last_cpu_time = cpu_time;
  st.last_time = now;

  bus_->publish(out_topic_, std::move(report), self());
}

void HpcSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  observe(kMachinePid, tick->timestamp);
  for (const std::int64_t pid : targets_()) observe(pid, tick->timestamp);
}

// --- PowerSpySensor ---

PowerSpySensor::PowerSpySensor(actors::EventBus& bus,
                               std::shared_ptr<powermeter::PowerSpy> meter)
    : bus_(&bus), out_topic_(bus.intern("sensor:powerspy")), meter_(std::move(meter)) {}

void PowerSpySensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  const auto sample = meter_->sample();
  if (!sample) return;  // Dropped sample or first (priming) call.
  SensorReport report;
  report.timestamp = tick->timestamp;
  report.pid = kMachinePid;
  report.sensor = "powerspy";
  report.measured_watts = sample->watts;
  bus_->publish(out_topic_, std::move(report), self());
}

// --- RaplSensor ---

RaplSensor::RaplSensor(actors::EventBus& bus, std::shared_ptr<powermeter::RaplMsr> msr)
    : bus_(&bus), out_topic_(bus.intern("sensor:rapl")), msr_(std::move(msr)) {}

void RaplSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  if (!msr_->available()) return;
  const std::uint32_t raw = msr_->read_energy_status();
  if (!primed_) {
    last_raw_ = raw;
    last_time_ = tick->timestamp;
    primed_ = true;
    return;
  }
  if (tick->timestamp <= last_time_) return;
  const double joules = powermeter::RaplMsr::energy_between(last_raw_, raw);
  const double window_s = util::ns_to_seconds(tick->timestamp - last_time_);
  last_raw_ = raw;
  last_time_ = tick->timestamp;

  SensorReport report;
  report.timestamp = tick->timestamp;
  report.pid = kMachinePid;
  report.sensor = "rapl";
  report.window_seconds = window_s;
  report.measured_watts = joules / window_s;
  bus_->publish(out_topic_, std::move(report), self());
}

// --- IoSensor ---

IoSensor::IoSensor(actors::EventBus& bus, const os::System& system)
    : bus_(&bus), out_topic_(bus.intern("sensor:io")), system_(&system) {}

void IoSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;
  if (system_->disk() == nullptr) return;  // No peripherals on this system.

  const auto totals = system_->io_totals();
  if (!primed_) {
    last_ = totals;
    last_time_ = tick->timestamp;
    primed_ = true;
    return;
  }
  if (tick->timestamp <= last_time_) return;
  const double window_s = util::ns_to_seconds(tick->timestamp - last_time_);

  SensorReport report;
  report.timestamp = tick->timestamp;
  report.pid = kMachinePid;
  report.sensor = "io";
  report.window_seconds = window_s;
  report.disk_iops = (totals.disk_ops - last_.disk_ops) / window_s;
  report.disk_bytes_per_sec = (totals.disk_bytes - last_.disk_bytes) / window_s;
  report.net_bytes_per_sec = (totals.net_bytes - last_.net_bytes) / window_s;
  last_ = totals;
  last_time_ = tick->timestamp;
  bus_->publish(out_topic_, std::move(report), self());
}

// --- CpuLoadSensor ---

CpuLoadSensor::CpuLoadSensor(actors::EventBus& bus, const os::System& system,
                             TargetsFn targets)
    : bus_(&bus),
      out_topic_(bus.intern("sensor:cpu-load")),
      system_(&system),
      targets_(std::move(targets)) {}

void CpuLoadSensor::receive(actors::Envelope& envelope) {
  const MonitorTick* tick = as_tick(envelope);
  if (tick == nullptr) return;

  auto publish = [&](std::int64_t pid, double utilization) {
    SensorReport report;
    report.timestamp = tick->timestamp;
    report.pid = pid;
    report.sensor = "cpu-load";
    report.frequency_hz = system_->system_stat().frequency_hz;
    report.utilization = utilization;
    bus_->publish(out_topic_, std::move(report), self());
  };

  // Machine scope: immediate utilization from the last tick.
  publish(kMachinePid, system_->system_stat().utilization);

  for (const std::int64_t pid : targets_()) {
    const auto stat = system_->proc_stat(pid);
    if (!stat) {
      states_.erase(pid);
      continue;
    }
    TargetState& st = states_[pid];
    if (!st.primed) {
      st.last_cpu_time = stat->cpu_time_ns;
      st.last_time = tick->timestamp;
      st.primed = true;
      continue;
    }
    if (tick->timestamp <= st.last_time) continue;
    const double window_s = util::ns_to_seconds(tick->timestamp - st.last_time);
    const double busy_s = util::ns_to_seconds(stat->cpu_time_ns - st.last_cpu_time);
    st.last_cpu_time = stat->cpu_time_ns;
    st.last_time = tick->timestamp;
    const auto hw = static_cast<double>(system_->machine().spec().hw_threads());
    publish(pid, busy_s / (window_s * hw));
  }
}

}  // namespace powerapi::api
