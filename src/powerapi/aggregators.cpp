#include "powerapi/aggregators.h"

#include <any>

namespace powerapi::api {

Aggregator::Aggregator(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                       AggregationDimension dimension, GroupResolver group_of,
                       obs::Observability* obs)
    : bus_(&bus),
      out_topic_(out_topic),
      dimension_(dimension),
      group_of_(std::move(group_of)) {
  stage_.attach(obs, "pipeline.aggregated_rows");
  if (obs != nullptr) {
    tick_to_aggregate_ = &obs->metrics.histogram("pipeline.tick_to_aggregate_ns");
  }
}

void Aggregator::record_latency(std::int64_t tick_wall_ns) {
  if (tick_to_aggregate_ == nullptr || tick_wall_ns == 0 || !stage_.active()) return;
  tick_to_aggregate_->record(obs::wall_now_ns() - tick_wall_ns);
}

void Aggregator::emit_group_rows(const std::string& formula) {
  auto& bucket = pending_groups_[formula];
  for (const auto& [group, watts] : bucket.watts_by_group) {
    AggregatedPower out;
    out.timestamp = bucket.timestamp;
    out.pid = kMachinePid;
    out.group = group;
    out.formula = formula;
    out.watts = watts;
    out.seq = bucket.seq;
    bus_->publish(out_topic_, std::move(out), self());
    stage_.count();
  }
  record_latency(bucket.tick_wall_ns);
  bucket.watts_by_group.clear();
}

void Aggregator::absorb(const std::string& formula, util::TimestampNs timestamp,
                        std::int64_t pid, double watts, std::uint64_t seq,
                        std::int64_t tick_wall_ns) {
  if (dimension_ == AggregationDimension::kGroup) {
    auto& bucket = pending_groups_[formula];
    if (!bucket.watts_by_group.empty() && timestamp > bucket.timestamp) {
      emit_group_rows(formula);
    }
    bucket.timestamp = timestamp;
    bucket.seq = seq;
    bucket.tick_wall_ns = tick_wall_ns;
    std::string group;
    if (pid == kMachinePid) {
      group = "(machine)";
    } else if (group_of_) {
      group = group_of_(pid);
    }
    bucket.watts_by_group[group] += watts;
    return;
  }

  if (dimension_ == AggregationDimension::kPid) {
    // Per-PID view: forward every row unchanged.
    AggregatedPower out;
    out.timestamp = timestamp;
    out.pid = pid;
    out.formula = formula;
    out.watts = watts;
    out.seq = seq;
    bus_->publish(out_topic_, std::move(out), self());
    stage_.count();
    record_latency(tick_wall_ns);
    return;
  }

  auto it = pending_.find(formula);
  if (it != pending_.end() && timestamp > it->second.timestamp) {
    emit(formula, it->second);
    pending_.erase(it);
    it = pending_.end();
  }
  if (it == pending_.end()) {
    Group group;
    group.timestamp = timestamp;
    group.seq = seq;
    group.tick_wall_ns = tick_wall_ns;
    it = pending_.emplace(formula, group).first;
  }
  Group& group = it->second;
  if (pid == kMachinePid) {
    group.has_machine_row = true;
    group.machine_watts = watts;
  } else {
    group.sum_watts += watts;
  }
}

void Aggregator::emit(const std::string& formula, const Group& group) {
  AggregatedPower out;
  out.timestamp = group.timestamp;
  out.pid = kMachinePid;
  out.formula = formula;
  // Prefer the machine-scope estimate when the formula produced one (it
  // includes the idle floor); otherwise sum the per-process estimates.
  out.watts = group.has_machine_row ? group.machine_watts : group.sum_watts;
  out.seq = group.seq;
  bus_->publish(out_topic_, std::move(out), self());
  stage_.count();
  record_latency(group.tick_wall_ns);
}

void Aggregator::receive(actors::Envelope& envelope) {
  // SoA hot path: one EstimateBatch carries a whole tick's rows; absorbing
  // them front to back reproduces the scalar per-estimate message order.
  if (const auto* batch = envelope.payload.get<EstimateBatch>()) {
    if (!batch->features) return;
    const auto span = stage_.span(name(), batch->seq);
    const std::size_t rows = batch->features->rows();
    for (std::size_t i = 0; i < rows && i < batch->watts.size(); ++i) {
      absorb(batch->formula, batch->timestamp, batch->features->pid(i),
             batch->watts[i], batch->seq, batch->tick_wall_ns);
    }
    return;
  }

  const auto* estimate = envelope.payload.get<PowerEstimate>();
  if (estimate == nullptr) return;
  const auto span = stage_.span(name(), estimate->seq);
  absorb(estimate->formula, estimate->timestamp, estimate->pid, estimate->watts,
         estimate->seq, estimate->tick_wall_ns);
}

void Aggregator::post_stop() {
  for (const auto& [formula, group] : pending_) emit(formula, group);
  pending_.clear();
  for (auto& [formula, bucket] : pending_groups_) {
    if (!bucket.watts_by_group.empty()) emit_group_rows(formula);
  }
  pending_groups_.clear();
}

void FleetAggregator::receive(actors::Envelope& envelope) {
  const auto* row = envelope.payload.get<AggregatedPower>();
  if (row == nullptr) return;
  // Fleet dimension sums the per-host machine view; per-pid and per-group
  // rows stay host-local.
  if (row->pid != kMachinePid || !row->group.empty()) return;
  Bucket& bucket = pending_[{row->formula, row->timestamp}];
  bucket.watts += row->watts;
  bucket.seq = row->seq;
  ++bucket.hosts;
  if (bucket.hosts >= *host_count_) {
    emit(row->formula, row->timestamp, bucket);
    pending_.erase({row->formula, row->timestamp});
  }
}

void FleetAggregator::post_stop() {
  for (const auto& [key, bucket] : pending_) emit(key.first, key.second, bucket);
  pending_.clear();
}

void FleetAggregator::emit(const std::string& formula, util::TimestampNs timestamp,
                           const Bucket& bucket) {
  AggregatedPower out;
  out.timestamp = timestamp;
  out.pid = kMachinePid;
  out.group = "(fleet)";
  out.formula = formula;
  out.watts = bucket.watts;
  out.seq = bucket.seq;
  bus_->publish(out_topic_, std::move(out), self());
}

}  // namespace powerapi::api
