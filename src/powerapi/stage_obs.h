// Per-stage observability hooks shared by the pipeline actors.
//
// Every Sensor/Formula/Aggregator actor owns one StageObs, attached at
// construction when the pipeline was built with an Observability bundle.
// It provides the two things a stage records per message: a Chrome-trace
// span named after the actor (correlated across stages by the tick seq id)
// and a throughput counter. Unattached (or disabled) stages pay one branch
// per receive — the pipeline works identically without observability.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/observability.h"

namespace powerapi::api {

class StageObs {
 public:
  StageObs() = default;

  /// `obs` is non-owning and may be null (stage not observed). The counter
  /// ("pipeline.sensor_reports", "pipeline.estimates", ...) is interned once.
  void attach(obs::Observability* obs, std::string_view counter_name) {
    obs_ = obs;
    if (obs_ != nullptr) counter_ = &obs_->metrics.counter(counter_name);
  }

  bool active() const noexcept { return obs_ != nullptr && obs_->enabled(); }
  obs::Observability* observability() const noexcept { return obs_; }

  /// Span covering one receive(). The actor's name is interned lazily on
  /// the first traced message (spawn-time ctors don't know it yet).
  obs::ScopedSpan span(std::string_view actor_name, std::uint64_t seq) {
    if (!active()) return obs::ScopedSpan(nullptr, 0, 0);
    if (name_id_ == 0) name_id_ = obs_->trace.intern(actor_name);
    return obs::ScopedSpan(&obs_->trace, name_id_, seq);
  }

  void count(std::uint64_t n = 1) {
    if (counter_ != nullptr && obs_->enabled()) counter_->add(n);
  }

 private:
  obs::Observability* obs_ = nullptr;
  obs::TraceCollector::NameId name_id_ = 0;
  obs::Counter* counter_ = nullptr;
};

}  // namespace powerapi::api
