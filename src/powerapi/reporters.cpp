#include "powerapi/reporters.h"

#include <any>
#include <ostream>

namespace powerapi::api {

namespace {
const AggregatedPower* as_row(const actors::Envelope& envelope) {
  return envelope.payload.get<AggregatedPower>();
}
}  // namespace

void ConsoleReporter::receive(actors::Envelope& envelope) {
  const AggregatedPower* row = as_row(envelope);
  if (row == nullptr) return;
  (*out_) << "t=" << util::ns_to_seconds(row->timestamp) << "s ";
  if (!row->group.empty()) {
    (*out_) << "group=" << row->group;
  } else if (row->pid == kMachinePid) {
    (*out_) << "machine";
  } else {
    (*out_) << "pid=" << row->pid;
  }
  (*out_) << " " << row->formula << " " << row->watts << " W\n";
}

CsvReporter::CsvReporter(std::ostream& out) : writer_(out) {
  writer_.header({"timestamp_s", "pid", "group", "formula", "watts"});
}

void CsvReporter::receive(actors::Envelope& envelope) {
  const AggregatedPower* row = as_row(envelope);
  if (row == nullptr) return;
  writer_.row({util::format_double(util::ns_to_seconds(row->timestamp)),
               std::to_string(row->pid), row->group, row->formula,
               util::format_double(row->watts)});
}

void CallbackReporter::receive(actors::Envelope& envelope) {
  const AggregatedPower* row = as_row(envelope);
  if (row == nullptr) return;
  callback_(*row);
}

void MemoryReporter::receive(actors::Envelope& envelope) {
  const AggregatedPower* row = as_row(envelope);
  if (row == nullptr) return;
  rows_.push_back(*row);
}

std::vector<AggregatedPower> MemoryReporter::series(const std::string& formula) const {
  return series(formula, kMachinePid);
}

std::vector<AggregatedPower> MemoryReporter::series(const std::string& formula,
                                                    std::int64_t pid) const {
  std::vector<AggregatedPower> out;
  for (const auto& row : rows_) {
    // Group-dimension rows live in their own namespace: see group_series.
    if (row.formula == formula && row.pid == pid && row.group.empty()) {
      out.push_back(row);
    }
  }
  return out;
}

std::vector<AggregatedPower> MemoryReporter::group_series(const std::string& formula,
                                                          const std::string& group) const {
  std::vector<AggregatedPower> out;
  for (const auto& row : rows_) {
    if (row.formula == formula && row.group == group) out.push_back(row);
  }
  return out;
}

std::vector<double> MemoryReporter::watts_of(const std::vector<AggregatedPower>& rows) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row.watts);
  return out;
}

}  // namespace powerapi::api
