#include "powerapi/remote_reporter.h"

namespace powerapi::api {

void RemoteReporter::receive(actors::Envelope& envelope) {
  // Subscribable to either stage: aggregated rows (the usual reporter
  // position) or raw per-target estimates.
  if (const auto* row = envelope.payload.get<AggregatedPower>()) {
    client_->report(*row);
  } else if (const auto* estimate = envelope.payload.get<PowerEstimate>()) {
    client_->report(*estimate);
  }
}

}  // namespace powerapi::api
