#include "powerapi/obs_reporter.h"

#include <ostream>
#include <string>

#include "powerapi/messages.h"
#include "util/csv.h"

namespace powerapi::api {

namespace {

/// Escapes a metric name for a JSON key. Metric names are library-chosen
/// (dots, letters, digits), so this only defends against surprises.
void write_json_key(std::ostream& out, const std::string& name) {
  out << '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

MetricsReporter::MetricsReporter(obs::Observability& obs, Options options)
    : obs_(&obs), options_(options) {
  if (options_.every_n_ticks == 0) options_.every_n_ticks = 1;
}

void MetricsReporter::receive(actors::Envelope& envelope) {
  const auto* tick = envelope.payload.get<MonitorTick>();
  if (tick == nullptr) return;
  last_seq_ = tick->seq;
  if (++ticks_seen_ % options_.every_n_ticks != 0) return;
  write_snapshot(tick->seq);
}

void MetricsReporter::post_stop() {
  // Final flush: short runs (fewer ticks than the cadence) still report.
  write_snapshot(last_seq_);
}

void MetricsReporter::write_snapshot(std::uint64_t seq) {
  if (options_.out == nullptr) return;
  switch (options_.format) {
    case Format::kText: write_text(seq); break;
    case Format::kCsv: write_csv(seq); break;
    case Format::kJson: write_json(seq); break;
  }
}

void MetricsReporter::write_text(std::uint64_t seq) {
  std::ostream& out = *options_.out;
  const obs::MetricsSnapshot snap = obs_->metrics.snapshot();
  out << "# metrics snapshot (seq " << seq << ", " << snap.metrics.size()
      << " metrics)\n";
  for (const auto& metric : snap.metrics) {
    if (metric.kind == obs::MetricKind::kHistogram) {
      out << metric.name << " count=" << metric.hist.count
          << " mean=" << metric.hist.mean() << " p50=" << metric.hist.percentile(0.5)
          << " p99=" << metric.hist.percentile(0.99)
          << " overflow=" << metric.hist.overflow << "\n";
    } else {
      out << metric.name << " = " << metric.value << "\n";
    }
  }
  out.flush();
}

void MetricsReporter::write_csv(std::uint64_t seq) {
  std::ostream& out = *options_.out;
  // One header for the whole stream; CsvWriter would enforce one header per
  // writer instance, but snapshots span receive() calls, so track it here.
  if (!csv_header_written_) {
    util::CsvWriter writer(out);
    writer.header({"seq", "metric", "stat", "value"});
    csv_header_written_ = true;
  }
  const std::string seq_str = std::to_string(seq);
  const obs::MetricsSnapshot snap = obs_->metrics.snapshot();
  auto row = [&](const std::string& metric, std::string_view stat, double value) {
    out << seq_str << ',' << util::csv_escape(metric) << ',' << stat << ','
        << util::format_double(value) << '\n';
  };
  for (const auto& metric : snap.metrics) {
    if (metric.kind == obs::MetricKind::kHistogram) {
      row(metric.name, "count", static_cast<double>(metric.hist.count));
      row(metric.name, "mean", metric.hist.mean());
      row(metric.name, "p50", metric.hist.percentile(0.5));
      row(metric.name, "p99", metric.hist.percentile(0.99));
    } else {
      row(metric.name, "value", metric.value);
    }
  }
  out.flush();
}

void MetricsReporter::write_json(std::uint64_t seq) {
  std::ostream& out = *options_.out;
  const obs::MetricsSnapshot snap = obs_->metrics.snapshot();
  out << "{\"seq\":" << seq << ",\"metrics\":{";
  bool first = true;
  for (const auto& metric : snap.metrics) {
    if (!first) out << ',';
    first = false;
    write_json_key(out, metric.name);
    out << ':';
    if (metric.kind == obs::MetricKind::kHistogram) {
      out << "{\"count\":" << metric.hist.count << ",\"mean\":" << metric.hist.mean()
          << ",\"p50\":" << metric.hist.percentile(0.5)
          << ",\"p99\":" << metric.hist.percentile(0.99)
          << ",\"overflow\":" << metric.hist.overflow << '}';
    } else {
      out << metric.value;
    }
  }
  out << "}}\n";
  out.flush();
}

}  // namespace powerapi::api
