// Reporter actors: convert the pipeline's output into a consumable format —
// console lines, CSV rows, user callbacks, or in-memory series for tests
// and benches.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "actors/actor.h"
#include "powerapi/messages.h"
#include "util/csv.h"

namespace powerapi::api {

/// Human-readable rows on an ostream the caller owns (commonly std::cout).
class ConsoleReporter final : public actors::Actor {
 public:
  explicit ConsoleReporter(std::ostream& out) : out_(&out) {}

  void receive(actors::Envelope& envelope) override;

 private:
  std::ostream* out_;
};

/// CSV rows: timestamp_s, pid, formula, watts.
class CsvReporter final : public actors::Actor {
 public:
  explicit CsvReporter(std::ostream& out);

  void receive(actors::Envelope& envelope) override;

 private:
  util::CsvWriter writer_;
};

/// Invokes a user callback per aggregated row — the embedding API.
class CallbackReporter final : public actors::Actor {
 public:
  using Callback = std::function<void(const AggregatedPower&)>;
  explicit CallbackReporter(Callback callback) : callback_(std::move(callback)) {}

  void receive(actors::Envelope& envelope) override;

 private:
  Callback callback_;
};

/// Accumulates rows in memory, indexed by formula; the workhorse of tests
/// and the benchmark harnesses.
class MemoryReporter final : public actors::Actor {
 public:
  void receive(actors::Envelope& envelope) override;

  /// Rows for one formula, machine scope only, in arrival order.
  std::vector<AggregatedPower> series(const std::string& formula) const;
  /// Rows for one (formula, pid).
  std::vector<AggregatedPower> series(const std::string& formula, std::int64_t pid) const;
  /// Rows for one (formula, group) — kGroup aggregation output.
  std::vector<AggregatedPower> group_series(const std::string& formula,
                                            const std::string& group) const;
  /// Watts-only convenience extraction.
  static std::vector<double> watts_of(const std::vector<AggregatedPower>& rows);

  std::size_t total_rows() const noexcept { return rows_.size(); }
  const std::vector<AggregatedPower>& all() const noexcept { return rows_; }

 private:
  std::vector<AggregatedPower> rows_;
};

}  // namespace powerapi::api
