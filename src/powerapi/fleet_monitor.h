// FleetMonitor: one actor system monitoring N hosts concurrently.
//
// Each host gets its own pipeline under topic namespace "h<i>/". Hosts are
// grouped into chunks of Options.hosts_per_chunk, each owned by one
// ChunkAgent actor that advances its hosts' clocks and fires their monitor
// ticks in host order. run_for() sends every chunk agent an AdvanceHost
// command per time step and barriers on the actor system, so on the
// threaded work-stealing dispatcher each steal advances a whole host-chunk
// — amortizing dispatch overhead across hosts — while each host is only
// ever touched by its own chunk's actor (no locks needed).
// kManual mode runs the identical graph deterministically for tests; a
// host's series is bit-for-bit the same as a standalone kManual PowerMeter
// over an identically constructed host.
//
// The fleet dimension: a FleetAggregator subscribes to every host's
// "h<i>/power:aggregated" topic and re-publishes per-formula machine-power
// sums across hosts on "fleet/power:aggregated" once all hosts have
// reported a timestamp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "obs/observability.h"
#include "powerapi/pipeline.h"
#include "powerapi/reporters.h"

namespace powerapi::api {

/// Command to a HostAgent: advance your host by `duration`, then fire any
/// monitor ticks that became due.
struct AdvanceHost {
  util::DurationNs duration = 0;
};

class FleetMonitor {
 public:
  struct Options {
    actors::ActorSystem::Mode mode = actors::ActorSystem::Mode::kThreaded;
    std::size_t workers = 4;        ///< Threaded mode only.
    bool fleet_aggregation = true;  ///< Spawn the fleet-dimension aggregator.
    /// Own an obs::Observability bundle and wire it through the actor
    /// system, the event bus and every host pipeline: metrics, stage spans
    /// and the monitor's own CPU/power accounting, exportable via
    /// add_metrics_reporter() and write_chrome_trace().
    bool with_observability = false;
    /// Hosts advanced per ChunkAgent (and so per dispatcher steal). Larger
    /// chunks amortize per-message overhead; smaller chunks expose more
    /// parallelism to threaded workers. 0 is clamped to 1.
    std::size_t hosts_per_chunk = 8;
  };

  FleetMonitor() : FleetMonitor(Options{}) {}
  explicit FleetMonitor(Options options);
  ~FleetMonitor();

  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  /// Adds a host under namespace "h<index>/" and returns its index. The
  /// host must outlive the monitor. Add all hosts before the first
  /// run_for().
  std::size_t add_host(os::MonitorableHost& host, PipelineSpec spec);

  /// The host's pipeline: retarget monitoring, attach reporters, etc.
  Pipeline& pipeline(std::size_t host) { return *entries_[host]->pipeline; }

  // Per-host conveniences (mirroring PowerMeter's surface).
  void monitor(std::size_t host, std::vector<std::int64_t> pids);
  void monitor_all(std::size_t host);
  MemoryReporter& add_memory_reporter(std::size_t host);
  void add_callback_reporter(std::size_t host, CallbackReporter::Callback callback);

  /// Reporter over the fleet dimension: rows carry group "(fleet)" and the
  /// per-formula machine power summed across hosts.
  MemoryReporter& add_fleet_reporter();

  /// Forwards one host's aggregated rows to a caller-owned telemetry
  /// client (a distributed agent shipping its output to a collector).
  void add_remote_reporter(std::size_t host, net::TelemetryClient& client);
  /// Forwards the fleet dimension's "(fleet)" rows to the client.
  void add_fleet_remote_reporter(net::TelemetryClient& client);

  /// The fleet's observability bundle; null unless Options.with_observability.
  obs::Observability* observability() noexcept { return obs_.get(); }
  /// Snapshots the whole fleet's metrics to `out` every N ticks of host 0.
  /// Requires with_observability and at least one host.
  void add_metrics_reporter(std::ostream& out,
                            MetricsReporter::Format format = MetricsReporter::Format::kText,
                            std::uint64_t every_n_ticks = 1);
  /// Writes the recorded message-flow trace as Chrome trace_event JSON
  /// (open in chrome://tracing or Perfetto). Requires with_observability.
  void write_chrome_trace(std::ostream& out) const;

  /// Advances every host by `duration`, chunked at the smallest pipeline
  /// period, firing due ticks per host per chunk. Hosts advance and their
  /// pipelines run concurrently in threaded mode.
  void run_for(util::DurationNs duration);

  /// Like run_for, but invokes `on_chunk(advanced_ns)` after every chunk has
  /// settled — the fleet is quiescent, so the callback may safely mutate
  /// hosts (the governor's actuation channel) or inject messages; anything
  /// it sends is processed before the next chunk advances. Deterministic in
  /// kManual: chunk boundaries depend only on pipeline periods.
  void run_for(util::DurationNs duration,
               const std::function<void(util::DurationNs advanced_ns)>& on_chunk);

  /// Flushes every pipeline's pending aggregation groups, then the fleet
  /// aggregator's; call once after the last run_for.
  void finish();

  std::size_t host_count() const noexcept { return entries_.size(); }
  actors::ActorSystem& actor_system() noexcept { return actors_; }
  actors::EventBus& bus() noexcept { return bus_; }

 private:
  struct HostEntry {
    os::MonitorableHost* host = nullptr;
    std::unique_ptr<Pipeline> pipeline;
  };

  /// Blocks/drains until the system is quiescent (mode-appropriate).
  void settle();
  /// (Re)builds the chunk agents lazily: called at run_for, and a no-op
  /// unless the host count changed since the last build. A change stops the
  /// old generation of agents and spawns a fresh one over the new host set.
  void ensure_chunk_agents();

  Options options_;
  /// Declared before actors_/bus_: both unregister from it on destruction.
  std::unique_ptr<obs::Observability> obs_;
  actors::ActorSystem actors_;
  actors::EventBus bus_;
  actors::EventBus::TopicId fleet_topic_;
  std::vector<std::unique_ptr<HostEntry>> entries_;
  std::shared_ptr<std::size_t> host_count_;  ///< Read by the FleetAggregator.
  actors::ActorRef fleet_aggregator_;
  std::vector<actors::ActorRef> chunk_agents_;
  std::size_t chunked_hosts_ = 0;      ///< Host count the agents were built for.
  std::uint64_t chunk_generation_ = 0; ///< Keeps respawned agent names unique.
  bool finished_ = false;
};

}  // namespace powerapi::api
