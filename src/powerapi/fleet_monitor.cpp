#include "powerapi/fleet_monitor.h"

#include <algorithm>
#include <any>
#include <map>
#include <stdexcept>
#include <utility>

#include "powerapi/remote_reporter.h"

namespace powerapi::api {

namespace {

/// Advances a chunk of hosts and fires their due monitor ticks, in host
/// order. The only writer of its hosts: the single-threaded receive
/// guarantee makes host advancement race-free even on the work-stealing
/// dispatcher, and one AdvanceHost per chunk (instead of per host) amortizes
/// mailbox/steal overhead across hosts_per_chunk hosts.
class ChunkAgent final : public actors::Actor {
 public:
  struct HostSlot {
    os::MonitorableHost* host = nullptr;
    Pipeline* pipeline = nullptr;
  };

  explicit ChunkAgent(std::vector<HostSlot> slots) : slots_(std::move(slots)) {}

  void receive(actors::Envelope& envelope) override {
    const AdvanceHost* cmd = envelope.payload.get<AdvanceHost>();
    if (cmd == nullptr) return;
    for (const HostSlot& slot : slots_) {
      slot.host->advance(cmd->duration);
      slot.pipeline->publish_due_ticks();
    }
  }

 private:
  std::vector<HostSlot> slots_;
};

}  // namespace

FleetMonitor::FleetMonitor(Options options)
    : options_(options),
      obs_(options.with_observability ? std::make_unique<obs::Observability>()
                                      : nullptr),
      actors_(options.mode, options.workers, obs_.get()),
      bus_(actors_),
      fleet_topic_(bus_.intern("fleet/power:aggregated")),
      host_count_(std::make_shared<std::size_t>(0)) {
  if (obs_ != nullptr) bus_.set_observability(obs_.get());
  if (options_.fleet_aggregation) {
    fleet_aggregator_ = actors_.spawn_as<FleetAggregator>("fleet-aggregator", bus_,
                                                          fleet_topic_, host_count_);
  }
}

FleetMonitor::~FleetMonitor() {
  finish();
  actors_.shutdown();
  if (actors_.mode() == actors::ActorSystem::Mode::kManual) actors_.drain();
}

std::size_t FleetMonitor::add_host(os::MonitorableHost& host, PipelineSpec spec) {
  const std::size_t index = entries_.size();
  auto entry = std::make_unique<HostEntry>();
  entry->host = &host;
  // The fleet's bundle observes every host pipeline unless the spec brought
  // its own.
  if (obs_ != nullptr && spec.observability == nullptr) {
    spec.observability = obs_.get();
  }
  PipelineBuilder builder(actors_, bus_);
  entry->pipeline = builder.build(host, std::move(spec), "h" + std::to_string(index) + "/");
  if (options_.fleet_aggregation) {
    bus_.subscribe(entry->pipeline->aggregated_topic(), fleet_aggregator_);
  }
  entries_.push_back(std::move(entry));
  *host_count_ = entries_.size();
  return index;
}

void FleetMonitor::monitor(std::size_t host, std::vector<std::int64_t> pids) {
  entries_[host]->pipeline->monitor(std::move(pids));
}

void FleetMonitor::monitor_all(std::size_t host) {
  entries_[host]->pipeline->monitor_all();
}

MemoryReporter& FleetMonitor::add_memory_reporter(std::size_t host) {
  return entries_[host]->pipeline->add_memory_reporter();
}

void FleetMonitor::add_callback_reporter(std::size_t host,
                                         CallbackReporter::Callback callback) {
  entries_[host]->pipeline->add_callback_reporter(std::move(callback));
}

void FleetMonitor::add_remote_reporter(std::size_t host,
                                       net::TelemetryClient& client) {
  entries_[host]->pipeline->add_remote_reporter(client);
}

void FleetMonitor::add_fleet_remote_reporter(net::TelemetryClient& client) {
  if (!options_.fleet_aggregation) {
    throw std::logic_error("FleetMonitor: fleet_aggregation disabled in Options");
  }
  const auto reporter =
      actors_.spawn_as<RemoteReporter>("fleet/reporter-remote", client);
  bus_.subscribe(fleet_topic_, reporter);
}

MemoryReporter& FleetMonitor::add_fleet_reporter() {
  if (!options_.fleet_aggregation) {
    throw std::logic_error("FleetMonitor: fleet_aggregation disabled in Options");
  }
  auto owned = std::make_unique<MemoryReporter>();
  MemoryReporter& ref = *owned;
  const auto reporter = actors_.spawn("fleet/reporter-memory", std::move(owned));
  bus_.subscribe(fleet_topic_, reporter);
  return ref;
}

void FleetMonitor::add_metrics_reporter(std::ostream& out,
                                        MetricsReporter::Format format,
                                        std::uint64_t every_n_ticks) {
  if (obs_ == nullptr) {
    throw std::logic_error(
        "FleetMonitor::add_metrics_reporter: requires Options.with_observability");
  }
  if (entries_.empty()) {
    throw std::logic_error(
        "FleetMonitor::add_metrics_reporter: add a host first (the reporter "
        "snapshots on host 0's ticks)");
  }
  entries_.front()->pipeline->add_metrics_reporter(out, format, every_n_ticks);
}

void FleetMonitor::write_chrome_trace(std::ostream& out) const {
  if (obs_ == nullptr) {
    throw std::logic_error(
        "FleetMonitor::write_chrome_trace: requires Options.with_observability");
  }
  obs_->trace.write_chrome_trace(out);
}

void FleetMonitor::settle() {
  if (actors_.mode() == actors::ActorSystem::Mode::kThreaded) {
    actors_.await_idle();
  } else {
    actors_.drain();
  }
}

void FleetMonitor::ensure_chunk_agents() {
  if (chunked_hosts_ == entries_.size()) return;
  // Host count changed since the last build: retire the old generation and
  // spawn fresh agents over the new host set (the generation counter keeps
  // actor names unique across rebuilds).
  if (!chunk_agents_.empty()) {
    for (const auto& agent : chunk_agents_) actors_.stop(agent);
    chunk_agents_.clear();
    settle();
  }
  ++chunk_generation_;
  const std::size_t per_chunk = std::max<std::size_t>(options_.hosts_per_chunk, 1);
  for (std::size_t begin = 0; begin < entries_.size(); begin += per_chunk) {
    const std::size_t end = std::min(begin + per_chunk, entries_.size());
    std::vector<ChunkAgent::HostSlot> slots;
    slots.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      slots.push_back({entries_[i]->host, entries_[i]->pipeline.get()});
    }
    chunk_agents_.push_back(actors_.spawn_as<ChunkAgent>(
        "chunk" + std::to_string(chunk_generation_) + "/" +
            std::to_string(begin / per_chunk) + "/agent",
        std::move(slots)));
  }
  chunked_hosts_ = entries_.size();
}

void FleetMonitor::run_for(util::DurationNs duration) {
  run_for(duration, {});
}

void FleetMonitor::run_for(
    util::DurationNs duration,
    const std::function<void(util::DurationNs advanced_ns)>& on_chunk) {
  if (finished_) throw std::logic_error("FleetMonitor::run_for after finish()");
  if (entries_.empty() || duration <= 0) return;
  ensure_chunk_agents();
  // Chunk at the smallest monitoring period so no host's ticks coalesce
  // beyond what its own PowerMeter-equivalent run would produce.
  util::DurationNs chunk = entries_.front()->pipeline->ticker().period();
  for (const auto& entry : entries_) {
    chunk = std::min(chunk, entry->pipeline->ticker().period());
  }
  util::DurationNs advanced = 0;
  while (advanced < duration) {
    const util::DurationNs step = std::min(chunk, duration - advanced);
    for (const auto& agent : chunk_agents_) {
      actors_.tell(agent, actors::Payload(AdvanceHost{step}));
    }
    settle();  // Barrier: every host advanced, every pipeline drained.
    advanced += step;
    if (on_chunk) {
      // The fleet is quiescent here: callbacks may actuate hosts or tell
      // actors; settle again so their effects land before the next chunk.
      on_chunk(advanced);
      settle();
    }
  }
}

void FleetMonitor::finish() {
  if (finished_) return;
  finished_ = true;
  settle();
  // Host aggregators flush first (their pending groups feed the fleet
  // dimension), then the fleet aggregator flushes its partial buckets.
  for (const auto& entry : entries_) entry->pipeline->finish();
  settle();
  if (options_.fleet_aggregation) actors_.stop(fleet_aggregator_);
  settle();
}

}  // namespace powerapi::api
