// Formula actors: turn SensorReports into PowerEstimates.
//
// Each formula publishes on the "power:estimate" topic of its pipeline's
// namespace; the builder interns the topic and injects the id.
#pragma once

#include <memory>

#include "actors/actor.h"
#include "actors/event_bus.h"
#include "baselines/cpuload_model.h"
#include "baselines/estimator.h"
#include "model/model_registry.h"
#include "model/power_model.h"
#include "periph/disk.h"
#include "periph/nic.h"
#include "powerapi/messages.h"
#include "powerapi/stage_obs.h"

namespace powerapi::api {

/// The paper's formula: per-frequency linear regression over HPC rates.
/// Machine-scope reports get idle + activity; process reports get activity
/// only (the paper attributes the idle floor to the machine, not to any
/// process).
///
/// The formula does not own a model copy: it reads the registry's current
/// snapshot per report, so a CalibrationActor refit (or any other
/// registry.publish) takes effect on the very next estimate, and a fleet's
/// formulas can all share one registry. Every estimate carries the snapshot
/// version that produced it.
class RegressionFormula final : public actors::Actor {
 public:
  RegressionFormula(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                    std::shared_ptr<const model::ModelRegistry> registry,
                    obs::Observability* obs = nullptr);

  void receive(actors::Envelope& envelope) override;

 private:
  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;
  std::shared_ptr<const model::ModelRegistry> registry_;
  StageObs stage_;
};

/// Adapter formula around any baseline MachinePowerEstimator (CPU-load,
/// Bertran, HAPPY). Machine scope only — these models are machine models.
class EstimatorFormula final : public actors::Actor {
 public:
  EstimatorFormula(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                   std::shared_ptr<const baselines::MachinePowerEstimator> estimator,
                   obs::Observability* obs = nullptr);

  void receive(actors::Envelope& envelope) override;

 private:
  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;
  std::shared_ptr<const baselines::MachinePowerEstimator> estimator_;
  StageObs stage_;
};

/// Datasheet-based IO power formula: unlike CPU cores, disk and NIC power
/// characteristics are published by their vendors, so the component model
/// needs no regression — base power plus per-op and per-byte energies from
/// the device parameters. Consumes SensorKind::kIo reports, emits
/// machine-scope "io-datasheet" estimates of the peripheral power share.
class IoFormula final : public actors::Actor {
 public:
  IoFormula(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
            periph::DiskParams disk, periph::NicParams nic,
            obs::Observability* obs = nullptr);

  void receive(actors::Envelope& envelope) override;

 private:
  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;
  periph::DiskParams disk_;
  periph::NicParams nic_;
  StageObs stage_;
};

/// Pass-through formula for direct meters (RAPL): the measured watts ARE
/// the estimate — with the meter's scope limitation (package, machine-wide).
class MeterFormula final : public actors::Actor {
 public:
  MeterFormula(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
               std::string formula_name, obs::Observability* obs = nullptr);

  void receive(actors::Envelope& envelope) override;

 private:
  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;
  std::string formula_name_;
  StageObs stage_;
};

}  // namespace powerapi::api
