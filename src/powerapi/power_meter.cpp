#include "powerapi/power_meter.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace powerapi::api {

PowerMeter::PowerMeter(os::MonitorableHost& host, model::CpuPowerModel model,
                       Config config)
    : host_(&host),
      config_(config),
      actors_(actors::ActorSystem::Mode::kManual, 2, config.observability),
      bus_(actors_) {
  PipelineSpec spec = std::move(config);
  if (!model.empty()) spec.model = std::move(model);
  if (spec.observability != nullptr) bus_.set_observability(spec.observability);
  pipeline_ = PipelineBuilder(actors_, bus_).build(*host_, std::move(spec));
}

PowerMeter::~PowerMeter() {
  finish();
  // Stop every actor while the bus is alive; the base destructor would do
  // this too, but only after bus_ is already gone.
  actors_.shutdown();
  actors_.drain();
}

void PowerMeter::monitor(std::vector<std::int64_t> pids) {
  pipeline_->monitor(std::move(pids));
}

void PowerMeter::monitor_all() { pipeline_->monitor_all(); }

void PowerMeter::add_estimator(
    std::shared_ptr<const baselines::MachinePowerEstimator> estimator) {
  pipeline_->add_estimator(std::move(estimator));
}

void PowerMeter::add_console_reporter(std::ostream& out) {
  pipeline_->add_console_reporter(out);
}

void PowerMeter::add_csv_reporter(std::ostream& out) {
  pipeline_->add_csv_reporter(out);
}

void PowerMeter::add_callback_reporter(CallbackReporter::Callback callback) {
  pipeline_->add_callback_reporter(std::move(callback));
}

MemoryReporter& PowerMeter::add_memory_reporter() {
  return pipeline_->add_memory_reporter();
}

void PowerMeter::add_remote_reporter(net::TelemetryClient& client) {
  pipeline_->add_remote_reporter(client);
}

void PowerMeter::run_for(util::DurationNs duration) {
  if (finished_) throw std::logic_error("PowerMeter::run_for after finish()");
  const util::TimestampNs deadline = host_->now_ns() + duration;
  while (host_->now_ns() < deadline) {
    // Advance the host by one monitoring period (in host ticks), then fire.
    const util::DurationNs chunk =
        std::min<util::DurationNs>(config_.period, deadline - host_->now_ns());
    host_->advance(chunk);
    pipeline_->publish_due_ticks();
    actors_.drain();
  }
}

void PowerMeter::finish() {
  if (finished_) return;
  finished_ = true;
  pipeline_->finish();  // Aggregator post_stop flushes pending groups.
  actors_.drain();
}

}  // namespace powerapi::api
