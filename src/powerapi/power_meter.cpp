#include "powerapi/power_meter.h"

#include <stdexcept>

namespace powerapi::api {

PowerMeter::PowerMeter(os::System& system, model::CpuPowerModel model, Config config)
    : system_(&system),
      config_(config),
      actors_(actors::ActorSystem::Mode::kManual),
      bus_(actors_),
      tick_topic_(bus_.intern("tick")),
      backend_(system),
      fixed_targets_(std::make_shared<std::vector<std::int64_t>>()),
      ticker_(system.now_ns(), config.period) {
  util::Rng rng(config_.seed);

  // Targets provider shared by the sensors.
  auto targets = [this]() -> std::vector<std::int64_t> {
    if (monitor_all_) return system_->pids();
    return *fixed_targets_;
  };

  // --- Sensors ---
  const auto hpc_sensor = actors_.spawn_as<HpcSensor>("sensor-hpc", bus_, backend_,
                                                      targets, system_);
  bus_.subscribe("tick", hpc_sensor);

  if (config_.with_powerspy) {
    auto meter = std::make_shared<powermeter::PowerSpy>(
        [sys = system_] { return sys->total_energy_joules(); },
        [sys = system_] { return sys->now_ns(); }, rng.fork(1));
    const auto sensor =
        actors_.spawn_as<PowerSpySensor>("sensor-powerspy", bus_, std::move(meter));
    bus_.subscribe("tick", sensor);
    const auto formula = actors_.spawn_as<MeterFormula>("formula-powerspy", bus_, "powerspy");
    bus_.subscribe("sensor:powerspy", formula);
  }

  if (config_.with_rapl) {
    auto msr = std::make_shared<powermeter::RaplMsr>(
        [sys = system_] { return sys->machine().package_energy_joules(); },
        [sys = system_] { return sys->now_ns(); });
    const auto sensor = actors_.spawn_as<RaplSensor>("sensor-rapl", bus_, std::move(msr));
    bus_.subscribe("tick", sensor);
    const auto formula = actors_.spawn_as<MeterFormula>("formula-rapl", bus_, "rapl");
    bus_.subscribe("sensor:rapl", formula);
  }

  if (config_.with_io && system_->disk() != nullptr) {
    const auto sensor = actors_.spawn_as<IoSensor>("sensor-io", bus_, *system_);
    bus_.subscribe("tick", sensor);
    const auto formula = actors_.spawn_as<IoFormula>(
        "formula-io", bus_, system_->disk()->params(), system_->nic()->params());
    bus_.subscribe("sensor:io", formula);
  }

  if (config_.with_cpu_load) {
    const auto sensor =
        actors_.spawn_as<CpuLoadSensor>("sensor-cpu-load", bus_, *system_, targets);
    bus_.subscribe("tick", sensor);
  }

  // --- The paper's formula ---
  if (!model.empty()) {
    const auto formula =
        actors_.spawn_as<RegressionFormula>("formula-hpc", bus_, std::move(model));
    bus_.subscribe("sensor:hpc", formula);
  }

  // --- Aggregation ---
  Aggregator::GroupResolver group_of = [sys = system_](std::int64_t pid) {
    const auto stat = sys->proc_stat(pid);
    return stat ? stat->group : std::string();
  };
  aggregator_ = actors_.spawn_as<Aggregator>("aggregator", bus_, config_.dimension,
                                             std::move(group_of));
  bus_.subscribe("power:estimate", aggregator_);
}

PowerMeter::~PowerMeter() {
  finish();
  // Stop every actor while the bus is alive; the base destructor would do
  // this too, but only after bus_ is already gone.
  actors_.shutdown();
  actors_.drain();
}

void PowerMeter::monitor(std::vector<std::int64_t> pids) {
  monitor_all_ = false;
  *fixed_targets_ = std::move(pids);
}

void PowerMeter::monitor_all() { monitor_all_ = true; }

void PowerMeter::add_estimator(
    std::shared_ptr<const baselines::MachinePowerEstimator> estimator) {
  if (!estimator) throw std::invalid_argument("PowerMeter::add_estimator: null estimator");
  const std::string name = "formula-" + estimator->name();
  const auto formula =
      actors_.spawn_as<EstimatorFormula>(name, bus_, "sensor:hpc", std::move(estimator));
  bus_.subscribe("sensor:hpc", formula);
}

void PowerMeter::add_console_reporter(std::ostream& out) {
  const auto reporter = actors_.spawn_as<ConsoleReporter>("reporter-console", out);
  bus_.subscribe("power:aggregated", reporter);
}

void PowerMeter::add_csv_reporter(std::ostream& out) {
  const auto reporter = actors_.spawn_as<CsvReporter>("reporter-csv", out);
  bus_.subscribe("power:aggregated", reporter);
}

void PowerMeter::add_callback_reporter(CallbackReporter::Callback callback) {
  const auto reporter =
      actors_.spawn_as<CallbackReporter>("reporter-callback", std::move(callback));
  bus_.subscribe("power:aggregated", reporter);
}

MemoryReporter& PowerMeter::add_memory_reporter() {
  auto owned = std::make_unique<MemoryReporter>();
  MemoryReporter& ref = *owned;
  const auto reporter = actors_.spawn("reporter-memory", std::move(owned));
  bus_.subscribe("power:aggregated", reporter);
  return ref;
}

void PowerMeter::run_for(util::DurationNs duration) {
  if (finished_) throw std::logic_error("PowerMeter::run_for after finish()");
  const util::TimestampNs deadline = system_->now_ns() + duration;
  while (system_->now_ns() < deadline) {
    // Advance the OS by one monitoring period (in OS ticks), then fire.
    const util::DurationNs chunk =
        std::min<util::DurationNs>(config_.period, deadline - system_->now_ns());
    system_->run_for(chunk);
    const std::uint64_t due = ticker_.due(system_->now_ns());
    for (std::uint64_t i = 0; i < due; ++i) {
      bus_.publish(tick_topic_, MonitorTick{system_->now_ns()});
    }
    actors_.drain();
  }
}

void PowerMeter::finish() {
  if (finished_) return;
  finished_ = true;
  actors_.stop(aggregator_);  // post_stop flushes pending groups.
  actors_.drain();
}

}  // namespace powerapi::api
