#include "powerapi/calibration.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace powerapi::api {

namespace {
/// Unmatched pending pairs older than this many entries are abandoned (a
/// dropped meter sample leaves a feature report forever half-paired).
constexpr std::size_t kMaxPending = 64;
}  // namespace

CalibrationActor::CalibrationActor(actors::EventBus& bus,
                                   actors::EventBus::TopicId out_topic,
                                   std::shared_ptr<model::ModelRegistry> registry,
                                   CalibrationOptions options)
    : bus_(&bus),
      out_topic_(out_topic),
      registry_(std::move(registry)),
      options_(std::move(options)) {
  if (!registry_) throw std::invalid_argument("CalibrationActor: null registry");
  if (options_.events.empty()) {
    options_.events.assign(hpc::paper_events().begin(), hpc::paper_events().end());
  }
  if (options_.drift_window == 0) {
    throw std::invalid_argument("CalibrationActor: zero drift window");
  }
  if (options_.min_samples_per_fit < options_.events.size() + 2) {
    // Below this the fit is under-determined by construction; raise the gate.
    options_.min_samples_per_fit = options_.events.size() + 2;
  }
}

void CalibrationActor::receive(actors::Envelope& envelope) {
  // SoA hot path: the HPC sensor publishes one SensorBatch per tick; only
  // its machine row matters for calibration, gathered back into the scalar
  // feature struct the accumulators take.
  if (const auto* batch = envelope.payload.get<SensorBatch>()) {
    if (batch->sensor != SensorKind::kHpc || !batch->features) return;
    for (std::size_t i = 0; i < batch->features->rows(); ++i) {
      if (batch->features->pid(i) >= 0) continue;
      Pending& entry = pending_[batch->timestamp];
      entry.features = batch->features->row(i);
      complete_if_paired(batch->timestamp, entry);
      break;
    }
    while (pending_.size() > kMaxPending) pending_.erase(pending_.begin());
    return;
  }

  const auto* report = envelope.payload.get<SensorReport>();
  if (report == nullptr || report->pid != kMachinePid) return;

  Pending* entry = nullptr;
  switch (report->sensor) {
    case SensorKind::kHpc:
      entry = &pending_[report->timestamp];
      entry->features = *report;  // Slices to the feature layer: exactly what we keep.
      break;
    case SensorKind::kPowerSpy:
    case SensorKind::kRapl:
      entry = &pending_[report->timestamp];
      entry->measured_watts = report->measured_watts;
      break;
    default:
      return;
  }

  complete_if_paired(report->timestamp, *entry);
  while (pending_.size() > kMaxPending) pending_.erase(pending_.begin());
}

void CalibrationActor::complete_if_paired(util::TimestampNs timestamp, Pending& entry) {
  if (!entry.features || !entry.measured_watts) return;
  const model::FeatureVector features = *entry.features;
  const double watts = *entry.measured_watts;
  // Everything at or before a completed pair is done: sensors publish per
  // tick, and ticks drain in order in both dispatcher modes.
  pending_.erase(pending_.begin(), pending_.upper_bound(timestamp));
  on_pair(timestamp, features, watts);
}

void CalibrationActor::on_pair(util::TimestampNs timestamp,
                               const model::FeatureVector& features,
                               double measured_watts) {
  const auto snapshot = registry_->current();

  // Rolling drift: how far is the deployed model from the meter right now?
  const double estimate = snapshot->model.empty()
                              ? snapshot->model.idle_watts()
                              : snapshot->model.estimate_machine(features);
  const double error = std::abs(estimate - measured_watts);
  drift_errors_.push_back(error);
  drift_error_sum_ += error;
  while (drift_errors_.size() > options_.drift_window) {
    drift_error_sum_ -= drift_errors_.front();
    drift_errors_.pop_front();
  }

  // Accumulate the paired sample into its frequency bin's streaming fit.
  const std::int64_t key = bin_key(features.frequency_hz);
  auto [it, inserted] = bins_.try_emplace(
      key, Bin{features.frequency_hz, mathx::IncrementalOls(options_.events.size())});
  if (inserted && options_.forgetting != 1.0) {
    it->second.accumulator.set_forgetting(options_.forgetting);
  }
  std::vector<double> row(options_.events.size());
  for (std::size_t c = 0; c < options_.events.size(); ++c) {
    row[c] = model::rate_of(features.rates, options_.events[c]);
  }
  it->second.accumulator.add(row, measured_watts - snapshot->model.idle_watts());
  ++paired_samples_;

  // Drift trigger: rolling window full and beyond threshold, with the
  // refit-interval floor respected.
  if (drift_errors_.size() < options_.drift_window) return;
  if (drift_error_sum_ / static_cast<double>(drift_errors_.size()) <=
      options_.drift_threshold_watts) {
    return;
  }
  if (last_refit_ && timestamp - *last_refit_ < options_.min_refit_interval) return;
  refit(timestamp, features);
}

void CalibrationActor::refit(util::TimestampNs timestamp,
                             const model::FeatureVector& latest) {
  // Warmup gate, applied to the regime that is actually drifting: the bin
  // the latest sample landed in must be ready, or the swap would not
  // address the error that triggered it.
  const auto latest_it = bins_.find(bin_key(latest.frequency_hz));
  if (latest_it == bins_.end()) return;
  const auto ready = [this](const Bin& bin) {
    return bin.accumulator.count() >= options_.min_samples_per_fit &&
           bin.accumulator.well_determined();
  };
  if (!ready(latest_it->second)) return;

  const auto snapshot = registry_->current();
  // Start from the deployed formulas; every ready bin replaces (or adds)
  // its frequency's formula, bins still warming up keep the old one.
  std::vector<model::FrequencyFormula> formulas = snapshot->model.formulas();
  std::size_t bins_refit = 0;
  for (const auto& [key, bin] : bins_) {
    if (!ready(bin)) continue;
    mathx::FitResult fit;
    try {
      fit = options_.non_negative ? bin.accumulator.solve_nonnegative()
                                  : bin.accumulator.solve();
    } catch (const std::exception& error) {
      POWERAPI_LOG_DEBUG("calibration")
          << "skipping bin " << bin.frequency_hz << " Hz: " << error.what();
      continue;
    }
    model::FrequencyFormula formula;
    formula.frequency_hz = bin.frequency_hz;
    formula.events = options_.events;
    formula.coefficients = fit.coefficients;
    formula.r_squared = fit.r_squared;

    const auto existing = std::find_if(
        formulas.begin(), formulas.end(), [&](const model::FrequencyFormula& f) {
          return bin_key(f.frequency_hz) == key;
        });
    if (existing != formulas.end()) {
      *existing = std::move(formula);
    } else {
      formulas.push_back(std::move(formula));
    }
    ++bins_refit;
  }
  if (bins_refit == 0) return;

  const double pre_swap_error =
      drift_error_sum_ / static_cast<double>(drift_errors_.size());
  const auto version = registry_->publish(
      model::CpuPowerModel(snapshot->model.idle_watts(), std::move(formulas)));
  last_refit_ = timestamp;
  // The error window measured the OLD model; start clean so the next
  // trigger reflects the swapped-in fit.
  drift_errors_.clear();
  drift_error_sum_ = 0.0;

  POWERAPI_LOG_INFO("calibration")
      << "swapped model v" << version << " (" << bins_refit << " bins, rolling error "
      << pre_swap_error << " W)";

  ModelUpdated update;
  update.timestamp = timestamp;
  update.version = version;
  update.pre_swap_error_watts = pre_swap_error;
  update.samples_used = paired_samples_;
  update.bins_refit = bins_refit;
  bus_->publish(out_topic_, update, self());
}

}  // namespace powerapi::api
