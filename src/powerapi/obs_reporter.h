// MetricsReporter: a Reporter-stage actor for the monitor's own metrics.
//
// Subscribed to a pipeline's tick topic, it takes a registry snapshot every
// N ticks and writes it in one of three formats: human-readable text, CSV
// rows (via util::CsvWriter, one row per metric/statistic) or JSON lines
// (one snapshot object per line). Snapshots run the registry's collectors,
// so every emission includes the SelfMonitor's "self.*" gauges — the
// monitor reports its own cost in the same stream as everything else. A
// final snapshot is written at post_stop so short runs always emit one.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "actors/actor.h"
#include "obs/observability.h"

namespace powerapi::api {

class MetricsReporter final : public actors::Actor {
 public:
  enum class Format { kText, kCsv, kJson };

  struct Options {
    /// Must outlive the actor (the final snapshot is written at post_stop,
    /// i.e. during actor-system shutdown).
    std::ostream* out = nullptr;
    Format format = Format::kText;
    std::uint64_t every_n_ticks = 1;  ///< Snapshot cadence (0 behaves as 1).
  };

  MetricsReporter(obs::Observability& obs, Options options);

  void receive(actors::Envelope& envelope) override;
  void post_stop() override;

 private:
  void write_snapshot(std::uint64_t seq);
  void write_text(std::uint64_t seq);
  void write_csv(std::uint64_t seq);
  void write_json(std::uint64_t seq);

  obs::Observability* obs_;
  Options options_;
  std::uint64_t ticks_seen_ = 0;
  std::uint64_t last_seq_ = 0;
  bool csv_header_written_ = false;
};

}  // namespace powerapi::api
