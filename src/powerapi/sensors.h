// Sensor actors: turn MonitorTicks into SensorReports on the event bus.
//
// Every sensor publishes on an output topic the builder interns for it —
// "sensor:hpc" in a standalone pipeline, "h3/sensor:hpc" inside a fleet
// namespace — and keeps its window bookkeeping in SamplingWindow instances
// rather than hand-rolled primed/last fields.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "actors/actor.h"
#include "actors/event_bus.h"
#include "hpc/backend.h"
#include "model/feature_matrix.h"
#include "os/monitorable_host.h"
#include "powerapi/messages.h"
#include "powerapi/sampling_window.h"
#include "powerapi/stage_obs.h"
#include "powermeter/powerspy.h"
#include "powermeter/rapl.h"

namespace powerapi::api {

/// Supplies the set of pids to monitor at each tick (dynamic: processes come
/// and go). Returning an empty vector monitors only the machine scope.
using TargetsFn = std::function<std::vector<std::int64_t>()>;

/// Reads HPC counters for each target plus the machine scope in one batched
/// lane gather, converts the per-window deltas into rates lane-by-lane and
/// publishes ONE SensorKind::kHpc SensorBatch per tick on `out_topic` (row
/// 0 = machine scope, then the targets in monitoring order — the scalar
/// publish order).
///
/// Window bookkeeping is kept per row as parallel arrays instead of a
/// pid→SamplingWindow map: prime/stale/regression semantics are identical
/// to SamplingWindow's (documented per branch in the implementation), and a
/// target-set change re-aligns the previous-snapshot lanes by pid so
/// surviving targets keep their windows.
///
/// `host` is optional: when present (simulation) it supplies frequency,
/// utilization and — when the backend's batch read does not — the SMT
/// co-residency and cpu-time side lanes; a live deployment passes nullptr
/// and those fields default.
class HpcSensor final : public actors::Actor {
 public:
  HpcSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
            hpc::CounterBackend& backend, TargetsFn targets,
            const os::MonitorableHost* host, obs::Observability* obs = nullptr);

  void receive(actors::Envelope& envelope) override;

 private:
  void observe(const MonitorTick& tick);
  void realign_rows(const std::vector<std::int64_t>& new_pids);

  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;
  hpc::CounterBackend* backend_;
  TargetsFn targets_;
  const os::MonitorableHost* host_;

  // Row-parallel window state. pids_[0] is always kMachinePid.
  std::vector<std::int64_t> pids_;
  simcpu::CounterLanes cur_;
  simcpu::CounterLanes prev_;
  std::vector<util::TimestampNs> last_time_;
  std::vector<std::uint8_t> primed_;
  // Per-tick scratch.
  std::vector<double> window_seconds_;
  std::vector<std::uint8_t> completed_;
  simcpu::CounterLanes realign_lanes_;
  std::vector<util::TimestampNs> realign_last_time_;
  std::vector<std::uint8_t> realign_primed_;
  model::FeatureMatrix extract_scratch_;

  StageObs stage_;
};

/// Publishes the (simulated) wall meter's reading as SensorKind::kPowerSpy.
class PowerSpySensor final : public actors::Actor {
 public:
  PowerSpySensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                 std::shared_ptr<powermeter::PowerSpy> meter,
                 obs::Observability* obs = nullptr);

  void receive(actors::Envelope& envelope) override;

 private:
  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;
  std::shared_ptr<powermeter::PowerSpy> meter_;
  StageObs stage_;
};

/// Reads the emulated RAPL MSR, differentiates energy into watts and
/// publishes SensorKind::kRapl. The raw MSR value is a wrapping 32-bit
/// counter, so a decrease is a wraparound, not a reset — energy_between
/// unwraps it and the window never re-primes.
class RaplSensor final : public actors::Actor {
 public:
  RaplSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
             std::shared_ptr<powermeter::RaplMsr> msr,
             obs::Observability* obs = nullptr);

  void receive(actors::Envelope& envelope) override;

 private:
  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;
  std::shared_ptr<powermeter::RaplMsr> msr_;
  SamplingWindow<std::uint32_t> window_;
  StageObs stage_;
};

/// Differences the host's iostat-style IO counters into machine-scope rates
/// (the disk/network dimension of the paper's component splitting).
/// Publishes nothing when the host has no peripherals.
class IoSensor final : public actors::Actor {
 public:
  IoSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
           const os::MonitorableHost& host, obs::Observability* obs = nullptr);

  void receive(actors::Envelope& envelope) override;

 private:
  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;
  const os::MonitorableHost* host_;
  SamplingWindow<os::IoTotals> window_;
  StageObs stage_;
};

/// Publishes per-target CPU utilization as SensorKind::kCpuLoad (the input
/// of the Versick-style baseline formula). Simulation only.
class CpuLoadSensor final : public actors::Actor {
 public:
  CpuLoadSensor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                const os::MonitorableHost& host, TargetsFn targets,
                obs::Observability* obs = nullptr);

  void receive(actors::Envelope& envelope) override;

 private:
  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;
  const os::MonitorableHost* host_;
  TargetsFn targets_;
  std::map<std::int64_t, SamplingWindow<util::DurationNs>> windows_;
  StageObs stage_;
};

}  // namespace powerapi::api
