// Sensor actors: turn MonitorTicks into SensorReports on the event bus.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "actors/actor.h"
#include "actors/event_bus.h"
#include "hpc/backend.h"
#include "os/system.h"
#include "powerapi/messages.h"
#include "powermeter/powerspy.h"
#include "powermeter/rapl.h"

namespace powerapi::api {

/// Supplies the set of pids to monitor at each tick (dynamic: processes come
/// and go). Returning an empty vector monitors only the machine scope.
using TargetsFn = std::function<std::vector<std::int64_t>()>;

/// Reads HPC counters for each target plus the machine scope, converts the
/// per-window deltas into rates and publishes "sensor:hpc" reports.
///
/// `system` is optional: when present (simulation) it supplies frequency,
/// utilization and the SMT co-residency signal; a live deployment passes
/// nullptr and those fields default.
class HpcSensor final : public actors::Actor {
 public:
  HpcSensor(actors::EventBus& bus, hpc::CounterBackend& backend, TargetsFn targets,
            const os::System* system);

  void receive(actors::Envelope& envelope) override;

 private:
  struct TargetState {
    hpc::EventValues last_values;
    std::uint64_t last_smt_cycles = 0;
    util::DurationNs last_cpu_time = 0;
    util::TimestampNs last_time = 0;
    bool primed = false;
  };

  void observe(std::int64_t pid, util::TimestampNs now);

  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;  ///< "sensor:hpc", interned once.
  hpc::CounterBackend* backend_;
  TargetsFn targets_;
  const os::System* system_;
  std::map<std::int64_t, TargetState> states_;
};

/// Publishes the (simulated) wall meter's reading on "sensor:powerspy".
class PowerSpySensor final : public actors::Actor {
 public:
  PowerSpySensor(actors::EventBus& bus, std::shared_ptr<powermeter::PowerSpy> meter);

  void receive(actors::Envelope& envelope) override;

 private:
  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;  ///< "sensor:powerspy", interned once.
  std::shared_ptr<powermeter::PowerSpy> meter_;
};

/// Reads the emulated RAPL MSR, differentiates energy into watts and
/// publishes "sensor:rapl".
class RaplSensor final : public actors::Actor {
 public:
  RaplSensor(actors::EventBus& bus, std::shared_ptr<powermeter::RaplMsr> msr);

  void receive(actors::Envelope& envelope) override;

 private:
  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;  ///< "sensor:rapl", interned once.
  std::shared_ptr<powermeter::RaplMsr> msr_;
  std::uint32_t last_raw_ = 0;
  util::TimestampNs last_time_ = 0;
  bool primed_ = false;
};

/// Differences the OS's iostat-style IO counters into machine-scope rates
/// on "sensor:io" (the disk/network dimension of the paper's component
/// splitting). Publishes nothing when the system has no peripherals.
class IoSensor final : public actors::Actor {
 public:
  IoSensor(actors::EventBus& bus, const os::System& system);

  void receive(actors::Envelope& envelope) override;

 private:
  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;  ///< "sensor:io", interned once.
  const os::System* system_;
  os::System::IoTotals last_;
  util::TimestampNs last_time_ = 0;
  bool primed_ = false;
};

/// Publishes per-target CPU utilization on "sensor:cpu-load" (the input of
/// the Versick-style baseline formula). Simulation only.
class CpuLoadSensor final : public actors::Actor {
 public:
  CpuLoadSensor(actors::EventBus& bus, const os::System& system, TargetsFn targets);

  void receive(actors::Envelope& envelope) override;

 private:
  struct TargetState {
    util::DurationNs last_cpu_time = 0;
    util::TimestampNs last_time = 0;
    bool primed = false;
  };

  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;  ///< "sensor:cpu-load", interned once.
  const os::System* system_;
  TargetsFn targets_;
  std::map<std::int64_t, TargetState> states_;
};

}  // namespace powerapi::api
