// Declarative monitoring-pipeline assembly.
//
// The paper's toolkit is composable middleware: Sensor → Formula →
// Aggregator → Reporter actors wired over the event bus. PipelineSpec is
// the declarative description of one such graph (which sensors, which
// formulas, how to aggregate); PipelineBuilder assembles it over any
// os::MonitorableHost into a Pipeline — the runtime handle that drives
// ticks, retargets monitoring and attaches reporters.
//
// Topic namespaces make the graph multi-host capable: a standalone
// PowerMeter builds under the empty namespace ("sensor:hpc"), a
// FleetMonitor builds host i under "h<i>/" ("h3/sensor:hpc"), so N
// independent pipelines share one actor system and one bus without
// crosstalk. All topics are interned once at build time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "actors/timers.h"
#include "baselines/estimator.h"
#include "hpc/backend.h"
#include "model/model_registry.h"
#include "model/power_model.h"
#include "obs/observability.h"
#include "os/monitorable_host.h"
#include "powerapi/aggregators.h"
#include "powerapi/calibration.h"
#include "powerapi/messages.h"
#include "powerapi/obs_reporter.h"
#include "powerapi/reporters.h"
#include "util/units.h"

namespace powerapi::net {
class TelemetryClient;
}  // namespace powerapi::net

namespace powerapi::api {

/// Declarative description of one host's monitoring pipeline.
struct PipelineSpec {
  util::DurationNs period = util::ms_to_ns(250);  ///< Monitoring period.
  bool with_powerspy = true;   ///< Reference wall meter ("powerspy" series).
  bool with_rapl = false;      ///< Emulated RAPL package meter ("rapl").
  bool with_cpu_load = false;  ///< CPU-load sensor (for baseline formulas).
  /// IO sensor + datasheet formula ("io-datasheet" series); only emits on
  /// hosts built with peripherals.
  bool with_io = false;
  AggregationDimension dimension = AggregationDimension::kTimestamp;
  std::uint64_t seed = 7;      ///< Seeds the meter noise stream.
  /// The paper's regression formula; empty → no "powerapi-hpc" series
  /// (unless `registry` is set, which wins).
  model::CpuPowerModel model;
  /// Shared model registry. When set, this pipeline's RegressionFormula
  /// reads through it (and `model` is ignored) — a fleet passes the SAME
  /// registry to every host's spec so all hosts share one immutable model
  /// snapshot instead of owning per-host copies. When null, the pipeline
  /// wraps `model` in a private registry.
  std::shared_ptr<model::ModelRegistry> registry;
  /// Online calibration: pair hpc features with meter ground truth, refit
  /// on drift and hot-swap the registry. Requires a registry (or `model`)
  /// plus a ground-truth meter (powerspy preferred, else rapl).
  bool with_calibration = false;
  CalibrationOptions calibration;  ///< Tuning for with_calibration.
  /// Baseline formulas fed by the hpc sensor (cpu-load, Bertran, HAPPY).
  std::vector<std::shared_ptr<const baselines::MachinePowerEstimator>> estimators;
  /// Self-observability bundle (non-owning; must outlive the pipeline).
  /// When set, ticks carry sequence ids, every stage records spans and
  /// throughput counters, and add_metrics_reporter() becomes available.
  obs::Observability* observability = nullptr;
};

/// One assembled pipeline over one host: the handle PowerMeter and
/// FleetMonitor drive. Owns the counter backend and the tick schedule;
/// the actors live in the shared ActorSystem.
class Pipeline {
 public:
  Pipeline(actors::ActorSystem& actors, actors::EventBus& bus,
           os::MonitorableHost& host, PipelineSpec spec, std::string ns);

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  // --- Targets ---
  /// Monitors the given pids (plus, always, the machine scope).
  void monitor(std::vector<std::int64_t> pids);
  /// Monitors every live process, tracked dynamically.
  void monitor_all();

  // --- Driving ---
  /// Publishes one MonitorTick per period elapsed on the host clock since
  /// the last call (catch-up semantics). Returns the number published.
  std::uint64_t publish_due_ticks();

  // --- Attachments (before the first tick, ideally) ---
  void add_estimator(std::shared_ptr<const baselines::MachinePowerEstimator> estimator);
  void add_console_reporter(std::ostream& out);
  void add_csv_reporter(std::ostream& out);
  void add_callback_reporter(CallbackReporter::Callback callback);
  MemoryReporter& add_memory_reporter();
  /// Invokes `callback` after every calibration swap (ModelUpdated).
  /// Throws if the pipeline was built without with_calibration.
  void add_model_update_callback(ModelUpdateCallback::Callback callback);
  /// Writes a metrics-registry snapshot to `out` every `every_n_ticks`
  /// ticks (plus a final one at shutdown). `out` must outlive the actor
  /// system: the final flush runs when the reporter actor stops. Throws if
  /// the pipeline was built without spec.observability.
  void add_metrics_reporter(std::ostream& out,
                            MetricsReporter::Format format = MetricsReporter::Format::kText,
                            std::uint64_t every_n_ticks = 1);
  /// Forwards every aggregated row to a caller-owned telemetry client —
  /// this pipeline's output becomes visible to a remote CollectorServer.
  /// The client must outlive the actor system.
  void add_remote_reporter(net::TelemetryClient& client);

  // --- Lifecycle ---
  /// Stops the aggregator so its pending groups flush; idempotent. The
  /// caller still drains / awaits the actor system.
  void finish();

  const std::string& topic_namespace() const noexcept { return ns_; }
  actors::EventBus::TopicId tick_topic() const noexcept { return tick_topic_; }
  actors::EventBus::TopicId aggregated_topic() const noexcept {
    return aggregated_topic_;
  }
  /// "calibration:updated" topic; only valid with with_calibration.
  actors::EventBus::TopicId calibration_topic() const noexcept {
    return calibration_topic_;
  }
  /// The registry the regression formula reads through; null when the
  /// pipeline was built with neither a model nor a registry.
  const std::shared_ptr<model::ModelRegistry>& registry() const noexcept {
    return registry_;
  }
  os::MonitorableHost& host() noexcept { return *host_; }
  const actors::Ticker& ticker() const noexcept { return ticker_; }
  obs::Observability* observability() const noexcept { return obs_; }

 private:
  struct TargetsState {
    const os::MonitorableHost* host = nullptr;
    std::vector<std::int64_t> fixed;
    bool all = false;
  };

  actors::ActorSystem* actors_;
  actors::EventBus* bus_;
  os::MonitorableHost* host_;
  std::string ns_;
  bool with_powerspy_ = false;
  std::unique_ptr<hpc::CounterBackend> backend_;
  std::shared_ptr<TargetsState> targets_;
  std::shared_ptr<model::ModelRegistry> registry_;
  actors::Ticker ticker_;
  actors::EventBus::TopicId tick_topic_;
  actors::EventBus::TopicId hpc_topic_;
  actors::EventBus::TopicId estimate_topic_;
  actors::EventBus::TopicId aggregated_topic_;
  actors::EventBus::TopicId calibration_topic_{};
  actors::ActorRef aggregator_;
  bool with_calibration_ = false;
  bool finished_ = false;

  // Observability (null / 0 when the spec carried no bundle).
  obs::Observability* obs_ = nullptr;
  std::uint64_t next_seq_ = 0;
  obs::Counter* tick_counter_ = nullptr;
  obs::TraceCollector::NameId tick_name_ = 0;
};

/// Assembles Pipelines over a shared actor system + bus. One builder can
/// build many pipelines (FleetMonitor builds one per host).
class PipelineBuilder {
 public:
  PipelineBuilder(actors::ActorSystem& actors, actors::EventBus& bus)
      : actors_(&actors), bus_(&bus) {}

  /// Builds `spec` over `host` under topic namespace `ns` ("" for a
  /// standalone pipeline, "h3/" inside a fleet).
  std::unique_ptr<Pipeline> build(os::MonitorableHost& host, PipelineSpec spec,
                                  std::string ns = {}) {
    return std::make_unique<Pipeline>(*actors_, *bus_, host, std::move(spec),
                                      std::move(ns));
  }

 private:
  actors::ActorSystem* actors_;
  actors::EventBus* bus_;
};

}  // namespace powerapi::api
