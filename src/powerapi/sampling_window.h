// SamplingWindow: the prime-then-difference bookkeeping every sensor needs.
//
// Sensors observe cumulative quantities (counters, energy, CPU time) and
// report rates over the window between two observations. That takes the
// same three-state dance everywhere: the first observation primes (no
// window yet), a non-advancing timestamp is ignored, and every later
// observation yields [previous snapshot, window length] and rolls the
// state forward. This class is that dance, extracted once and unit-tested,
// instead of four hand-maintained copies of `primed_`/`last_*` fields.
#pragma once

#include <optional>
#include <utility>

#include "util/units.h"

namespace powerapi::api {

template <typename Snapshot>
class SamplingWindow {
 public:
  /// One completed window: the snapshot that opened it and its length.
  struct Window {
    Snapshot previous{};
    double seconds = 0.0;
    util::TimestampNs start = 0;
  };

  /// Feeds one observation. Returns nullopt on the priming call and on a
  /// non-advancing timestamp; otherwise the completed window. Either way
  /// (except on stale timestamps) the state rolls forward to `current`.
  std::optional<Window> advance(util::TimestampNs now, Snapshot current) {
    if (!primed_) {
      last_ = std::move(current);
      last_time_ = now;
      primed_ = true;
      return std::nullopt;
    }
    if (now <= last_time_) return std::nullopt;
    Window window{std::move(last_), util::ns_to_seconds(now - last_time_), last_time_};
    last_ = std::move(current);
    last_time_ = now;
    return window;
  }

  /// Forgets everything: the next advance() primes again. Sensors call this
  /// when the observed quantity regressed (counter reset, pid reuse).
  void reset() noexcept { primed_ = false; }

  bool primed() const noexcept { return primed_; }
  /// Snapshot of the last observation (valid only when primed()).
  const Snapshot& last() const noexcept { return last_; }
  util::TimestampNs last_time() const noexcept { return last_time_; }

 private:
  Snapshot last_{};
  util::TimestampNs last_time_ = 0;
  bool primed_ = false;
};

}  // namespace powerapi::api
