// Online model calibration: the in-pipeline learn→deploy loop.
//
// The offline Trainer (Figure 1) learns the per-frequency regression once,
// against a hermetic stress sweep; counter-based models drift as the real
// workload mix departs from that sweep. The CalibrationActor closes the
// loop inside the running pipeline: it pairs the HPC sensor's machine-scope
// feature vectors with the meter's ground-truth watts (PowerSpy or RAPL, on
// the same tick timestamps), accumulates per-frequency streaming
// regressions, and — when the rolling estimate-vs-ground-truth error drifts
// beyond a threshold — refits and atomically swaps the ModelRegistry that
// every RegressionFormula reads through. A warmup gate keeps an
// under-determined fit from ever being swapped in.
//
//   sensor:hpc ──┐
//                ├─→ CalibrationActor ──(registry.publish)──→ RegressionFormula
//   sensor:powerspy ┘        │
//                            └─→ "calibration:updated" (ModelUpdated)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "actors/actor.h"
#include "actors/event_bus.h"
#include "hpc/events.h"
#include "mathx/incremental_ols.h"
#include "model/feature_vector.h"
#include "model/model_registry.h"
#include "powerapi/messages.h"
#include "util/units.h"

namespace powerapi::api {

struct CalibrationOptions {
  /// Events the refit formulas regress over; empty → the paper's three
  /// generic counters.
  std::vector<hpc::EventId> events;
  /// Warmup gate: a frequency bin is only refit once its accumulator has
  /// this many paired samples AND is numerically well-determined.
  std::size_t min_samples_per_fit = 16;
  /// Rolling |estimate − ground truth| window length (paired samples).
  std::size_t drift_window = 12;
  /// Mean rolling error (watts) beyond which a refit is forced.
  double drift_threshold_watts = 2.0;
  /// Floor between swaps, on the host clock — keeps calibration cheap even
  /// when the error stays high (e.g. an unlearnable workload).
  util::DurationNs min_refit_interval = util::seconds_to_ns(2);
  /// Recursive-least-squares forgetting factor per paired sample, (0, 1].
  /// 1 keeps all history; smaller re-weights toward recent windows.
  double forgetting = 1.0;
  /// Constrain refit coefficients to be non-negative (as the Trainer does:
  /// a watt cannot be refunded per event).
  bool non_negative = true;
};

/// Published on "calibration:updated" after every registry swap.
struct ModelUpdated {
  util::TimestampNs timestamp = 0;
  std::uint64_t version = 0;            ///< The registry version swapped in.
  double pre_swap_error_watts = 0.0;    ///< Rolling error that triggered it.
  std::size_t samples_used = 0;         ///< Paired samples absorbed so far.
  std::size_t bins_refit = 0;           ///< Frequency bins with new formulas.
};

/// Pairs feature reports with meter reports by tick timestamp, maintains
/// one IncrementalOls per observed frequency bin, and swaps the registry on
/// drift. Single actor: the streaming state needs no locks even on the
/// threaded dispatcher, and timestamp-keyed pairing makes the result
/// independent of hpc-vs-meter arrival order.
class CalibrationActor final : public actors::Actor {
 public:
  CalibrationActor(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                   std::shared_ptr<model::ModelRegistry> registry,
                   CalibrationOptions options);

  void receive(actors::Envelope& envelope) override;

 private:
  struct Pending {
    std::optional<model::FeatureVector> features;
    std::optional<double> measured_watts;
  };
  struct Bin {
    double frequency_hz = 0.0;
    mathx::IncrementalOls accumulator;
  };

  /// Frequency bins are quantized to MHz: governors dither around ladder
  /// points, and sub-MHz distinctions would shatter the sample budget.
  static std::int64_t bin_key(double hz) noexcept {
    return static_cast<std::int64_t>(hz / 1e6 + 0.5);
  }

  /// If the pending entry at `timestamp` now has both halves, erases every
  /// pending entry at or before it and feeds the pair to on_pair.
  void complete_if_paired(util::TimestampNs timestamp, Pending& entry);
  void on_pair(util::TimestampNs timestamp, const model::FeatureVector& features,
               double measured_watts);
  void refit(util::TimestampNs timestamp, const model::FeatureVector& latest);

  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;
  std::shared_ptr<model::ModelRegistry> registry_;
  CalibrationOptions options_;

  std::map<util::TimestampNs, Pending> pending_;
  std::map<std::int64_t, Bin> bins_;
  std::deque<double> drift_errors_;
  double drift_error_sum_ = 0.0;
  std::uint64_t paired_samples_ = 0;
  std::optional<util::TimestampNs> last_refit_;
};

/// Invokes a user callback per ModelUpdated — how examples and embedders
/// observe swaps (Pipeline::add_model_update_callback spawns one).
class ModelUpdateCallback final : public actors::Actor {
 public:
  using Callback = std::function<void(const ModelUpdated&)>;
  explicit ModelUpdateCallback(Callback callback) : callback_(std::move(callback)) {}

  void receive(actors::Envelope& envelope) override {
    if (const auto* update = envelope.payload.get<ModelUpdated>()) callback_(*update);
  }

 private:
  Callback callback_;
};

}  // namespace powerapi::api
