// Aggregator actor: groups PowerEstimates along a dimension (the paper
// names PID and timestamp) before they reach reporters.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "actors/actor.h"
#include "actors/event_bus.h"
#include "powerapi/messages.h"
#include "powerapi/stage_obs.h"

namespace powerapi::api {

enum class AggregationDimension {
  kTimestamp,  ///< Sum all targets of a formula per timestamp (machine view).
  kPid,        ///< Forward one row per (pid, timestamp) (per-process view).
  kGroup,      ///< Sum per process group — the cgroup/VM view.
};

class Aggregator final : public actors::Actor {
 public:
  /// Resolves a pid to its group label (kGroup dimension only); processes
  /// whose resolver returns "" aggregate under the empty group.
  using GroupResolver = std::function<std::string(std::int64_t pid)>;

  Aggregator(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
             AggregationDimension dimension)
      : Aggregator(bus, out_topic, dimension, GroupResolver{}) {}
  Aggregator(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
             AggregationDimension dimension, GroupResolver group_of,
             obs::Observability* obs = nullptr);

  void receive(actors::Envelope& envelope) override;

  /// Flushes any pending timestamp groups (call at end of monitoring).
  void post_stop() override;

 private:
  struct Group {
    util::TimestampNs timestamp = 0;
    double sum_watts = 0.0;
    bool has_machine_row = false;
    double machine_watts = 0.0;
    std::uint64_t seq = 0;           ///< Tick seq of the grouped estimates.
    std::int64_t tick_wall_ns = 0;   ///< Wall time the tick was published.
  };

  void emit(const std::string& formula, const Group& group);
  void emit_group_rows(const std::string& formula);
  /// One estimate row entering the dimension logic — shared by the scalar
  /// PowerEstimate path and the row loop of an EstimateBatch (which absorbs
  /// rows front to back, reproducing the scalar message order exactly).
  void absorb(const std::string& formula, util::TimestampNs timestamp, std::int64_t pid,
              double watts, std::uint64_t seq, std::int64_t tick_wall_ns);
  void record_latency(std::int64_t tick_wall_ns);

  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;  ///< The namespace's "power:aggregated".
  AggregationDimension dimension_;
  GroupResolver group_of_;
  /// Per-formula group under construction; emitted when a newer timestamp
  /// arrives (estimates for one tick always precede the next tick's).
  std::map<std::string, Group> pending_;
  /// kGroup dimension: per-formula watermark + per-group-label sums.
  struct GroupBucket {
    util::TimestampNs timestamp = 0;
    std::map<std::string, double> watts_by_group;
    std::uint64_t seq = 0;
    std::int64_t tick_wall_ns = 0;
  };
  std::map<std::string, GroupBucket> pending_groups_;
  StageObs stage_;
  /// End-to-end pipeline latency: tick publish → aggregated row emit.
  obs::Histogram* tick_to_aggregate_ = nullptr;
};

/// Sums machine-scope aggregated rows across hosts per (formula, timestamp)
/// and emits a "(fleet)" row once every host has reported — order-robust
/// under concurrent dispatch, where host pipelines interleave arbitrarily.
///
/// `host_count` is shared with the owner so hosts can join before the first
/// tick; FleetMonitor subscribes one of these to every host's
/// "h<i>/power:aggregated", and a telemetry collector subscribes one to the
/// BusBridge's merged "remote/power:aggregated" — the fleet dimension is the
/// same whether the rows crossed a wire or not.
class FleetAggregator final : public actors::Actor {
 public:
  FleetAggregator(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                  std::shared_ptr<const std::size_t> host_count)
      : bus_(&bus), out_topic_(out_topic), host_count_(std::move(host_count)) {}

  void receive(actors::Envelope& envelope) override;

  /// Flushes buckets still waiting on stragglers (end of monitoring).
  void post_stop() override;

 private:
  struct Bucket {
    double watts = 0.0;
    std::size_t hosts = 0;
    std::uint64_t seq = 0;
  };

  void emit(const std::string& formula, util::TimestampNs timestamp,
            const Bucket& bucket);

  actors::EventBus* bus_;
  actors::EventBus::TopicId out_topic_;
  std::shared_ptr<const std::size_t> host_count_;
  std::map<std::pair<std::string, util::TimestampNs>, Bucket> pending_;
};

}  // namespace powerapi::api
