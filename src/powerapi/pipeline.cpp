#include "powerapi/pipeline.h"

#include <optional>
#include <stdexcept>
#include <utility>

#include "hpc/sim_backend.h"
#include "periph/disk.h"
#include "periph/nic.h"
#include "powerapi/formulas.h"
#include "powerapi/remote_reporter.h"
#include "powerapi/sensors.h"
#include "powermeter/powerspy.h"
#include "powermeter/rapl.h"
#include "util/rng.h"

namespace powerapi::api {

Pipeline::Pipeline(actors::ActorSystem& actors, actors::EventBus& bus,
                   os::MonitorableHost& host, PipelineSpec spec, std::string ns)
    : actors_(&actors),
      bus_(&bus),
      host_(&host),
      ns_(std::move(ns)),
      with_powerspy_(spec.with_powerspy),
      backend_(std::make_unique<hpc::SimBackend>(host)),
      targets_(std::make_shared<TargetsState>()),
      registry_(std::move(spec.registry)),
      ticker_(host.now_ns(), spec.period),
      tick_topic_(bus.intern(ns_ + "tick")),
      hpc_topic_(bus.intern(ns_ + "sensor:hpc")),
      estimate_topic_(bus.intern(ns_ + "power:estimate")),
      aggregated_topic_(bus.intern(ns_ + "power:aggregated")),
      obs_(spec.observability) {
  targets_->host = host_;
  util::Rng rng(spec.seed);
  if (obs_ != nullptr) {
    tick_counter_ = &obs_->metrics.counter("pipeline.ticks");
    tick_name_ = obs_->trace.intern(ns_ + "tick");
  }

  // A private registry wraps the spec's model unless the caller shares one
  // (a fleet passing the same registry to every host). Calibration from a
  // cold start gets an idle-only version 1 to improve on.
  if (registry_ == nullptr && (!spec.model.empty() || spec.with_calibration)) {
    registry_ = std::make_shared<model::ModelRegistry>(std::move(spec.model));
  }

  // Targets provider shared by the sensors.
  TargetsFn targets = [state = targets_]() -> std::vector<std::int64_t> {
    if (state->all) return state->host->pids();
    return state->fixed;
  };

  // --- Sensors ---
  const auto hpc_sensor = actors_->spawn_as<HpcSensor>(
      ns_ + "sensor-hpc", *bus_, hpc_topic_, *backend_, targets, host_, obs_);
  bus_->subscribe(tick_topic_, hpc_sensor);

  // Meter sensor topics survive the blocks below: the calibration actor
  // subscribes to one of them as its ground-truth stream.
  std::optional<actors::EventBus::TopicId> powerspy_topic;
  std::optional<actors::EventBus::TopicId> rapl_topic;

  if (spec.with_powerspy) {
    auto meter = std::make_shared<powermeter::PowerSpy>(
        [h = host_] { return h->total_energy_joules(); },
        [h = host_] { return h->now_ns(); }, rng.fork(1));
    const auto sensor_topic = bus_->intern(ns_ + "sensor:powerspy");
    powerspy_topic = sensor_topic;
    const auto sensor = actors_->spawn_as<PowerSpySensor>(
        ns_ + "sensor-powerspy", *bus_, sensor_topic, std::move(meter), obs_);
    bus_->subscribe(tick_topic_, sensor);
    const auto formula = actors_->spawn_as<MeterFormula>(
        ns_ + "formula-powerspy", *bus_, estimate_topic_, "powerspy", obs_);
    bus_->subscribe(sensor_topic, formula);
  }

  if (spec.with_rapl) {
    auto msr = std::make_shared<powermeter::RaplMsr>(
        [h = host_] { return h->package_energy_joules(); },
        [h = host_] { return h->now_ns(); });
    const auto sensor_topic = bus_->intern(ns_ + "sensor:rapl");
    rapl_topic = sensor_topic;
    const auto sensor = actors_->spawn_as<RaplSensor>(
        ns_ + "sensor-rapl", *bus_, sensor_topic, std::move(msr), obs_);
    bus_->subscribe(tick_topic_, sensor);
    const auto formula = actors_->spawn_as<MeterFormula>(ns_ + "formula-rapl", *bus_,
                                                         estimate_topic_, "rapl", obs_);
    bus_->subscribe(sensor_topic, formula);
  }

  if (spec.with_io && host_->disk() != nullptr) {
    const auto sensor_topic = bus_->intern(ns_ + "sensor:io");
    const auto sensor = actors_->spawn_as<IoSensor>(ns_ + "sensor-io", *bus_,
                                                    sensor_topic, *host_, obs_);
    bus_->subscribe(tick_topic_, sensor);
    const auto formula = actors_->spawn_as<IoFormula>(
        ns_ + "formula-io", *bus_, estimate_topic_, host_->disk()->params(),
        host_->nic()->params(), obs_);
    bus_->subscribe(sensor_topic, formula);
  }

  if (spec.with_cpu_load) {
    const auto sensor_topic = bus_->intern(ns_ + "sensor:cpu-load");
    const auto sensor = actors_->spawn_as<CpuLoadSensor>(
        ns_ + "sensor-cpu-load", *bus_, sensor_topic, *host_, targets, obs_);
    bus_->subscribe(tick_topic_, sensor);
  }

  // --- The paper's formula ---
  if (registry_ != nullptr) {
    const auto formula = actors_->spawn_as<RegressionFormula>(
        ns_ + "formula-hpc", *bus_, estimate_topic_, registry_, obs_);
    bus_->subscribe(hpc_topic_, formula);
  }

  // --- Online calibration ---
  if (spec.with_calibration) {
    if (registry_ == nullptr) {
      throw std::invalid_argument(
          "Pipeline: with_calibration requires a model or registry");
    }
    // PowerSpy is the wall-power reference the paper trains against;
    // RAPL (package scope) is the fallback ground truth.
    const auto truth_topic = powerspy_topic ? powerspy_topic : rapl_topic;
    if (!truth_topic) {
      throw std::invalid_argument(
          "Pipeline: with_calibration requires with_powerspy or with_rapl");
    }
    with_calibration_ = true;
    calibration_topic_ = bus_->intern(ns_ + "calibration:updated");
    const auto calibrator = actors_->spawn_as<CalibrationActor>(
        ns_ + "calibrator", *bus_, calibration_topic_, registry_,
        std::move(spec.calibration));
    bus_->subscribe(hpc_topic_, calibrator);
    bus_->subscribe(*truth_topic, calibrator);
  }

  // --- Aggregation ---
  Aggregator::GroupResolver group_of = [h = host_](std::int64_t pid) {
    const auto stat = h->proc_stat(pid);
    return stat ? stat->group : std::string();
  };
  aggregator_ = actors_->spawn_as<Aggregator>(ns_ + "aggregator", *bus_,
                                              aggregated_topic_, spec.dimension,
                                              std::move(group_of), obs_);
  bus_->subscribe(estimate_topic_, aggregator_);

  // --- Declaratively attached baseline formulas ---
  for (auto& estimator : spec.estimators) add_estimator(std::move(estimator));
}

void Pipeline::monitor(std::vector<std::int64_t> pids) {
  targets_->all = false;
  targets_->fixed = std::move(pids);
}

void Pipeline::monitor_all() { targets_->all = true; }

std::uint64_t Pipeline::publish_due_ticks() {
  const util::TimestampNs now = host_->now_ns();
  const std::uint64_t due = ticker_.due(now);
  const bool observed = obs_ != nullptr && obs_->enabled();
  for (std::uint64_t i = 0; i < due; ++i) {
    MonitorTick tick{now};
    if (observed) {
      tick.seq = ++next_seq_;
      tick.wall_ns = obs::wall_now_ns();
      tick_counter_->add();
      obs_->trace.instant(tick_name_, tick.wall_ns, tick.seq);
    }
    bus_->publish(tick_topic_, tick);
  }
  return due;
}

void Pipeline::add_estimator(
    std::shared_ptr<const baselines::MachinePowerEstimator> estimator) {
  if (!estimator) throw std::invalid_argument("Pipeline::add_estimator: null estimator");
  const std::string name = ns_ + "formula-" + estimator->name();
  const auto formula = actors_->spawn_as<EstimatorFormula>(
      name, *bus_, estimate_topic_, std::move(estimator), obs_);
  bus_->subscribe(hpc_topic_, formula);
}

void Pipeline::add_console_reporter(std::ostream& out) {
  const auto reporter = actors_->spawn_as<ConsoleReporter>(ns_ + "reporter-console", out);
  bus_->subscribe(aggregated_topic_, reporter);
}

void Pipeline::add_csv_reporter(std::ostream& out) {
  const auto reporter = actors_->spawn_as<CsvReporter>(ns_ + "reporter-csv", out);
  bus_->subscribe(aggregated_topic_, reporter);
}

void Pipeline::add_callback_reporter(CallbackReporter::Callback callback) {
  const auto reporter = actors_->spawn_as<CallbackReporter>(ns_ + "reporter-callback",
                                                            std::move(callback));
  bus_->subscribe(aggregated_topic_, reporter);
}

void Pipeline::add_model_update_callback(ModelUpdateCallback::Callback callback) {
  if (!with_calibration_) {
    throw std::logic_error(
        "Pipeline::add_model_update_callback: built without with_calibration");
  }
  const auto listener = actors_->spawn_as<ModelUpdateCallback>(
      ns_ + "calibration-listener", std::move(callback));
  bus_->subscribe(calibration_topic_, listener);
}

void Pipeline::add_metrics_reporter(std::ostream& out, MetricsReporter::Format format,
                                    std::uint64_t every_n_ticks) {
  if (obs_ == nullptr) {
    throw std::logic_error(
        "Pipeline::add_metrics_reporter: built without spec.observability");
  }
  MetricsReporter::Options options;
  options.out = &out;
  options.format = format;
  options.every_n_ticks = every_n_ticks;
  const auto reporter =
      actors_->spawn_as<MetricsReporter>(ns_ + "reporter-metrics", *obs_, options);
  bus_->subscribe(tick_topic_, reporter);
}

void Pipeline::add_remote_reporter(net::TelemetryClient& client) {
  const auto reporter =
      actors_->spawn_as<RemoteReporter>(ns_ + "reporter-remote", client);
  bus_->subscribe(aggregated_topic_, reporter);
}

MemoryReporter& Pipeline::add_memory_reporter() {
  auto owned = std::make_unique<MemoryReporter>();
  MemoryReporter& ref = *owned;
  const auto reporter = actors_->spawn(ns_ + "reporter-memory", std::move(owned));
  bus_->subscribe(aggregated_topic_, reporter);
  return ref;
}

void Pipeline::finish() {
  if (finished_) return;
  finished_ = true;
  actors_->stop(aggregator_);  // post_stop flushes pending groups.
}

}  // namespace powerapi::api
