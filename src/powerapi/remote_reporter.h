// RemoteReporter: the reporter that leaves the process — forwards the
// pipeline's output rows to a net::TelemetryClient, which batches and
// ships them to a CollectorServer. Attach via
// Pipeline::add_remote_reporter() / FleetMonitor::add_remote_reporter();
// the client is caller-owned (its lifetime spans connect/reconnect cycles,
// not one pipeline) and must outlive the actor system.
#pragma once

#include "actors/actor.h"
#include "net/telemetry_client.h"
#include "powerapi/messages.h"

namespace powerapi::api {

class RemoteReporter final : public actors::Actor {
 public:
  explicit RemoteReporter(net::TelemetryClient& client) : client_(&client) {}

  void receive(actors::Envelope& envelope) override;

 private:
  net::TelemetryClient* client_;
};

}  // namespace powerapi::api
