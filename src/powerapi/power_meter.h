// PowerMeter: the single-host library facade.
//
// A thin driver over a PipelineBuilder-assembled pipeline (see pipeline.h):
// one MonitorableHost, one kManual actor system, the empty topic namespace.
// A monitoring clock ("tick" topic) drives Sensor actors, whose reports
// flow through Formula actors into an Aggregator and out to Reporters —
// all over the event bus. For many hosts on the threaded dispatcher, see
// fleet_monitor.h.
// Usage:
//
//   os::System system(simcpu::i3_2120());
//   api::PowerMeter meter(system, trained_model);
//   auto& mem = meter.add_memory_reporter();
//   meter.monitor_all();
//   meter.run_for(util::seconds_to_ns(60));
//   meter.finish();
//   // mem.series("powerapi-hpc") is the estimated machine power series.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "baselines/estimator.h"
#include "model/power_model.h"
#include "os/monitorable_host.h"
#include "powerapi/messages.h"
#include "powerapi/pipeline.h"
#include "powerapi/reporters.h"

namespace powerapi::api {

class PowerMeter {
 public:
  /// The meter's configuration IS the pipeline spec: the model and
  /// estimators slots are filled from the constructor arguments.
  using Config = PipelineSpec;

  PowerMeter(os::MonitorableHost& host, model::CpuPowerModel model)
      : PowerMeter(host, std::move(model), Config{}) {}
  PowerMeter(os::MonitorableHost& host, model::CpuPowerModel model, Config config);

  /// Flushes via finish(): the aggregator's pending groups must drain while
  /// the event bus still exists (members are destroyed in reverse order, so
  /// an actor flushing from post_stop during ~ActorSystem would otherwise
  /// publish through a dangling bus).
  ~PowerMeter();

  /// Monitors the given pids (plus, always, the machine scope).
  void monitor(std::vector<std::int64_t> pids);
  /// Monitors every live process, tracked dynamically.
  void monitor_all();

  /// Attaches an additional baseline formula fed by the hpc sensor.
  void add_estimator(std::shared_ptr<const baselines::MachinePowerEstimator> estimator);

  // --- Reporters (attach before run_for) ---
  void add_console_reporter(std::ostream& out);
  void add_csv_reporter(std::ostream& out);
  void add_callback_reporter(CallbackReporter::Callback callback);
  MemoryReporter& add_memory_reporter();
  /// Forwards aggregated rows to a caller-owned telemetry client (see
  /// net/telemetry_client.h); the client must outlive the meter.
  void add_remote_reporter(net::TelemetryClient& client);

  /// Advances the host by `duration`, firing monitor ticks at the
  /// configured period and draining the pipeline after each.
  void run_for(util::DurationNs duration);

  /// Flushes pending aggregation groups; call once after the last run_for.
  void finish();

  actors::ActorSystem& actor_system() noexcept { return actors_; }
  actors::EventBus& bus() noexcept { return bus_; }
  const Config& config() const noexcept { return config_; }
  Pipeline& pipeline() noexcept { return *pipeline_; }

 private:
  os::MonitorableHost* host_;
  Config config_;  ///< As configured (model slot left empty; it moves into the formula).
  actors::ActorSystem actors_;
  actors::EventBus bus_;
  std::unique_ptr<Pipeline> pipeline_;
  bool finished_ = false;
};

}  // namespace powerapi::api
