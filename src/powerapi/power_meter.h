// PowerMeter: the library facade.
//
// Wires the Figure-2 pipeline over a simulated System: a monitoring clock
// ("tick" topic) drives Sensor actors, whose reports flow through Formula
// actors into an Aggregator and out to Reporters — all over the event bus.
// Usage:
//
//   os::System system(simcpu::i3_2120());
//   api::PowerMeter meter(system, trained_model);
//   auto& mem = meter.add_memory_reporter();
//   meter.monitor_all();
//   meter.run_for(util::seconds_to_ns(60));
//   meter.finish();
//   // mem.series("powerapi-hpc") is the estimated machine power series.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "actors/timers.h"
#include "baselines/estimator.h"
#include "hpc/sim_backend.h"
#include "model/power_model.h"
#include "os/system.h"
#include "powerapi/aggregators.h"
#include "powerapi/formulas.h"
#include "powerapi/messages.h"
#include "powerapi/reporters.h"
#include "powerapi/sensors.h"
#include "powermeter/powerspy.h"
#include "powermeter/rapl.h"
#include "util/rng.h"

namespace powerapi::api {

class PowerMeter {
 public:
  struct Config {
    util::DurationNs period = util::ms_to_ns(250);  ///< Monitoring period.
    bool with_powerspy = true;   ///< Reference wall meter ("powerspy" series).
    bool with_rapl = false;      ///< Emulated RAPL package meter ("rapl").
    bool with_cpu_load = false;  ///< CPU-load sensor (for baseline formulas).
    /// IO sensor + datasheet formula ("io-datasheet" series); only emits on
    /// systems built with peripherals.
    bool with_io = false;
    AggregationDimension dimension = AggregationDimension::kTimestamp;
    std::uint64_t seed = 7;      ///< Seeds the meter noise stream.
  };

  PowerMeter(os::System& system, model::CpuPowerModel model)
      : PowerMeter(system, std::move(model), Config{}) {}
  PowerMeter(os::System& system, model::CpuPowerModel model, Config config);

  /// Flushes via finish(): the aggregator's pending groups must drain while
  /// the event bus still exists (members are destroyed in reverse order, so
  /// an actor flushing from post_stop during ~ActorSystem would otherwise
  /// publish through a dangling bus).
  ~PowerMeter();

  /// Monitors the given pids (plus, always, the machine scope).
  void monitor(std::vector<std::int64_t> pids);
  /// Monitors every live process, tracked dynamically.
  void monitor_all();

  /// Attaches an additional baseline formula fed by the hpc sensor.
  void add_estimator(std::shared_ptr<const baselines::MachinePowerEstimator> estimator);

  // --- Reporters (attach before run_for) ---
  void add_console_reporter(std::ostream& out);
  void add_csv_reporter(std::ostream& out);
  void add_callback_reporter(CallbackReporter::Callback callback);
  MemoryReporter& add_memory_reporter();

  /// Advances the simulated system by `duration`, firing monitor ticks at
  /// the configured period and draining the pipeline after each.
  void run_for(util::DurationNs duration);

  /// Flushes pending aggregation groups; call once after the last run_for.
  void finish();

  actors::ActorSystem& actor_system() noexcept { return actors_; }
  actors::EventBus& bus() noexcept { return bus_; }
  const Config& config() const noexcept { return config_; }

 private:
  os::System* system_;
  Config config_;
  actors::ActorSystem actors_;
  actors::EventBus bus_;
  actors::EventBus::TopicId tick_topic_;  ///< "tick", interned once.
  hpc::SimBackend backend_;
  std::shared_ptr<std::vector<std::int64_t>> fixed_targets_;
  bool monitor_all_ = false;
  actors::Ticker ticker_;
  actors::ActorRef aggregator_;
  bool finished_ = false;
};

}  // namespace powerapi::api
