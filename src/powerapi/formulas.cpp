#include "powerapi/formulas.h"

#include <any>

namespace powerapi::api {

namespace {

const SensorReport* as_report(const actors::Envelope& envelope) {
  return envelope.payload.get<SensorReport>();
}

constexpr std::string_view kEstimates = "pipeline.estimates";

}  // namespace

// --- RegressionFormula ---

RegressionFormula::RegressionFormula(actors::EventBus& bus,
                                     actors::EventBus::TopicId out_topic,
                                     std::shared_ptr<const model::ModelRegistry> registry,
                                     obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), registry_(std::move(registry)) {
  stage_.attach(obs, kEstimates);
}

void RegressionFormula::receive(actors::Envelope& envelope) {
  // SoA hot path: one SensorBatch → one EstimateBatch, evaluated as a
  // coefficient sweep down the rate lanes.
  if (const auto* batch = envelope.payload.get<SensorBatch>()) {
    if (batch->sensor != SensorKind::kHpc || !batch->features) return;
    const auto span = stage_.span(name(), batch->seq);
    const auto snapshot = registry_->current();
    const model::FeatureMatrix& features = *batch->features;

    EstimateBatch out;
    out.timestamp = batch->timestamp;
    out.formula = "powerapi-hpc";
    out.model_version = snapshot->version;
    out.features = batch->features;
    out.watts.assign(features.rows(), 0.0);
    if (!snapshot->model.empty()) {
      snapshot->model.estimate_activity_rows(features, out.watts);
    }
    // Machine rows carry the idle floor on top of activity, exactly as the
    // scalar path adds it (idle + activity, in that order).
    for (std::size_t i = 0; i < features.rows(); ++i) {
      if (features.pid(i) < 0) out.watts[i] = snapshot->model.idle_watts() + out.watts[i];
    }
    out.seq = batch->seq;
    out.tick_wall_ns = batch->tick_wall_ns;
    const std::size_t rows = features.rows();
    bus_->publish(out_topic_, std::move(out), self());
    for (std::size_t i = 0; i < rows; ++i) stage_.count();
    return;
  }

  const SensorReport* report = as_report(envelope);
  if (report == nullptr || report->sensor != SensorKind::kHpc) return;
  const auto span = stage_.span(name(), report->seq);

  // Pin one immutable snapshot for this report; a concurrent swap affects
  // the next report, never a half-read model.
  const auto snapshot = registry_->current();

  PowerEstimate estimate;
  estimate.timestamp = report->timestamp;
  estimate.pid = report->pid;
  estimate.formula = "powerapi-hpc";
  estimate.model_version = snapshot->version;
  // An empty model (cold-start calibration: nothing learned yet) estimates
  // the idle floor only until the first swap fills in formulas.
  const double activity =
      snapshot->model.empty() ? 0.0 : snapshot->model.estimate_activity(*report);
  estimate.watts =
      report->pid == kMachinePid ? snapshot->model.idle_watts() + activity : activity;
  estimate.seq = report->seq;
  estimate.tick_wall_ns = report->tick_wall_ns;
  bus_->publish(out_topic_, std::move(estimate), self());
  stage_.count();
}

// --- EstimatorFormula ---

EstimatorFormula::EstimatorFormula(
    actors::EventBus& bus, actors::EventBus::TopicId out_topic,
    std::shared_ptr<const baselines::MachinePowerEstimator> estimator,
    obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), estimator_(std::move(estimator)) {
  stage_.attach(obs, kEstimates);
}

void EstimatorFormula::receive(actors::Envelope& envelope) {
  // Batch path: baselines are machine models, so only the machine row of a
  // batch produces an estimate — gathered back into the scalar feature
  // struct the estimator interface takes.
  if (const auto* batch = envelope.payload.get<SensorBatch>()) {
    if (!batch->features) return;
    const auto span = stage_.span(name(), batch->seq);
    for (std::size_t i = 0; i < batch->features->rows(); ++i) {
      if (batch->features->pid(i) >= 0) continue;
      PowerEstimate estimate;
      estimate.timestamp = batch->timestamp;
      estimate.pid = kMachinePid;
      estimate.formula = estimator_->name();
      estimate.watts = estimator_->estimate(batch->features->row(i));
      estimate.seq = batch->seq;
      estimate.tick_wall_ns = batch->tick_wall_ns;
      bus_->publish(out_topic_, std::move(estimate), self());
      stage_.count();
    }
    return;
  }

  const SensorReport* report = as_report(envelope);
  if (report == nullptr || report->pid != kMachinePid) return;
  const auto span = stage_.span(name(), report->seq);

  PowerEstimate estimate;
  estimate.timestamp = report->timestamp;
  estimate.pid = kMachinePid;
  estimate.formula = estimator_->name();
  // A report IS an Observation (the shared feature layer): no repacking.
  estimate.watts = estimator_->estimate(*report);
  estimate.seq = report->seq;
  estimate.tick_wall_ns = report->tick_wall_ns;
  bus_->publish(out_topic_, std::move(estimate), self());
  stage_.count();
}

// --- IoFormula ---

IoFormula::IoFormula(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                     periph::DiskParams disk, periph::NicParams nic,
                     obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), disk_(disk), nic_(nic) {
  stage_.attach(obs, kEstimates);
}

void IoFormula::receive(actors::Envelope& envelope) {
  const SensorReport* report = as_report(envelope);
  if (report == nullptr || report->sensor != SensorKind::kIo) return;
  const auto span = stage_.span(name(), report->seq);

  // Base power assumes the common steady states (platters spinning, link
  // awake); transition states (spin-up surges, LPI) are below this formula's
  // resolution — deliberately, as a datasheet model would be.
  double watts = disk_.idle_spinning_watts + nic_.link_active_watts;
  watts += report->disk_iops * disk_.joules_per_op;
  watts += report->disk_bytes_per_sec / 1e6 * disk_.joules_per_megabyte;
  // Without a tx/rx split in the counters, charge the average of the two.
  watts += report->net_bytes_per_sec / 1e6 *
           (nic_.joules_per_megabyte_tx + nic_.joules_per_megabyte_rx) / 2.0;

  PowerEstimate estimate;
  estimate.timestamp = report->timestamp;
  estimate.pid = kMachinePid;
  estimate.formula = "io-datasheet";
  estimate.watts = watts;
  estimate.seq = report->seq;
  estimate.tick_wall_ns = report->tick_wall_ns;
  bus_->publish(out_topic_, std::move(estimate), self());
  stage_.count();
}

// --- MeterFormula ---

MeterFormula::MeterFormula(actors::EventBus& bus, actors::EventBus::TopicId out_topic,
                           std::string formula_name, obs::Observability* obs)
    : bus_(&bus), out_topic_(out_topic), formula_name_(std::move(formula_name)) {
  stage_.attach(obs, kEstimates);
}

void MeterFormula::receive(actors::Envelope& envelope) {
  const SensorReport* report = as_report(envelope);
  if (report == nullptr) return;
  const auto span = stage_.span(name(), report->seq);
  PowerEstimate estimate;
  estimate.timestamp = report->timestamp;
  estimate.pid = report->pid;
  estimate.formula = formula_name_;
  estimate.watts = report->measured_watts;
  estimate.seq = report->seq;
  estimate.tick_wall_ns = report->tick_wall_ns;
  bus_->publish(out_topic_, std::move(estimate), self());
  stage_.count();
}

}  // namespace powerapi::api
