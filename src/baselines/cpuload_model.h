// CPU-load power model (Versick et al., the paper's [13]): machine power as
// a per-frequency linear function of utilization alone. The paper argues
// this under-performs HPC-based models because load only says *whether* the
// processor works, not *what kind* of work — experiment A1 quantifies that.
#pragma once

#include "baselines/estimator.h"

namespace powerapi::baselines {

class CpuLoadModel final : public MachinePowerEstimator {
 public:
  /// Fits `power - idle = a_f · utilization` per frequency.
  static CpuLoadModel train(const model::SampleSet& samples);

  std::string name() const override { return "cpu-load"; }
  double estimate(const Observation& obs) const override;
  double estimate_task(const Observation& obs) const override;

  /// The slope (watts at 100% utilization) for the nearest frequency.
  double slope_at(double hz) const;

 private:
  explicit CpuLoadModel(PerFrequencyFit fit) : fit_(std::move(fit)) {}

  static std::vector<FeatureFn> features();
  PerFrequencyFit fit_;
};

}  // namespace powerapi::baselines
