// Common interface for machine-power estimators, so the comparison benches
// (C1, C2, A1) evaluate PowerAPI's model and the literature baselines over
// identical observation streams.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mathx/ols.h"
#include "model/power_model.h"
#include "model/sample.h"

namespace powerapi::baselines {

/// An observation is a TrainingSample with `watts` as ground truth when
/// evaluating; estimators must only read the feature fields.
using Observation = model::TrainingSample;

class MachinePowerEstimator {
 public:
  virtual ~MachinePowerEstimator() = default;
  virtual std::string name() const = 0;
  /// Estimated machine power (watts, including idle) for one observation.
  virtual double estimate(const Observation& obs) const = 0;
  /// Activity-only estimate for a per-task observation (rates belong to one
  /// task): the watts the estimator attributes to that task's work. The
  /// linear models are additive over tasks, so the machine fit directly
  /// yields per-task coefficients.
  virtual double estimate_task(const Observation& obs) const = 0;
};

/// Adapter: the paper's HPC-regression model as a MachinePowerEstimator.
class HpcModelEstimator final : public MachinePowerEstimator {
 public:
  explicit HpcModelEstimator(model::CpuPowerModel model) : model_(std::move(model)) {}

  std::string name() const override { return "powerapi-hpc"; }
  double estimate(const Observation& obs) const override {
    return model_.estimate_machine(obs.frequency_hz, obs.rates);
  }
  double estimate_task(const Observation& obs) const override {
    return model_.estimate_activity(obs.frequency_hz, obs.rates);
  }
  const model::CpuPowerModel& model() const noexcept { return model_; }

 private:
  model::CpuPowerModel model_;
};

/// Extracts one regression feature from an observation.
using FeatureFn = std::function<double(const Observation&)>;

/// One per-frequency linear fit over arbitrary observation features —
/// the shared machinery of the baseline models. Coefficients are
/// non-negative (NNLS), mirroring the power-model constraint.
struct PerFrequencyFit {
  std::vector<double> frequencies_hz;            ///< Ascending.
  std::vector<std::vector<double>> coefficients; ///< Parallel to frequencies.
  double idle_watts = 0.0;

  /// Fits one coefficient vector per frequency batch of `samples`.
  static PerFrequencyFit fit(const model::SampleSet& samples,
                             const std::vector<FeatureFn>& features);

  /// Activity estimate using the formula of the nearest frequency.
  double estimate_activity(double hz, const Observation& obs,
                           const std::vector<FeatureFn>& features) const;
};

}  // namespace powerapi::baselines
