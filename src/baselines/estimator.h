// Common interface for machine-power estimators, so the comparison benches
// (C1, C2, A1) evaluate PowerAPI's model and the literature baselines over
// identical observation streams.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mathx/ols.h"
#include "model/power_model.h"
#include "model/sample.h"

namespace powerapi::baselines {

/// An observation is the shared feature layer itself: estimators consume
/// exactly the fields every pipeline stage carries (a TrainingSample IS a
/// FeatureVector plus the ground-truth watts, so labelled evaluation data
/// passes straight through).
using Observation = model::FeatureVector;

class MachinePowerEstimator {
 public:
  virtual ~MachinePowerEstimator() = default;
  virtual std::string name() const = 0;
  /// Estimated machine power (watts, including idle) for one observation.
  virtual double estimate(const Observation& obs) const = 0;
  /// Activity-only estimate for a per-task observation (rates belong to one
  /// task): the watts the estimator attributes to that task's work. The
  /// linear models are additive over tasks, so the machine fit directly
  /// yields per-task coefficients.
  virtual double estimate_task(const Observation& obs) const = 0;
};

/// Adapter: the paper's HPC-regression model as a MachinePowerEstimator.
/// Holds the model immutably behind shared_ptr so a fleet's estimators all
/// reference one copy.
class HpcModelEstimator final : public MachinePowerEstimator {
 public:
  explicit HpcModelEstimator(model::CpuPowerModel model)
      : model_(std::make_shared<const model::CpuPowerModel>(std::move(model))) {}
  explicit HpcModelEstimator(std::shared_ptr<const model::CpuPowerModel> model)
      : model_(std::move(model)) {}

  std::string name() const override { return "powerapi-hpc"; }
  double estimate(const Observation& obs) const override {
    return model_->estimate_machine(obs);
  }
  double estimate_task(const Observation& obs) const override {
    return model_->estimate_activity(obs);
  }
  const model::CpuPowerModel& model() const noexcept { return *model_; }

 private:
  std::shared_ptr<const model::CpuPowerModel> model_;
};

/// Extracts one regression feature from an observation.
using FeatureFn = std::function<double(const Observation&)>;

/// One per-frequency linear fit over arbitrary observation features —
/// the shared machinery of the baseline models. Coefficients are
/// non-negative (NNLS), mirroring the power-model constraint.
struct PerFrequencyFit {
  std::vector<double> frequencies_hz;            ///< Ascending.
  std::vector<std::vector<double>> coefficients; ///< Parallel to frequencies.
  double idle_watts = 0.0;

  /// Fits one coefficient vector per frequency batch of `samples`.
  static PerFrequencyFit fit(const model::SampleSet& samples,
                             const std::vector<FeatureFn>& features);

  /// Activity estimate using the formula of the nearest frequency.
  double estimate_activity(double hz, const Observation& obs,
                           const std::vector<FeatureFn>& features) const;
};

}  // namespace powerapi::baselines
