// Decomposable per-component power model (Bertran et al., ICS'10 — the
// paper's [1]): activity power is decomposed into micro-architectural
// components (in-order engine, branch unit, L2/LLC, memory), each driven by
// its own counter rate and fitted jointly by non-negative regression. On a
// simple core (no SMT, no turbo) with compute-bound workloads this achieves
// the ~4.6% average error the paper quotes; the C1 bench reproduces that
// ordering.
#pragma once

#include "baselines/estimator.h"

namespace powerapi::baselines {

class BertranModel final : public MachinePowerEstimator {
 public:
  static BertranModel train(const model::SampleSet& samples);

  std::string name() const override { return "bertran-decomposed"; }
  double estimate(const Observation& obs) const override;
  double estimate_task(const Observation& obs) const override;

  /// Per-component watts for one observation, in `component_names()` order.
  std::vector<double> decompose(const Observation& obs) const;
  static std::vector<std::string> component_names();

 private:
  explicit BertranModel(PerFrequencyFit fit) : fit_(std::move(fit)) {}

  static std::vector<FeatureFn> features();
  PerFrequencyFit fit_;
};

}  // namespace powerapi::baselines
