#include "baselines/bertran_model.h"

#include <cmath>

namespace powerapi::baselines {

using hpc::EventId;
using model::rate_of;

std::vector<std::string> BertranModel::component_names() {
  return {"in-order-engine", "frontend", "branch-unit", "llc", "memory"};
}

std::vector<FeatureFn> BertranModel::features() {
  return {
      // In-order engine: retired instruction stream.
      [](const Observation& o) { return rate_of(o.rates, EventId::kInstructions); },
      // Front-end activity: cycles (fetch/decode toggles every active cycle).
      [](const Observation& o) { return rate_of(o.rates, EventId::kCycles); },
      // Branch unit: mispredictions dominate its dynamic cost.
      [](const Observation& o) { return rate_of(o.rates, EventId::kBranchMisses); },
      // LLC component: references that escaped the private levels.
      [](const Observation& o) { return rate_of(o.rates, EventId::kCacheReferences); },
      // Memory component: LLC misses reaching DRAM.
      [](const Observation& o) { return rate_of(o.rates, EventId::kCacheMisses); },
  };
}

BertranModel BertranModel::train(const model::SampleSet& samples) {
  return BertranModel(PerFrequencyFit::fit(samples, features()));
}

double BertranModel::estimate(const Observation& obs) const {
  return fit_.idle_watts + fit_.estimate_activity(obs.frequency_hz, obs, features());
}

double BertranModel::estimate_task(const Observation& obs) const {
  return fit_.estimate_activity(obs.frequency_hz, obs, features());
}

std::vector<double> BertranModel::decompose(const Observation& obs) const {
  const auto fs = features();
  std::vector<double> parts;
  parts.reserve(fs.size());
  for (std::size_t c = 0; c < fs.size(); ++c) {
    // Re-use estimate_activity with a single feature by zeroing the others:
    // simpler to recompute directly from the fitted coefficients.
    Observation probe = obs;
    std::vector<FeatureFn> single{fs[c]};
    // Nearest-frequency coefficient lookup mirrors estimate_activity.
    std::size_t best = 0;
    for (std::size_t i = 1; i < fit_.frequencies_hz.size(); ++i) {
      if (std::abs(fit_.frequencies_hz[i] - obs.frequency_hz) <
          std::abs(fit_.frequencies_hz[best] - obs.frequency_hz)) {
        best = i;
      }
    }
    parts.push_back(fit_.coefficients[best][c] * fs[c](probe));
  }
  return parts;
}

}  // namespace powerapi::baselines
