#include "baselines/cpuload_model.h"

#include <cmath>

namespace powerapi::baselines {

std::vector<FeatureFn> CpuLoadModel::features() {
  return {[](const Observation& o) { return o.utilization; }};
}

CpuLoadModel CpuLoadModel::train(const model::SampleSet& samples) {
  return CpuLoadModel(PerFrequencyFit::fit(samples, features()));
}

double CpuLoadModel::estimate(const Observation& obs) const {
  return fit_.idle_watts + fit_.estimate_activity(obs.frequency_hz, obs, features());
}

double CpuLoadModel::estimate_task(const Observation& obs) const {
  return fit_.estimate_activity(obs.frequency_hz, obs, features());
}

double CpuLoadModel::slope_at(double hz) const {
  Observation unit;
  unit.utilization = 1.0;
  return fit_.estimate_activity(hz, unit, features());
}

}  // namespace powerapi::baselines
