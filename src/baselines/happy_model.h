// HyperThread-aware power model (Zhai et al., USENIX ATC'14 "HaPPy" — the
// paper's [14]): splits cycle accounting into solo cycles (sibling idle)
// and co-resident cycles (both hyperthreads busy), because a core running
// two threads burns far less than 2× the power of two cores running one
// thread each. The extra signal comes from the scheduler, not the PMU —
// which is why the plain HPC model cannot express it (experiment C2).
#pragma once

#include "baselines/estimator.h"

namespace powerapi::baselines {

class HappyModel final : public MachinePowerEstimator {
 public:
  static HappyModel train(const model::SampleSet& samples);

  std::string name() const override { return "happy-ht-aware"; }
  double estimate(const Observation& obs) const override;
  double estimate_task(const Observation& obs) const override;

 private:
  explicit HappyModel(PerFrequencyFit fit) : fit_(std::move(fit)) {}

  static std::vector<FeatureFn> features();
  PerFrequencyFit fit_;
};

}  // namespace powerapi::baselines
