#include "baselines/estimator.h"

#include <cmath>
#include <stdexcept>

namespace powerapi::baselines {

PerFrequencyFit PerFrequencyFit::fit(const model::SampleSet& samples,
                                     const std::vector<FeatureFn>& features) {
  if (features.empty()) throw std::invalid_argument("PerFrequencyFit: no features");
  PerFrequencyFit out;
  out.idle_watts = samples.idle_watts;
  for (std::size_t fi = 0; fi < samples.by_frequency.size(); ++fi) {
    const auto& batch = samples.by_frequency[fi];
    if (batch.size() < features.size() + 2) {
      throw std::runtime_error("PerFrequencyFit: too few samples in batch " +
                               std::to_string(fi));
    }
    mathx::Matrix design(batch.size(), features.size());
    std::vector<double> target(batch.size());
    for (std::size_t r = 0; r < batch.size(); ++r) {
      for (std::size_t c = 0; c < features.size(); ++c) {
        design(r, c) = features[c](batch[r]);
      }
      target[r] = batch[r].watts - samples.idle_watts;
    }
    const auto fit_result = mathx::nnls(design, target);
    out.frequencies_hz.push_back(samples.frequencies_hz[fi]);
    out.coefficients.push_back(fit_result.coefficients);
  }
  return out;
}

double PerFrequencyFit::estimate_activity(double hz, const Observation& obs,
                                          const std::vector<FeatureFn>& features) const {
  if (frequencies_hz.empty()) throw std::logic_error("PerFrequencyFit: empty fit");
  std::size_t best = 0;
  for (std::size_t i = 1; i < frequencies_hz.size(); ++i) {
    if (std::abs(frequencies_hz[i] - hz) < std::abs(frequencies_hz[best] - hz)) best = i;
  }
  double watts = 0.0;
  for (std::size_t c = 0; c < features.size(); ++c) {
    watts += coefficients[best][c] * features[c](obs);
  }
  return watts;
}

}  // namespace powerapi::baselines
