#include "baselines/happy_model.h"

#include <algorithm>

namespace powerapi::baselines {

using hpc::EventId;
using model::rate_of;

std::vector<FeatureFn> HappyModel::features() {
  return {
      // Solo cycles: the sibling hyperthread was idle.
      [](const Observation& o) {
        const double cycles = rate_of(o.rates, EventId::kCycles);
        return std::max(0.0, cycles - o.smt_shared_cycles_per_sec);
      },
      // Co-resident cycles: both hyperthreads of the core were busy.
      [](const Observation& o) { return o.smt_shared_cycles_per_sec; },
      // Instruction stream and memory traffic, as in the plain model.
      [](const Observation& o) { return rate_of(o.rates, EventId::kInstructions); },
      [](const Observation& o) { return rate_of(o.rates, EventId::kCacheMisses); },
  };
}

HappyModel HappyModel::train(const model::SampleSet& samples) {
  return HappyModel(PerFrequencyFit::fit(samples, features()));
}

double HappyModel::estimate_task(const Observation& obs) const {
  return fit_.estimate_activity(obs.frequency_hz, obs, features());
}

double HappyModel::estimate(const Observation& obs) const {
  return fit_.idle_watts + fit_.estimate_activity(obs.frequency_hz, obs, features());
}

}  // namespace powerapi::baselines
