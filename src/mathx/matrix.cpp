#include "mathx/matrix.h"

#include <algorithm>
#include <cmath>

namespace powerapi::mathx {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::column(std::span<const double> values) {
  Matrix m(values.size(), 1);
  for (std::size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

std::span<double> Matrix::row(std::size_t r) {
  check(r, 0);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  check(r, 0);
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::column_vector(std::size_t c) const {
  check(0, c);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = data_[r * cols_ + c];
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix multiply: shape mismatch");
  Matrix out(rows_, rhs.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[r * cols_ + k];
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix add: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix subtract: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::scaled(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  if (v.size() != cols_) throw std::invalid_argument("Matrix-vector multiply: shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * v[c];
    out[r] = sum;
  }
  return out;
}

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = values.size();
  }
  if (values.size() != cols_) throw std::invalid_argument("Matrix::append_row: width mismatch");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

Matrix Matrix::select_columns(std::span<const std::size_t> keep) const {
  Matrix out(rows_, keep.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = 0; i < keep.size(); ++i) {
      out(r, i) = (*this)(r, keep[i]);
    }
  }
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double sq = 0.0;
  for (double v : data_) sq += v * v;
  return std::sqrt(sq);
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - rhs.data_[i]));
  }
  return worst;
}

}  // namespace powerapi::mathx
