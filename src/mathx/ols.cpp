#include "mathx/ols.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace powerapi::mathx {

QrFactorization qr_least_squares(const Matrix& a, std::span<const double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) throw std::invalid_argument("qr_least_squares: b length mismatch");
  if (m < n) throw std::invalid_argument("qr_least_squares: underdetermined system");
  if (n == 0) throw std::invalid_argument("qr_least_squares: empty design matrix");

  // Work on copies; Householder vectors are applied in place.
  Matrix work = a;
  std::vector<double> rhs(b.begin(), b.end());

  for (std::size_t k = 0; k < n; ++k) {
    // Compute the norm of the k-th column below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += work(i, k) * work(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) throw std::runtime_error("qr_least_squares: rank-deficient design matrix");

    // Householder vector v = x + sign(x0)·‖x‖·e1, normalized so v[k]=1 form
    // is implicit; we store v in the column below row k.
    const double alpha = work(k, k) >= 0.0 ? -norm : norm;
    const double vk = work(k, k) - alpha;
    work(k, k) = vk;
    // v norm squared.
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) vnorm2 += work(i, k) * work(i, k);
    if (vnorm2 == 0.0) throw std::runtime_error("qr_least_squares: degenerate reflector");

    // Apply the reflector H = I − 2vvᵀ/‖v‖² to remaining columns and rhs.
    for (std::size_t c = k + 1; c < n; ++c) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += work(i, k) * work(i, c);
      const double factor = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < m; ++i) work(i, c) -= factor * work(i, k);
    }
    {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += work(i, k) * rhs[i];
      const double factor = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < m; ++i) rhs[i] -= factor * work(i, k);
    }
    work(k, k) = alpha;  // Diagonal of R.
    // Zero out the sub-diagonal explicitly (v no longer needed for column k).
    for (std::size_t i = k + 1; i < m; ++i) work(i, k) = 0.0;
  }

  QrFactorization out;
  out.r = Matrix(n, n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r; c < n; ++c) out.r(r, c) = work(r, c);
  }
  out.qtb.assign(rhs.begin(), rhs.begin() + static_cast<std::ptrdiff_t>(n));
  double tail = 0.0;
  for (std::size_t i = n; i < m; ++i) tail += rhs[i] * rhs[i];
  out.residual_norm = std::sqrt(tail);
  return out;
}

namespace {

std::vector<double> back_substitute(const Matrix& r, std::span<const double> qtb) {
  const std::size_t n = r.rows();
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = qtb[ii];
    for (std::size_t c = ii + 1; c < n; ++c) sum -= r(ii, c) * x[c];
    const double diag = r(ii, ii);
    if (std::abs(diag) < 1e-12 * (1.0 + std::abs(sum))) {
      throw std::runtime_error("ols: numerically singular R");
    }
    x[ii] = sum / diag;
  }
  return x;
}

}  // namespace

double r_squared(std::span<const double> observed, std::span<const double> predicted) {
  if (observed.size() != predicted.size() || observed.empty()) {
    throw std::invalid_argument("r_squared: series mismatch");
  }
  const double mean =
      std::accumulate(observed.begin(), observed.end(), 0.0) / static_cast<double>(observed.size());
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_tot += (observed[i] - mean) * (observed[i] - mean);
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

FitResult ols(const Matrix& a, std::span<const double> b) {
  const auto qr = qr_least_squares(a, b);
  FitResult fit;
  fit.coefficients = back_substitute(qr.r, qr.qtb);
  fit.residual_norm = qr.residual_norm;
  const auto predicted = a.multiply(fit.coefficients);
  fit.r_squared = r_squared(b, predicted);
  return fit;
}

FitResult ridge(const Matrix& a, std::span<const double> b, double lambda) {
  if (lambda < 0.0) throw std::invalid_argument("ridge: negative lambda");
  if (lambda == 0.0) return ols(a, b);
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix aug(m + n, n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) aug(r, c) = a(r, c);
  }
  const double s = std::sqrt(lambda);
  for (std::size_t i = 0; i < n; ++i) aug(m + i, i) = s;
  std::vector<double> rhs(b.begin(), b.end());
  rhs.resize(m + n, 0.0);

  const auto qr = qr_least_squares(aug, rhs);
  FitResult fit;
  fit.coefficients = back_substitute(qr.r, qr.qtb);
  const auto predicted = a.multiply(fit.coefficients);
  double sq = 0.0;
  for (std::size_t i = 0; i < m; ++i) sq += (predicted[i] - b[i]) * (predicted[i] - b[i]);
  fit.residual_norm = std::sqrt(sq);
  fit.r_squared = r_squared(b, predicted);
  return fit;
}

FitResult nnls(const Matrix& a, std::span<const double> b, std::size_t max_iterations) {
  // Start from the unconstrained solution; repeatedly zero out negative
  // coefficients and re-fit over the remaining (active) columns. This simple
  // scheme converges for the well-conditioned, few-column problems power
  // model learning produces.
  const std::size_t n = a.cols();
  std::vector<std::size_t> active(n);
  std::iota(active.begin(), active.end(), 0);

  FitResult fit;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    if (active.empty()) {
      fit.coefficients.assign(n, 0.0);
      double sq = 0.0;
      for (double v : b) sq += v * v;
      fit.residual_norm = std::sqrt(sq);
      fit.r_squared = 0.0;
      return fit;
    }
    const Matrix sub = a.select_columns(active);
    const FitResult sub_fit = ols(sub, b);

    // Find the most negative coefficient; drop it and retry.
    std::size_t worst_idx = active.size();
    double worst = -1e-12;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (sub_fit.coefficients[i] < worst) {
        worst = sub_fit.coefficients[i];
        worst_idx = i;
      }
    }
    if (worst_idx == active.size()) {
      fit.coefficients.assign(n, 0.0);
      for (std::size_t i = 0; i < active.size(); ++i) {
        fit.coefficients[active[i]] = sub_fit.coefficients[i];
      }
      fit.residual_norm = sub_fit.residual_norm;
      const auto predicted = a.multiply(fit.coefficients);
      fit.r_squared = r_squared(b, predicted);
      return fit;
    }
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(worst_idx));
  }
  throw std::runtime_error("nnls: did not converge");
}

Matrix with_intercept(const Matrix& a) {
  Matrix out(a.rows(), a.cols() + 1);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    out(r, 0) = 1.0;
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c + 1) = a(r, c);
  }
  return out;
}

}  // namespace powerapi::mathx
