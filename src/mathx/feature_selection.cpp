#include "mathx/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mathx/correlation.h"

namespace powerapi::mathx {

namespace {
double correlate(CorrelationKind kind, std::span<const double> x, std::span<const double> y) {
  return kind == CorrelationKind::kSpearman ? spearman(x, y) : pearson(x, y);
}
}  // namespace

std::vector<FeatureScore> rank_features(const Matrix& design,
                                        std::span<const double> target,
                                        std::span<const std::string> names,
                                        CorrelationKind kind) {
  if (!names.empty() && names.size() != design.cols()) {
    throw std::invalid_argument("rank_features: names/columns mismatch");
  }
  if (target.size() != design.rows()) {
    throw std::invalid_argument("rank_features: target length mismatch");
  }
  std::vector<FeatureScore> scores;
  scores.reserve(design.cols());
  for (std::size_t c = 0; c < design.cols(); ++c) {
    const auto col = design.column_vector(c);
    FeatureScore s;
    s.column = c;
    s.name = names.empty() ? std::to_string(c) : names[c];
    s.correlation = correlate(kind, col, target);
    scores.push_back(std::move(s));
  }
  std::sort(scores.begin(), scores.end(), [](const FeatureScore& a, const FeatureScore& b) {
    return std::abs(a.correlation) > std::abs(b.correlation);
  });
  return scores;
}

std::vector<FeatureScore> select_features(const Matrix& design,
                                          std::span<const double> target,
                                          std::span<const std::string> names,
                                          const SelectionOptions& options) {
  const auto ranked = rank_features(design, target, names, options.kind);
  std::vector<FeatureScore> selected;
  for (const auto& candidate : ranked) {
    if (selected.size() >= options.max_features) break;
    if (std::abs(candidate.correlation) < options.min_abs_correlation) break;

    const auto cand_col = design.column_vector(candidate.column);
    bool redundant = false;
    for (const auto& chosen : selected) {
      const auto chosen_col = design.column_vector(chosen.column);
      const double mutual = std::abs(correlate(options.kind, cand_col, chosen_col));
      if (mutual > options.max_mutual_correlation) {
        redundant = true;
        break;
      }
    }
    if (!redundant) selected.push_back(candidate);
  }
  return selected;
}

}  // namespace powerapi::mathx
