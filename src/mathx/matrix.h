// Dense row-major matrix for the regression toolkit.
//
// Model learning works on design matrices of a few thousand rows by a dozen
// columns; a straightforward dense implementation with bounds-checked access
// in debug paths is the right tool. No BLAS dependency.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

namespace powerapi::mathx {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);

  /// Builds a single-column matrix from a vector.
  static Matrix column(std::span<const double> values);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  /// Extracts column `c` as a vector (copy).
  std::vector<double> column_vector(std::size_t c) const;

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix scaled(double s) const;

  /// Matrix-vector product; `v.size()` must equal `cols()`.
  std::vector<double> multiply(std::span<const double> v) const;

  /// Appends a row; its width must match (or set the width when empty).
  void append_row(std::span<const double> values);

  /// Keeps only the columns listed in `keep`, in that order.
  Matrix select_columns(std::span<const std::size_t> keep) const;

  /// Frobenius norm.
  double frobenius_norm() const noexcept;

  /// Maximum absolute element difference against `rhs` (shape must match).
  double max_abs_diff(const Matrix& rhs) const;

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix index out of range");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace powerapi::mathx
