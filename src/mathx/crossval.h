// k-fold cross-validation for model selection: used by the training pipeline
// to compare counter sets and regularization strengths without peeking at the
// evaluation workload.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "mathx/matrix.h"
#include "util/rng.h"

namespace powerapi::mathx {

/// Row indices of one train/validate split.
struct Fold {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validate;
};

/// Shuffled k-fold split over `n` rows. Every row lands in exactly one
/// validation fold. Throws if k < 2 or k > n.
std::vector<Fold> make_folds(std::size_t n, std::size_t k, util::Rng& rng);

/// Gathers the given rows of a design matrix / target vector.
Matrix gather_rows(const Matrix& m, std::span<const std::size_t> rows);
std::vector<double> gather(std::span<const double> v, std::span<const std::size_t> rows);

/// A model factory: fit on (X, y), return a predictor over rows of X.
using FitFn = std::function<std::function<double(std::span<const double>)>(
    const Matrix&, std::span<const double>)>;

struct CrossValResult {
  double mean_rmse = 0.0;
  double stddev_rmse = 0.0;
  std::vector<double> fold_rmse;
};

/// Runs k-fold CV of `fit` over (design, target).
CrossValResult cross_validate(const Matrix& design,
                              std::span<const double> target,
                              std::size_t k,
                              util::Rng& rng,
                              const FitFn& fit);

}  // namespace powerapi::mathx
