// Elementwise batch kernels for the SoA monitoring hot path.
//
// These are the only loops the feature/model sweep executes per lane, kept
// in one translation unit so the build can apply aggressive vectorization
// flags locally (see CMakeLists: kernels.cpp gets -O3 and an optional
// vectorizer report) without touching the flags of the simulation kernel,
// whose FP codegen is pinned by the golden determinism tests.
//
// Bit-identity contract: every kernel performs the same IEEE operation per
// element as its scalar counterpart, in the same per-element expression
// shape — `double(saturating_delta) / seconds` stays a division (never a
// multiply by reciprocal) and `y += a * x` keeps the single mul-add shape
// the scalar model evaluation uses, so fused contraction is applied (or
// not) identically in both paths. Lane traversal order never changes the
// per-element result because elements are independent.
#pragma once

#include <cstddef>
#include <cstdint>

namespace powerapi::mathx {

/// out[i] = double(cur[i] - prev[i]) / seconds[i], with the subtraction
/// saturating at zero (counter regression reads as a zero delta, matching
/// CounterBlock::delta_since).
void saturating_delta_rate(const std::uint64_t* cur, const std::uint64_t* prev,
                           const double* seconds, double* out, std::size_t n) noexcept;

/// y[i] += a * x[i] — the batched form of one coefficient term of a linear
/// model; sweeping coefficients in the scalar accumulation order keeps the
/// sum bit-identical to per-row evaluation.
void axpy(double a, const double* x, double* y, std::size_t n) noexcept;

/// out[i] = x[i] * a — scalar broadcast multiply.
void scale(const double* x, double a, double* out, std::size_t n) noexcept;

/// out[i] = x[i] / d[i] — elementwise division (kept a division for bit
/// parity with the scalar expression).
void divide(const double* x, const double* d, double* out, std::size_t n) noexcept;

void fill(double* out, double value, std::size_t n) noexcept;

}  // namespace powerapi::mathx
