// Ordinary least squares via Householder QR, plus ridge regularization.
//
// This is the "multivariate regression" box of the paper's Figure 1: a design
// matrix of counter rates (one column per HPC event, optionally an intercept
// column) against measured watts.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mathx/matrix.h"

namespace powerapi::mathx {

/// QR factorization A = Q·R computed by Householder reflections.
/// Only what least-squares needs is retained: R (upper triangular) and the
/// implicitly applied Qᵀb.
struct QrFactorization {
  Matrix r;                    ///< n×n upper-triangular factor (n = cols of A).
  std::vector<double> qtb;     ///< First n entries of Qᵀ·b.
  double residual_norm = 0.0;  ///< ‖A·x − b‖₂ of the least-squares solution.
};

/// Factorizes and applies to `b` in one pass. Requires rows ≥ cols and a
/// non-degenerate A; throws std::invalid_argument on shape errors and
/// std::runtime_error on (numerical) rank deficiency.
QrFactorization qr_least_squares(const Matrix& a, std::span<const double> b);

/// Result of a least-squares fit.
struct FitResult {
  std::vector<double> coefficients;  ///< One per design-matrix column.
  double residual_norm = 0.0;        ///< ‖Ax − b‖₂.
  double r_squared = 0.0;            ///< Coefficient of determination.
};

/// Solves min ‖A·x − b‖₂. Throws on rank deficiency; callers that sweep
/// candidate feature sets should catch and skip degenerate sets.
FitResult ols(const Matrix& a, std::span<const double> b);

/// Ridge regression: min ‖A·x − b‖² + λ‖x‖². Always well-posed for λ > 0.
/// Implemented as OLS on the augmented system [A; √λ·I].
FitResult ridge(const Matrix& a, std::span<const double> b, double lambda);

/// Non-negative least squares by iterative coefficient clamping (active-set
/// flavoured). Power formulas must not assign negative watts to activity
/// counters; the paper's published coefficients are all positive.
FitResult nnls(const Matrix& a, std::span<const double> b, std::size_t max_iterations = 32);

/// Prepends a column of ones to `a` (intercept term).
Matrix with_intercept(const Matrix& a);

/// Coefficient of determination for predictions vs observations.
double r_squared(std::span<const double> observed, std::span<const double> predicted);

}  // namespace powerapi::mathx
