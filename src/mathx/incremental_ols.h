// Streaming least squares for online model calibration.
//
// The offline path (ols.h) factorizes the whole design matrix at once; the
// online path absorbs one (features, watts) row at a time as sensor reports
// pair up with meter readings, and must be able to solve at any moment
// without revisiting old rows. IncrementalOls maintains the same upper-
// triangular R factor and Qᵀb vector a batch Householder QR would produce
// (up to reflector signs), updated per row by Givens rotations — so its
// solution matches mathx::ols to machine precision instead of squaring the
// condition number the way raw normal equations do. The normal-equation
// accumulators (XᵀX, Xᵀy) are kept alongside for the column-subset solves
// the non-negativity clamp needs.
//
// An optional forgetting factor λ ∈ (0, 1] turns the accumulator into
// recursive least squares: each new row first decays all previous rows'
// weight by λ, so a drifting workload re-weights the fit toward recent
// windows without unbounded memory.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mathx/ols.h"

namespace powerapi::mathx {

class IncrementalOls {
 public:
  /// `dimensions` = number of regression columns (fixed for the lifetime).
  explicit IncrementalOls(std::size_t dimensions);

  std::size_t dimensions() const noexcept { return dims_; }
  /// Rows absorbed since construction / clear().
  std::size_t count() const noexcept { return count_; }
  /// Sum of forgetting weights (== count() when λ = 1).
  double effective_weight() const noexcept { return weight_; }

  /// Sets the forgetting factor applied before each subsequent add().
  /// Throws std::invalid_argument outside (0, 1].
  void set_forgetting(double lambda);

  /// Absorbs one observation row. `x` must have exactly dimensions() entries.
  void add(std::span<const double> x, double y);

  /// Drops all absorbed rows (keeps dimensions and forgetting factor).
  void clear();

  /// Rank-deficiency guard: true when enough rows have been absorbed and
  /// the R factor's diagonal is numerically non-singular — i.e. solve()
  /// will not throw. The warmup gate of online calibration.
  bool well_determined() const noexcept;

  /// Solves min ‖A·x − b‖₂ over everything absorbed so far. Matches
  /// mathx::ols on the same rows to machine precision. Throws
  /// std::invalid_argument when underdetermined (count < dimensions) and
  /// std::runtime_error on numerical rank deficiency.
  FitResult solve() const;

  /// Non-negative solve by iterative coefficient clamping, mirroring
  /// mathx::nnls: power formulas must not refund watts per event.
  FitResult solve_nonnegative(std::size_t max_iterations = 32) const;

 private:
  double& r_at(std::size_t row, std::size_t col) noexcept {
    return r_[row * dims_ + col];
  }
  double r_at(std::size_t row, std::size_t col) const noexcept {
    return r_[row * dims_ + col];
  }

  FitResult finish(std::vector<double> coefficients, double ss_res) const;

  std::size_t dims_;
  double lambda_ = 1.0;

  // QR state: R (dims×dims upper triangular, row-major), Qᵀb, and the
  // rotated-out residual sum of squares.
  std::vector<double> r_;
  std::vector<double> qtb_;
  double tail_ss_ = 0.0;

  // Normal-equation shadow (for column-subset solves) and y statistics
  // (for R² without revisiting rows).
  std::vector<double> xtx_;  ///< dims×dims, row-major, symmetric.
  std::vector<double> xty_;
  double sum_y_ = 0.0;
  double sum_yy_ = 0.0;

  std::size_t count_ = 0;
  double weight_ = 0.0;
};

}  // namespace powerapi::mathx
