#include "mathx/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace powerapi::mathx {

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("pearson: length mismatch");
  if (x.size() < 2) throw std::invalid_argument("pearson: need at least two samples");
  const auto n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> fractional_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank over the tie group [i, j], 1-based.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("spearman: length mismatch");
  if (x.size() < 2) throw std::invalid_argument("spearman: need at least two samples");
  const auto rx = fractional_ranks(x);
  const auto ry = fractional_ranks(y);
  return pearson(rx, ry);
}

}  // namespace powerapi::mathx
