#include "mathx/kernels.h"

namespace powerapi::mathx {

void saturating_delta_rate(const std::uint64_t* cur, const std::uint64_t* prev,
                           const double* seconds, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t delta = cur[i] >= prev[i] ? cur[i] - prev[i] : 0;
    out[i] = static_cast<double>(delta) / seconds[i];
  }
}

void axpy(double a, const double* x, double* y, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void scale(const double* x, double a, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] * a;
}

void divide(const double* x, const double* d, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] / d[i];
}

void fill(double* out, double value, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = value;
}

}  // namespace powerapi::mathx
