// Automatic counter selection (the paper's announced future work):
// rank candidate HPC events by Spearman correlation with measured power,
// greedily drop redundant ones, and keep the top-k set for regression.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "mathx/matrix.h"

namespace powerapi::mathx {

enum class CorrelationKind { kPearson, kSpearman };

/// One candidate feature's score against the target.
struct FeatureScore {
  std::size_t column = 0;       ///< Column index in the design matrix.
  std::string name;             ///< Caller-supplied label (event name).
  double correlation = 0.0;     ///< Signed correlation with the target.
};

/// Scores each design-matrix column against `target`, sorted by |corr| desc.
std::vector<FeatureScore> rank_features(const Matrix& design,
                                        std::span<const double> target,
                                        std::span<const std::string> names,
                                        CorrelationKind kind);

struct SelectionOptions {
  CorrelationKind kind = CorrelationKind::kSpearman;
  std::size_t max_features = 3;       ///< Keep at most this many columns.
  double min_abs_correlation = 0.30;  ///< Discard weakly correlated events.
  /// Drop a candidate whose |corr| with an already selected feature exceeds
  /// this (redundancy filter): near-duplicate counters (e.g. `instructions`
  /// vs `branch-instructions` on branchy code) bloat and destabilize fits.
  double max_mutual_correlation = 0.95;
};

/// Greedy correlation-filter selection; returns the chosen scores in
/// selection order (strongest first).
std::vector<FeatureScore> select_features(const Matrix& design,
                                          std::span<const double> target,
                                          std::span<const std::string> names,
                                          const SelectionOptions& options);

}  // namespace powerapi::mathx
