// Pearson and Spearman correlation.
//
// The paper's conclusion proposes Spearman rank correlation for automatically
// selecting the counters most correlated with power; we implement both it and
// Pearson, and the feature-selection module builds on them (experiment A1).
#pragma once

#include <span>
#include <vector>

namespace powerapi::mathx {

/// Pearson product-moment correlation in [-1, 1]. Returns 0 when either
/// series has zero variance. Throws std::invalid_argument on length mismatch
/// or fewer than two samples.
double pearson(std::span<const double> x, std::span<const double> y);

/// Fractional ranks (1-based), ties receive their average rank — the
/// standard treatment for Spearman on discrete counter values.
std::vector<double> fractional_ranks(std::span<const double> xs);

/// Spearman rank correlation: Pearson over fractional ranks.
double spearman(std::span<const double> x, std::span<const double> y);

}  // namespace powerapi::mathx
