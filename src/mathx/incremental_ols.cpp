#include "mathx/incremental_ols.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace powerapi::mathx {

IncrementalOls::IncrementalOls(std::size_t dimensions) : dims_(dimensions) {
  if (dims_ == 0) throw std::invalid_argument("IncrementalOls: zero dimensions");
  r_.assign(dims_ * dims_, 0.0);
  qtb_.assign(dims_, 0.0);
  xtx_.assign(dims_ * dims_, 0.0);
  xty_.assign(dims_, 0.0);
}

void IncrementalOls::set_forgetting(double lambda) {
  if (!(lambda > 0.0) || lambda > 1.0) {
    throw std::invalid_argument("IncrementalOls: forgetting factor outside (0, 1]");
  }
  lambda_ = lambda;
}

void IncrementalOls::clear() {
  std::fill(r_.begin(), r_.end(), 0.0);
  std::fill(qtb_.begin(), qtb_.end(), 0.0);
  std::fill(xtx_.begin(), xtx_.end(), 0.0);
  std::fill(xty_.begin(), xty_.end(), 0.0);
  tail_ss_ = 0.0;
  sum_y_ = 0.0;
  sum_yy_ = 0.0;
  count_ = 0;
  weight_ = 0.0;
}

void IncrementalOls::add(std::span<const double> x, double y) {
  if (x.size() != dims_) throw std::invalid_argument("IncrementalOls::add: row length mismatch");

  if (lambda_ != 1.0) {
    const double s = std::sqrt(lambda_);
    for (double& v : r_) v *= s;
    for (double& v : qtb_) v *= s;
    tail_ss_ *= lambda_;
    for (double& v : xtx_) v *= lambda_;
    for (double& v : xty_) v *= lambda_;
    sum_y_ *= lambda_;
    sum_yy_ *= lambda_;
    weight_ *= lambda_;
  }

  // Rotate the new row into R one column at a time (Givens): after column k
  // the row's k-th entry is zero and R's k-th row has absorbed it.
  std::vector<double> row(x.begin(), x.end());
  double rhs = y;
  for (std::size_t k = 0; k < dims_; ++k) {
    const double b = row[k];
    if (b == 0.0) continue;
    const double a = r_at(k, k);
    const double rho = std::hypot(a, b);
    const double c = a / rho;
    const double s = b / rho;
    for (std::size_t j = k; j < dims_; ++j) {
      const double rkj = r_at(k, j);
      r_at(k, j) = c * rkj + s * row[j];
      row[j] = -s * rkj + c * row[j];
    }
    const double qk = qtb_[k];
    qtb_[k] = c * qk + s * rhs;
    rhs = -s * qk + c * rhs;
  }
  tail_ss_ += rhs * rhs;  // The component orthogonal to the column space.

  for (std::size_t i = 0; i < dims_; ++i) {
    xty_[i] += x[i] * y;
    for (std::size_t j = 0; j < dims_; ++j) xtx_[i * dims_ + j] += x[i] * x[j];
  }
  sum_y_ += y;
  sum_yy_ += y * y;
  ++count_;
  weight_ += 1.0;
}

bool IncrementalOls::well_determined() const noexcept {
  if (count_ < dims_) return false;
  double max_diag = 0.0;
  for (std::size_t k = 0; k < dims_; ++k) max_diag = std::max(max_diag, std::abs(r_at(k, k)));
  if (max_diag == 0.0) return false;
  for (std::size_t k = 0; k < dims_; ++k) {
    if (std::abs(r_at(k, k)) < 1e-10 * max_diag) return false;
  }
  return true;
}

FitResult IncrementalOls::finish(std::vector<double> coefficients, double ss_res) const {
  FitResult fit;
  fit.coefficients = std::move(coefficients);
  fit.residual_norm = std::sqrt(std::max(0.0, ss_res));
  const double ss_tot = sum_yy_ - sum_y_ * sum_y_ / weight_;
  if (ss_tot <= 0.0) {
    fit.r_squared = ss_res <= 1e-12 * (1.0 + sum_yy_) ? 1.0 : 0.0;
  } else {
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

FitResult IncrementalOls::solve() const {
  if (count_ < dims_) throw std::invalid_argument("IncrementalOls::solve: underdetermined system");

  // Back-substitution with the same singularity guard as the batch path.
  std::vector<double> x(dims_, 0.0);
  for (std::size_t ii = dims_; ii-- > 0;) {
    double sum = qtb_[ii];
    for (std::size_t c = ii + 1; c < dims_; ++c) sum -= r_at(ii, c) * x[c];
    const double diag = r_at(ii, ii);
    if (std::abs(diag) < 1e-12 * (1.0 + std::abs(sum))) {
      throw std::runtime_error("IncrementalOls::solve: numerically singular R");
    }
    x[ii] = sum / diag;
  }
  return finish(std::move(x), tail_ss_);
}

FitResult IncrementalOls::solve_nonnegative(std::size_t max_iterations) const {
  if (count_ < dims_) {
    throw std::invalid_argument("IncrementalOls::solve_nonnegative: underdetermined system");
  }

  // Active-set clamping on the normal-equation shadow: solve the subset via
  // Cholesky, drop the most negative coefficient, repeat — the streaming
  // analogue of mathx::nnls.
  auto solve_subset = [this](const std::vector<std::size_t>& active) {
    const std::size_t n = active.size();
    std::vector<double> chol(n * n, 0.0);
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = xty_[active[i]];
      for (std::size_t j = 0; j <= i; ++j) {
        chol[i * n + j] = xtx_[active[i] * dims_ + active[j]];
      }
    }
    double max_diag = 0.0;
    for (std::size_t i = 0; i < n; ++i) max_diag = std::max(max_diag, chol[i * n + i]);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double sum = chol[i * n + j];
        for (std::size_t k = 0; k < j; ++k) sum -= chol[i * n + k] * chol[j * n + k];
        if (i == j) {
          if (sum < 1e-14 * (1.0 + max_diag)) {
            throw std::runtime_error("IncrementalOls::solve_nonnegative: rank-deficient subset");
          }
          chol[i * n + i] = std::sqrt(sum);
        } else {
          chol[i * n + j] = sum / chol[j * n + j];
        }
      }
    }
    // Forward then backward substitution (L·Lᵀ·x = rhs).
    for (std::size_t i = 0; i < n; ++i) {
      double sum = rhs[i];
      for (std::size_t k = 0; k < i; ++k) sum -= chol[i * n + k] * rhs[k];
      rhs[i] = sum / chol[i * n + i];
    }
    for (std::size_t ii = n; ii-- > 0;) {
      double sum = rhs[ii];
      for (std::size_t k = ii + 1; k < n; ++k) sum -= chol[k * n + ii] * rhs[k];
      rhs[ii] = sum / chol[ii * n + ii];
    }
    return rhs;
  };

  // ‖Ax − b‖² for arbitrary coefficients via the quadratic form — no row
  // replay needed.
  auto residual_ss = [this](const std::vector<double>& b) {
    double quad = 0.0;
    double cross = 0.0;
    for (std::size_t i = 0; i < dims_; ++i) {
      cross += b[i] * xty_[i];
      for (std::size_t j = 0; j < dims_; ++j) quad += b[i] * xtx_[i * dims_ + j] * b[j];
    }
    return sum_yy_ - 2.0 * cross + quad;
  };

  std::vector<std::size_t> active(dims_);
  std::iota(active.begin(), active.end(), 0);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    if (active.empty()) {
      return finish(std::vector<double>(dims_, 0.0), sum_yy_);
    }
    const std::vector<double> sub = solve_subset(active);
    std::size_t worst_idx = active.size();
    double worst = -1e-12;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (sub[i] < worst) {
        worst = sub[i];
        worst_idx = i;
      }
    }
    if (worst_idx == active.size()) {
      std::vector<double> coefficients(dims_, 0.0);
      for (std::size_t i = 0; i < active.size(); ++i) coefficients[active[i]] = sub[i];
      const double ss_res = residual_ss(coefficients);
      return finish(std::move(coefficients), ss_res);
    }
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(worst_idx));
  }
  throw std::runtime_error("IncrementalOls::solve_nonnegative: did not converge");
}

}  // namespace powerapi::mathx
