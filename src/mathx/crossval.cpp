#include "mathx/crossval.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/stats.h"

namespace powerapi::mathx {

std::vector<Fold> make_folds(std::size_t n, std::size_t k, util::Rng& rng) {
  if (k < 2) throw std::invalid_argument("make_folds: k must be >= 2");
  if (k > n) throw std::invalid_argument("make_folds: more folds than rows");
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::shuffle(order.begin(), order.end(), rng.engine());

  std::vector<Fold> folds(k);
  for (std::size_t i = 0; i < n; ++i) {
    folds[i % k].validate.push_back(order[i]);
  }
  for (std::size_t f = 0; f < k; ++f) {
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      folds[f].train.insert(folds[f].train.end(), folds[g].validate.begin(),
                            folds[g].validate.end());
    }
    std::sort(folds[f].train.begin(), folds[f].train.end());
    std::sort(folds[f].validate.begin(), folds[f].validate.end());
  }
  return folds;
}

Matrix gather_rows(const Matrix& m, std::span<const std::size_t> rows) {
  Matrix out(rows.size(), m.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto src = m.row(rows[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

std::vector<double> gather(std::span<const double> v, std::span<const std::size_t> rows) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (std::size_t r : rows) out.push_back(v[r]);
  return out;
}

CrossValResult cross_validate(const Matrix& design,
                              std::span<const double> target,
                              std::size_t k,
                              util::Rng& rng,
                              const FitFn& fit) {
  if (design.rows() != target.size()) {
    throw std::invalid_argument("cross_validate: target length mismatch");
  }
  const auto folds = make_folds(design.rows(), k, rng);
  CrossValResult result;
  for (const auto& fold : folds) {
    const Matrix train_x = gather_rows(design, fold.train);
    const auto train_y = gather(target, fold.train);
    auto predictor = fit(train_x, train_y);

    double sq = 0.0;
    for (std::size_t r : fold.validate) {
      const double pred = predictor(design.row(r));
      const double err = pred - target[r];
      sq += err * err;
    }
    result.fold_rmse.push_back(std::sqrt(sq / static_cast<double>(fold.validate.size())));
  }
  result.mean_rmse = util::mean(result.fold_rmse);
  result.stddev_rmse = util::stddev(result.fold_rmse);
  return result;
}

}  // namespace powerapi::mathx
