// Static description of a simulated processor (the paper's Table 1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace powerapi::simcpu {

struct CacheLevelSpec {
  std::string name;        ///< "L1d", "L2", "L3".
  std::size_t bytes = 0;   ///< Capacity (per core for private, total for shared).
  bool shared = false;     ///< Shared across cores (LLC) or private per core.
  double hit_cycles = 4;   ///< Access latency in core cycles.
};

/// One core type of a heterogeneous (big.LITTLE-style) part: its own DVFS
/// ladder and execution/energy character. Cores are laid out in cluster
/// declaration order — cluster 0 owns cores [0, cores), cluster 1 the next
/// block, and so on — and cluster 0 is the package's PRIMARY frequency
/// domain: its ladder must equal CpuSpec::frequencies_hz, so every consumer
/// that sweeps or bins by the package ladder (governor, trainer,
/// per-frequency formulas) keeps working unchanged on heterogeneous parts.
struct CoreClusterSpec {
  std::string name;                    ///< "big", "little".
  std::size_t cores = 0;
  std::vector<double> frequencies_hz;  ///< Cluster DVFS ladder, ascending.
  /// Issue-width multiplier on retired IPC: the same code's base CPI is
  /// divided by this (out-of-order big core = 1.0; an in-order LITTLE at
  /// ~0.5 needs twice the cycles per instruction).
  double perf_scale = 1.0;
  /// Energy multiplier on the cluster's switching activity and C0 static
  /// power, normalized at the cluster's own f_max (a LITTLE core spends a
  /// fraction of a big core's energy per instruction).
  double energy_scale = 1.0;

  bool operator==(const CoreClusterSpec&) const = default;
};

/// Full machine specification. `i3_2120()` reproduces the paper's Table 1;
/// variants (SMT off, more cores) are derived for the baseline experiments.
struct CpuSpec {
  std::string vendor;
  std::string model;
  std::size_t cores = 2;
  std::size_t threads_per_core = 2;   ///< 2 => HyperThreading enabled.
  std::vector<double> frequencies_hz; ///< DVFS ladder, ascending.
  /// TurboBoost bins above the nominal maximum, ascending. The machine
  /// enters them opportunistically (few busy cores, set point at nominal
  /// max); they cannot be pinned. Empty when turbo_boost is false.
  std::vector<double> turbo_frequencies_hz;
  double tdp_watts = 65.0;
  bool speedstep = true;   ///< DVFS available.
  bool turbo_boost = false;
  bool c_states = true;
  std::vector<CacheLevelSpec> caches;
  /// Heterogeneous core types. Empty = homogeneous (every core runs the
  /// package ladder at scale 1.0). When present, the cluster core counts
  /// must sum to `cores`, cluster 0's ladder must equal `frequencies_hz`,
  /// and TurboBoost must be off (turbo is a package-global mechanism).
  std::vector<CoreClusterSpec> clusters;

  std::size_t hw_threads() const noexcept { return cores * threads_per_core; }
  bool smt() const noexcept { return threads_per_core > 1; }
  bool heterogeneous() const noexcept { return !clusters.empty(); }
  /// Number of frequency domains: clusters.size(), or 1 when homogeneous.
  std::size_t cluster_count() const noexcept {
    return clusters.empty() ? 1 : clusters.size();
  }
  /// Cluster owning `core` (0 for homogeneous parts; core out of range is
  /// clamped to the last cluster).
  std::size_t cluster_of_core(std::size_t core) const noexcept;
  double min_frequency_hz() const;
  double max_frequency_hz() const;
  /// Nearest ladder frequency to `hz`; throws if the ladder is empty.
  double closest_frequency_hz(double hz) const;
  /// Index of `hz` in the ladder; throws std::invalid_argument if absent.
  std::size_t frequency_index(double hz) const;
  /// Nominal ladder followed by the turbo bins: every frequency the machine
  /// can be OBSERVED at (the paper's per-frequency sum "including the
  /// TurboBoost ones when available").
  std::vector<double> all_frequencies_hz() const;

  /// Multi-line human-readable description in the style of Table 1.
  std::string describe() const;

  /// Throws std::invalid_argument when the spec is internally inconsistent
  /// (no cores, empty/unsorted frequency ladder, no LLC, ...).
  void validate() const;
};

/// The paper's evaluation processor: Intel Core i3-2120 — 2 cores / 4
/// threads, 1.6–3.3 GHz SpeedStep, HyperThreading, no TurboBoost, C-states,
/// 64 KB L1 + 256 KB L2 per core, 3 MB shared L3, 65 W TDP.
CpuSpec i3_2120();

/// The same silicon with HyperThreading disabled: stands in for the "simple
/// architecture" (Core 2 Duo class) of the Bertran et al. comparison (C1).
CpuSpec i3_2120_no_smt();

/// A 4-core / 8-thread derivative used by scaling tests and the scheduling
/// ablation (A3).
CpuSpec quad_core();

/// An i7-2600-class part: 4 cores / 8 threads, nominal 1.6–3.4 GHz, with
/// TurboBoost bins 3.5–3.8 GHz — exercises the turbo-aware code paths the
/// i3-2120 (Table 1: TurboBoost absent) cannot.
CpuSpec i7_2600();

/// A big.LITTLE-style SoC in the mold of the heterogeneous parts Mazzola et
/// al. fit per-domain power models on: 2 out-of-order "big" cores
/// (1.0–2.6 GHz) plus 4 in-order "LITTLE" cores (0.6–1.5 GHz at ~0.55×
/// the IPC and ~0.35× the energy per unit activity), no SMT, shared 2 MB
/// LLC. Cluster 0 (big) is the primary frequency domain.
CpuSpec big_little();

}  // namespace powerapi::simcpu
