// Static description of a simulated processor (the paper's Table 1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace powerapi::simcpu {

struct CacheLevelSpec {
  std::string name;        ///< "L1d", "L2", "L3".
  std::size_t bytes = 0;   ///< Capacity (per core for private, total for shared).
  bool shared = false;     ///< Shared across cores (LLC) or private per core.
  double hit_cycles = 4;   ///< Access latency in core cycles.
};

/// Full machine specification. `i3_2120()` reproduces the paper's Table 1;
/// variants (SMT off, more cores) are derived for the baseline experiments.
struct CpuSpec {
  std::string vendor;
  std::string model;
  std::size_t cores = 2;
  std::size_t threads_per_core = 2;   ///< 2 => HyperThreading enabled.
  std::vector<double> frequencies_hz; ///< DVFS ladder, ascending.
  /// TurboBoost bins above the nominal maximum, ascending. The machine
  /// enters them opportunistically (few busy cores, set point at nominal
  /// max); they cannot be pinned. Empty when turbo_boost is false.
  std::vector<double> turbo_frequencies_hz;
  double tdp_watts = 65.0;
  bool speedstep = true;   ///< DVFS available.
  bool turbo_boost = false;
  bool c_states = true;
  std::vector<CacheLevelSpec> caches;

  std::size_t hw_threads() const noexcept { return cores * threads_per_core; }
  bool smt() const noexcept { return threads_per_core > 1; }
  double min_frequency_hz() const;
  double max_frequency_hz() const;
  /// Nearest ladder frequency to `hz`; throws if the ladder is empty.
  double closest_frequency_hz(double hz) const;
  /// Index of `hz` in the ladder; throws std::invalid_argument if absent.
  std::size_t frequency_index(double hz) const;
  /// Nominal ladder followed by the turbo bins: every frequency the machine
  /// can be OBSERVED at (the paper's per-frequency sum "including the
  /// TurboBoost ones when available").
  std::vector<double> all_frequencies_hz() const;

  /// Multi-line human-readable description in the style of Table 1.
  std::string describe() const;

  /// Throws std::invalid_argument when the spec is internally inconsistent
  /// (no cores, empty/unsorted frequency ladder, no LLC, ...).
  void validate() const;
};

/// The paper's evaluation processor: Intel Core i3-2120 — 2 cores / 4
/// threads, 1.6–3.3 GHz SpeedStep, HyperThreading, no TurboBoost, C-states,
/// 64 KB L1 + 256 KB L2 per core, 3 MB shared L3, 65 W TDP.
CpuSpec i3_2120();

/// The same silicon with HyperThreading disabled: stands in for the "simple
/// architecture" (Core 2 Duo class) of the Bertran et al. comparison (C1).
CpuSpec i3_2120_no_smt();

/// A 4-core / 8-thread derivative used by scaling tests and the scheduling
/// ablation (A3).
CpuSpec quad_core();

/// An i7-2600-class part: 4 cores / 8 threads, nominal 1.6–3.4 GHz, with
/// TurboBoost bins 3.5–3.8 GHz — exercises the turbo-aware code paths the
/// i3-2120 (Table 1: TurboBoost absent) cannot.
CpuSpec i7_2600();

}  // namespace powerapi::simcpu
