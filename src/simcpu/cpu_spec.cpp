#include "simcpu/cpu_spec.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/units.h"

namespace powerapi::simcpu {

double CpuSpec::min_frequency_hz() const {
  if (frequencies_hz.empty()) throw std::logic_error("CpuSpec: empty frequency ladder");
  return frequencies_hz.front();
}

double CpuSpec::max_frequency_hz() const {
  if (frequencies_hz.empty()) throw std::logic_error("CpuSpec: empty frequency ladder");
  return frequencies_hz.back();
}

double CpuSpec::closest_frequency_hz(double hz) const {
  if (frequencies_hz.empty()) throw std::logic_error("CpuSpec: empty frequency ladder");
  double best = frequencies_hz.front();
  for (double f : frequencies_hz) {
    if (std::abs(f - hz) < std::abs(best - hz)) best = f;
  }
  return best;
}

std::size_t CpuSpec::frequency_index(double hz) const {
  for (std::size_t i = 0; i < frequencies_hz.size(); ++i) {
    if (std::abs(frequencies_hz[i] - hz) < 1.0) return i;  // 1 Hz tolerance.
  }
  throw std::invalid_argument("CpuSpec: frequency not in DVFS ladder");
}

std::size_t CpuSpec::cluster_of_core(std::size_t core) const noexcept {
  if (clusters.empty()) return 0;
  std::size_t first = 0;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    first += clusters[c].cores;
    if (core < first) return c;
  }
  return clusters.size() - 1;
}

std::vector<double> CpuSpec::all_frequencies_hz() const {
  std::vector<double> all = frequencies_hz;
  all.insert(all.end(), turbo_frequencies_hz.begin(), turbo_frequencies_hz.end());
  return all;
}

std::string CpuSpec::describe() const {
  std::ostringstream out;
  out << "Vendor            " << vendor << "\n"
      << "Model             " << model << "\n"
      << "Design            " << cores << " cores / " << hw_threads() << " threads\n"
      << "Frequency         " << util::hz_to_ghz(max_frequency_hz()) << " GHz\n"
      << "TDP               " << tdp_watts << " W\n"
      << "SpeedStep (DVFS)  " << (speedstep ? "yes" : "no") << "\n"
      << "HyperThreading    " << (smt() ? "yes" : "no") << "\n"
      << "TurboBoost        " << (turbo_boost ? "yes" : "no") << "\n"
      << "C-states          " << (c_states ? "yes" : "no") << "\n";
  for (const auto& c : caches) {
    out << c.name << " cache          " << c.bytes / 1024 << " KB"
        << (c.shared ? " (shared)" : " / core") << "\n";
  }
  for (const auto& cl : clusters) {
    out << "Cluster " << cl.name << "       " << cl.cores << " cores, "
        << util::hz_to_ghz(cl.frequencies_hz.front()) << "-"
        << util::hz_to_ghz(cl.frequencies_hz.back()) << " GHz, perf "
        << cl.perf_scale << "x, energy " << cl.energy_scale << "x\n";
  }
  return out.str();
}

void CpuSpec::validate() const {
  if (cores == 0) throw std::invalid_argument("CpuSpec: zero cores");
  if (threads_per_core == 0 || threads_per_core > 2) {
    throw std::invalid_argument("CpuSpec: threads_per_core must be 1 or 2");
  }
  if (frequencies_hz.empty()) throw std::invalid_argument("CpuSpec: empty frequency ladder");
  if (!std::is_sorted(frequencies_hz.begin(), frequencies_hz.end())) {
    throw std::invalid_argument("CpuSpec: frequency ladder must be ascending");
  }
  for (double f : frequencies_hz) {
    if (f <= 0) throw std::invalid_argument("CpuSpec: non-positive frequency");
  }
  if (tdp_watts <= 0) throw std::invalid_argument("CpuSpec: non-positive TDP");
  const bool has_llc = std::any_of(caches.begin(), caches.end(),
                                   [](const CacheLevelSpec& c) { return c.shared; });
  if (!caches.empty() && !has_llc) {
    throw std::invalid_argument("CpuSpec: cache hierarchy lacks a shared LLC");
  }
  if (!turbo_boost && !turbo_frequencies_hz.empty()) {
    throw std::invalid_argument("CpuSpec: turbo bins on a part without TurboBoost");
  }
  if (!turbo_frequencies_hz.empty()) {
    if (!std::is_sorted(turbo_frequencies_hz.begin(), turbo_frequencies_hz.end())) {
      throw std::invalid_argument("CpuSpec: turbo bins must be ascending");
    }
    if (turbo_frequencies_hz.front() <= frequencies_hz.back()) {
      throw std::invalid_argument("CpuSpec: turbo bins must exceed the nominal maximum");
    }
  }
  if (!clusters.empty()) {
    if (turbo_boost) {
      throw std::invalid_argument("CpuSpec: TurboBoost unsupported on clustered parts");
    }
    std::size_t total = 0;
    for (const auto& cl : clusters) {
      if (cl.name.empty()) throw std::invalid_argument("CpuSpec: cluster without a name");
      if (cl.cores == 0) throw std::invalid_argument("CpuSpec: cluster with zero cores");
      if (cl.frequencies_hz.empty()) {
        throw std::invalid_argument("CpuSpec: cluster '" + cl.name + "' has an empty ladder");
      }
      if (!std::is_sorted(cl.frequencies_hz.begin(), cl.frequencies_hz.end())) {
        throw std::invalid_argument("CpuSpec: cluster '" + cl.name +
                                    "' ladder must be ascending");
      }
      for (double f : cl.frequencies_hz) {
        if (f <= 0) {
          throw std::invalid_argument("CpuSpec: cluster '" + cl.name +
                                      "' has a non-positive frequency");
        }
      }
      if (cl.perf_scale <= 0 || cl.energy_scale <= 0) {
        throw std::invalid_argument("CpuSpec: cluster '" + cl.name +
                                    "' scales must be positive");
      }
      for (const auto& other : clusters) {
        if (&other != &cl && other.name == cl.name) {
          throw std::invalid_argument("CpuSpec: duplicate cluster name '" + cl.name + "'");
        }
      }
      total += cl.cores;
    }
    if (total != cores) {
      throw std::invalid_argument("CpuSpec: cluster core counts must sum to `cores`");
    }
    if (clusters.front().frequencies_hz != frequencies_hz) {
      throw std::invalid_argument(
          "CpuSpec: cluster 0 is the primary domain; its ladder must equal frequencies_hz");
    }
  }
}

namespace {
std::vector<double> speedstep_ladder() {
  // i3-2120 SpeedStep points: 1.6 .. 3.2 GHz in 200 MHz steps, then the
  // 3.3 GHz nominal frequency (no TurboBoost on this part).
  std::vector<double> f;
  for (double ghz = 1.6; ghz < 3.25; ghz += 0.2) f.push_back(util::ghz_to_hz(ghz));
  f.push_back(util::ghz_to_hz(3.3));
  return f;
}

std::vector<CacheLevelSpec> sandy_bridge_caches(std::size_t l3_bytes) {
  return {
      {"L1d", 32 * 1024, false, 4},
      {"L2", 256 * 1024, false, 12},
      {"L3", l3_bytes, true, 30},
  };
}
}  // namespace

CpuSpec i3_2120() {
  CpuSpec spec;
  spec.vendor = "Intel";
  spec.model = "Core i3-2120";
  spec.cores = 2;
  spec.threads_per_core = 2;
  spec.frequencies_hz = speedstep_ladder();
  spec.tdp_watts = 65.0;
  spec.speedstep = true;
  spec.turbo_boost = false;
  spec.c_states = true;
  spec.caches = sandy_bridge_caches(3 * 1024 * 1024);
  spec.validate();
  return spec;
}

CpuSpec i3_2120_no_smt() {
  CpuSpec spec = i3_2120();
  spec.model = "Core i3-2120 (SMT off)";
  spec.threads_per_core = 1;
  spec.validate();
  return spec;
}

CpuSpec i7_2600() {
  CpuSpec spec;
  spec.vendor = "Intel";
  spec.model = "Core i7-2600";
  spec.cores = 4;
  spec.threads_per_core = 2;
  for (double ghz = 1.6; ghz < 3.45; ghz += 0.2) {
    spec.frequencies_hz.push_back(util::ghz_to_hz(ghz));
  }
  spec.turbo_boost = true;
  // Per-active-core turbo table: 4 cores -> 3.5, ..., 1 core -> 3.8 GHz.
  spec.turbo_frequencies_hz = {util::ghz_to_hz(3.5), util::ghz_to_hz(3.6),
                               util::ghz_to_hz(3.7), util::ghz_to_hz(3.8)};
  spec.tdp_watts = 95.0;
  spec.speedstep = true;
  spec.c_states = true;
  spec.caches = sandy_bridge_caches(8 * 1024 * 1024);
  spec.validate();
  return spec;
}

CpuSpec big_little() {
  CpuSpec spec;
  spec.vendor = "SimSoC";
  spec.model = "bL-6 (2 big + 4 LITTLE)";
  spec.cores = 6;
  spec.threads_per_core = 1;  // Neither mobile cluster runs SMT.
  CoreClusterSpec big;
  big.name = "big";
  big.cores = 2;
  for (double ghz = 1.0; ghz < 2.65; ghz += 0.4) {
    big.frequencies_hz.push_back(util::ghz_to_hz(ghz));
  }
  big.perf_scale = 1.0;
  big.energy_scale = 1.0;
  CoreClusterSpec little;
  little.name = "little";
  little.cores = 4;
  for (double ghz = 0.6; ghz < 1.55; ghz += 0.3) {
    little.frequencies_hz.push_back(util::ghz_to_hz(ghz));
  }
  little.perf_scale = 0.55;
  little.energy_scale = 0.35;
  spec.frequencies_hz = big.frequencies_hz;  // Cluster 0 = primary domain.
  spec.clusters = {std::move(big), std::move(little)};
  spec.tdp_watts = 12.0;
  spec.speedstep = true;
  spec.turbo_boost = false;
  spec.c_states = true;
  spec.caches = {
      {"L1d", 32 * 1024, false, 4},
      {"L2", 128 * 1024, false, 10},
      {"L3", 2 * 1024 * 1024, true, 28},
  };
  spec.validate();
  return spec;
}

CpuSpec quad_core() {
  CpuSpec spec = i3_2120();
  spec.model = "Quad-core derivative";
  spec.cores = 4;
  spec.tdp_watts = 95.0;
  spec.caches = sandy_bridge_caches(8 * 1024 * 1024);
  spec.validate();
  return spec;
}

}  // namespace powerapi::simcpu
