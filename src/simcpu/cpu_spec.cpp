#include "simcpu/cpu_spec.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/units.h"

namespace powerapi::simcpu {

double CpuSpec::min_frequency_hz() const {
  if (frequencies_hz.empty()) throw std::logic_error("CpuSpec: empty frequency ladder");
  return frequencies_hz.front();
}

double CpuSpec::max_frequency_hz() const {
  if (frequencies_hz.empty()) throw std::logic_error("CpuSpec: empty frequency ladder");
  return frequencies_hz.back();
}

double CpuSpec::closest_frequency_hz(double hz) const {
  if (frequencies_hz.empty()) throw std::logic_error("CpuSpec: empty frequency ladder");
  double best = frequencies_hz.front();
  for (double f : frequencies_hz) {
    if (std::abs(f - hz) < std::abs(best - hz)) best = f;
  }
  return best;
}

std::size_t CpuSpec::frequency_index(double hz) const {
  for (std::size_t i = 0; i < frequencies_hz.size(); ++i) {
    if (std::abs(frequencies_hz[i] - hz) < 1.0) return i;  // 1 Hz tolerance.
  }
  throw std::invalid_argument("CpuSpec: frequency not in DVFS ladder");
}

std::vector<double> CpuSpec::all_frequencies_hz() const {
  std::vector<double> all = frequencies_hz;
  all.insert(all.end(), turbo_frequencies_hz.begin(), turbo_frequencies_hz.end());
  return all;
}

std::string CpuSpec::describe() const {
  std::ostringstream out;
  out << "Vendor            " << vendor << "\n"
      << "Model             " << model << "\n"
      << "Design            " << cores << " cores / " << hw_threads() << " threads\n"
      << "Frequency         " << util::hz_to_ghz(max_frequency_hz()) << " GHz\n"
      << "TDP               " << tdp_watts << " W\n"
      << "SpeedStep (DVFS)  " << (speedstep ? "yes" : "no") << "\n"
      << "HyperThreading    " << (smt() ? "yes" : "no") << "\n"
      << "TurboBoost        " << (turbo_boost ? "yes" : "no") << "\n"
      << "C-states          " << (c_states ? "yes" : "no") << "\n";
  for (const auto& c : caches) {
    out << c.name << " cache          " << c.bytes / 1024 << " KB"
        << (c.shared ? " (shared)" : " / core") << "\n";
  }
  return out.str();
}

void CpuSpec::validate() const {
  if (cores == 0) throw std::invalid_argument("CpuSpec: zero cores");
  if (threads_per_core == 0 || threads_per_core > 2) {
    throw std::invalid_argument("CpuSpec: threads_per_core must be 1 or 2");
  }
  if (frequencies_hz.empty()) throw std::invalid_argument("CpuSpec: empty frequency ladder");
  if (!std::is_sorted(frequencies_hz.begin(), frequencies_hz.end())) {
    throw std::invalid_argument("CpuSpec: frequency ladder must be ascending");
  }
  for (double f : frequencies_hz) {
    if (f <= 0) throw std::invalid_argument("CpuSpec: non-positive frequency");
  }
  if (tdp_watts <= 0) throw std::invalid_argument("CpuSpec: non-positive TDP");
  const bool has_llc = std::any_of(caches.begin(), caches.end(),
                                   [](const CacheLevelSpec& c) { return c.shared; });
  if (!caches.empty() && !has_llc) {
    throw std::invalid_argument("CpuSpec: cache hierarchy lacks a shared LLC");
  }
  if (!turbo_boost && !turbo_frequencies_hz.empty()) {
    throw std::invalid_argument("CpuSpec: turbo bins on a part without TurboBoost");
  }
  if (!turbo_frequencies_hz.empty()) {
    if (!std::is_sorted(turbo_frequencies_hz.begin(), turbo_frequencies_hz.end())) {
      throw std::invalid_argument("CpuSpec: turbo bins must be ascending");
    }
    if (turbo_frequencies_hz.front() <= frequencies_hz.back()) {
      throw std::invalid_argument("CpuSpec: turbo bins must exceed the nominal maximum");
    }
  }
}

namespace {
std::vector<double> speedstep_ladder() {
  // i3-2120 SpeedStep points: 1.6 .. 3.2 GHz in 200 MHz steps, then the
  // 3.3 GHz nominal frequency (no TurboBoost on this part).
  std::vector<double> f;
  for (double ghz = 1.6; ghz < 3.25; ghz += 0.2) f.push_back(util::ghz_to_hz(ghz));
  f.push_back(util::ghz_to_hz(3.3));
  return f;
}

std::vector<CacheLevelSpec> sandy_bridge_caches(std::size_t l3_bytes) {
  return {
      {"L1d", 32 * 1024, false, 4},
      {"L2", 256 * 1024, false, 12},
      {"L3", l3_bytes, true, 30},
  };
}
}  // namespace

CpuSpec i3_2120() {
  CpuSpec spec;
  spec.vendor = "Intel";
  spec.model = "Core i3-2120";
  spec.cores = 2;
  spec.threads_per_core = 2;
  spec.frequencies_hz = speedstep_ladder();
  spec.tdp_watts = 65.0;
  spec.speedstep = true;
  spec.turbo_boost = false;
  spec.c_states = true;
  spec.caches = sandy_bridge_caches(3 * 1024 * 1024);
  spec.validate();
  return spec;
}

CpuSpec i3_2120_no_smt() {
  CpuSpec spec = i3_2120();
  spec.model = "Core i3-2120 (SMT off)";
  spec.threads_per_core = 1;
  spec.validate();
  return spec;
}

CpuSpec i7_2600() {
  CpuSpec spec;
  spec.vendor = "Intel";
  spec.model = "Core i7-2600";
  spec.cores = 4;
  spec.threads_per_core = 2;
  for (double ghz = 1.6; ghz < 3.45; ghz += 0.2) {
    spec.frequencies_hz.push_back(util::ghz_to_hz(ghz));
  }
  spec.turbo_boost = true;
  // Per-active-core turbo table: 4 cores -> 3.5, ..., 1 core -> 3.8 GHz.
  spec.turbo_frequencies_hz = {util::ghz_to_hz(3.5), util::ghz_to_hz(3.6),
                               util::ghz_to_hz(3.7), util::ghz_to_hz(3.8)};
  spec.tdp_watts = 95.0;
  spec.speedstep = true;
  spec.c_states = true;
  spec.caches = sandy_bridge_caches(8 * 1024 * 1024);
  spec.validate();
  return spec;
}

CpuSpec quad_core() {
  CpuSpec spec = i3_2120();
  spec.model = "Quad-core derivative";
  spec.cores = 4;
  spec.tdp_watts = 95.0;
  spec.caches = sandy_bridge_caches(8 * 1024 * 1024);
  spec.validate();
  return spec;
}

}  // namespace powerapi::simcpu
