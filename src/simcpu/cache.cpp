#include "simcpu/cache.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerapi::simcpu {

namespace {
constexpr double kLineBytes = 64.0;
/// Fraction of granted share a thread can fill per second at full miss rate.
/// Derived from ~10 GB/s fill bandwidth spread over contenders; we fold it
/// into a simple exponential approach with this rate constant.
constexpr double kFillRatePerSec = 40.0;
}  // namespace

CacheHierarchy::CacheHierarchy(const CpuSpec& spec, std::size_t hw_threads)
    : resident_(hw_threads, 0.0) {
  for (const auto& level : spec.caches) {
    if (level.shared) llc_bytes_ = std::max(llc_bytes_, level.bytes);
    else if (level.name == "L2") l2_bytes_ = level.bytes;
  }
  if (llc_bytes_ == 0) throw std::invalid_argument("CacheHierarchy: spec lacks a shared LLC");
}

std::vector<CacheShare> CacheHierarchy::tick(std::span<const CacheDemand> demands,
                                             util::DurationNs dt) {
  std::vector<CacheShare> out;
  tick_into(demands, dt, out);
  return out;
}

void CacheHierarchy::tick_into(std::span<const CacheDemand> demands, util::DurationNs dt,
                               std::vector<CacheShare>& out) {
  if (demands.size() != resident_.size()) {
    throw std::invalid_argument("CacheHierarchy::tick: demand slot mismatch");
  }
  const double dt_s = util::ns_to_seconds(dt);

  // Demand beyond the private levels: what actually competes for LLC.
  llc_need_.assign(demands.size(), 0.0);
  std::vector<double>& llc_need = llc_need_;
  double total_need = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (!demands[i].active) continue;
    const double beyond_l2 = std::max(0.0, demands[i].working_set_bytes -
                                               static_cast<double>(l2_bytes_));
    // Weight capacity demand by reference rate: a hot small set defends its
    // lines better than a cold large one (LRU approximation).
    const double weight = 1.0 + demands[i].llc_refs_per_sec / 1e7;
    llc_need[i] = beyond_l2 * weight;
    total_need += llc_need[i];
  }

  out.assign(demands.size(), CacheShare{});
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& d = demands[i];
    if (!d.active) {
      // Inactive threads decay their footprint (evicted by others).
      resident_[i] *= std::max(0.0, 1.0 - 2.0 * dt_s);
      continue;
    }
    const double beyond_l2 =
        std::max(0.0, d.working_set_bytes - static_cast<double>(l2_bytes_));
    double share = static_cast<double>(llc_bytes_);
    if (total_need > static_cast<double>(llc_bytes_) && total_need > 0.0) {
      share = static_cast<double>(llc_bytes_) * llc_need[i] / total_need;
    } else {
      share = std::min(share, std::max(beyond_l2, kLineBytes));
    }
    const double target_resident = std::min(beyond_l2, share);

    // Exponential fill towards the target (warm-up transient).
    const double alpha = 1.0 - std::exp(-kFillRatePerSec * dt_s);
    resident_[i] += (target_resident - resident_[i]) * alpha;

    double capacity_miss = 0.0;
    if (beyond_l2 > kLineBytes) {
      capacity_miss = std::clamp(1.0 - resident_[i] / beyond_l2, 0.0, 1.0);
    }
    CacheShare s;
    s.llc_share_bytes = share;
    s.miss_ratio = std::clamp(
        d.intrinsic_miss_ratio + (1.0 - d.intrinsic_miss_ratio) * capacity_miss, 0.0, 1.0);
    out[i] = s;
  }
}

}  // namespace powerapi::simcpu
