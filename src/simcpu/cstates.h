// Per-core C-state (idle state) model.
//
// An idle core descends C0 → C1 → C3 → C6 as consecutive idle time grows
// (mirroring the Linux menu governor's promotion behaviour), cutting its
// share of idle power; waking costs a small energy spike. This is one of the
// hidden nonlinearities that keeps linear counter models honest: idle power
// is not a constant but depends on the idleness *pattern*.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.h"

namespace powerapi::simcpu {

enum class CState { kC0 = 0, kC1 = 1, kC3 = 2, kC6 = 3 };

const char* to_string(CState s) noexcept;

struct CStateParams {
  /// Residual power (watts) a core burns while resident in each state.
  double c0_idle_watts = 3.7;  ///< Clock running, no useful work.
  double c1_watts = 2.6;       ///< Halt.
  double c3_watts = 0.9;       ///< Clock gated, caches flushed to L3.
  double c6_watts = 0.2;       ///< Power gated.
  /// Consecutive idle time required to be promoted into the state.
  util::DurationNs c1_after_ns = 50'000;        ///< 50 us.
  util::DurationNs c3_after_ns = 2'000'000;     ///< 2 ms.
  util::DurationNs c6_after_ns = 20'000'000;    ///< 20 ms.
  /// One-off energy (joules) paid when waking from each state.
  double c1_wake_joules = 2e-6;
  double c3_wake_joules = 4e-5;
  double c6_wake_joules = 3e-4;
  /// When C-states are disabled in the spec, idle cores stay at C0 power.
  bool enabled = true;
};

/// Tracks one core's idle residency. Not thread-safe; owned by the Machine.
class CoreCState {
 public:
  explicit CoreCState(const CStateParams& params) : params_(&params) {}

  /// Advances by `dt`. `busy` = the core executed at least one instruction
  /// this tick. Returns the idle energy consumed (joules), including any
  /// wake spike when transitioning back to C0.
  double advance(util::DurationNs dt, bool busy);

  CState state() const noexcept { return state_; }
  util::DurationNs idle_ns() const noexcept { return idle_ns_; }

  /// Residual power (watts) of the current state.
  double residual_watts() const noexcept;

 private:
  CState target_state_for(util::DurationNs idle) const noexcept;

  const CStateParams* params_;
  CState state_ = CState::kC0;
  util::DurationNs idle_ns_ = 0;
};

}  // namespace powerapi::simcpu
