#include "simcpu/cstates.h"

namespace powerapi::simcpu {

const char* to_string(CState s) noexcept {
  switch (s) {
    case CState::kC0:
      return "C0";
    case CState::kC1:
      return "C1";
    case CState::kC3:
      return "C3";
    case CState::kC6:
      return "C6";
  }
  return "?";
}

double CoreCState::residual_watts() const noexcept {
  switch (state_) {
    case CState::kC0:
      return params_->c0_idle_watts;
    case CState::kC1:
      return params_->c1_watts;
    case CState::kC3:
      return params_->c3_watts;
    case CState::kC6:
      return params_->c6_watts;
  }
  return params_->c0_idle_watts;
}

CState CoreCState::target_state_for(util::DurationNs idle) const noexcept {
  if (!params_->enabled) return CState::kC0;
  if (idle >= params_->c6_after_ns) return CState::kC6;
  if (idle >= params_->c3_after_ns) return CState::kC3;
  if (idle >= params_->c1_after_ns) return CState::kC1;
  return CState::kC0;
}

double CoreCState::advance(util::DurationNs dt, bool busy) {
  double energy = 0.0;
  if (busy) {
    // Wake spike proportional to the depth we were parked at.
    switch (state_) {
      case CState::kC0:
        break;
      case CState::kC1:
        energy += params_->c1_wake_joules;
        break;
      case CState::kC3:
        energy += params_->c3_wake_joules;
        break;
      case CState::kC6:
        energy += params_->c6_wake_joules;
        break;
    }
    state_ = CState::kC0;
    idle_ns_ = 0;
    return energy;  // Busy tick: active power is accounted elsewhere.
  }

  // Idle tick: accrue residency at the *current* state's power, then promote.
  energy += residual_watts() * util::ns_to_seconds(dt);
  idle_ns_ += dt;
  state_ = target_state_for(idle_ns_);
  return energy;
}

}  // namespace powerapi::simcpu
