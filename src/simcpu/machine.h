// The simulated multi-core machine: executes per-thread workload demand in
// fixed time quanta, maintains hardware performance counters (machine-wide
// and per hardware thread) and produces ground-truth power.
//
// The machine knows nothing about processes or scheduling — the os layer
// decides which task runs on which hardware thread each tick and passes the
// assignment in. This mirrors the real split (silicon vs kernel) and keeps
// the counter semantics identical to perf's per-CPU view.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simcpu/cache.h"
#include "simcpu/counters.h"
#include "simcpu/cpu_spec.h"
#include "simcpu/cstates.h"
#include "simcpu/dvfs.h"
#include "simcpu/exec_profile.h"
#include "simcpu/power_gt.h"
#include "util/units.h"

namespace powerapi::simcpu {

/// What the OS schedules onto one hardware thread for the next tick.
struct ThreadWork {
  bool active = false;
  std::int64_t task_id = -1;  ///< Opaque to the machine; echoed in results.
  ExecProfile profile;
};

/// Execution outcome for one hardware thread over one tick.
struct ThreadTickResult {
  std::int64_t task_id = -1;
  CounterBlock delta;          ///< Counter increments for this tick.
  double utilization = 0.0;    ///< Busy fraction of the tick in [0, 1].
  double instructions_per_sec = 0.0;
  /// Ground-truth energy attributable to this thread's activity this tick:
  /// its (SMT-discounted) core dynamic energy plus its share of uncore and
  /// DRAM traffic energy. Shared infrastructure (platform, static, idle) is
  /// deliberately NOT attributed — per-process estimators model activity.
  double attributed_joules = 0.0;
};

struct TickResult {
  std::vector<ThreadTickResult> threads;  ///< One entry per hardware thread.
  PowerBreakdown power;                   ///< Average watts over the tick.
  double energy_joules = 0.0;             ///< power.total() × dt.
};

class Machine {
 public:
  explicit Machine(CpuSpec spec, GroundTruthParams params = {});

  const CpuSpec& spec() const noexcept { return spec_; }
  const GroundTruthParams& ground_truth() const noexcept { return params_; }

  /// Sets the package frequency set point; snaps to the nearest NOMINAL
  /// DVFS ladder point (turbo bins cannot be pinned). Returns the applied
  /// set point. On a clustered (big.LITTLE) part this drives every domain:
  /// cluster 0 snaps `hz` on its own (= the package) ladder, every other
  /// cluster snaps the proportional point `hz × cluster_max / package_max`
  /// on its ladder — one governor decision moves the whole SoC coherently.
  double set_frequency(double hz);
  double frequency() const noexcept { return cluster_freq_hz_[0]; }
  /// The frequency the last tick actually ran at: equals the set point,
  /// except when TurboBoost engaged (set point at nominal max and few busy
  /// cores) — then one of spec().turbo_frequencies_hz. Clustered parts
  /// report the primary (cluster 0) domain.
  double last_effective_frequency_hz() const noexcept { return effective_hz_; }

  // --- Per-cluster frequency domains (big.LITTLE) ---
  std::size_t cluster_count() const noexcept { return cluster_freq_hz_.size(); }
  /// Pins ONE cluster's set point on that cluster's own ladder, leaving the
  /// others untouched (per-domain DVFS). Returns the applied set point.
  double set_cluster_frequency(std::size_t cluster, double hz);
  double cluster_frequency(std::size_t cluster) const {
    return cluster_freq_hz_.at(cluster);
  }

  // --- Core parking (governor actuation) ---
  /// Parks or unparks one core. A parked core is power-gated: it executes
  /// no work (ThreadWork on its hardware threads is ignored), contributes
  /// no counter deltas, and burns the C6 residual instead of walking the
  /// C-state ladder. Unparking charges the C6 wake spike on the next tick.
  /// Parking is idempotent; returns the new parked state.
  bool set_core_parked(std::size_t core, bool parked);
  bool core_parked(std::size_t core) const;
  std::size_t parked_core_count() const noexcept { return parked_count_; }

  /// Executes one quantum. `work.size()` must equal `spec().hw_threads()`.
  /// Returns a reference to an internal result buffer (reused every tick,
  /// so the hot path allocates nothing) — valid until the next tick() call;
  /// copy it if you need it to outlive that.
  const TickResult& tick(std::span<const ThreadWork> work, util::DurationNs dt);

  // --- Cumulative observables ---
  const CounterBlock& machine_counters() const noexcept { return machine_counters_; }
  const CounterBlock& thread_counters(std::size_t hw_thread) const;
  /// Whole-machine energy since construction (what a wall meter integrates).
  double total_energy_joules() const noexcept { return total_energy_joules_; }
  /// Package-scope energy (what the simulated RAPL MSR exposes).
  double package_energy_joules() const noexcept { return package_energy_joules_; }
  /// Average watts over the most recent tick.
  double last_power_watts() const noexcept { return last_breakdown_.total(); }
  const PowerBreakdown& last_breakdown() const noexcept { return last_breakdown_; }
  CState core_cstate(std::size_t core) const;
  util::TimestampNs sim_time_ns() const noexcept { return sim_time_ns_; }

 private:
  /// Per-tick working vectors, kept as members so steady-state ticks are
  /// allocation-free (sized once to hw_threads/cores, reused thereafter).
  struct TickScratch {
    std::vector<CacheDemand> demands;
    std::vector<CacheShare> shares;
    std::vector<std::uint8_t> core_has_work;
    std::vector<std::uint8_t> core_busy;
    std::vector<double> core_activity_joules;
    std::vector<std::size_t> core_active_threads;
    std::vector<double> thread_activity;
    std::vector<double> thread_refs;
    std::vector<double> thread_misses;
    std::vector<double> thread_prefetch;
  };

  CpuSpec spec_;
  GroundTruthParams params_;
  CacheHierarchy cache_;
  std::vector<CoreCState> core_cstates_;
  std::vector<CounterBlock> thread_counters_;
  CounterBlock machine_counters_;
  TickScratch scratch_;
  TickResult result_;
  // Per-frequency-domain state (one entry for homogeneous parts, one per
  // CoreClusterSpec otherwise). Indexed by cluster; core → cluster via
  // core_cluster_.
  std::vector<VoltageTable> cluster_voltages_;
  std::vector<double> cluster_freq_hz_;      ///< Set points.
  std::vector<double> cluster_ladder_max_;   ///< Nominal max per cluster.
  std::vector<double> cluster_perf_;         ///< IPC multiplier.
  std::vector<double> cluster_energy_;       ///< Activity-energy multiplier.
  std::vector<std::uint32_t> core_cluster_;  ///< Core index → cluster index.
  /// Per-tick effective frequency / scale per cluster (tick scratch).
  std::vector<double> cluster_eff_hz_;
  std::vector<double> cluster_dyn_scale_;
  std::vector<double> cluster_static_scale_;
  std::vector<double> cluster_dram_latency_cycles_;
  std::vector<std::uint8_t> core_parked_;    ///< 1 = power-gated by the OS.
  std::size_t parked_count_ = 0;
  double pending_wake_joules_ = 0.0;  ///< Charged on the tick after unpark.
  double effective_hz_ = 0.0;
  double total_energy_joules_ = 0.0;
  double package_energy_joules_ = 0.0;
  PowerBreakdown last_breakdown_;
  util::TimestampNs sim_time_ns_ = 0;
};

}  // namespace powerapi::simcpu
