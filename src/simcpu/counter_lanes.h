// Structure-of-arrays counter storage: the hot-path batch layout.
//
// The monitoring hot path reads cumulative counters for many targets per
// tick (machine scope + every monitored process on a host, repeated across
// the hosts of a fleet chunk). An array-of-structs (one CounterBlock per
// target) scatters each event across memory; differencing and rate
// conversion then stride through 11 fields per target. CounterLanes flips
// the layout: one contiguous lane per event, rows are targets, so
// delta→rate kernels walk each lane linearly and auto-vectorize.
//
// Lane order matches CounterBlock field order (and hpc::EventId order for
// the first ten lanes — asserted by the hpc layer's tests); lane 10 is the
// SMT co-residency counter. Two side lanes carry the per-target cpu time
// and a liveness flag so one gather call can report dead pids without a
// separate error channel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcpu/counters.h"

namespace powerapi::simcpu {

class CounterLanes {
 public:
  /// Ten generic events + the SMT co-residency lane.
  static constexpr std::size_t kLanes = 11;
  static constexpr std::size_t kSmtLane = 10;

  /// Sets the row count; zeroes everything when the count changes (rows
  /// keyed by a new target list must not inherit a previous layout's
  /// values). Same-size calls keep existing data.
  void resize(std::size_t rows) {
    if (rows == rows_ && !values_.empty()) return;
    rows_ = rows;
    values_.assign(kLanes * rows, 0);
    cpu_time_.assign(rows, 0);
    live_.assign(rows, 0);
  }

  std::size_t rows() const noexcept { return rows_; }

  /// Contiguous per-event lane, `rows()` entries.
  std::uint64_t* lane(std::size_t index) noexcept { return values_.data() + index * rows_; }
  const std::uint64_t* lane(std::size_t index) const noexcept {
    return values_.data() + index * rows_;
  }

  std::int64_t* cpu_time() noexcept { return cpu_time_.data(); }
  const std::int64_t* cpu_time() const noexcept { return cpu_time_.data(); }
  std::uint8_t* live() noexcept { return live_.data(); }
  const std::uint8_t* live() const noexcept { return live_.data(); }

  /// Scatters one cumulative block into row `row` of every counter lane.
  void store_block(std::size_t row, const CounterBlock& block) noexcept {
    std::uint64_t* v = values_.data();
    const std::size_t n = rows_;
    v[0 * n + row] = block.cycles;
    v[1 * n + row] = block.instructions;
    v[2 * n + row] = block.cache_references;
    v[3 * n + row] = block.cache_misses;
    v[4 * n + row] = block.branch_instructions;
    v[5 * n + row] = block.branch_misses;
    v[6 * n + row] = block.bus_cycles;
    v[7 * n + row] = block.stalled_cycles_frontend;
    v[8 * n + row] = block.stalled_cycles_backend;
    v[9 * n + row] = block.ref_cycles;
    v[kSmtLane * n + row] = block.smt_shared_cycles;
  }

  /// Copies one row (all lanes + side lanes) from `src`. Used when a
  /// sensor's target list changes and the previous-snapshot lanes must be
  /// re-aligned to the new row order.
  void copy_row_from(const CounterLanes& src, std::size_t src_row, std::size_t dst_row) noexcept {
    for (std::size_t l = 0; l < kLanes; ++l) lane(l)[dst_row] = src.lane(l)[src_row];
    cpu_time_[dst_row] = src.cpu_time_[src_row];
    live_[dst_row] = src.live_[src_row];
  }

 private:
  std::size_t rows_ = 0;
  std::vector<std::uint64_t> values_;  ///< Lane-major: [lane][row].
  std::vector<std::int64_t> cpu_time_;
  std::vector<std::uint8_t> live_;
};

}  // namespace powerapi::simcpu
