#include "simcpu/machine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerapi::simcpu {

namespace {
/// Memory-level parallelism: fraction of memory latency that is NOT hidden
/// by out-of-order execution (lower = more overlap).
constexpr double kMlpExposure = 0.30;
/// DRAM access latency in nanoseconds (core-frequency independent).
constexpr double kDramLatencyNs = 65.0;
/// Branch misprediction flush penalty in core cycles.
constexpr double kBranchFlushCycles = 15.0;
/// Issue-rate share each hyperthread gets when its sibling is busy. Two
/// active threads together achieve 2×0.62 = 1.24× single-thread throughput,
/// the classic ~25% SMT gain.
constexpr double kSmtIssueShare = 0.62;
constexpr double kCacheLineBytes = 64.0;

double closest_on_ladder(const std::vector<double>& ladder, double hz) {
  double best = ladder.front();
  for (double f : ladder) {
    if (std::abs(f - hz) < std::abs(best - hz)) best = f;
  }
  return best;
}
}  // namespace

Machine::Machine(CpuSpec spec, GroundTruthParams params)
    : spec_(std::move(spec)),
      params_(params),
      cache_(spec_, spec_.hw_threads()),
      thread_counters_(spec_.hw_threads()) {
  spec_.validate();
  params_.cstates.enabled = spec_.c_states;
  core_cstates_.assign(spec_.cores, CoreCState(params_.cstates));
  // One frequency domain per cluster; a homogeneous part is one pseudo
  // cluster spanning every core at scale 1.0 (the arithmetic then reduces
  // bit-for-bit to the single-domain form).
  const std::size_t domains = spec_.cluster_count();
  for (std::size_t c = 0; c < domains; ++c) {
    if (spec_.heterogeneous()) {
      const CoreClusterSpec& cl = spec_.clusters[c];
      cluster_voltages_.emplace_back(cl.frequencies_hz, std::vector<double>{},
                                     params_.v_min, params_.v_max);
      cluster_freq_hz_.push_back(cl.frequencies_hz.back());
      cluster_ladder_max_.push_back(cl.frequencies_hz.back());
      cluster_perf_.push_back(cl.perf_scale);
      cluster_energy_.push_back(cl.energy_scale);
    } else {
      cluster_voltages_.emplace_back(spec_, params_.v_min, params_.v_max);
      cluster_freq_hz_.push_back(spec_.max_frequency_hz());
      cluster_ladder_max_.push_back(spec_.max_frequency_hz());
      cluster_perf_.push_back(1.0);
      cluster_energy_.push_back(1.0);
    }
  }
  core_parked_.assign(spec_.cores, 0);
  core_cluster_.resize(spec_.cores);
  for (std::size_t core = 0; core < spec_.cores; ++core) {
    core_cluster_[core] = static_cast<std::uint32_t>(spec_.cluster_of_core(core));
  }
  cluster_eff_hz_.resize(domains);
  cluster_dyn_scale_.resize(domains);
  cluster_static_scale_.resize(domains);
  cluster_dram_latency_cycles_.resize(domains);
  effective_hz_ = cluster_freq_hz_[0];
}

double Machine::set_frequency(double hz) {
  if (!spec_.speedstep) return cluster_freq_hz_[0];
  cluster_freq_hz_[0] = spec_.closest_frequency_hz(hz);
  // Secondary domains follow proportionally on their own ladders.
  const double primary_max = cluster_ladder_max_[0];
  for (std::size_t c = 1; c < cluster_freq_hz_.size(); ++c) {
    cluster_freq_hz_[c] = closest_on_ladder(
        spec_.clusters[c].frequencies_hz, hz * cluster_ladder_max_[c] / primary_max);
  }
  return cluster_freq_hz_[0];
}

double Machine::set_cluster_frequency(std::size_t cluster, double hz) {
  if (cluster >= cluster_freq_hz_.size()) {
    throw std::invalid_argument("Machine::set_cluster_frequency: no such cluster");
  }
  if (!spec_.speedstep) return cluster_freq_hz_[cluster];
  const std::vector<double>& ladder = spec_.heterogeneous()
                                          ? spec_.clusters[cluster].frequencies_hz
                                          : spec_.frequencies_hz;
  cluster_freq_hz_[cluster] = closest_on_ladder(ladder, hz);
  return cluster_freq_hz_[cluster];
}

bool Machine::set_core_parked(std::size_t core, bool parked) {
  if (core >= spec_.cores) {
    throw std::invalid_argument("Machine::set_core_parked: no such core");
  }
  const bool was = core_parked_[core] != 0;
  if (was == parked) return parked;
  core_parked_[core] = parked ? 1 : 0;
  if (parked) {
    ++parked_count_;
  } else {
    --parked_count_;
    // Waking from the power-gated state costs the C6 wake spike; charge it
    // against the next tick's idle energy (a parked core's CoreCState is
    // frozen, so the spike cannot come from advance()).
    pending_wake_joules_ += params_.cstates.c6_wake_joules;
  }
  return parked;
}

bool Machine::core_parked(std::size_t core) const {
  if (core >= spec_.cores) {
    throw std::invalid_argument("Machine::core_parked: no such core");
  }
  return core_parked_[core] != 0;
}

const CounterBlock& Machine::thread_counters(std::size_t hw_thread) const {
  return thread_counters_.at(hw_thread);
}

CState Machine::core_cstate(std::size_t core) const {
  return core_cstates_.at(core).state();
}

const TickResult& Machine::tick(std::span<const ThreadWork> work, util::DurationNs dt) {
  const std::size_t n = spec_.hw_threads();
  if (work.size() != n) throw std::invalid_argument("Machine::tick: work slot mismatch");
  if (dt <= 0) throw std::invalid_argument("Machine::tick: non-positive dt");

  const double dt_s = util::ns_to_seconds(dt);
  const std::size_t tpc = spec_.threads_per_core;

  // TurboBoost: with the set point at nominal max and few busy cores, the
  // clock rises into the per-active-core turbo table (last bin = 1 core).
  // Turbo only exists on single-domain parts (validated), so it adjusts the
  // primary cluster alone.
  double f0 = cluster_freq_hz_[0];
  if (!spec_.turbo_frequencies_hz.empty() &&
      cluster_freq_hz_[0] >= spec_.max_frequency_hz() - 1.0) {
    scratch_.core_has_work.assign(spec_.cores, 0);
    std::size_t busy_cores = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (work[i].active && work[i].profile.active_fraction > 0.0 &&
          !core_parked_[i / tpc] && !scratch_.core_has_work[i / tpc]) {
        scratch_.core_has_work[i / tpc] = 1;
        ++busy_cores;
      }
    }
    const auto& turbo = spec_.turbo_frequencies_hz;
    if (busy_cores >= 1 && busy_cores <= turbo.size()) {
      f0 = turbo[turbo.size() - busy_cores];
    }
  }
  effective_hz_ = f0;

  // Per-domain effective frequency and V²f scale factors for this tick.
  for (std::size_t c = 0; c < cluster_eff_hz_.size(); ++c) {
    const double fc = c == 0 ? f0 : cluster_freq_hz_[c];
    cluster_eff_hz_[c] = fc;
    cluster_dyn_scale_[c] = cluster_voltages_[c].dynamic_scale(fc);
    cluster_static_scale_[c] = cluster_voltages_[c].static_scale(fc);
    // DRAM latency is fixed in wall time, so its cost in core cycles scales
    // with that core's clock.
    cluster_dram_latency_cycles_[c] = kDramLatencyNs * 1e-9 * fc;
  }

  // --- Pass 1: cache demands (rates only; independent of retired counts) ---
  scratch_.demands.assign(n, CacheDemand{});
  std::vector<CacheDemand>& demands = scratch_.demands;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& w = work[i];
    if (!w.active || w.profile.active_fraction <= 0.0 || core_parked_[i / tpc]) continue;
    CacheDemand d;
    d.active = true;
    d.working_set_bytes = w.profile.working_set_bytes;
    const std::size_t cl = core_cluster_[i / tpc];
    const double optimistic_ips = cluster_eff_hz_[cl] /
                                  std::max(0.05, w.profile.cpi_base) *
                                  w.profile.active_fraction * cluster_perf_[cl];
    d.llc_refs_per_sec = optimistic_ips * w.profile.cache_refs_per_kinstr / 1000.0;
    d.intrinsic_miss_ratio = w.profile.intrinsic_miss_ratio;
    demands[i] = d;
  }
  cache_.tick_into(demands, dt, scratch_.shares);
  const std::vector<CacheShare>& shares = scratch_.shares;

  // --- Pass 2: execute each hardware thread ---
  TickResult& result = result_;
  result.threads.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.threads[i] = ThreadTickResult{};
  scratch_.core_busy.assign(spec_.cores, 0);
  scratch_.core_activity_joules.assign(spec_.cores, 0.0);
  scratch_.core_active_threads.assign(spec_.cores, 0);
  scratch_.thread_activity.assign(n, 0.0);
  scratch_.thread_refs.assign(n, 0.0);
  scratch_.thread_misses.assign(n, 0.0);
  scratch_.thread_prefetch.assign(n, 0.0);
  std::vector<std::uint8_t>& core_busy = scratch_.core_busy;
  std::vector<double>& core_activity_joules = scratch_.core_activity_joules;
  std::vector<std::size_t>& core_active_threads = scratch_.core_active_threads;
  std::vector<double>& thread_activity = scratch_.thread_activity;
  std::vector<double>& thread_refs = scratch_.thread_refs;
  std::vector<double>& thread_misses = scratch_.thread_misses;
  std::vector<double>& thread_prefetch = scratch_.thread_prefetch;
  double total_llc_refs = 0.0;
  double total_misses = 0.0;
  double total_prefetch_lines = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    if (demands[i].active) core_active_threads[i / tpc]++;
  }

  for (std::size_t i = 0; i < n; ++i) {
    auto& out = result.threads[i];
    out.task_id = work[i].task_id;
    if (!demands[i].active) continue;

    const auto& p = work[i].profile;
    const std::size_t core = i / tpc;
    const std::size_t cl = core_cluster_[core];
    const double f = cluster_eff_hz_[cl];
    const double dram_latency_cycles = cluster_dram_latency_cycles_[cl];
    const bool smt_shared = core_active_threads[core] > 1;
    const double issue_share = smt_shared ? kSmtIssueShare : 1.0;

    const double active_s = dt_s * std::clamp(p.active_fraction, 0.0, 1.0);
    const double cycles = f * active_s;

    const double miss_ratio = shares[i].miss_ratio;
    const double refs_per_instr = p.cache_refs_per_kinstr / 1000.0;
    const double misses_per_instr = refs_per_instr * miss_ratio;
    const double llc_hit_per_instr = refs_per_instr * (1.0 - miss_ratio);

    double llc_hit_cycles = 30.0;
    for (const auto& c : spec_.caches) {
      if (c.shared) llc_hit_cycles = c.hit_cycles;
    }

    const double mem_stall_per_instr =
        kMlpExposure *
        (llc_hit_per_instr * llc_hit_cycles + misses_per_instr * dram_latency_cycles);
    const double branch_stall_per_instr =
        p.branches_per_kinstr / 1000.0 * p.branch_miss_ratio * kBranchFlushCycles;

    const double effective_cpi = std::max(0.05, p.cpi_base) /
                                     (issue_share * cluster_perf_[cl]) +
                                 mem_stall_per_instr + branch_stall_per_instr;
    const double instructions = cycles / effective_cpi;

    CounterBlock d;
    d.cycles = static_cast<std::uint64_t>(std::llround(cycles));
    d.instructions = static_cast<std::uint64_t>(std::llround(instructions));
    const double refs = instructions * refs_per_instr;
    const double misses = refs * miss_ratio;
    d.cache_references = static_cast<std::uint64_t>(std::llround(refs));
    d.cache_misses = static_cast<std::uint64_t>(std::llround(misses));
    const double branches = instructions * p.branches_per_kinstr / 1000.0;
    const double branch_misses = branches * p.branch_miss_ratio;
    d.branch_instructions = static_cast<std::uint64_t>(std::llround(branches));
    d.branch_misses = static_cast<std::uint64_t>(std::llround(branch_misses));
    d.stalled_cycles_backend =
        static_cast<std::uint64_t>(std::llround(instructions * mem_stall_per_instr));
    d.stalled_cycles_frontend =
        static_cast<std::uint64_t>(std::llround(instructions * branch_stall_per_instr));
    d.bus_cycles = static_cast<std::uint64_t>(std::llround(cycles / 10.0));
    d.ref_cycles =
        static_cast<std::uint64_t>(std::llround(cluster_ladder_max_[cl] * active_s));
    if (smt_shared) d.smt_shared_cycles = d.cycles;

    out.delta = d;
    out.utilization = std::clamp(p.active_fraction, 0.0, 1.0);
    out.instructions_per_sec = instructions / dt_s;

    thread_counters_[i] += d;
    machine_counters_ += d;
    core_busy[core] = core_busy[core] || d.instructions > 0 ? 1 : 0;
    total_llc_refs += refs;
    total_misses += misses;
    total_prefetch_lines += instructions * p.prefetch_lines_per_kinstr / 1000.0;

    // Per-thread activity energy (V²f scaled). The SMT discount applies at
    // core scope below; collect raw activity per core first.
    const double activity_joules =
        cluster_dyn_scale_[cl] * cluster_energy_[cl] *
        (instructions * params_.joules_per_instruction * p.instruction_energy_scale +
         cycles * params_.joules_per_cycle +
         branch_misses * params_.joules_per_branch_miss);
    core_activity_joules[core] += activity_joules;
    thread_activity[i] = activity_joules;
    thread_refs[i] = refs;
    thread_misses[i] = misses;
    thread_prefetch[i] = instructions * p.prefetch_lines_per_kinstr / 1000.0;
  }

  // --- Pass 3: power roll-up ---
  PowerBreakdown pb;
  pb.platform = params_.platform_watts;

  double idle_joules = 0.0;
  double dynamic_joules = 0.0;
  bool any_core_busy = false;
  // C6 wake spikes from cores unparked since the last tick (guarded so an
  // unparked machine's arithmetic is bit-identical to pre-parking builds).
  if (pending_wake_joules_ != 0.0) {
    idle_joules += pending_wake_joules_;
    pending_wake_joules_ = 0.0;
  }
  for (std::size_t core = 0; core < spec_.cores; ++core) {
    if (core_parked_[core]) {
      // Power-gated: burns the C6 residual, never promoted/demoted.
      idle_joules += params_.cstates.c6_watts * dt_s;
      continue;
    }
    const bool busy = core_busy[core];
    any_core_busy = any_core_busy || busy;
    idle_joules += core_cstates_[core].advance(dt, busy);
    if (busy) {
      // An active core burns its C0 static power (voltage-scaled, sized by
      // its cluster's silicon).
      const std::size_t cl = core_cluster_[core];
      idle_joules += params_.cstates.c0_idle_watts * cluster_static_scale_[cl] *
                     cluster_energy_[cl] * dt_s;
      const bool both = core_active_threads[core] > 1;
      const double discount = both ? (1.0 - params_.smt_activity_discount) : 1.0;
      dynamic_joules += core_activity_joules[core] * discount;
    }
  }
  pb.cpu_idle = idle_joules / dt_s;
  pb.cpu_dynamic = dynamic_joules / dt_s;

  // Uncore: LLC/ring power — independent of core DVFS (own clock domain).
  double uncore_joules = total_llc_refs * params_.joules_per_llc_reference;
  if (any_core_busy) uncore_joules += params_.uncore_active_watts * dt_s;
  pb.uncore = uncore_joules / dt_s;

  // DRAM: per-miss energy inflated by bandwidth-dependent queueing; the
  // prefetcher's line traffic adds bandwidth and energy but no miss counts.
  const double miss_bw =
      (total_misses + total_prefetch_lines) * kCacheLineBytes / dt_s;
  const double queue =
      1.0 + params_.dram_queue_factor *
                std::pow(std::min(1.0, miss_bw / params_.dram_bandwidth_max_bytes_per_sec), 2);
  pb.dram = (total_misses * params_.joules_per_dram_miss +
             total_prefetch_lines * params_.joules_per_prefetch_line) *
            queue / dt_s;

  // Per-thread ground-truth attribution: SMT-discounted core activity, the
  // thread's own uncore/DRAM traffic energy (queue-adjusted), and an equal
  // share of the static power of the core the thread keeps awake. Platform
  // power and idle-core residuals stay unattributed (machine overhead).
  for (std::size_t i = 0; i < n; ++i) {
    if (!demands[i].active) continue;
    const std::size_t core = i / tpc;
    const std::size_t cl = core_cluster_[core];
    const bool both = core_active_threads[core] > 1;
    const double discount = both ? (1.0 - params_.smt_activity_discount) : 1.0;
    const double static_share =
        core_busy[core]
            ? params_.cstates.c0_idle_watts * cluster_static_scale_[cl] *
                  cluster_energy_[cl] * dt_s /
                  static_cast<double>(core_active_threads[core])
            : 0.0;
    result.threads[i].attributed_joules =
        thread_activity[i] * discount + static_share +
        thread_refs[i] * params_.joules_per_llc_reference +
        (thread_misses[i] * params_.joules_per_dram_miss +
         thread_prefetch[i] * params_.joules_per_prefetch_line) *
            queue;
  }

  result.power = pb;
  result.energy_joules = pb.total() * dt_s;
  total_energy_joules_ += result.energy_joules;
  package_energy_joules_ += pb.package() * dt_s;
  last_breakdown_ = pb;
  sim_time_ns_ += dt;
  return result;
}

}  // namespace powerapi::simcpu
