#include "simcpu/dvfs.h"

#include <algorithm>
#include <stdexcept>

namespace powerapi::simcpu {

VoltageTable::VoltageTable(const CpuSpec& spec, double v_min, double v_max)
    : VoltageTable(spec.frequencies_hz, spec.turbo_frequencies_hz, v_min, v_max) {}

VoltageTable::VoltageTable(const std::vector<double>& ladder,
                           const std::vector<double>& turbo, double v_min,
                           double v_max) {
  if (v_min <= 0 || v_max < v_min) throw std::invalid_argument("VoltageTable: bad voltage range");
  freqs_ = ladder;
  if (freqs_.empty()) throw std::invalid_argument("VoltageTable: empty ladder");
  volts_.resize(freqs_.size());
  const double f_lo = freqs_.front();
  const double f_hi = freqs_.back();
  for (std::size_t i = 0; i < freqs_.size(); ++i) {
    const double t = f_hi > f_lo ? (freqs_[i] - f_lo) / (f_hi - f_lo) : 1.0;
    volts_[i] = v_min + t * (v_max - v_min);
  }
  // Turbo bins ride above nominal max at a steeper voltage ramp (the VID
  // bump per 100 MHz bin on Sandy Bridge parts).
  constexpr double kTurboVoltsPerBin = 0.035;
  for (std::size_t i = 0; i < turbo.size(); ++i) {
    freqs_.push_back(turbo[i]);
    volts_.push_back(v_max + kTurboVoltsPerBin * static_cast<double>(i + 1));
  }
  nominal_max_hz_ = f_hi;
  nominal_v_max_ = v_max;
}

double VoltageTable::voltage_at(double hz) const noexcept {
  if (hz <= freqs_.front()) return volts_.front();
  if (hz >= freqs_.back()) return volts_.back();
  const auto it = std::lower_bound(freqs_.begin(), freqs_.end(), hz);
  const std::size_t hi = static_cast<std::size_t>(it - freqs_.begin());
  const std::size_t lo = hi - 1;
  const double t = (hz - freqs_[lo]) / (freqs_[hi] - freqs_[lo]);
  return volts_[lo] + t * (volts_[hi] - volts_[lo]);
}

double VoltageTable::dynamic_scale(double hz) const noexcept {
  // Normalized at the NOMINAL maximum so turbo bins scale above 1 — the
  // extra watts turbo burns relative to the calibrated f_max energies.
  const double v = voltage_at(hz);
  return (v * v * hz) / (nominal_v_max_ * nominal_v_max_ * nominal_max_hz_);
}

double VoltageTable::static_scale(double hz) const noexcept {
  const double v = voltage_at(hz);
  return (v * v) / (nominal_v_max_ * nominal_v_max_);
}

}  // namespace powerapi::simcpu
