// DVFS voltage/frequency model.
//
// Dynamic power scales with V²·f; the voltage ladder pins V to each DVFS
// frequency point (linear interpolation between the endpoints, matching the
// published VID ranges of Sandy Bridge parts).
#pragma once

#include <vector>

#include "simcpu/cpu_spec.h"

namespace powerapi::simcpu {

class VoltageTable {
 public:
  /// Builds the table from the spec's frequency ladder, mapping the lowest
  /// frequency to `v_min` volts and the highest to `v_max` volts.
  VoltageTable(const CpuSpec& spec, double v_min = 0.85, double v_max = 1.10);

  /// Builds the table for one frequency domain (a big.LITTLE cluster):
  /// `ladder` plus optional turbo bins above it, same voltage endpoints.
  VoltageTable(const std::vector<double>& ladder, const std::vector<double>& turbo,
               double v_min, double v_max);

  /// Core voltage at `hz`; `hz` must be a ladder frequency (1 Hz tolerance)
  /// — off-ladder values are interpolated, below/above are clamped.
  double voltage_at(double hz) const noexcept;

  /// V²·f scaling factor relative to the maximum frequency point; equals 1
  /// at f_max. Multiplies per-event dynamic energies.
  double dynamic_scale(double hz) const noexcept;

  /// V² scaling factor relative to f_max (leakage scales with voltage only).
  double static_scale(double hz) const noexcept;

 private:
  std::vector<double> freqs_;  ///< Nominal ladder then turbo bins.
  std::vector<double> volts_;
  double nominal_max_hz_ = 0.0;
  double nominal_v_max_ = 0.0;
};

}  // namespace powerapi::simcpu
