// Analytic shared-cache model.
//
// At power-modeling granularity (millisecond ticks, billions of accesses) a
// per-access set-associative simulation is neither feasible nor necessary;
// what matters for both counters and watts is the per-thread LLC miss
// *ratio*. We model it with a capacity-sharing law: each thread's effective
// LLC share is proportional to its demand, misses grow as the working set
// overflows that share, and a fill transient makes phase changes visible in
// the trace (the miss spikes in Figure 3-style plots).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "simcpu/cpu_spec.h"
#include "util/units.h"

namespace powerapi::simcpu {

/// One thread's cache demand for the current tick.
struct CacheDemand {
  bool active = false;
  double working_set_bytes = 0.0;
  double llc_refs_per_sec = 0.0;      ///< Estimated LLC-visible reference rate.
  double intrinsic_miss_ratio = 0.0;  ///< Compulsory misses of the workload.
};

/// The model's verdict for one thread.
struct CacheShare {
  double llc_share_bytes = 0.0;  ///< Capacity granted this tick.
  double miss_ratio = 0.0;       ///< Effective LLC miss ratio in [0, 1].
};

class CacheHierarchy {
 public:
  /// `hw_threads` fixes the number of demand slots. The spec must contain a
  /// shared LLC level (validated in CpuSpec).
  CacheHierarchy(const CpuSpec& spec, std::size_t hw_threads);

  /// Computes shares and miss ratios for this tick and advances the fill
  /// transient. `demands.size()` must equal `hw_threads`.
  std::vector<CacheShare> tick(std::span<const CacheDemand> demands, util::DurationNs dt);

  /// Allocation-free variant for the hot path: writes into `out` (resized
  /// to `hw_threads`), so a caller-owned scratch vector is reused across
  /// ticks. Identical arithmetic to tick().
  void tick_into(std::span<const CacheDemand> demands, util::DurationNs dt,
                 std::vector<CacheShare>& out);

  /// Resident bytes currently attributed to thread `i` (for tests).
  double resident_bytes(std::size_t i) const { return resident_.at(i); }

  std::size_t llc_bytes() const noexcept { return llc_bytes_; }
  std::size_t l2_bytes() const noexcept { return l2_bytes_; }

 private:
  std::size_t llc_bytes_ = 0;
  std::size_t l2_bytes_ = 0;
  std::vector<double> resident_;  ///< Per-thread warmed-up footprint in LLC.
  std::vector<double> llc_need_;  ///< Per-tick scratch (reused, no alloc).
};

}  // namespace powerapi::simcpu
