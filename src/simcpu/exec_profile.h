// Per-tick execution demand of a task, the contract between the workload
// library and the CPU simulator. A workload is a time-varying stream of
// ExecProfiles; the machine turns (profile, frequency, SMT sharing, cache
// state) into retired instructions, cache traffic and — via the hidden
// ground-truth model — watts.
#pragma once

namespace powerapi::simcpu {

struct ExecProfile {
  /// Pipeline cycles per instruction assuming every memory access hits L1.
  /// Typical range: 0.4 (wide superscalar ALU code) .. 2.5 (dependency-bound).
  double cpi_base = 1.0;

  /// L1-escaping memory references per 1000 retired instructions (these are
  /// what the `cache-references` generic event counts on Intel: LLC-visible).
  double cache_refs_per_kinstr = 20.0;

  /// Fraction of those references that would miss the LLC given an infinite
  /// share of cache (compulsory + capacity misses of the workload itself).
  /// The cache model raises it when the working set exceeds the thread's
  /// effective share of the hierarchy.
  double intrinsic_miss_ratio = 0.05;

  /// Resident working set in bytes; drives the capacity-sharing cache model.
  double working_set_bytes = 1u << 20;

  /// Branches per 1000 instructions and their misprediction ratio.
  double branches_per_kinstr = 180.0;
  double branch_miss_ratio = 0.02;

  /// Fraction of the tick the task actually wants the CPU (duty cycle);
  /// the remainder is sleep/IO wait. In [0, 1].
  double active_fraction = 1.0;

  /// Relative DRAM bandwidth pressure in [0, 1]; scales the per-miss cost
  /// under contention in the ground-truth power model.
  double mem_bandwidth_share = 0.2;

  // --- IO demand (consumed by the peripheral models when the OS enables
  // them; the CPU simulator ignores these fields) ---
  double disk_iops = 0.0;
  double disk_bytes_per_sec = 0.0;
  double net_tx_bytes_per_sec = 0.0;
  double net_rx_bytes_per_sec = 0.0;

  /// Hardware-prefetched cache lines per 1000 instructions. Prefetch
  /// traffic moves DRAM (and burns its energy) but is NOT counted by the
  /// generic cache-misses event — the prefetcher hides the demand miss.
  /// Streaming code (array sweeps, GC heap scans) prefetches heavily;
  /// pointer chasing not at all. A second counter-invisible power dimension.
  double prefetch_lines_per_kinstr = 0.0;

  /// Per-instruction energy multiplier of this code's instruction MIX
  /// (simple integer ALU ≈ 0.8, FP/SIMD-heavy or managed-runtime code up to
  /// ~1.5). Generic counters count instructions but cannot see their kind —
  /// this weight is invisible to every counter-based estimator, and is the
  /// main reason the paper's 3-counter model shows double-digit errors on
  /// workloads unlike its training set (Figure 3, and the conclusion's
  /// "generic counters are not necessarily the most reliable" remark).
  double instruction_energy_scale = 1.0;
};

}  // namespace powerapi::simcpu
