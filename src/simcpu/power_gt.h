// Hidden ground-truth power model of the simulated machine.
//
// This is what the "wall" (PowerSpy) meter samples. It is deliberately
// RICHER than the linear per-frequency counter models PowerAPI learns:
// V²·f DVFS scaling, per-cycle pipeline power, SMT activity sharing, DRAM
// bandwidth queueing, C-state-dependent idle power and wake spikes. The gap
// between this model's shape and a linear combination of three counters is
// precisely what produces the paper's double-digit median estimation error
// (Figure 3) — see DESIGN.md, "Ground truth ≠ estimator form".
//
// Calibration: the per-event energies at f_max are set near the paper's
// learned i3-2120 coefficients (2.22 nJ/instr, 24.8 nJ/LLC-ref,
// 187 nJ/DRAM-miss) and platform + 2×C0 ≈ the paper's 31.48 W idle constant.
#pragma once

#include "simcpu/cstates.h"

namespace powerapi::simcpu {

struct GroundTruthParams {
  // --- Static / idle ---
  double platform_watts = 25.60;       ///< Board, PSU loss, disk, NIC.
  double uncore_active_watts = 1.6;    ///< LLC+ring when any core is in C0.
  CStateParams cstates;                ///< Per-core idle ladder (C0 3.7 W...).

  // --- Dynamic energies at f_max, scaled by V²f at lower frequencies ---
  double joules_per_instruction = 1.90e-9;
  double joules_per_cycle = 0.16e-9;       ///< Pipeline activity, even stalled.
  double joules_per_llc_reference = 2.0e-8;
  double joules_per_dram_miss = 1.50e-7;
  double joules_per_branch_miss = 2.0e-8;  ///< Flush + refetch of ~15 cycles.
  /// Energy of one hardware-prefetched line: cheaper than a demand miss
  /// (row-buffer friendly, no pipeline stall) but real DRAM power — and
  /// invisible to the generic cache-misses counter.
  double joules_per_prefetch_line = 0.9e-7;

  // --- Nonlinearities the estimators cannot see ---
  /// Activity-power discount when both hyperthreads of a core are busy
  /// (shared front-end toggles once for two instruction streams).
  double smt_activity_discount = 0.22;
  /// DRAM queueing: per-miss energy inflates by q·(bw/bw_max)² under load.
  double dram_queue_factor = 0.45;
  double dram_bandwidth_max_bytes_per_sec = 12e9;

  // --- Voltage ladder endpoints for the DVFS scaling ---
  double v_min = 0.85;
  double v_max = 1.10;
};

/// Instantaneous decomposition of machine power (watts) over one tick.
struct PowerBreakdown {
  double platform = 0.0;
  double cpu_idle = 0.0;     ///< C-state residual power + wake spikes.
  double cpu_dynamic = 0.0;  ///< Instruction/cycle/branch activity.
  double uncore = 0.0;       ///< LLC + ring.
  double dram = 0.0;         ///< Miss traffic.

  double total() const noexcept {
    return platform + cpu_idle + cpu_dynamic + uncore + dram;
  }
  /// Package-scope power (what a RAPL PKG domain would report): everything
  /// except the platform and DRAM terms.
  double package() const noexcept { return cpu_idle + cpu_dynamic + uncore; }
};

}  // namespace powerapi::simcpu
