// Cumulative hardware performance counter block.
//
// These are the "generic" perf events of the perf_event_open man page (the
// paper's reference [8]); both the simulator and the real perf backend report
// them through this struct so everything downstream is backend-agnostic.
#pragma once

#include <cstdint>

namespace powerapi::simcpu {

struct CounterBlock {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_instructions = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t bus_cycles = 0;
  std::uint64_t stalled_cycles_frontend = 0;
  std::uint64_t stalled_cycles_backend = 0;
  std::uint64_t ref_cycles = 0;
  /// Cycles executed while the SMT sibling was simultaneously busy. Not a
  /// perf generic event — it requires scheduler cooperation, which is
  /// exactly the extra signal the HAPPY baseline (Zhai et al.) exploits.
  std::uint64_t smt_shared_cycles = 0;

  CounterBlock& operator+=(const CounterBlock& o) noexcept {
    cycles += o.cycles;
    instructions += o.instructions;
    cache_references += o.cache_references;
    cache_misses += o.cache_misses;
    branch_instructions += o.branch_instructions;
    branch_misses += o.branch_misses;
    bus_cycles += o.bus_cycles;
    stalled_cycles_frontend += o.stalled_cycles_frontend;
    stalled_cycles_backend += o.stalled_cycles_backend;
    ref_cycles += o.ref_cycles;
    smt_shared_cycles += o.smt_shared_cycles;
    return *this;
  }

  friend CounterBlock operator+(CounterBlock a, const CounterBlock& b) noexcept {
    a += b;
    return a;
  }

  /// Delta `this - o`; each field of `o` must not exceed this one's
  /// (counters are monotonic). Saturates at 0 defensively.
  CounterBlock delta_since(const CounterBlock& o) const noexcept {
    auto sub = [](std::uint64_t a, std::uint64_t b) { return a >= b ? a - b : 0; };
    CounterBlock d;
    d.cycles = sub(cycles, o.cycles);
    d.instructions = sub(instructions, o.instructions);
    d.cache_references = sub(cache_references, o.cache_references);
    d.cache_misses = sub(cache_misses, o.cache_misses);
    d.branch_instructions = sub(branch_instructions, o.branch_instructions);
    d.branch_misses = sub(branch_misses, o.branch_misses);
    d.bus_cycles = sub(bus_cycles, o.bus_cycles);
    d.stalled_cycles_frontend = sub(stalled_cycles_frontend, o.stalled_cycles_frontend);
    d.stalled_cycles_backend = sub(stalled_cycles_backend, o.stalled_cycles_backend);
    d.ref_cycles = sub(ref_cycles, o.ref_cycles);
    d.smt_shared_cycles = sub(smt_shared_cycles, o.smt_shared_cycles);
    return d;
  }

  bool operator==(const CounterBlock&) const noexcept = default;
};

}  // namespace powerapi::simcpu
