// The "stress utility" of the paper's Figure 1: parametric CPU- and
// memory-intensive profiles plus the training grid that sweeps them. The
// sampling phase runs this grid at every DVFS frequency to expose the full
// (counters → power) surface to the regression.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "os/task.h"
#include "simcpu/exec_profile.h"
#include "util/rng.h"
#include "util/units.h"

namespace powerapi::workloads {

/// ALU-bound stress: tight arithmetic loop, tiny working set, almost no
/// LLC traffic. `intensity` in (0,1] scales the duty cycle.
simcpu::ExecProfile cpu_stress(double intensity = 1.0);

/// Memory-bound stress: pointer chasing over `working_set_bytes`; LLC
/// reference rate grows with `intensity`, misses with the working set.
simcpu::ExecProfile memory_stress(double working_set_bytes, double intensity = 1.0);

/// Branch-heavy stress: unpredictable-branch loop (decision trees, state
/// machines); exercises the branch unit and frontend flush energy.
simcpu::ExecProfile branchy_stress(double intensity = 1.0);

/// Blend of the two: `memory_share` in [0,1] interpolates CPU → memory.
simcpu::ExecProfile mixed_stress(double memory_share, double working_set_bytes,
                                 double intensity = 1.0);

/// Completely idle profile (active_fraction = 0).
simcpu::ExecProfile idle_profile();

/// IO-bound stress: low CPU, heavy disk and network traffic (a file/backup
/// server). Only meaningful on a System built with peripherals enabled.
simcpu::ExecProfile io_stress(double disk_mb_per_sec, double net_mb_per_sec,
                              double intensity = 0.3);

/// One cell of the training grid.
struct StressPoint {
  std::string name;
  simcpu::ExecProfile profile;
  std::size_t threads = 1;  ///< How many copies run concurrently.
};

struct StressGridOptions {
  /// Duty-cycle levels exercised (idle appears implicitly between runs).
  std::vector<double> intensities{0.25, 0.5, 0.75, 1.0};
  /// Memory shares exercised (0 = pure ALU .. 1 = pure pointer chasing).
  std::vector<double> memory_shares{0.0, 0.3, 0.7, 1.0};
  /// Working sets: comfortably-in-L2, in-L3, and DRAM-resident.
  std::vector<double> working_sets{128.0 * 1024, 2.0 * 1024 * 1024, 24.0 * 1024 * 1024};
  /// Thread counts: single thread, one per core, one per hardware thread.
  std::vector<std::size_t> thread_counts{1, 2, 4};
};

/// Builds the full cartesian training grid. Cells that differ only in
/// working set are dropped for memory_share == 0 (pure ALU code has no
/// working-set dependence), keeping the grid tight.
std::vector<StressPoint> make_stress_grid(const StressGridOptions& options = {});

/// Materializes a stress point as process threads (one behavior per thread)
/// that run for `duration`.
std::vector<std::unique_ptr<os::TaskBehavior>> materialize(const StressPoint& point,
                                                           util::DurationNs duration);

/// A background "OS daemon": sub-millisecond wakeups at a tiny duty cycle.
/// Keeps cores out of the deepest C-states the way a real idle Linux system
/// does, so the measured idle floor matches a live machine rather than a
/// powered-off package. Used by the trainer and the evaluation benches.
std::unique_ptr<os::TaskBehavior> make_background_daemon(util::Rng rng);

}  // namespace powerapi::workloads
