// SPECjbb2013-like synthetic workload (the paper's Figure 3 evaluation
// subject). SPECjbb2013 drives a Java business-logic backend through a
// response-throughput curve: warmup, a staircase of increasing injection
// rates up to saturation, then a search phase oscillating near the maximum.
// We reproduce that *load shape* with memory-intensive backend threads whose
// working set far exceeds the LLC — the axes that matter for power.
#pragma once

#include <memory>
#include <vector>

#include "os/task.h"
#include "util/rng.h"
#include "util/units.h"

namespace powerapi::workloads {

struct SpecJbbOptions {
  std::size_t backend_threads = 4;              ///< One per hardware thread.
  util::DurationNs warmup = util::seconds_to_ns(200);
  util::DurationNs staircase_step = util::seconds_to_ns(120);
  std::size_t staircase_steps = 10;             ///< 10% .. 100% injection.
  util::DurationNs search_phase = util::seconds_to_ns(900);
  util::DurationNs cooldown = util::seconds_to_ns(100);
  double working_set_bytes = 28.0 * 1024 * 1024;  ///< Java heap hot set ≫ LLC.
};

/// Total wall time of the benchmark for the given options.
util::DurationNs specjbb_duration(const SpecJbbOptions& options);

/// Builds the backend threads; spawn them as one process. Each thread gets
/// an independent RNG stream forked from `rng`.
std::vector<std::unique_ptr<os::TaskBehavior>> make_specjbb(const SpecJbbOptions& options,
                                                            util::Rng rng);

}  // namespace powerapi::workloads
