// SPEC CPU2006-like application profiles for the Bertran et al. comparison
// (experiment C1): six single-threaded applications spanning compute-bound,
// branchy, and memory-latency-bound behaviour, each with a mild phase
// structure. Parameters follow the published characterization literature for
// the named applications (IPC, LLC reference/miss rates, footprints) scaled
// to our simulated Sandy Bridge-class core.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "os/task.h"
#include "util/rng.h"
#include "util/units.h"

namespace powerapi::workloads {

struct SpecApp {
  std::string name;
  /// Factory: a fresh single-threaded behavior running for `duration`.
  std::unique_ptr<os::TaskBehavior> make(util::DurationNs duration, util::Rng rng) const;

  // Steady-state characteristics (phases perturb around these).
  double cpi_base = 1.0;
  double cache_refs_per_kinstr = 20.0;
  double intrinsic_miss_ratio = 0.05;
  double working_set_bytes = 4.0 * 1024 * 1024;
  double branches_per_kinstr = 180.0;
  double branch_miss_ratio = 0.02;
  double mem_bandwidth_share = 0.3;
  double prefetch_lines_per_kinstr = 0.0;  ///< Streaming prefetchability.
  double instruction_energy_scale = 1.0;   ///< Instruction-mix energy weight.
};

/// The six-application suite used by the C1 benchmark.
std::vector<SpecApp> spec2006_suite();

/// Looks an app up by name; throws std::invalid_argument when unknown.
const SpecApp& spec2006_app(const std::vector<SpecApp>& suite, const std::string& name);

}  // namespace powerapi::workloads
