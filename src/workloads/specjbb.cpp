#include "workloads/specjbb.h"

#include <algorithm>

#include "workloads/behaviors.h"

namespace powerapi::workloads {

namespace {
/// Backend transaction mix: object-graph chasing with bursts of allocation.
/// Moderate IPC, heavy LLC traffic, working set far beyond the LLC.
simcpu::ExecProfile backend_profile(double injection, double working_set_bytes) {
  simcpu::ExecProfile p;
  p.cpi_base = 0.85;
  p.cache_refs_per_kinstr = 55.0;
  p.intrinsic_miss_ratio = 0.06;
  p.working_set_bytes = working_set_bytes;
  p.branches_per_kinstr = 200.0;
  p.branch_miss_ratio = 0.03;
  // jOPS saturation comes from memory latency and injection pacing, not
  // 100% CPU: full injection drives the backends to ~60% duty.
  p.active_fraction = 0.6 * std::clamp(injection, 0.0, 1.0);
  p.mem_bandwidth_share = 0.6;
  // Managed-runtime mix: JIT-compiled object-graph code with barriers and
  // allocation — far heavier per instruction than a C stress loop.
  p.instruction_energy_scale = 1.70;
  // Heap scans (GC, collection traversals) are highly prefetchable: heavy
  // DRAM traffic that never shows up in the cache-misses counter.
  p.prefetch_lines_per_kinstr = 26.0;
  return p;
}
}  // namespace

util::DurationNs specjbb_duration(const SpecJbbOptions& options) {
  return options.warmup +
         static_cast<util::DurationNs>(options.staircase_steps) * options.staircase_step +
         options.search_phase + options.cooldown;
}

std::vector<std::unique_ptr<os::TaskBehavior>> make_specjbb(const SpecJbbOptions& options,
                                                            util::Rng rng) {
  std::vector<std::unique_ptr<os::TaskBehavior>> threads;
  threads.reserve(options.backend_threads);
  for (std::size_t t = 0; t < options.backend_threads; ++t) {
    std::vector<Phase> phases;
    // Warmup: JIT + heap growth, light load.
    phases.push_back({backend_profile(0.15, options.working_set_bytes * 0.3), options.warmup});
    // RT-curve staircase: injection rate 10% .. 100%.
    for (std::size_t s = 1; s <= options.staircase_steps; ++s) {
      const double injection =
          static_cast<double>(s) / static_cast<double>(options.staircase_steps);
      phases.push_back(
          {backend_profile(injection, options.working_set_bytes), options.staircase_step});
    }
    // Search phase: oscillates between 65% and 100% hunting max-jOPS.
    const std::size_t oscillations = 6;
    const util::DurationNs slice =
        std::max<util::DurationNs>(1, options.search_phase / (2 * oscillations));
    for (std::size_t o = 0; o < oscillations; ++o) {
      phases.push_back({backend_profile(1.0, options.working_set_bytes), slice});
      phases.push_back({backend_profile(0.65, options.working_set_bytes), slice});
    }
    // Cooldown / report generation.
    phases.push_back({backend_profile(0.10, options.working_set_bytes * 0.2), options.cooldown});

    auto phased = std::make_unique<PhasedBehavior>(std::move(phases), /*loop=*/false);
    threads.push_back(std::make_unique<JitterBehavior>(std::move(phased),
                                                       rng.fork(1000 + t)));
  }
  return threads;
}

}  // namespace powerapi::workloads
