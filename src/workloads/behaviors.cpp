#include "workloads/behaviors.h"

#include <algorithm>
#include <stdexcept>

namespace powerapi::workloads {

std::optional<simcpu::ExecProfile> SteadyBehavior::next(util::TimestampNs /*now*/,
                                                        util::DurationNs dt) {
  if (!bounded_) return profile_;
  if (remaining_ <= 0) return std::nullopt;
  remaining_ -= dt;
  return profile_;
}

PhasedBehavior::PhasedBehavior(std::vector<Phase> phases, bool loop)
    : phases_(std::move(phases)), loop_(loop) {
  if (phases_.empty()) throw std::invalid_argument("PhasedBehavior: no phases");
  for (const auto& p : phases_) {
    if (p.duration <= 0) throw std::invalid_argument("PhasedBehavior: non-positive phase");
  }
}

std::optional<simcpu::ExecProfile> PhasedBehavior::next(util::TimestampNs /*now*/,
                                                        util::DurationNs dt) {
  if (index_ >= phases_.size()) return std::nullopt;
  const simcpu::ExecProfile profile = phases_[index_].profile;
  into_phase_ += dt;
  while (index_ < phases_.size() && into_phase_ >= phases_[index_].duration) {
    into_phase_ -= phases_[index_].duration;
    ++index_;
    if (index_ >= phases_.size() && loop_) index_ = 0;
  }
  return profile;
}

std::optional<simcpu::ExecProfile> JitterBehavior::next(util::TimestampNs now,
                                                        util::DurationNs dt) {
  auto p = inner_->next(now, dt);
  if (!p) return std::nullopt;
  auto jitter = [&](double base, double sigma, double lo, double hi) {
    return std::clamp(base * (1.0 + rng_.gaussian(0.0, sigma)), lo, hi);
  };
  p->active_fraction = jitter(p->active_fraction, options_.active_fraction_sigma, 0.0, 1.0);
  p->cache_refs_per_kinstr = jitter(p->cache_refs_per_kinstr, options_.refs_sigma, 0.0, 1000.0);
  p->intrinsic_miss_ratio = jitter(p->intrinsic_miss_ratio, options_.miss_sigma, 0.0, 1.0);
  return p;
}

BurstyBehavior::BurstyBehavior(simcpu::ExecProfile profile, util::DurationNs mean_burst,
                               util::DurationNs mean_gap, util::DurationNs duration,
                               util::Rng rng)
    : profile_(profile),
      mean_burst_(mean_burst),
      mean_gap_(mean_gap),
      remaining_total_(duration),
      bounded_(duration > 0),
      rng_(std::move(rng)) {
  if (mean_burst <= 0 || mean_gap < 0) {
    throw std::invalid_argument("BurstyBehavior: invalid burst/gap lengths");
  }
  draw_next_segment();
}

void BurstyBehavior::draw_next_segment() {
  const double mean = static_cast<double>(in_burst_ ? mean_burst_ : mean_gap_);
  if (mean <= 0) {
    segment_left_ = 0;
    return;
  }
  segment_left_ = std::max<util::DurationNs>(
      1, static_cast<util::DurationNs>(rng_.exponential(1.0 / mean)));
}

std::optional<simcpu::ExecProfile> BurstyBehavior::next(util::TimestampNs /*now*/,
                                                        util::DurationNs dt) {
  if (bounded_) {
    if (remaining_total_ <= 0) return std::nullopt;
    remaining_total_ -= dt;
  }
  while (segment_left_ <= 0) {
    in_burst_ = !in_burst_;
    draw_next_segment();
  }
  segment_left_ -= dt;
  if (in_burst_) return profile_;
  simcpu::ExecProfile idle = profile_;
  idle.active_fraction = 0.0;
  return idle;
}

}  // namespace powerapi::workloads
