#include "workloads/spec2006.h"

#include <stdexcept>

#include "workloads/behaviors.h"

namespace powerapi::workloads {

std::unique_ptr<os::TaskBehavior> SpecApp::make(util::DurationNs duration,
                                                util::Rng rng) const {
  simcpu::ExecProfile base;
  base.cpi_base = cpi_base;
  base.cache_refs_per_kinstr = cache_refs_per_kinstr;
  base.intrinsic_miss_ratio = intrinsic_miss_ratio;
  base.working_set_bytes = working_set_bytes;
  base.branches_per_kinstr = branches_per_kinstr;
  base.branch_miss_ratio = branch_miss_ratio;
  base.active_fraction = 1.0;
  base.mem_bandwidth_share = mem_bandwidth_share;
  base.prefetch_lines_per_kinstr = prefetch_lines_per_kinstr;
  base.instruction_energy_scale = instruction_energy_scale;

  // Three-phase structure: init (lighter memory traffic), main loop, and a
  // heavier phase (e.g. the large input chunk); repeats until the duration
  // elapses.
  simcpu::ExecProfile init = base;
  init.cache_refs_per_kinstr *= 0.6;
  init.working_set_bytes *= 0.4;
  simcpu::ExecProfile heavy = base;
  heavy.cache_refs_per_kinstr *= 1.3;
  heavy.intrinsic_miss_ratio *= 1.2;

  const util::DurationNs cycle = util::seconds_to_ns(30);
  std::vector<Phase> phases{
      {init, cycle / 6},
      {base, cycle / 2},
      {heavy, cycle / 3},
  };
  auto looped = std::make_unique<PhasedBehavior>(std::move(phases), /*loop=*/true);

  // Bound total runtime by wrapping in a steady "timer": PhasedBehavior loops
  // forever, so compose with a bounded jitter wrapper via BurstyBehavior-free
  // trick — simplest is a small adapter.
  class Bounded final : public os::TaskBehavior {
   public:
    Bounded(std::unique_ptr<os::TaskBehavior> inner, util::DurationNs duration)
        : inner_(std::move(inner)), remaining_(duration) {}
    std::optional<simcpu::ExecProfile> next(util::TimestampNs now,
                                            util::DurationNs dt) override {
      if (remaining_ <= 0) return std::nullopt;
      remaining_ -= dt;
      return inner_->next(now, dt);
    }

   private:
    std::unique_ptr<os::TaskBehavior> inner_;
    util::DurationNs remaining_;
  };

  auto bounded = std::make_unique<Bounded>(std::move(looped), duration);
  return std::make_unique<JitterBehavior>(std::move(bounded), std::move(rng));
}

std::vector<SpecApp> spec2006_suite() {
  std::vector<SpecApp> suite;

  SpecApp perlbench;
  perlbench.name = "perlbench-like";
  perlbench.cpi_base = 0.70;
  perlbench.cache_refs_per_kinstr = 9.0;
  perlbench.intrinsic_miss_ratio = 0.04;
  perlbench.working_set_bytes = 3.0 * 1024 * 1024;
  perlbench.branches_per_kinstr = 230.0;
  perlbench.branch_miss_ratio = 0.035;
  perlbench.prefetch_lines_per_kinstr = 2.0;
  perlbench.instruction_energy_scale = 1.05;
  perlbench.mem_bandwidth_share = 0.1;
  suite.push_back(perlbench);

  SpecApp bzip2;
  bzip2.name = "bzip2-like";
  bzip2.cpi_base = 0.80;
  bzip2.cache_refs_per_kinstr = 26.0;
  bzip2.intrinsic_miss_ratio = 0.06;
  bzip2.working_set_bytes = 8.0 * 1024 * 1024;
  bzip2.branches_per_kinstr = 160.0;
  bzip2.branch_miss_ratio = 0.055;
  bzip2.prefetch_lines_per_kinstr = 6.0;
  bzip2.instruction_energy_scale = 0.95;
  bzip2.mem_bandwidth_share = 0.3;
  suite.push_back(bzip2);

  SpecApp mcf;
  mcf.name = "mcf-like";
  mcf.cpi_base = 1.25;
  mcf.cache_refs_per_kinstr = 130.0;
  mcf.intrinsic_miss_ratio = 0.30;
  mcf.working_set_bytes = 96.0 * 1024 * 1024;
  mcf.branches_per_kinstr = 190.0;
  mcf.branch_miss_ratio = 0.05;
  mcf.prefetch_lines_per_kinstr = 3.0;
  mcf.instruction_energy_scale = 1.1;
  mcf.mem_bandwidth_share = 0.9;
  suite.push_back(mcf);

  SpecApp milc;
  milc.name = "milc-like";
  milc.cpi_base = 1.00;
  milc.cache_refs_per_kinstr = 75.0;
  milc.intrinsic_miss_ratio = 0.45;
  milc.working_set_bytes = 64.0 * 1024 * 1024;
  milc.branches_per_kinstr = 40.0;
  milc.branch_miss_ratio = 0.005;
  milc.prefetch_lines_per_kinstr = 22.0;
  milc.instruction_energy_scale = 1.3;
  milc.mem_bandwidth_share = 0.85;
  suite.push_back(milc);

  SpecApp gobmk;
  gobmk.name = "gobmk-like";
  gobmk.cpi_base = 0.90;
  gobmk.cache_refs_per_kinstr = 14.0;
  gobmk.intrinsic_miss_ratio = 0.05;
  gobmk.working_set_bytes = 2.0 * 1024 * 1024;
  gobmk.branches_per_kinstr = 240.0;
  gobmk.branch_miss_ratio = 0.09;
  gobmk.prefetch_lines_per_kinstr = 1.0;
  gobmk.instruction_energy_scale = 1.0;
  gobmk.mem_bandwidth_share = 0.1;
  suite.push_back(gobmk);

  SpecApp libquantum;
  libquantum.name = "libquantum-like";
  libquantum.cpi_base = 0.95;
  libquantum.cache_refs_per_kinstr = 95.0;
  libquantum.intrinsic_miss_ratio = 0.55;
  libquantum.working_set_bytes = 32.0 * 1024 * 1024;
  libquantum.branches_per_kinstr = 90.0;
  libquantum.branch_miss_ratio = 0.01;
  libquantum.prefetch_lines_per_kinstr = 28.0;
  libquantum.instruction_energy_scale = 1.2;
  libquantum.mem_bandwidth_share = 0.95;
  suite.push_back(libquantum);

  return suite;
}

const SpecApp& spec2006_app(const std::vector<SpecApp>& suite, const std::string& name) {
  for (const auto& app : suite) {
    if (app.name == name) return app;
  }
  throw std::invalid_argument("spec2006_app: unknown application " + name);
}

}  // namespace powerapi::workloads
