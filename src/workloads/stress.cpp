#include "workloads/stress.h"

#include <algorithm>
#include <sstream>

#include "workloads/behaviors.h"

namespace powerapi::workloads {

simcpu::ExecProfile cpu_stress(double intensity) {
  simcpu::ExecProfile p;
  p.cpi_base = 0.45;  // Wide superscalar ALU loop.
  p.cache_refs_per_kinstr = 0.8;
  p.intrinsic_miss_ratio = 0.01;
  p.working_set_bytes = 16 * 1024;
  p.branches_per_kinstr = 120.0;
  p.branch_miss_ratio = 0.004;
  p.active_fraction = std::clamp(intensity, 0.0, 1.0);
  p.mem_bandwidth_share = 0.02;
  p.instruction_energy_scale = 0.85;  // Simple integer ALU mix.
  return p;
}

simcpu::ExecProfile memory_stress(double working_set_bytes, double intensity) {
  simcpu::ExecProfile p;
  p.cpi_base = 0.9;  // Dependent loads limit issue width.
  p.cache_refs_per_kinstr = 110.0;
  p.intrinsic_miss_ratio = 0.04;  // Cache model adds capacity misses on top.
  p.working_set_bytes = working_set_bytes;
  p.branches_per_kinstr = 60.0;
  p.branch_miss_ratio = 0.01;
  p.active_fraction = std::clamp(intensity, 0.0, 1.0);
  p.mem_bandwidth_share = 0.8;
  p.instruction_energy_scale = 0.95;  // Loads/stores plus index arithmetic.
  p.prefetch_lines_per_kinstr = 8.0;  // Pointer chasing defeats prefetching.
  return p;
}

simcpu::ExecProfile io_stress(double disk_mb_per_sec, double net_mb_per_sec,
                              double intensity) {
  simcpu::ExecProfile p = cpu_stress(intensity);
  p.cpi_base = 1.2;  // Syscall/copy-heavy code.
  p.cache_refs_per_kinstr = 35.0;
  p.working_set_bytes = 1 << 20;
  p.disk_bytes_per_sec = disk_mb_per_sec * 1e6;
  p.disk_iops = disk_mb_per_sec > 0 ? 40.0 + disk_mb_per_sec : 0.0;
  p.net_tx_bytes_per_sec = net_mb_per_sec * 1e6 * 0.5;
  p.net_rx_bytes_per_sec = net_mb_per_sec * 1e6 * 0.5;
  return p;
}

simcpu::ExecProfile branchy_stress(double intensity) {
  simcpu::ExecProfile p;
  p.cpi_base = 0.95;
  p.cache_refs_per_kinstr = 2.0;
  p.intrinsic_miss_ratio = 0.02;
  p.working_set_bytes = 48 * 1024;
  p.branches_per_kinstr = 260.0;
  p.branch_miss_ratio = 0.10;
  p.active_fraction = std::clamp(intensity, 0.0, 1.0);
  p.mem_bandwidth_share = 0.02;
  p.instruction_energy_scale = 0.9;
  return p;
}

simcpu::ExecProfile mixed_stress(double memory_share, double working_set_bytes,
                                 double intensity) {
  const double a = std::clamp(memory_share, 0.0, 1.0);
  const simcpu::ExecProfile cpu = cpu_stress(intensity);
  const simcpu::ExecProfile mem = memory_stress(working_set_bytes, intensity);
  simcpu::ExecProfile p;
  auto lerp = [a](double x, double y) { return x + a * (y - x); };
  p.cpi_base = lerp(cpu.cpi_base, mem.cpi_base);
  p.cache_refs_per_kinstr = lerp(cpu.cache_refs_per_kinstr, mem.cache_refs_per_kinstr);
  p.intrinsic_miss_ratio = lerp(cpu.intrinsic_miss_ratio, mem.intrinsic_miss_ratio);
  p.working_set_bytes = a > 0.0 ? working_set_bytes : cpu.working_set_bytes;
  p.branches_per_kinstr = lerp(cpu.branches_per_kinstr, mem.branches_per_kinstr);
  p.branch_miss_ratio = lerp(cpu.branch_miss_ratio, mem.branch_miss_ratio);
  p.prefetch_lines_per_kinstr =
      lerp(cpu.prefetch_lines_per_kinstr, mem.prefetch_lines_per_kinstr);
  p.active_fraction = std::clamp(intensity, 0.0, 1.0);
  p.mem_bandwidth_share = lerp(cpu.mem_bandwidth_share, mem.mem_bandwidth_share);
  p.instruction_energy_scale =
      lerp(cpu.instruction_energy_scale, mem.instruction_energy_scale);
  return p;
}

simcpu::ExecProfile idle_profile() {
  simcpu::ExecProfile p;
  p.active_fraction = 0.0;
  return p;
}

std::vector<StressPoint> make_stress_grid(const StressGridOptions& options) {
  std::vector<StressPoint> grid;
  for (double intensity : options.intensities) {
    for (double share : options.memory_shares) {
      for (double ws : options.working_sets) {
        // Pure-ALU cells don't depend on working set: keep only the first.
        if (share == 0.0 && ws != options.working_sets.front()) continue;
        for (std::size_t threads : options.thread_counts) {
          StressPoint point;
          std::ostringstream name;
          name << "stress/i" << intensity << "/m" << share << "/ws"
               << static_cast<long long>(ws / 1024) << "k/t" << threads;
          point.name = name.str();
          point.profile = mixed_stress(share, ws, intensity);
          point.threads = threads;
          grid.push_back(std::move(point));
        }
      }
    }
  }
  // Branch-unit cells (one per intensity/thread combination): Bertran-style
  // component-targeted microbenchmarks need a workload that isolates the
  // branch dimension, which no CPU/memory mix covers.
  for (double intensity : options.intensities) {
    for (std::size_t threads : options.thread_counts) {
      StressPoint point;
      std::ostringstream name;
      name << "stress/branchy/i" << intensity << "/t" << threads;
      point.name = name.str();
      point.profile = branchy_stress(intensity);
      point.threads = threads;
      grid.push_back(std::move(point));
    }
  }
  return grid;
}

std::unique_ptr<os::TaskBehavior> make_background_daemon(util::Rng rng) {
  simcpu::ExecProfile p = cpu_stress(0.5);
  p.working_set_bytes = 64 * 1024;
  return std::make_unique<BurstyBehavior>(p,
                                          /*mean_burst=*/200'000,   // 0.2 ms
                                          /*mean_gap=*/1'800'000,   // 1.8 ms
                                          /*duration=*/0, std::move(rng));
}

std::vector<std::unique_ptr<os::TaskBehavior>> materialize(const StressPoint& point,
                                                           util::DurationNs duration) {
  std::vector<std::unique_ptr<os::TaskBehavior>> behaviors;
  behaviors.reserve(point.threads);
  for (std::size_t i = 0; i < point.threads; ++i) {
    behaviors.push_back(std::make_unique<SteadyBehavior>(point.profile, duration));
  }
  return behaviors;
}

}  // namespace powerapi::workloads
