// The workload zoo: behaviors mimicking datacenter applications that the
// stress grid does not cover. Two residents so far:
//
//  - LlmInferenceBehavior: an LLM serving thread. Requests arrive on a
//    Poisson process and queue; each request is a short compute-saturated
//    PREFILL burst (streaming SIMD over the whole model working set) followed
//    by a longer memory-latency-bound DECODE phase (token-at-a-time KV-cache
//    chasing). The two phases have near-opposite counter signatures at
//    similar watts, which is exactly the regime where single-counter power
//    models mispredict.
//
//  - DiurnalBehavior: a million-user service's day compressed into a
//    configurable period — sinusoidal base load between a night valley and a
//    day peak, plus Poisson flash crowds that multiply the load for a short
//    window. Spreading instances with different phase offsets over a fleet
//    replays a datacenter-wide traffic day.
//
// Both are deterministic given their Rng and the simulated clock.
#pragma once

#include <memory>
#include <optional>

#include "os/task.h"
#include "simcpu/exec_profile.h"
#include "util/rng.h"
#include "util/units.h"

namespace powerapi::workloads {

/// Queue-driven LLM inference serving: Poisson arrivals, prefill → decode
/// per request, idle when the queue drains.
class LlmInferenceBehavior final : public os::TaskBehavior {
 public:
  struct Options {
    /// Mean time between request arrivals (Poisson process).
    util::DurationNs mean_interarrival = util::ms_to_ns(400);
    /// Mean prefill burst length (exponentially distributed per request).
    util::DurationNs mean_prefill = util::ms_to_ns(60);
    /// Mean decode phase length (exponentially distributed per request).
    util::DurationNs mean_decode = util::ms_to_ns(250);
    /// Model weights + KV cache resident set; far beyond any LLC.
    double working_set_bytes = 48.0 * 1024 * 1024;
    /// Wall-clock bound; <= 0 runs forever.
    util::DurationNs duration = 0;
  };

  LlmInferenceBehavior(Options options, util::Rng rng);

  std::optional<simcpu::ExecProfile> next(util::TimestampNs now,
                                          util::DurationNs dt) override;

  /// Requests waiting (excludes the one being served); for tests.
  std::size_t queue_depth() const noexcept { return queue_; }

 private:
  enum class Stage { kIdle, kPrefill, kDecode };

  void start_request();

  Options options_;
  util::Rng rng_;
  simcpu::ExecProfile prefill_profile_;
  simcpu::ExecProfile decode_profile_;
  Stage stage_ = Stage::kIdle;
  std::size_t queue_ = 0;
  util::DurationNs next_arrival_in_ = 0;
  util::DurationNs stage_left_ = 0;
  util::DurationNs remaining_total_ = 0;
};

/// Sinusoidal daily traffic with flash crowds, driven by the simulated
/// clock (`now`), so instances with different phase offsets stay coherent.
class DiurnalBehavior final : public os::TaskBehavior {
 public:
  struct Options {
    /// The profile at 100% load; active_fraction scales with traffic.
    simcpu::ExecProfile peak_profile;
    /// Length of one simulated "day".
    util::DurationNs period = util::seconds_to_ns(120);
    /// Where in the day this instance starts (rotates the sinusoid).
    util::DurationNs phase_offset = 0;
    /// Load floor at the night valley and ceiling at the day peak, in [0,1].
    double valley_load = 0.15;
    double peak_load = 0.95;
    /// Mean time between flash crowds (Poisson); <= 0 disables them.
    util::DurationNs mean_flash_interarrival = util::seconds_to_ns(45);
    /// Mean flash crowd length (exponentially distributed).
    util::DurationNs mean_flash_duration = util::seconds_to_ns(4);
    /// Load multiplier range a flash crowd draws from (uniform).
    double flash_boost_min = 1.6;
    double flash_boost_max = 2.8;
    /// Wall-clock bound; <= 0 runs forever.
    util::DurationNs duration = 0;
  };

  DiurnalBehavior(Options options, util::Rng rng);

  std::optional<simcpu::ExecProfile> next(util::TimestampNs now,
                                          util::DurationNs dt) override;

  /// Instantaneous load factor in [0,1] at simulated time `now`, including
  /// any active flash crowd; for tests.
  double load_at(util::TimestampNs now) const;

 private:
  Options options_;
  util::Rng rng_;
  util::DurationNs next_flash_in_ = 0;
  util::DurationNs flash_left_ = 0;
  double flash_boost_ = 1.0;
  util::DurationNs remaining_total_ = 0;
};

/// Factory helpers matching the scenario layer's workload kinds.
std::unique_ptr<os::TaskBehavior> make_llm_inference(LlmInferenceBehavior::Options options,
                                                     util::Rng rng);
std::unique_ptr<os::TaskBehavior> make_diurnal(DiurnalBehavior::Options options,
                                               util::Rng rng);

}  // namespace powerapi::workloads
