#include "workloads/zoo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerapi::workloads {

namespace {
util::DurationNs draw_exponential(util::Rng& rng, util::DurationNs mean) {
  if (mean <= 0) return 0;
  return std::max<util::DurationNs>(
      1, static_cast<util::DurationNs>(rng.exponential(1.0 / static_cast<double>(mean))));
}
}  // namespace

LlmInferenceBehavior::LlmInferenceBehavior(Options options, util::Rng rng)
    : options_(options), rng_(std::move(rng)), remaining_total_(options.duration) {
  if (options_.mean_interarrival <= 0 || options_.mean_prefill <= 0 ||
      options_.mean_decode <= 0) {
    throw std::invalid_argument("LlmInferenceBehavior: non-positive mean duration");
  }
  if (options_.working_set_bytes <= 0) {
    throw std::invalid_argument("LlmInferenceBehavior: non-positive working set");
  }

  // PREFILL: the prompt crunch. Batched GEMMs stream the weight matrices —
  // wide SIMD (hot instruction mix), few demand misses because the hardware
  // prefetcher runs ahead of the sweep, pipeline saturated.
  prefill_profile_.cpi_base = 0.45;
  prefill_profile_.cache_refs_per_kinstr = 45.0;
  prefill_profile_.intrinsic_miss_ratio = 0.10;
  prefill_profile_.working_set_bytes = options_.working_set_bytes;
  prefill_profile_.branches_per_kinstr = 40.0;  // Unrolled inner loops.
  prefill_profile_.branch_miss_ratio = 0.004;
  prefill_profile_.active_fraction = 1.0;
  prefill_profile_.mem_bandwidth_share = 0.9;
  prefill_profile_.prefetch_lines_per_kinstr = 22.0;
  prefill_profile_.instruction_energy_scale = 1.45;  // FP/SIMD heavy.

  // DECODE: token-at-a-time generation. Every step walks the KV cache —
  // latency-bound pointer chasing the prefetcher cannot help, low IPC,
  // plenty of data-dependent branches in the sampling loop.
  decode_profile_.cpi_base = 1.6;
  decode_profile_.cache_refs_per_kinstr = 120.0;
  decode_profile_.intrinsic_miss_ratio = 0.35;
  decode_profile_.working_set_bytes = options_.working_set_bytes;
  decode_profile_.branches_per_kinstr = 150.0;
  decode_profile_.branch_miss_ratio = 0.05;
  decode_profile_.active_fraction = 0.9;  // Brief stalls on output tokens.
  decode_profile_.mem_bandwidth_share = 0.5;
  decode_profile_.prefetch_lines_per_kinstr = 1.0;
  decode_profile_.instruction_energy_scale = 1.05;

  next_arrival_in_ = draw_exponential(rng_, options_.mean_interarrival);
}

void LlmInferenceBehavior::start_request() {
  stage_ = Stage::kPrefill;
  stage_left_ = draw_exponential(rng_, options_.mean_prefill);
}

std::optional<simcpu::ExecProfile> LlmInferenceBehavior::next(util::TimestampNs /*now*/,
                                                              util::DurationNs dt) {
  if (options_.duration > 0) {
    if (remaining_total_ <= 0) return std::nullopt;
    remaining_total_ -= dt;
  }

  // Arrivals accumulate regardless of what the server is doing.
  next_arrival_in_ -= dt;
  while (next_arrival_in_ <= 0) {
    ++queue_;
    next_arrival_in_ += draw_exponential(rng_, options_.mean_interarrival);
  }

  // Advance the request state machine.
  stage_left_ -= dt;
  while (stage_ != Stage::kIdle && stage_left_ <= 0) {
    if (stage_ == Stage::kPrefill) {
      stage_ = Stage::kDecode;
      stage_left_ += draw_exponential(rng_, options_.mean_decode);
    } else {  // Decode finished: next queued request or idle.
      if (queue_ > 0) {
        --queue_;
        const util::DurationNs carry = stage_left_;
        start_request();
        stage_left_ += carry;
      } else {
        stage_ = Stage::kIdle;
        stage_left_ = 0;
      }
    }
  }
  if (stage_ == Stage::kIdle && queue_ > 0) {
    --queue_;
    start_request();
  }

  switch (stage_) {
    case Stage::kPrefill:
      return prefill_profile_;
    case Stage::kDecode:
      return decode_profile_;
    case Stage::kIdle:
    default: {
      simcpu::ExecProfile idle = decode_profile_;
      idle.active_fraction = 0.0;
      return idle;
    }
  }
}

DiurnalBehavior::DiurnalBehavior(Options options, util::Rng rng)
    : options_(options), rng_(std::move(rng)), remaining_total_(options.duration) {
  if (options_.period <= 0) throw std::invalid_argument("DiurnalBehavior: non-positive period");
  if (options_.valley_load < 0 || options_.peak_load > 1.0 ||
      options_.valley_load > options_.peak_load) {
    throw std::invalid_argument("DiurnalBehavior: loads must satisfy 0 <= valley <= peak <= 1");
  }
  if (options_.flash_boost_min < 1.0 || options_.flash_boost_max < options_.flash_boost_min) {
    throw std::invalid_argument("DiurnalBehavior: flash boost range must be >= 1 and ordered");
  }
  if (options_.mean_flash_interarrival > 0) {
    next_flash_in_ = draw_exponential(rng_, options_.mean_flash_interarrival);
  }
}

double DiurnalBehavior::load_at(util::TimestampNs now) const {
  // Day starts at the valley: load(0) = valley, load(period/2) = peak.
  const double t = static_cast<double>((now + options_.phase_offset) % options_.period) /
                   static_cast<double>(options_.period);
  const double wave = 0.5 * (1.0 - std::cos(2.0 * M_PI * t));
  double load = options_.valley_load + (options_.peak_load - options_.valley_load) * wave;
  if (flash_left_ > 0) load *= flash_boost_;
  return std::clamp(load, 0.0, 1.0);
}

std::optional<simcpu::ExecProfile> DiurnalBehavior::next(util::TimestampNs now,
                                                         util::DurationNs dt) {
  if (options_.duration > 0) {
    if (remaining_total_ <= 0) return std::nullopt;
    remaining_total_ -= dt;
  }

  // Flash crowd process: exponential gaps, exponential durations, a fresh
  // boost factor per event.
  if (flash_left_ > 0) {
    flash_left_ -= dt;
  } else if (options_.mean_flash_interarrival > 0) {
    next_flash_in_ -= dt;
    if (next_flash_in_ <= 0) {
      flash_left_ = draw_exponential(rng_, options_.mean_flash_duration);
      flash_boost_ = rng_.uniform(options_.flash_boost_min, options_.flash_boost_max);
      next_flash_in_ = draw_exponential(rng_, options_.mean_flash_interarrival);
    }
  }

  const double load = load_at(now);
  simcpu::ExecProfile p = options_.peak_profile;
  p.active_fraction = std::clamp(p.active_fraction * load, 0.0, 1.0);
  // Traffic also moves the memory system: request mix stays the same but
  // concurrency raises bandwidth pressure roughly with load.
  p.mem_bandwidth_share = std::clamp(p.mem_bandwidth_share * load, 0.0, 1.0);
  return p;
}

std::unique_ptr<os::TaskBehavior> make_llm_inference(LlmInferenceBehavior::Options options,
                                                     util::Rng rng) {
  return std::make_unique<LlmInferenceBehavior>(options, std::move(rng));
}

std::unique_ptr<os::TaskBehavior> make_diurnal(DiurnalBehavior::Options options,
                                               util::Rng rng) {
  return std::make_unique<DiurnalBehavior>(options, std::move(rng));
}

}  // namespace powerapi::workloads
