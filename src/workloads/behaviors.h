// Reusable TaskBehavior building blocks: steady demand, phase sequences,
// duty-cycled bursts, and stochastic jitter. Concrete workload suites
// (stress grid, SPECjbb-like, SPEC2006-like) compose these.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "os/task.h"
#include "simcpu/exec_profile.h"
#include "util/rng.h"
#include "util/units.h"

namespace powerapi::workloads {

/// Constant demand for a bounded duration (or forever when duration <= 0).
class SteadyBehavior final : public os::TaskBehavior {
 public:
  SteadyBehavior(simcpu::ExecProfile profile, util::DurationNs duration)
      : profile_(profile), remaining_(duration), bounded_(duration > 0) {}

  std::optional<simcpu::ExecProfile> next(util::TimestampNs now,
                                          util::DurationNs dt) override;

 private:
  simcpu::ExecProfile profile_;
  util::DurationNs remaining_;
  bool bounded_;
};

/// One stage of a phased workload.
struct Phase {
  simcpu::ExecProfile profile;
  util::DurationNs duration = 0;
};

/// Plays phases in order; optionally loops forever.
class PhasedBehavior final : public os::TaskBehavior {
 public:
  PhasedBehavior(std::vector<Phase> phases, bool loop);

  std::optional<simcpu::ExecProfile> next(util::TimestampNs now,
                                          util::DurationNs dt) override;

 private:
  std::vector<Phase> phases_;
  bool loop_;
  std::size_t index_ = 0;
  util::DurationNs into_phase_ = 0;
};

/// Wraps another behavior and jitters its duty cycle and cache behaviour
/// each tick — the "application noise" that keeps traces from being
/// piecewise constant.
class JitterBehavior final : public os::TaskBehavior {
 public:
  struct Options {
    double active_fraction_sigma = 0.08;  ///< Relative jitter on duty cycle.
    double refs_sigma = 0.10;             ///< Relative jitter on LLC refs.
    double miss_sigma = 0.10;             ///< Relative jitter on miss ratio.
  };

  JitterBehavior(std::unique_ptr<os::TaskBehavior> inner, util::Rng rng)
      : JitterBehavior(std::move(inner), std::move(rng), Options{}) {}
  JitterBehavior(std::unique_ptr<os::TaskBehavior> inner, util::Rng rng, Options options)
      : inner_(std::move(inner)), rng_(std::move(rng)), options_(options) {}

  std::optional<simcpu::ExecProfile> next(util::TimestampNs now,
                                          util::DurationNs dt) override;

 private:
  std::unique_ptr<os::TaskBehavior> inner_;
  util::Rng rng_;
  Options options_;
};

/// Externally gated behavior: while the shared gate is closed the task goes
/// idle (its work is deferred, not lost — the inner behavior's own timeline
/// only advances while the gate is open). The handle for power-aware
/// controllers that pause deferrable work, e.g. to track a renewable supply.
class GatedBehavior final : public os::TaskBehavior {
 public:
  /// Shared open/closed flag; many tasks may share one gate.
  using Gate = std::shared_ptr<bool>;

  GatedBehavior(std::unique_ptr<os::TaskBehavior> inner, Gate gate)
      : inner_(std::move(inner)), gate_(std::move(gate)) {}

  std::optional<simcpu::ExecProfile> next(util::TimestampNs now,
                                          util::DurationNs dt) override {
    if (gate_ && !*gate_) {
      simcpu::ExecProfile idle;
      idle.active_fraction = 0.0;
      return idle;
    }
    return inner_->next(now, dt);
  }

 private:
  std::unique_ptr<os::TaskBehavior> inner_;
  Gate gate_;
};

/// Alternates bursts of the given profile with idle gaps whose lengths are
/// exponentially distributed — a request-serving thread between arrivals.
class BurstyBehavior final : public os::TaskBehavior {
 public:
  BurstyBehavior(simcpu::ExecProfile profile, util::DurationNs mean_burst,
                 util::DurationNs mean_gap, util::DurationNs duration, util::Rng rng);

  std::optional<simcpu::ExecProfile> next(util::TimestampNs now,
                                          util::DurationNs dt) override;

 private:
  void draw_next_segment();

  simcpu::ExecProfile profile_;
  util::DurationNs mean_burst_;
  util::DurationNs mean_gap_;
  util::DurationNs remaining_total_;
  bool bounded_;
  util::Rng rng_;
  bool in_burst_ = true;
  util::DurationNs segment_left_ = 0;
};

}  // namespace powerapi::workloads
