// Network interface power model: base link power plus per-byte transmit/
// receive energy, with Energy-Efficient-Ethernet-style low-power idle when
// the link sees no traffic for a while.
#pragma once

#include "util/units.h"

namespace powerapi::periph {

struct NicDemand {
  double tx_bytes_per_sec = 0.0;
  double rx_bytes_per_sec = 0.0;
};

struct NicParams {
  double link_active_watts = 1.2;    ///< PHY fully awake.
  double lpi_watts = 0.3;            ///< 802.3az low-power idle.
  double joules_per_megabyte_tx = 1.5e-3;
  double joules_per_megabyte_rx = 1.0e-3;
  double link_bytes_per_sec = 125e6;  ///< 1 GbE; demand saturates here.
  util::DurationNs lpi_after_ns = util::ms_to_ns(50);
};

class NicModel {
 public:
  NicModel() : NicModel(NicParams{}) {}
  explicit NicModel(NicParams params) : params_(params) {}

  /// Advances one tick; returns the energy consumed (joules).
  double tick(const NicDemand& demand, util::DurationNs dt);

  bool in_low_power_idle() const noexcept { return lpi_; }
  double total_energy_joules() const noexcept { return total_joules_; }
  double last_power_watts() const noexcept { return last_watts_; }
  const NicParams& params() const noexcept { return params_; }

 private:
  NicParams params_;
  bool lpi_ = false;
  util::DurationNs idle_ns_ = 0;
  double total_joules_ = 0.0;
  double last_watts_ = 0.0;
};

}  // namespace powerapi::periph
