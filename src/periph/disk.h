// Disk power model.
//
// The paper's approach targets "splitting the power consumption between all
// the system components (i.e. CPU, GPU, memory, disk, network)"; this module
// provides the disk component: a spinning-platter model with distinct idle/
// active power, per-operation and per-byte energy, and spin-down after an
// idle timeout (the peripheral analogue of CPU C-states — and the same kind
// of history-dependent nonlinearity).
#pragma once

#include "util/units.h"

namespace powerapi::periph {

/// Aggregate disk demand over one tick.
struct DiskDemand {
  double iops = 0.0;           ///< Operations per second (seeks dominate).
  double bytes_per_sec = 0.0;  ///< Sequential transfer rate.
};

enum class DiskState { kSpinning, kSpunDown, kSpinningUp };

struct DiskParams {
  double idle_spinning_watts = 4.0;   ///< Platters turning, no IO.
  double spun_down_watts = 0.6;       ///< Electronics only.
  double spinup_watts = 10.0;         ///< Motor surge while spinning up.
  double joules_per_op = 8.0e-3;      ///< Seek + rotational latency energy.
  double joules_per_megabyte = 2.0e-3;
  util::DurationNs spindown_after_ns = util::seconds_to_ns(20);
  util::DurationNs spinup_duration_ns = util::seconds_to_ns(2);
  double max_bytes_per_sec = 150e6;   ///< Transfer saturation (demand clamps).
  double max_iops = 180.0;
};

class DiskModel {
 public:
  DiskModel() : DiskModel(DiskParams{}) {}
  explicit DiskModel(DiskParams params) : params_(params) {}

  /// Advances one tick; returns the energy consumed (joules). IO arriving
  /// while spun down triggers a spin-up: the IO stalls (consumes no IO
  /// energy) until the platters are back, but the surge power is paid.
  double tick(const DiskDemand& demand, util::DurationNs dt);

  DiskState state() const noexcept { return state_; }
  const DiskParams& params() const noexcept { return params_; }
  double total_energy_joules() const noexcept { return total_joules_; }
  /// Average watts over the most recent tick.
  double last_power_watts() const noexcept { return last_watts_; }

 private:
  DiskParams params_;
  DiskState state_ = DiskState::kSpinning;
  util::DurationNs idle_ns_ = 0;
  util::DurationNs spinup_left_ns_ = 0;
  double total_joules_ = 0.0;
  double last_watts_ = 0.0;
};

}  // namespace powerapi::periph
