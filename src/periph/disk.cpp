#include "periph/disk.h"

#include <algorithm>
#include <stdexcept>

namespace powerapi::periph {

double DiskModel::tick(const DiskDemand& demand, util::DurationNs dt) {
  if (dt <= 0) throw std::invalid_argument("DiskModel::tick: non-positive dt");
  if (demand.iops < 0 || demand.bytes_per_sec < 0) {
    throw std::invalid_argument("DiskModel::tick: negative demand");
  }
  const double dt_s = util::ns_to_seconds(dt);
  const bool has_io = demand.iops > 0.0 || demand.bytes_per_sec > 0.0;
  double joules = 0.0;

  switch (state_) {
    case DiskState::kSpunDown:
      if (has_io) {
        state_ = DiskState::kSpinningUp;
        spinup_left_ns_ = params_.spinup_duration_ns;
        joules += params_.spinup_watts * dt_s;
      } else {
        joules += params_.spun_down_watts * dt_s;
      }
      break;

    case DiskState::kSpinningUp:
      joules += params_.spinup_watts * dt_s;
      spinup_left_ns_ -= dt;
      if (spinup_left_ns_ <= 0) {
        state_ = DiskState::kSpinning;
        idle_ns_ = 0;
      }
      break;

    case DiskState::kSpinning: {
      joules += params_.idle_spinning_watts * dt_s;
      if (has_io) {
        idle_ns_ = 0;
        const double iops = std::min(demand.iops, params_.max_iops);
        const double bytes = std::min(demand.bytes_per_sec, params_.max_bytes_per_sec);
        joules += iops * dt_s * params_.joules_per_op;
        joules += bytes * dt_s / 1e6 * params_.joules_per_megabyte;
      } else {
        idle_ns_ += dt;
        if (idle_ns_ >= params_.spindown_after_ns) {
          state_ = DiskState::kSpunDown;
        }
      }
      break;
    }
  }

  total_joules_ += joules;
  last_watts_ = joules / dt_s;
  return joules;
}

}  // namespace powerapi::periph
