#include "periph/nic.h"

#include <algorithm>
#include <stdexcept>

namespace powerapi::periph {

double NicModel::tick(const NicDemand& demand, util::DurationNs dt) {
  if (dt <= 0) throw std::invalid_argument("NicModel::tick: non-positive dt");
  if (demand.tx_bytes_per_sec < 0 || demand.rx_bytes_per_sec < 0) {
    throw std::invalid_argument("NicModel::tick: negative demand");
  }
  const double dt_s = util::ns_to_seconds(dt);
  const bool busy = demand.tx_bytes_per_sec > 0.0 || demand.rx_bytes_per_sec > 0.0;

  if (busy) {
    lpi_ = false;
    idle_ns_ = 0;
  } else {
    idle_ns_ += dt;
    if (idle_ns_ >= params_.lpi_after_ns) lpi_ = true;
  }

  double joules = (lpi_ ? params_.lpi_watts : params_.link_active_watts) * dt_s;
  if (busy) {
    const double tx = std::min(demand.tx_bytes_per_sec, params_.link_bytes_per_sec);
    const double rx = std::min(demand.rx_bytes_per_sec, params_.link_bytes_per_sec);
    joules += tx * dt_s / 1e6 * params_.joules_per_megabyte_tx;
    joules += rx * dt_s / 1e6 * params_.joules_per_megabyte_rx;
  }

  total_joules_ += joules;
  last_watts_ = joules / dt_s;
  return joules;
}

}  // namespace powerapi::periph
