#include "governor/governor.h"

#include <algorithm>
#include <array>
#include <utility>

#include "os/system.h"

namespace powerapi::governor {

namespace {

/// Forwards one topic's machine-scope AggregatedPower rows to the governor,
/// tagged with the host index the topic belongs to. AggregatedPower itself
/// carries no host identity — the relay is where the topic namespace
/// ("h3/...", "remote/agent7/...") is turned back into one.
class SenseRelay final : public actors::Actor {
 public:
  SenseRelay(actors::ActorSystem& system, actors::ActorRef governor,
             std::size_t host_index)
      : system_(&system), governor_(governor), host_index_(host_index) {}

  void receive(actors::Envelope& envelope) override {
    const auto* row = envelope.payload.get<api::AggregatedPower>();
    if (row == nullptr) return;
    // Machine rows only: per-pid and per-group rows attribute, they don't
    // meter the host; "(fleet)" rows are a different dimension. The group
    // dimension tags its machine row "(machine)"; the other dimensions
    // leave the group empty.
    if (row->pid != api::kMachinePid) return;
    const bool machine_scope = row->group == "(machine)";
    if (!row->group.empty() && !machine_scope) return;
    HostPower msg;
    msg.host = host_index_;
    msg.timestamp = row->timestamp;
    msg.formula = row->formula;
    msg.watts = row->watts;
    msg.machine_scope = machine_scope;
    system_->tell(governor_, actors::Payload(std::move(msg)), self());
  }

 private:
  actors::ActorSystem* system_;
  actors::ActorRef governor_;
  std::size_t host_index_;
};

}  // namespace

HostControl control_for(std::string label, os::System& system, double weight) {
  HostControl control;
  control.label = std::move(label);
  control.cores = system.machine().spec().cores;
  control.frequencies_ascending = system.machine().spec().frequencies_hz;
  control.weight = weight;
  os::System* sys = &system;
  control.set_frequency = [sys](double hz) { return sys->pin_frequency(hz); };
  control.set_parked = [sys](std::size_t cores) {
    return sys->set_parked_cores(cores);
  };
  return control;
}

GovernorActor::GovernorActor(actors::EventBus& bus, GovernorOptions options,
                             std::vector<HostControl> hosts)
    : bus_(&bus),
      options_(std::move(options)),
      actuation_topic_(bus.intern("governor/actuation")) {
  hosts_.reserve(hosts.size());
  for (HostControl& control : hosts) {
    HostState state;
    state.ladder = build_rung_ladder(options_.policy, control.frequencies_ascending,
                                     control.cores, options_.min_active_cores);
    state.controller = StepController(StepController::Options{
        options_.hysteresis_watts, options_.cooldown_ns, options_.max_step});
    state.control = std::move(control);
    hosts_.push_back(std::move(state));
  }
  if (options_.obs != nullptr) {
    auto& metrics = options_.obs->metrics;
    actuations_metric_ = &metrics.counter("governor.actuations");
    steps_down_metric_ = &metrics.counter("governor.steps_down");
    steps_up_metric_ = &metrics.counter("governor.steps_up");
    ticks_metric_ = &metrics.counter("governor.ticks");
    fleet_watts_metric_ = &metrics.gauge("governor.fleet_watts");
    budget_watts_metric_ = &metrics.gauge("governor.budget_watts");
    budget_watts_metric_->set(options_.budget_watts);
    decide_span_ = options_.obs->trace.intern("governor/decide");
  }
}

void GovernorActor::receive(actors::Envelope& envelope) {
  if (const auto* power = envelope.payload.get<HostPower>()) {
    on_host_power(*power);
    return;
  }
  if (const auto* tick = envelope.payload.get<GovernorTick>()) {
    evaluate(tick->now_ns);
  }
}

actors::ActorRef GovernorActor::spawn_sense_relay(actors::ActorSystem& system,
                                                  actors::EventBus& bus,
                                                  actors::EventBus::TopicId topic,
                                                  actors::ActorRef governor,
                                                  std::size_t host_index,
                                                  const std::string& name) {
  const auto relay =
      system.spawn_as<SenseRelay>(name, system, governor, host_index);
  bus.subscribe(topic, relay);
  return relay;
}

void GovernorActor::on_host_power(const HostPower& msg) {
  if (msg.host >= hosts_.size()) return;
  HostState& host = hosts_[msg.host];
  Sample& sample = host.watts_by_formula[msg.formula];
  // An empty-group row under the group dimension is the ungrouped-process
  // sum, not the machine; never let it shadow a real "(machine)" reading.
  if (sample.machine_scope && !msg.machine_scope) return;
  sample.watts = msg.watts;
  sample.machine_scope = msg.machine_scope;
  host.last_sample_ns = msg.timestamp;
}

bool GovernorActor::sensed_watts(const HostState& host, double& out) const {
  if (host.watts_by_formula.empty()) return false;
  if (!options_.formula.empty()) {
    const auto it = host.watts_by_formula.find(options_.formula);
    if (it == host.watts_by_formula.end()) return false;
    out = it->second.watts;
    return true;
  }
  static constexpr std::array<const char*, 3> kPreference = {
      "powerapi-hpc", "powerspy", "rapl"};
  for (const char* formula : kPreference) {
    const auto it = host.watts_by_formula.find(formula);
    if (it != host.watts_by_formula.end()) {
      out = it->second.watts;
      return true;
    }
  }
  out = host.watts_by_formula.begin()->second.watts;  // Deterministic: map order.
  return true;
}

void GovernorActor::evaluate(util::TimestampNs now_ns) {
  ++tick_count_;
  const obs::ScopedSpan span(
      options_.obs != nullptr ? &options_.obs->trace : nullptr, decide_span_,
      tick_count_);
  if (ticks_metric_ != nullptr) ticks_metric_->add();

  const std::size_t n = hosts_.size();
  weights_scratch_.resize(n);
  watts_scratch_.resize(n);
  sensed_scratch_.assign(n, 0);
  double fleet_watts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weights_scratch_[i] = hosts_[i].control.weight;
    double watts = 0.0;
    if (sensed_watts(hosts_[i], watts)) sensed_scratch_[i] = 1;
    watts_scratch_[i] = watts;
    fleet_watts += watts;
  }
  last_fleet_watts_ = fleet_watts;
  if (fleet_watts_metric_ != nullptr) fleet_watts_metric_->set(fleet_watts);
  if (options_.budget_watts <= 0.0) return;

  compute_shares(options_.budget_watts, weights_scratch_, watts_scratch_,
                 shares_scratch_);
  for (std::size_t i = 0; i < n; ++i) {
    HostState& host = hosts_[i];
    // No reading yet (pipeline warm-up): hold rather than flail on zeros.
    if (sensed_scratch_[i] == 0 || host.ladder.empty()) continue;
    const std::size_t next = host.controller.decide(
        host.rung, host.ladder.size() - 1, watts_scratch_[i], shares_scratch_[i],
        now_ns);
    if (next != host.rung) {
      apply(host, i, next, host.controller.last_direction(), watts_scratch_[i],
            shares_scratch_[i], now_ns);
    }
  }
}

void GovernorActor::apply(HostState& host, std::size_t /*host_index*/,
                          std::size_t new_rung, int direction, double watts,
                          double share, util::TimestampNs now_ns) {
  const Rung& rung = host.ladder[new_rung];
  host.rung = new_rung;
  double applied_hz = rung.frequency_hz;
  std::size_t applied_parked = rung.parked_cores;
  if (host.control.set_frequency) applied_hz = host.control.set_frequency(rung.frequency_hz);
  if (host.control.set_parked) applied_parked = host.control.set_parked(rung.parked_cores);

  ++actuation_count_;
  if (actuations_metric_ != nullptr) actuations_metric_->add();
  if (direction < 0 && steps_down_metric_ != nullptr) steps_down_metric_->add();
  if (direction > 0 && steps_up_metric_ != nullptr) steps_up_metric_->add();

  Actuation actuation;
  actuation.timestamp = now_ns;
  actuation.host = host.control.label;
  actuation.direction = direction;
  actuation.rung = new_rung;
  actuation.frequency_hz = applied_hz;
  actuation.parked_cores = applied_parked;
  actuation.host_watts = watts;
  actuation.share_watts = share;
  history_.push_back(actuation);
  // Publishing to a topic nobody subscribed would count a dead letter per
  // actuation; the governor works fine unobserved, so check first (cold
  // path — one shared lock per actuation, not per message).
  if (bus_->subscriber_count(actuation_topic_) > 0) {
    bus_->publish(actuation_topic_, std::move(actuation), self());
  }
}

}  // namespace powerapi::governor
