#include "governor/policy.h"

#include <algorithm>
#include <cmath>

namespace powerapi::governor {

std::vector<Rung> build_rung_ladder(Policy policy,
                                    std::span<const double> frequencies_ascending,
                                    std::size_t cores, std::size_t min_active_cores) {
  std::vector<Rung> rungs;
  if (frequencies_ascending.empty() || cores == 0) return rungs;
  min_active_cores = std::clamp<std::size_t>(min_active_cores, 1, cores);
  const std::size_t max_parked = cores - min_active_cores;
  const double f_max = frequencies_ascending.back();
  const double f_min = frequencies_ascending.front();
  const std::size_t levels = frequencies_ascending.size();

  rungs.push_back({f_max, 0});
  if (policy == Policy::kPaceToDeadline) {
    // Frequency descent first (high → low, skipping the max already at
    // rung 0), then parking at the ladder floor.
    for (std::size_t i = levels - 1; i-- > 0;) {
      rungs.push_back({frequencies_ascending[i], 0});
    }
    for (std::size_t p = 1; p <= max_parked; ++p) {
      rungs.push_back({f_min, p});
    }
  } else {
    // Parking first at full frequency, then frequency descent with maximum
    // parking held.
    for (std::size_t p = 1; p <= max_parked; ++p) {
      rungs.push_back({f_max, p});
    }
    for (std::size_t i = levels - 1; i-- > 0;) {
      rungs.push_back({frequencies_ascending[i], max_parked});
    }
  }
  return rungs;
}

void compute_shares(double budget, std::span<const double> weights,
                    std::span<const double> watts, std::vector<double>& out) {
  const std::size_t n = weights.size();
  out.assign(n, 0.0);
  if (n == 0) return;
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += std::max(0.0, w);
  if (weight_sum <= 0.0) weight_sum = static_cast<double>(n);

  double surplus_sum = 0.0;
  double deficit_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 1.0;
    out[i] = budget * w / weight_sum;
    const double gap = out[i] - watts[i];
    if (gap > 0.0) {
      surplus_sum += gap;
    } else {
      deficit_sum -= gap;
    }
  }
  const double transfer = std::min(surplus_sum, deficit_sum);
  if (transfer <= 0.0) return;
  for (std::size_t i = 0; i < n; ++i) {
    const double gap = out[i] - watts[i];
    if (gap > 0.0) {
      out[i] -= transfer * gap / surplus_sum;
    } else {
      out[i] += transfer * -gap / deficit_sum;
    }
  }
}

std::size_t StepController::decide(std::size_t current_rung, std::size_t max_rung,
                                   double watts, double share_watts,
                                   util::TimestampNs now_ns) {
  last_direction_ = 0;
  const double band = std::max(options_.hysteresis_watts, 0.0);
  const double overshoot = watts - share_watts;
  if (overshoot > band) {
    if (current_rung >= max_rung) return current_rung;
    // Proportional descent: one rung per full hysteresis band of overshoot
    // (a zero band degrades to single-stepping), capped at max_step.
    std::size_t steps = 1;
    if (band > 0.0) {
      steps = static_cast<std::size_t>(overshoot / band);
      steps = std::clamp<std::size_t>(steps, 1, std::max<std::size_t>(options_.max_step, 1));
    }
    const std::size_t next = std::min(current_rung + steps, max_rung);
    last_actuation_ns_ = now_ns;
    last_direction_ = -1;
    return next;
  }
  if (overshoot < -band) {
    if (current_rung == 0) return current_rung;
    // Up-steps are single and rate-limited: recovering capacity too eagerly
    // after a down-step is the classic pstate oscillation trigger.
    if (last_actuation_ns_ >= 0 && now_ns - last_actuation_ns_ < options_.cooldown_ns) {
      return current_rung;
    }
    last_actuation_ns_ = now_ns;
    last_direction_ = 1;
    return current_rung - 1;
  }
  return current_rung;
}

}  // namespace powerapi::governor
