// Governor policy layer: pure, deterministic decision arithmetic.
//
// Everything here is free of actors, clocks and I/O so the control law can
// be unit-tested exhaustively and the GovernorActor stays a thin shell:
//  * RungLadder      — a host's actuation states ordered from fastest
//                      (rung 0) to thriftiest, built from the DVFS ladder
//                      and the core count under one of two orderings
//                      (pace-to-deadline vs race-to-idle).
//  * compute_shares  — weighted split of the fleet budget across hosts with
//                      redistribution of unused headroom to hosts in
//                      deficit (budget-neutral: shares always sum to the
//                      budget).
//  * StepController  — per-host proportional step-down / single-step-up
//                      controller with a hysteresis band and an up-step
//                      cooldown, the oscillation-avoidance core.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/units.h"

namespace powerapi::governor {

/// How a host trades frequency against parked cores when throttling.
enum class Policy {
  /// Pace-to-deadline: lower frequency first (all cores stay on, everyone
  /// runs slower), park cores only when the ladder floor is not enough.
  /// Best when latency must degrade gracefully across all tasks.
  kPaceToDeadline,
  /// Race-to-idle: park cores first at full frequency (fewer cores, each
  /// still fast), lower frequency only once parking is exhausted. Best when
  /// per-task completion time matters more than parallel width.
  kRaceToIdle,
};

/// One actuation state: the package frequency set point and how many cores
/// are parked while in it.
struct Rung {
  double frequency_hz = 0.0;
  std::size_t parked_cores = 0;
};

/// Builds a host's actuation ladder. `frequencies_ascending` is the DVFS
/// ladder low→high (CpuSpec order); `cores` the physical core count;
/// `min_active_cores` the floor on unparked cores (clamped to [1, cores]).
/// Rung 0 is always {f_max, 0 parked}; each later rung strictly reduces
/// power. The ordering of frequency rungs vs parking rungs follows `policy`.
std::vector<Rung> build_rung_ladder(Policy policy,
                                    std::span<const double> frequencies_ascending,
                                    std::size_t cores,
                                    std::size_t min_active_cores = 1);

/// Splits `budget` watts across hosts: base share ∝ weight, then unused
/// headroom (base − measured, where positive) is transferred to hosts over
/// their base, proportional to each deficit. The transfer is capped at
/// min(total surplus, total deficit) so Σ shares == budget exactly and no
/// donor's share drops below its own measured draw. `weights` and `watts`
/// must be the same length; `out` is resized to match.
void compute_shares(double budget, std::span<const double> weights,
                    std::span<const double> watts, std::vector<double>& out);

/// Per-host hysteresis/cooldown stepper. Stateless about the ladder itself;
/// it only moves an abstract rung index in [0, max_rung].
class StepController {
 public:
  struct Options {
    double hysteresis_watts = 2.0;      ///< Dead band around the share.
    util::DurationNs cooldown_ns = util::ms_to_ns(1000);
    std::size_t max_step = 1;           ///< Rungs per proportional down-step.
  };

  StepController() = default;
  explicit StepController(Options options) : options_(options) {}

  /// Decides the next rung given the current one, the measured watts, the
  /// host's share and the (simulated) time. Over budget (watts > share +
  /// hysteresis): steps DOWN the ladder immediately — safety direction, no
  /// cooldown — by rungs proportional to the overshoot in hysteresis-band
  /// units, capped at max_step; arms the cooldown. Under budget (watts <
  /// share − hysteresis): steps UP one rung only after the cooldown has
  /// elapsed since the last actuation in either direction — the asymmetry
  /// (down fast, up slow and single-stepped) is what prevents limit-cycle
  /// oscillation around the cap. Inside the band: holds.
  std::size_t decide(std::size_t current_rung, std::size_t max_rung, double watts,
                     double share_watts, util::TimestampNs now_ns);

  /// Direction of the last decide(): -1 stepped down, +1 stepped up, 0 held.
  int last_direction() const noexcept { return last_direction_; }

 private:
  Options options_;
  util::TimestampNs last_actuation_ns_ = -1;  ///< -1 = never actuated.
  int last_direction_ = 0;
};

}  // namespace powerapi::governor
