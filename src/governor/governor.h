// The closed-loop power governor: sense → estimate → decide → actuate.
//
// A GovernorActor subscribes (via per-host SenseRelay actors) to each
// host's "h<i>/power:aggregated" stream — or a collector's merged
// "remote/..." stream, the rows are the same either side of the wire — and
// holds a fleet-level watt budget by moving each host down/up its
// RungLadder (DVFS set point + parked cores, see policy.h).
//
// Determinism: the governor only evaluates on an explicit GovernorTick,
// which the driver (ScenarioRunner, examples, benches) sends between
// settled FleetMonitor::run_for chunks — the fleet is quiescent, every
// aggregated row for the elapsed window has been delivered, and the
// actuations land before the next chunk advances. In kManual mode the whole
// loop is single-threaded and bit-reproducible; in kThreaded mode the
// actor-system barrier gives the same per-host decision series.
//
// Observability: decisions are counted ("governor.actuations", ".steps_up",
// ".steps_down", ".ticks"), the sensed fleet draw and the budget are gauges
// ("governor.fleet_watts", ".budget_watts"), each evaluation records a
// "governor/decide" span, and every actuation is published on the
// "governor/actuation" bus topic for reporters and tests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "actors/actor.h"
#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "governor/policy.h"
#include "obs/observability.h"
#include "powerapi/messages.h"
#include "util/units.h"

namespace powerapi::os {
class System;
}  // namespace powerapi::os

namespace powerapi::governor {

/// Evaluate-now command, sent by the driver between settled run chunks.
struct GovernorTick {
  util::TimestampNs now_ns = 0;
};

/// Internal sense message: one host's aggregated machine-power row, tagged
/// with the host index by that host's SenseRelay. Machine scope is either
/// the empty group (timestamp/pid dimensions) or the "(machine)" group row
/// (group dimension); the latter is authoritative when both appear.
struct HostPower {
  std::size_t host = 0;
  util::TimestampNs timestamp = 0;
  std::string formula;
  double watts = 0.0;
  bool machine_scope = false;  ///< True for "(machine)" group rows.
};

/// One applied decision, published on "governor/actuation" and kept in the
/// governor's history for tests and reports.
struct Actuation {
  util::TimestampNs timestamp = 0;
  std::string host;
  int direction = 0;            ///< -1 stepped down, +1 stepped up.
  std::size_t rung = 0;         ///< New rung index after the step.
  double frequency_hz = 0.0;    ///< Set point applied.
  std::size_t parked_cores = 0; ///< Parked-core count applied.
  double host_watts = 0.0;      ///< Sensed draw that triggered the step.
  double share_watts = 0.0;     ///< The host's budget share at decision time.
};

/// The governor's handle on one host: identity, topology and actuation
/// callbacks. The callbacks are invoked from the governor actor's receive —
/// with the driver protocol above, always while the fleet is quiescent.
struct HostControl {
  std::string label;
  std::size_t cores = 1;
  std::vector<double> frequencies_ascending;  ///< DVFS ladder, low → high.
  double weight = 1.0;                        ///< Budget-share weight.
  std::function<double(double hz)> set_frequency;
  std::function<std::size_t(std::size_t cores)> set_parked;
};

/// Builds a HostControl actuating a simulated os::System (pins the package
/// frequency, parks the highest-indexed cores). The system must outlive the
/// governor.
HostControl control_for(std::string label, os::System& system, double weight = 1.0);

struct GovernorOptions {
  double budget_watts = 0.0;  ///< Fleet-level cap; <= 0 disables stepping.
  Policy policy = Policy::kPaceToDeadline;
  double hysteresis_watts = 2.0;
  util::DurationNs cooldown_ns = util::ms_to_ns(1000);
  std::size_t max_step = 1;          ///< Max rungs per proportional down-step.
  std::size_t min_active_cores = 1;  ///< Parking floor per host.
  /// Formula whose machine rows drive decisions; empty = first available of
  /// "powerapi-hpc", "powerspy", "rapl", then lexicographically first.
  std::string formula;
  obs::Observability* obs = nullptr;  ///< Optional; null = unobserved.
};

class GovernorActor final : public actors::Actor {
 public:
  GovernorActor(actors::EventBus& bus, GovernorOptions options,
                std::vector<HostControl> hosts);

  void receive(actors::Envelope& envelope) override;

  /// Spawns a SenseRelay forwarding `topic`'s machine-power rows to
  /// `governor` tagged as `host_index`, and subscribes it. Works for local
  /// per-host topics and for "remote/<agent>/power:aggregated" alike.
  static actors::ActorRef spawn_sense_relay(actors::ActorSystem& system,
                                            actors::EventBus& bus,
                                            actors::EventBus::TopicId topic,
                                            actors::ActorRef governor,
                                            std::size_t host_index,
                                            const std::string& name);

  // --- Post-barrier introspection (drain()/await_idle() first) ---
  std::uint64_t actuation_count() const noexcept { return actuation_count_; }
  const std::vector<Actuation>& history() const noexcept { return history_; }
  std::size_t current_rung(std::size_t host) const { return hosts_.at(host).rung; }
  double last_fleet_watts() const noexcept { return last_fleet_watts_; }

 private:
  struct Sample {
    double watts = 0.0;
    bool machine_scope = false;
  };
  struct HostState {
    HostControl control;
    std::vector<Rung> ladder;
    StepController controller;
    std::size_t rung = 0;
    /// Latest machine-scope watts per formula (deterministic iteration).
    std::map<std::string, Sample> watts_by_formula;
    util::TimestampNs last_sample_ns = -1;
  };

  void on_host_power(const HostPower& msg);
  void evaluate(util::TimestampNs now_ns);
  /// The sensed draw for one host under the formula preference order;
  /// returns false when no row has arrived yet.
  bool sensed_watts(const HostState& host, double& out) const;
  void apply(HostState& host, std::size_t host_index, std::size_t new_rung,
             int direction, double watts, double share, util::TimestampNs now_ns);

  actors::EventBus* bus_;
  GovernorOptions options_;
  std::vector<HostState> hosts_;
  actors::EventBus::TopicId actuation_topic_;
  std::uint64_t actuation_count_ = 0;
  std::uint64_t tick_count_ = 0;
  double last_fleet_watts_ = 0.0;
  std::vector<Actuation> history_;
  // Evaluation scratch (reused per tick).
  std::vector<double> weights_scratch_;
  std::vector<double> watts_scratch_;
  std::vector<double> shares_scratch_;
  std::vector<std::uint8_t> sensed_scratch_;
  // Interned observability handles (null obs = all null/zero).
  obs::Counter* actuations_metric_ = nullptr;
  obs::Counter* steps_down_metric_ = nullptr;
  obs::Counter* steps_up_metric_ = nullptr;
  obs::Counter* ticks_metric_ = nullptr;
  obs::Gauge* fleet_watts_metric_ = nullptr;
  obs::Gauge* budget_watts_metric_ = nullptr;
  obs::TraceCollector::NameId decide_span_ = 0;
};

}  // namespace powerapi::governor
