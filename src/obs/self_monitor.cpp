#include "obs/self_monitor.h"

#include "obs/trace.h"

#include <cstdio>
#include <string_view>

#include <sys/resource.h>
#include <unistd.h>

namespace powerapi::obs {

namespace {

double rusage_cpu_seconds() noexcept {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  const auto to_seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_seconds(usage.ru_utime) + to_seconds(usage.ru_stime);
}

}  // namespace

double process_cpu_seconds() noexcept {
  // /proc/self/stat field 14 (utime) and 15 (stime), in clock ticks. The
  // comm field (2) may contain spaces, so skip past its closing ')'.
  std::FILE* file = std::fopen("/proc/self/stat", "r");
  if (file == nullptr) return rusage_cpu_seconds();
  char buffer[1024];
  const std::size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  if (read == 0) return rusage_cpu_seconds();
  buffer[read] = '\0';
  const std::string_view stat(buffer, read);
  const std::size_t paren = stat.rfind(')');
  if (paren == std::string_view::npos) return rusage_cpu_seconds();

  unsigned long long utime = 0;
  unsigned long long stime = 0;
  // After ") " comes field 3 (state); utime/stime are fields 14/15.
  if (std::sscanf(buffer + paren + 1,
                  " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %llu %llu",
                  &utime, &stime) != 2) {
    return rusage_cpu_seconds();
  }
  const long ticks_per_second = sysconf(_SC_CLK_TCK);
  if (ticks_per_second <= 0) return rusage_cpu_seconds();
  return static_cast<double>(utime + stime) / static_cast<double>(ticks_per_second);
}

SelfMonitor::SelfMonitor() {
  start_cpu_seconds_ = process_cpu_seconds();
  last_cpu_seconds_ = start_cpu_seconds_;
  last_wall_ns_ = wall_now_ns();
}

void SelfMonitor::set_watts_per_core(double watts) noexcept {
  std::lock_guard lock(mutex_);
  watts_per_core_ = watts;
}

double SelfMonitor::watts_per_core() const noexcept {
  std::lock_guard lock(mutex_);
  return watts_per_core_;
}

SelfMonitor::Usage SelfMonitor::sample() {
  std::lock_guard lock(mutex_);
  const double cpu_now = process_cpu_seconds();
  const std::int64_t wall_now = wall_now_ns();

  Usage usage;
  usage.wall_seconds = static_cast<double>(wall_now - last_wall_ns_) * 1e-9;
  usage.cpu_seconds = cpu_now - last_cpu_seconds_;
  if (usage.cpu_seconds < 0.0) usage.cpu_seconds = 0.0;  // Clock-tick jitter.
  usage.cpu_share_cores =
      usage.wall_seconds > 0.0 ? usage.cpu_seconds / usage.wall_seconds : 0.0;
  usage.estimated_watts = usage.cpu_share_cores * watts_per_core_;
  usage.total_cpu_seconds = cpu_now - start_cpu_seconds_;
  total_joules_ += usage.cpu_seconds * watts_per_core_;
  usage.total_joules = total_joules_;

  last_cpu_seconds_ = cpu_now;
  last_wall_ns_ = wall_now;
  return usage;
}

}  // namespace powerapi::obs
