#include "obs/observability.h"

namespace powerapi::obs {

Observability::Observability(std::size_t trace_capacity) : trace(trace_capacity) {
  trace.set_drop_counter(&metrics.counter("obs.trace.spans_dropped"));
  self_collector_ = metrics.add_collector([this](SnapshotBuilder& builder) {
    const SelfMonitor::Usage usage = self.sample();
    builder.gauge("self.cpu_share_cores", usage.cpu_share_cores);
    builder.gauge("self.watts", usage.estimated_watts);
    builder.gauge("self.cpu_seconds", usage.total_cpu_seconds);
    builder.gauge("self.joules", usage.total_joules);
    builder.gauge("trace.events", static_cast<double>(trace.size()));
    builder.gauge("trace.dropped", static_cast<double>(trace.dropped()));
  });
}

Observability::~Observability() { metrics.remove_collector(self_collector_); }

}  // namespace powerapi::obs
