// The observability bundle handed through the runtime: one metrics
// registry, one trace collector and one self monitor, with a master switch.
//
// Components take a non-owning `Observability*` (null = not observed) and
// intern their metric/span handles once; record paths then check
// `enabled()` — a relaxed atomic load — so a compiled-in but disabled
// bundle costs roughly one branch per event. The bundle registers a
// snapshot collector that samples the SelfMonitor, so every metrics
// snapshot carries the monitor's own CPU share and estimated self-power
// ("self.*" gauges) without a separate reporting path.
#pragma once

#include "obs/metrics.h"
#include "obs/self_monitor.h"
#include "obs/trace.h"

#include <atomic>

namespace powerapi::obs {

class Observability {
 public:
  /// `trace_capacity` bounds the retained trace spans (see TraceCollector).
  explicit Observability(std::size_t trace_capacity = std::size_t{1} << 18);
  ~Observability();
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry metrics;
  TraceCollector trace;
  SelfMonitor self;

  /// Master switch for the hot instrumentation paths (message latency
  /// stamping, span recording). Snapshots and self sampling still work when
  /// disabled — the switch gates per-event cost, not pull-time reads.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
    trace.set_enabled(enabled);
  }
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> enabled_{true};
  MetricsRegistry::CollectorId self_collector_ = 0;
};

}  // namespace powerapi::obs
