// Self-observability metrics: lock-free counters, gauges and log-bucketed
// latency histograms behind a named registry.
//
// The monitor's pitch is "non-invasive", so its own instrumentation must be
// cheap enough to leave on (see "What Is the Cost of Energy Monitoring?" —
// the overhead question this layer exists to answer about ourselves):
//  * Counter   — thread-sharded cache-line-padded atomic slots; add() is one
//                relaxed fetch_add on a shard picked per thread, value() sums.
//  * Gauge     — a single atomic double (set/add); written from snapshot
//                collectors and low-rate paths.
//  * Histogram — HDR-style log-bucketed: 16 sub-buckets per power of two
//                (~6 % value resolution), one relaxed increment per record.
// Naming scheme (see DESIGN.md "Observability"): dot-separated lowercase,
// "<subsystem>.<object>.<quantity>[_<unit>]", e.g. "actors.dispatch.steals",
// "pipeline.tick_to_aggregate_ns".
//
// Snapshots are pull-based: snapshot() folds shards and copies buckets under
// relaxed loads (values written concurrently may lag by a few increments —
// counters are monotone, so successive snapshots never go backwards), then
// runs registered collectors so components can contribute point-in-time
// gauges (mailbox depths, queue lengths) without paying for them per event.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace powerapi::obs {

/// Shards per counter: enough that 4–16 workers rarely collide on a line.
inline constexpr std::size_t kCounterShards = 16;

/// Stable per-thread shard index (round-robin assigned at first use).
std::size_t shard_index() noexcept;

/// Monotone event counter. add() from any thread; value() folds shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kCounterShards];
};

/// Last-writer-wins instantaneous value (depths, shares, watts).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Snapshot of one histogram: total count/sum, the non-empty buckets as
/// (lower_bound, count) pairs, and the count of values clamped at max.
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t overflow = 0;  ///< Values above the histogram's max (clamped
                               ///< into the last bucket, counted here too).
  double sum = 0.0;
  std::vector<std::pair<std::int64_t, std::uint64_t>> buckets;

  double mean() const noexcept { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  /// Value at quantile `q` in [0,1], resolved to bucket lower bounds.
  double percentile(double q) const noexcept;
};

/// Log-bucketed histogram for non-negative values (latencies in ns).
/// Negative values clamp to 0; values above `max_value` clamp into the last
/// bucket and bump the overflow counter. record() is one relaxed increment
/// plus two relaxed adds (count, sum) — no locks, any thread.
class Histogram {
 public:
  /// 16 sub-buckets per octave: ~6 % relative resolution.
  static constexpr int kSubBucketBits = 4;
  static constexpr std::int64_t kSubBucketCount = std::int64_t{1} << kSubBucketBits;

  /// Default max of 2^40 ns ≈ 18 minutes covers any sane latency.
  explicit Histogram(std::int64_t max_value = std::int64_t{1} << 40);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::int64_t value) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t overflow() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }
  std::int64_t max_value() const noexcept { return max_value_; }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }

  HistogramData data() const;

  /// Bucket index for a value (unclamped math; exposed for tests).
  static std::size_t bucket_index(std::int64_t value) noexcept;
  /// Smallest value mapping to bucket `index` (inverse of bucket_index).
  static std::int64_t bucket_lower_bound(std::size_t index) noexcept;

 private:
  std::int64_t max_value_;
  std::size_t clamp_index_;  ///< bucket_index(max_value_): the last bucket.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One named metric in a snapshot.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;   ///< Counter total or gauge value.
  HistogramData hist;   ///< kHistogram only.
};

/// Point-in-time view of a registry, sorted by metric name.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* find(std::string_view name) const noexcept;
  double value_of(std::string_view name, double fallback = 0.0) const noexcept;
};

/// Handed to snapshot collectors so components can contribute gauges that
/// are only worth computing when someone is looking (mailbox depths, queue
/// lengths, actor counts).
class SnapshotBuilder {
 public:
  void gauge(std::string name, double value);

 private:
  friend class MetricsRegistry;
  explicit SnapshotBuilder(std::vector<MetricValue>& out) : out_(&out) {}
  std::vector<MetricValue>* out_;
};

/// Named metric registry. Components intern their handles once (like event
/// bus topics) and record through raw pointers; registration is mutex
/// guarded, recording is lock-free. Metrics live as long as the registry.
class MetricsRegistry {
 public:
  using Collector = std::function<void(SnapshotBuilder&)>;
  using CollectorId = std::uint64_t;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `max_value` only applies on first registration of `name`.
  Histogram& histogram(std::string_view name,
                       std::int64_t max_value = std::int64_t{1} << 40);

  /// Registers a pull-time collector; returns an id for remove_collector.
  /// Collectors run inside snapshot() and must not call back into the
  /// registry's registration API.
  CollectorId add_collector(Collector collector);
  void remove_collector(CollectorId id);

  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::vector<std::pair<CollectorId, Collector>> collectors_;
  CollectorId next_collector_id_ = 1;
};

}  // namespace powerapi::obs
