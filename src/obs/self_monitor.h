// Self-overhead accounting: how much CPU — and, by extension, energy — does
// the monitor itself consume while measuring?
//
// This is the concern quantified by the RAPL-tool overhead studies: an
// energy monitor that is not accounted for silently inflates every number
// it reports. SelfMonitor reads the process's own cumulative CPU time from
// /proc/self/stat (utime + stime — the same procfs accounting our sensors
// use for monitored processes), falling back to getrusage() where procfs is
// unavailable, and differences it against the wall clock into a CPU share.
// The estimated self-power is that share priced at a configurable
// watts-per-core marginal cost (a calibrated model's activity term, or the
// package TDP split across cores), so every run can report "energy spent
// measuring energy".
#pragma once

#include <cstdint>
#include <mutex>

namespace powerapi::obs {

/// Cumulative CPU seconds (user + system) consumed by this process.
double process_cpu_seconds() noexcept;

class SelfMonitor {
 public:
  /// One accounting window (since the previous sample() call).
  struct Usage {
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;        ///< Process CPU burned in the window.
    double cpu_share_cores = 0.0;    ///< cpu / wall, in units of cores.
    double estimated_watts = 0.0;    ///< cpu_share_cores * watts_per_core.
    double total_cpu_seconds = 0.0;  ///< Cumulative since construction.
    double total_joules = 0.0;       ///< Cumulative estimated self-energy.
  };

  SelfMonitor();

  /// Marginal cost of one busy core, used to price the monitor's CPU share
  /// into watts. Default 10 W/core is a conservative desktop-class figure;
  /// calibrate from a trained model's activity term when one is available.
  void set_watts_per_core(double watts) noexcept;
  double watts_per_core() const noexcept;

  /// Closes the current accounting window and returns it. Thread-safe;
  /// concurrent callers each get a disjoint window.
  Usage sample();

 private:
  mutable std::mutex mutex_;
  double watts_per_core_ = 10.0;
  double start_cpu_seconds_ = 0.0;
  double last_cpu_seconds_ = 0.0;
  std::int64_t last_wall_ns_ = 0;
  double total_joules_ = 0.0;
};

}  // namespace powerapi::obs
