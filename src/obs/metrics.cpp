#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace powerapi::obs {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return index;
}

// --- Histogram -----------------------------------------------------------

std::size_t Histogram::bucket_index(std::int64_t value) noexcept {
  if (value < 0) value = 0;
  if (value < kSubBucketCount) return static_cast<std::size_t>(value);
  const auto uvalue = static_cast<std::uint64_t>(value);
  const int msb = 63 - std::countl_zero(uvalue);
  const int shift = msb - kSubBucketBits;
  const auto block = static_cast<std::size_t>(msb - kSubBucketBits + 1);
  const auto sub = static_cast<std::size_t>((uvalue >> shift) & (kSubBucketCount - 1));
  return block * static_cast<std::size_t>(kSubBucketCount) + sub;
}

std::int64_t Histogram::bucket_lower_bound(std::size_t index) noexcept {
  if (index < static_cast<std::size_t>(kSubBucketCount)) {
    return static_cast<std::int64_t>(index);
  }
  const std::size_t block = index / kSubBucketCount;
  const std::size_t sub = index % kSubBucketCount;
  const int msb = static_cast<int>(block) + kSubBucketBits - 1;
  const int shift = msb - kSubBucketBits;
  return (std::int64_t{1} << msb) + (static_cast<std::int64_t>(sub) << shift);
}

Histogram::Histogram(std::int64_t max_value)
    : max_value_(max_value > 0 ? max_value : 1),
      clamp_index_(bucket_index(max_value_)),
      buckets_(clamp_index_ + 1) {}

void Histogram::record(std::int64_t value) noexcept {
  if (value < 0) value = 0;
  std::size_t index;
  if (value > max_value_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    index = clamp_index_;
    value = max_value_;
  } else {
    index = bucket_index(value);
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(static_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

HistogramData Histogram::data() const {
  HistogramData out;
  out.count = count_.load(std::memory_order_relaxed);
  out.overflow = overflow_.load(std::memory_order_relaxed);
  out.sum = static_cast<double>(sum_.load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) out.buckets.emplace_back(bucket_lower_bound(i), n);
  }
  return out;
}

double HistogramData::percentile(double q) const noexcept {
  if (count == 0 || buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank within the recorded population; resolve to the containing bucket's
  // lower bound (the log bucketing already bounds the error to ~6 %).
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (const auto& [lower, n] : buckets) {
    seen += n;
    if (static_cast<double>(seen) >= rank) return static_cast<double>(lower);
  }
  return static_cast<double>(buckets.back().first);
}

// --- Snapshot ------------------------------------------------------------

const MetricValue* MetricsSnapshot::find(std::string_view name) const noexcept {
  for (const auto& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

double MetricsSnapshot::value_of(std::string_view name, double fallback) const noexcept {
  const MetricValue* metric = find(name);
  return metric == nullptr ? fallback : metric->value;
}

void SnapshotBuilder::gauge(std::string name, double value) {
  MetricValue metric;
  metric.name = std::move(name);
  metric.kind = MetricKind::kGauge;
  metric.value = value;
  out_->push_back(std::move(metric));
}

// --- Registry ------------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kCounter;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  if (it->second.kind != MetricKind::kCounter) {
    throw std::logic_error("MetricsRegistry: " + std::string(name) +
                           " already registered with a different kind");
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  if (it->second.kind != MetricKind::kGauge) {
    throw std::logic_error("MetricsRegistry: " + std::string(name) +
                           " already registered with a different kind");
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::int64_t max_value) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(max_value);
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  if (it->second.kind != MetricKind::kHistogram) {
    throw std::logic_error("MetricsRegistry: " + std::string(name) +
                           " already registered with a different kind");
  }
  return *it->second.histogram;
}

MetricsRegistry::CollectorId MetricsRegistry::add_collector(Collector collector) {
  std::lock_guard lock(mutex_);
  const CollectorId id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(collector));
  return id;
}

void MetricsRegistry::remove_collector(CollectorId id) {
  std::lock_guard lock(mutex_);
  std::erase_if(collectors_, [id](const auto& entry) { return entry.first == id; });
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard lock(mutex_);
  out.metrics.reserve(entries_.size() + collectors_.size());
  for (const auto& [name, entry] : entries_) {
    MetricValue metric;
    metric.name = name;
    metric.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        metric.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::kGauge:
        metric.value = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        metric.hist = entry.histogram->data();
        metric.value = metric.hist.mean();
        break;
    }
    out.metrics.push_back(std::move(metric));
  }
  SnapshotBuilder builder(out.metrics);
  for (const auto& [id, collector] : collectors_) collector(builder);
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return out;
}

}  // namespace powerapi::obs
