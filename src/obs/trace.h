// Message-flow tracing with a Chrome trace_event JSON exporter.
//
// Instrumented components record complete spans ('X') and instant events
// ('i') against a wall (steady) clock; write_chrome_trace() emits the
// chrome://tracing / Perfetto JSON array format, so any monitoring run can
// be opened as a timeline: one track per dispatcher thread, spans named
// after the pipeline stage actors, correlated across stages by the tick
// sequence id carried in the event args.
//
// Hot-path design: event names are interned to dense ids (one string ever,
// like EventBus topics), record() appends to one of 16 mutex-guarded shard
// buffers picked per thread (uncontended in practice: workers hash to
// different shards), and a collector past its capacity drops events and
// counts the drops rather than reallocating or blocking.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace powerapi::obs {

/// Monotonic wall-clock nanoseconds since process start — the trace
/// timeline. Distinct from the simulated host clock on purpose: traces and
/// latency metrics measure what the monitor costs for real.
std::int64_t wall_now_ns() noexcept;

/// Small dense id for the calling thread (assigned on first use); the
/// Chrome trace "tid".
std::uint32_t trace_thread_id() noexcept;

class Counter;

namespace detail {
/// Writes `text` as a quoted, escaped JSON string (shared by the Chrome
/// trace writers).
void write_json_string(std::ostream& out, std::string_view text);
}  // namespace detail

class TraceCollector {
 public:
  /// Interned name handle; 0 is reserved for "never interned".
  using NameId = std::uint32_t;

  /// One recorded event, exposed for drain(): a complete span when
  /// dur_ns >= 0, an instant event when dur_ns < 0.
  struct Span {
    NameId name = 0;
    std::uint32_t tid = 0;
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = 0;  ///< < 0 marks an instant event.
    std::uint64_t seq = 0;
  };

  /// `capacity` bounds the total retained events across all shards.
  explicit TraceCollector(std::size_t capacity = std::size_t{1} << 18);
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

  NameId intern(std::string_view name);

  /// Records a complete span [start_ns, start_ns + duration_ns); `seq` is
  /// the correlating tick sequence id (0 = none).
  void complete(NameId name, std::int64_t start_ns, std::int64_t duration_ns,
                std::uint64_t seq = 0);
  /// Records an instant event.
  void instant(NameId name, std::int64_t at_ns, std::uint64_t seq = 0);

  std::size_t size() const noexcept;
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Also bump this registry counter on every dropped event (non-owning;
  /// must outlive the collector). Drop counts then surface in metrics
  /// snapshots ("obs.trace.spans_dropped") instead of dying with the trace.
  void set_drop_counter(Counter* counter) noexcept {
    drop_counter_.store(counter, std::memory_order_relaxed);
  }

  /// Moves every buffered event into `out` (appending, in shard order) and
  /// frees their capacity — the handoff for shipping spans over the wire.
  /// Returns the number of events drained.
  std::size_t drain(std::vector<Span>& out);

  /// Resolves an interned id back to its name ("" for unknown ids).
  std::string name_of(NameId id) const;

  /// Emits the Chrome trace_event JSON object ({"traceEvents": [...]}),
  /// events sorted by timestamp. Safe to call while recording continues
  /// (the written set is a point-in-time copy). Dropped-event counts are
  /// emitted as a metadata event, so truncation is visible in the viewer.
  void write_chrome_trace(std::ostream& out) const;

 private:
  static constexpr std::size_t kShardCount = 16;

  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::vector<Span> events;
  };

  void push(const Span& event);

  std::atomic<bool> enabled_{true};
  std::size_t shard_capacity_;
  Shard shards_[kShardCount];
  mutable std::mutex names_mutex_;
  std::map<std::string, NameId, std::less<>> name_ids_;
  std::vector<std::string> names_;  ///< Indexed by NameId; [0] is "".
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<Counter*> drop_counter_{nullptr};
};

/// RAII span: records a complete event on destruction. Null-safe — pass a
/// null collector (observability disabled) and it costs one branch.
class ScopedSpan {
 public:
  ScopedSpan(TraceCollector* trace, TraceCollector::NameId name, std::uint64_t seq = 0)
      : trace_(trace != nullptr && trace->enabled() && name != 0 ? trace : nullptr),
        name_(name),
        seq_(seq),
        start_(trace_ != nullptr ? wall_now_ns() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->complete(name_, start_, wall_now_ns() - start_, seq_);
  }

 private:
  TraceCollector* trace_;
  TraceCollector::NameId name_;
  std::uint64_t seq_;
  std::int64_t start_;
};

}  // namespace powerapi::obs
