// Merges trace spans from many clocks into one Chrome trace timeline.
//
// Each distributed agent records spans against its own process-local
// steady clock (obs::wall_now_ns() is "nanoseconds since *my* process
// start"), so spans shipped over the wire land at the collector with
// timestamps that are mutually meaningless. TraceMerger re-bases every
// source onto the collector's clock using a per-source offset estimated
// from (send, recv) wall-clock pairs: each obs frame carries the agent's
// send timestamp and the collector stamps its receive time, so
// `recv - send = offset + transit`. Taking the minimum over many frames
// converges on the pair with the least transit delay — the classic
// one-way min-delay estimator — and each new frame can only refine the
// estimate downward. write_chrome_trace() then emits a single JSON
// timeline with one Chrome "process" per source, all on collector time.
#pragma once

#include "obs/trace.h"

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace powerapi::obs {

class TraceMerger {
 public:
  /// Dense handle for one span source (an agent connection, or the
  /// collector itself). The Chrome trace pid is `SourceId + 1`.
  using SourceId = std::uint32_t;

  TraceMerger() = default;
  TraceMerger(const TraceMerger&) = delete;
  TraceMerger& operator=(const TraceMerger&) = delete;

  /// Registers a span source; `label` becomes the Chrome process name.
  SourceId add_source(std::string label);

  /// Relabels a source (e.g. once an agent's hello names it).
  void set_label(SourceId source, std::string label);

  /// Feeds one (send, recv) timestamp pair into the source's clock-offset
  /// estimate: offset <- min(offset, recv - send). Collector-local sources
  /// that never observe a pair keep offset 0 (already on collector time).
  void observe_offset(SourceId source, std::int64_t send_wall_ns,
                      std::int64_t recv_wall_ns);

  /// Pins the offset exactly (tests / externally synchronized clocks).
  void set_offset(SourceId source, std::int64_t offset_ns);

  std::int64_t offset_ns(SourceId source) const;
  bool has_offset(SourceId source) const;

  /// Buffers one span in source-local time; write_chrome_trace() applies
  /// the offset. `dur_ns < 0` marks an instant event.
  void add_span(SourceId source, std::string_view name, std::uint32_t tid,
                std::int64_t ts_ns, std::int64_t dur_ns, std::uint64_t seq = 0);

  /// Records how many spans the source dropped before they reached us
  /// (emitted as per-process metadata so truncation is visible).
  void set_dropped(SourceId source, std::uint64_t dropped);

  std::size_t size() const;

  /// Emits one merged Chrome trace_event JSON object: per-source
  /// process_name + spans_dropped metadata, then every span sorted by
  /// collector-time timestamp.
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Source {
    std::string label;
    std::int64_t offset_ns = 0;
    bool has_offset = false;
    std::uint64_t dropped = 0;
  };

  struct MergedSpan {
    SourceId source = 0;
    std::string name;
    std::uint32_t tid = 0;
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = 0;  ///< < 0 marks an instant event.
    std::uint64_t seq = 0;
  };

  mutable std::mutex mutex_;
  std::vector<Source> sources_;
  std::vector<MergedSpan> spans_;
};

}  // namespace powerapi::obs
