#include "obs/trace_merge.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace powerapi::obs {

TraceMerger::SourceId TraceMerger::add_source(std::string label) {
  std::lock_guard lock(mutex_);
  const auto id = static_cast<SourceId>(sources_.size());
  Source source;
  source.label = std::move(label);
  sources_.push_back(std::move(source));
  return id;
}

void TraceMerger::set_label(SourceId source, std::string label) {
  std::lock_guard lock(mutex_);
  if (source < sources_.size()) sources_[source].label = std::move(label);
}

void TraceMerger::observe_offset(SourceId source, std::int64_t send_wall_ns,
                                 std::int64_t recv_wall_ns) {
  std::lock_guard lock(mutex_);
  if (source >= sources_.size()) return;
  Source& src = sources_[source];
  // recv - send = clock offset + one-way transit; the minimum over many
  // frames is the pair with the least transit, i.e. the tightest upper
  // bound on the true offset.
  const std::int64_t estimate = recv_wall_ns - send_wall_ns;
  if (!src.has_offset || estimate < src.offset_ns) {
    src.offset_ns = estimate;
    src.has_offset = true;
  }
}

void TraceMerger::set_offset(SourceId source, std::int64_t offset_ns) {
  std::lock_guard lock(mutex_);
  if (source >= sources_.size()) return;
  sources_[source].offset_ns = offset_ns;
  sources_[source].has_offset = true;
}

std::int64_t TraceMerger::offset_ns(SourceId source) const {
  std::lock_guard lock(mutex_);
  return source < sources_.size() ? sources_[source].offset_ns : 0;
}

bool TraceMerger::has_offset(SourceId source) const {
  std::lock_guard lock(mutex_);
  return source < sources_.size() && sources_[source].has_offset;
}

void TraceMerger::add_span(SourceId source, std::string_view name,
                           std::uint32_t tid, std::int64_t ts_ns,
                           std::int64_t dur_ns, std::uint64_t seq) {
  std::lock_guard lock(mutex_);
  if (source >= sources_.size()) return;
  MergedSpan span;
  span.source = source;
  span.name = std::string(name);
  span.tid = tid;
  span.ts_ns = ts_ns;
  span.dur_ns = dur_ns;
  span.seq = seq;
  spans_.push_back(std::move(span));
}

void TraceMerger::set_dropped(SourceId source, std::uint64_t dropped) {
  std::lock_guard lock(mutex_);
  if (source < sources_.size()) sources_[source].dropped = dropped;
}

std::size_t TraceMerger::size() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

void TraceMerger::write_chrome_trace(std::ostream& out) const {
  std::vector<Source> sources;
  std::vector<MergedSpan> spans;
  {
    std::lock_guard lock(mutex_);
    sources = sources_;
    spans = spans_;
  }
  // Re-base every span onto the collector clock, then sort the whole
  // merged timeline.
  for (MergedSpan& span : spans) {
    span.ts_ns += sources[span.source].offset_ns;
  }
  std::sort(spans.begin(), spans.end(),
            [](const MergedSpan& a, const MergedSpan& b) { return a.ts_ns < b.ts_ns; });

  const std::ios::fmtflags saved_flags = out.flags();
  const std::streamsize saved_precision = out.precision();
  out << std::fixed << std::setprecision(3);

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (SourceId id = 0; id < sources.size(); ++id) {
    const Source& source = sources[id];
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << id + 1
        << ",\"tid\":0,\"args\":{\"name\":";
    detail::write_json_string(out, source.label);
    out << "}}";
    out << ",{\"name\":\"spans_dropped\",\"ph\":\"M\",\"pid\":" << id + 1
        << ",\"tid\":0,\"args\":{\"dropped\":" << source.dropped
        << ",\"clock_offset_ns\":" << source.offset_ns << "}}";
  }
  for (const MergedSpan& span : spans) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":";
    detail::write_json_string(out, span.name);
    out << ",\"cat\":\"powerapi\",\"pid\":" << span.source + 1
        << ",\"tid\":" << span.tid;
    out << ",\"ts\":" << static_cast<double>(span.ts_ns) / 1000.0;
    if (span.dur_ns < 0) {
      out << ",\"ph\":\"i\",\"s\":\"t\"";
    } else {
      out << ",\"ph\":\"X\",\"dur\":" << static_cast<double>(span.dur_ns) / 1000.0;
    }
    out << ",\"args\":{\"seq\":" << span.seq << "}}";
  }
  out << "]}";
  out.flags(saved_flags);
  out.precision(saved_precision);
}

}  // namespace powerapi::obs
