#include "obs/trace.h"

#include "obs/metrics.h"  // shard_index(): same per-thread shard assignment.

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>

namespace powerapi::obs {

std::int64_t wall_now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch)
      .count();
}

std::uint32_t trace_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceCollector::TraceCollector(std::size_t capacity)
    : shard_capacity_(capacity / kShardCount + 1) {
  names_.emplace_back();  // NameId 0 is reserved.
}

TraceCollector::NameId TraceCollector::intern(std::string_view name) {
  std::lock_guard lock(names_mutex_);
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(std::string(name), id);
  return id;
}

void TraceCollector::push(const Span& event) {
  Shard& shard = shards_[shard_index() % kShardCount];
  std::lock_guard lock(shard.mutex);
  if (shard.events.size() >= shard_capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (Counter* counter = drop_counter_.load(std::memory_order_relaxed)) {
      counter->add(1);
    }
    return;
  }
  shard.events.push_back(event);
}

void TraceCollector::complete(NameId name, std::int64_t start_ns,
                              std::int64_t duration_ns, std::uint64_t seq) {
  if (!enabled() || name == 0) return;
  Span event;
  event.name = name;
  event.tid = trace_thread_id();
  event.ts_ns = start_ns;
  event.dur_ns = duration_ns < 0 ? 0 : duration_ns;
  event.seq = seq;
  push(event);
}

void TraceCollector::instant(NameId name, std::int64_t at_ns, std::uint64_t seq) {
  if (!enabled() || name == 0) return;
  Span event;
  event.name = name;
  event.tid = trace_thread_id();
  event.ts_ns = at_ns;
  event.dur_ns = -1;
  event.seq = seq;
  push(event);
}

std::size_t TraceCollector::drain(std::vector<Span>& out) {
  std::size_t drained = 0;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    drained += shard.events.size();
    out.insert(out.end(), shard.events.begin(), shard.events.end());
    shard.events.clear();
  }
  return drained;
}

std::string TraceCollector::name_of(NameId id) const {
  std::lock_guard lock(names_mutex_);
  return id < names_.size() ? names_[id] : std::string();
}

std::size_t TraceCollector::size() const noexcept {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.events.size();
  }
  return total;
}

namespace detail {

/// Event names are library-chosen identifiers, but escape defensively so a
/// namespaced actor name can never produce malformed JSON.
void write_json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u0020";  // Control characters never occur in our names.
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace detail

void TraceCollector::write_chrome_trace(std::ostream& out) const {
  std::vector<Span> events;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    events.insert(events.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const Span& a, const Span& b) { return a.ts_ns < b.ts_ns; });

  std::vector<std::string> names;
  {
    std::lock_guard lock(names_mutex_);
    names = names_;
  }

  // Chrome trace "ts"/"dur" are microseconds; fixed notation keeps large
  // timestamps out of scientific form (restored before returning).
  const std::ios::fmtflags saved_flags = out.flags();
  const std::streamsize saved_precision = out.precision();
  out << std::fixed << std::setprecision(3);

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"powerapi-monitor\"}}";
  // Truncation is never silent: the drop count rides along as metadata.
  out << ",{\"name\":\"spans_dropped\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"dropped\":" << dropped() << "}}";
  for (const Span& event : events) {
    out << ",{\"name\":";
    detail::write_json_string(out, event.name < names.size() ? names[event.name] : "?");
    out << ",\"cat\":\"powerapi\",\"pid\":1,\"tid\":" << event.tid;
    // Chrome trace timestamps are microseconds; keep ns resolution with
    // three decimals.
    out << ",\"ts\":" << static_cast<double>(event.ts_ns) / 1000.0;
    if (event.dur_ns < 0) {
      out << ",\"ph\":\"i\",\"s\":\"t\"";
    } else {
      out << ",\"ph\":\"X\",\"dur\":" << static_cast<double>(event.dur_ns) / 1000.0;
    }
    out << ",\"args\":{\"seq\":" << event.seq << "}}";
  }
  out << "]}";
  out.flags(saved_flags);
  out.precision(saved_precision);
}

}  // namespace powerapi::obs
