#include "scenario/scenario_spec.h"

#include <cstdio>
#include <sstream>

namespace powerapi::scenario {

namespace {

std::string num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string num_list(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += num(values[i]);
  }
  return out;
}

const char* onoff(bool value) { return value ? "on" : "off"; }

void write_profile_args(std::ostringstream& out, const ProfileSpec& p) {
  out << p.kind << " intensity=" << num(p.intensity)
      << " working_set=" << num(p.working_set_bytes)
      << " share=" << num(p.memory_share);
}

}  // namespace

std::vector<std::string> ScenarioSpec::expanded_host_ids() const {
  std::vector<std::string> ids;
  for (const HostDecl& h : hosts) {
    if (h.count <= 1) {
      ids.push_back(h.id);
    } else {
      for (std::size_t i = 0; i < h.count; ++i) ids.push_back(h.id + std::to_string(i));
    }
  }
  return ids;
}

std::string serialize(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "scenario " << spec.name << "\n";
  out << "seed " << spec.seed << "\n";
  out << "duration " << spec.duration << "\n";
  out << "tick " << spec.tick << "\n";

  for (const CpuDecl& cpu : spec.cpus) {
    if (cpu.preset != "custom") {
      out << "cpu " << cpu.id << " " << cpu.preset << "\n";
      continue;
    }
    out << "cpu " << cpu.id << " custom\n";
    out << "  cores " << cpu.cores << "\n";
    out << "  threads_per_core " << cpu.threads_per_core << "\n";
    out << "  tdp " << num(cpu.tdp_watts) << "\n";
    out << "  speedstep " << onoff(cpu.speedstep) << "\n";
    out << "  c_states " << onoff(cpu.c_states) << "\n";
    if (!cpu.ladder.empty()) out << "  ladder " << num_list(cpu.ladder) << "\n";
    for (const CpuDecl::Cluster& cl : cpu.clusters) {
      out << "  cluster name=" << cl.name << " cores=" << cl.cores
          << " ladder=" << num_list(cl.ladder) << " perf=" << num(cl.perf)
          << " energy=" << num(cl.energy) << "\n";
    }
    out << "end\n";
  }

  for (const WorkloadDecl& w : spec.workloads) {
    out << "workload " << w.id << "\n";
    out << "  kind " << w.kind << "\n";
    if (w.kind == "phased") {
      for (const PhaseSpec& phase : w.phases) {
        out << "  phase profile=" << phase.profile.kind
            << " intensity=" << num(phase.profile.intensity)
            << " working_set=" << num(phase.profile.working_set_bytes)
            << " share=" << num(phase.profile.memory_share)
            << " duration=" << phase.duration << "\n";
      }
      out << "  loop " << onoff(w.loop) << "\n";
    } else {
      out << "  profile ";
      write_profile_args(out, w.profile);
      out << "\n";
    }
    if (w.duration > 0) out << "  duration " << w.duration << "\n";
    if (w.jitter) out << "  jitter on\n";
    if (w.kind == "bursty") {
      out << "  mean_burst " << w.mean_burst << "\n";
      out << "  mean_gap " << w.mean_gap << "\n";
    }
    if (w.kind == "llm") {
      out << "  mean_interarrival " << w.mean_interarrival << "\n";
      out << "  mean_prefill " << w.mean_prefill << "\n";
      out << "  mean_decode " << w.mean_decode << "\n";
      out << "  working_set " << num(w.working_set_bytes) << "\n";
    }
    if (w.kind == "diurnal") {
      out << "  period " << w.period << "\n";
      out << "  valley " << num(w.valley) << "\n";
      out << "  peak " << num(w.peak) << "\n";
      out << "  flash_crowds " << onoff(w.flash_crowds) << "\n";
      out << "  spread_phase " << onoff(w.spread_phase) << "\n";
    }
    out << "end\n";
  }

  for (const HostDecl& h : spec.hosts) {
    out << "host " << h.id << "\n";
    if (h.count != 1) out << "  count " << h.count << "\n";
    out << "  cpu " << h.cpu << "\n";
    out << "  daemon " << onoff(h.daemon) << "\n";
    for (const RunDecl& r : h.runs) {
      out << "  run " << r.workload;
      if (r.copies != 1) out << " copies=" << r.copies;
      if (!r.name.empty() && r.name != r.workload) out << " name=" << r.name;
      out << "\n";
    }
    out << "end\n";
  }

  out << "monitor period=" << spec.monitor.period
      << " dimension=" << spec.monitor.dimension
      << " powerspy=" << onoff(spec.monitor.powerspy)
      << " rapl=" << onoff(spec.monitor.rapl)
      << " all=" << onoff(spec.monitor.all) << "\n";

  out << "formula " << spec.formula.mode;
  if (spec.formula.mode == "fixed") {
    out << " idle=" << num(spec.formula.idle_watts)
        << " coefficients=" << num_list(spec.formula.coefficients);
  } else if (spec.formula.mode == "trained") {
    out << " intensities=" << num_list(spec.formula.intensities);
    if (!spec.formula.memory_shares.empty()) {
      out << " memory_shares=" << num_list(spec.formula.memory_shares);
    }
    out << " point_duration=" << spec.formula.point_duration;
  }
  out << "\n";

  if (spec.calibration.enabled) {
    out << "calibration on drift_window=" << spec.calibration.drift_window
        << " threshold=" << num(spec.calibration.threshold_watts)
        << " min_samples=" << spec.calibration.min_samples
        << " refit_interval=" << spec.calibration.refit_interval << "\n";
  }

  if (spec.observe.enabled) {
    out << "observe cadence=" << spec.observe.cadence
        << " status_port=" << spec.observe.status_port
        << " self_watts_budget=" << num(spec.observe.self_watts_budget) << "\n";
  }

  if (spec.govern.enabled) {
    out << "govern budget_w=" << num(spec.govern.budget_w)
        << " policy=" << spec.govern.policy
        << " hysteresis_w=" << num(spec.govern.hysteresis_w)
        << " cooldown_ms=" << num(spec.govern.cooldown_ms)
        << " interval_ms=" << num(spec.govern.interval_ms)
        << " max_step=" << spec.govern.max_step
        << " min_active_cores=" << spec.govern.min_active_cores << "\n";
  }

  out << "fleet aggregation=" << onoff(spec.fleet_aggregation)
      << " workers=" << spec.workers << " chunk=" << spec.hosts_per_chunk << "\n";

  for (const InjectDecl& inj : spec.injections) {
    out << "inject at=" << inj.at << " host=" << inj.host;
    if (inj.kind == "frequency") {
      if (!inj.cluster.empty()) out << " cluster=" << inj.cluster;
      out << " frequency=" << num(inj.frequency_hz);
    } else if (inj.kind == "spawn") {
      out << " spawn=" << inj.workload << " name=" << inj.name;
    } else if (inj.kind == "kill") {
      out << " kill=" << inj.name;
    } else if (inj.kind == "shift") {
      out << " shift=" << inj.name << ":" << inj.workload;
    }
    out << "\n";
  }

  return out.str();
}

}  // namespace powerapi::scenario
