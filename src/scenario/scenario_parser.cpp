#include "scenario/scenario_parser.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace powerapi::scenario {

namespace {

/// One logical line: content with comments stripped, plus its 1-based
/// number in the source file.
struct Line {
  std::string text;
  std::size_t number = 0;
};

std::vector<Line> split_lines(std::string_view text) {
  std::vector<Line> lines;
  std::size_t number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view raw = text.substr(start, end - start);
    ++number;
    const std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    raw = util::trim(raw);
    if (!raw.empty()) lines.push_back({std::string(raw), number});
    if (end == text.size()) break;
    start = end + 1;
  }
  return lines;
}

/// "word rest-of-line" split on the first whitespace run.
std::pair<std::string, std::string> split_head(const std::string& line) {
  const std::size_t space = line.find_first_of(" \t");
  if (space == std::string::npos) return {line, ""};
  return {line.substr(0, space), std::string(util::trim(line.substr(space + 1)))};
}

class Parser {
 public:
  Parser(std::string_view text, std::string filename)
      : file_(std::move(filename)), lines_(split_lines(text)) {}

  ScenarioSpec run() {
    if (lines_.empty()) fail(1, "empty scenario (expected 'scenario <name>')");
    parse_scenario_header();
    while (index_ < lines_.size()) parse_top_level();
    validate();
    return std::move(spec_);
  }

 private:
  [[noreturn]] void fail(std::size_t line, const std::string& message) const {
    throw ScenarioError(file_, line, message);
  }

  const Line& current() const { return lines_[index_]; }

  // --- value parsers -----------------------------------------------------

  double parse_number(const std::string& text, std::size_t line) const {
    const auto value = util::parse_double(text);
    if (!value) fail(line, "expected a number, got '" + text + "'");
    return *value;
  }

  std::uint64_t parse_unsigned(const std::string& text, std::size_t line) const {
    const auto value = util::parse_int(text);
    if (!value || *value < 0) fail(line, "expected a non-negative integer, got '" + text + "'");
    return static_cast<std::uint64_t>(*value);
  }

  bool parse_bool(const std::string& text, std::size_t line) const {
    const std::string v = util::to_lower(text);
    if (v == "on" || v == "true" || v == "yes" || v == "1") return true;
    if (v == "off" || v == "false" || v == "no" || v == "0") return false;
    fail(line, "expected on/off, got '" + text + "'");
  }

  /// Suffix-scaled number: strips `suffixes` (longest first; case as
  /// given), multiplies by the matching scale; bare numbers use scale 1.
  double parse_scaled(const std::string& text, std::size_t line,
                      const std::vector<std::pair<std::string, double>>& suffixes,
                      const char* what) const {
    for (const auto& [suffix, scale] : suffixes) {
      if (text.size() > suffix.size() &&
          util::to_lower(text.substr(text.size() - suffix.size())) ==
              util::to_lower(suffix)) {
        const auto value = util::parse_double(text.substr(0, text.size() - suffix.size()));
        if (!value) fail(line, std::string("bad ") + what + " '" + text + "'");
        return *value * scale;
      }
    }
    const auto value = util::parse_double(text);
    if (!value) fail(line, std::string("bad ") + what + " '" + text + "'");
    return *value;
  }

  util::DurationNs parse_duration(const std::string& text, std::size_t line) const {
    const double ns = parse_scaled(
        text, line,
        {{"ns", 1.0}, {"us", 1e3}, {"ms", 1e6}, {"s", 1e9}, {"m", 60e9}},
        "duration");
    if (ns < 0) fail(line, "negative duration '" + text + "'");
    return static_cast<util::DurationNs>(ns);
  }

  double parse_frequency(const std::string& text, std::size_t line) const {
    return parse_scaled(text, line,
                        {{"ghz", 1e9}, {"mhz", 1e6}, {"khz", 1e3}, {"hz", 1.0}},
                        "frequency");
  }

  double parse_size(const std::string& text, std::size_t line) const {
    return parse_scaled(text, line,
                        {{"kb", 1024.0},
                         {"mb", 1024.0 * 1024},
                         {"gb", 1024.0 * 1024 * 1024},
                         {"b", 1.0}},
                        "size");
  }

  std::vector<double> parse_frequency_list(const std::string& text, std::size_t line) const {
    std::vector<double> values;
    for (const std::string& item : util::split_trimmed(text, ',')) {
      values.push_back(parse_frequency(item, line));
    }
    if (values.empty()) fail(line, "empty frequency list");
    return values;
  }

  std::vector<double> parse_number_list(const std::string& text, std::size_t line) const {
    std::vector<double> values;
    for (const std::string& item : util::split_trimmed(text, ',')) {
      values.push_back(parse_number(item, line));
    }
    if (values.empty()) fail(line, "empty number list");
    return values;
  }

  /// Splits "k1=v1 k2=v2 ..." argument tails; rejects bare words.
  std::map<std::string, std::string> parse_args(const std::string& tail,
                                                std::size_t line) const {
    std::map<std::string, std::string> args;
    std::istringstream in(tail);
    std::string token;
    while (in >> token) {
      const auto kv = util::parse_key_value(token);
      if (!kv) fail(line, "expected key=value, got '" + token + "'");
      if (!args.emplace(kv->first, kv->second).second) {
        fail(line, "duplicate argument '" + kv->first + "'");
      }
    }
    return args;
  }

  /// Fetches and erases args[key]; empty optional-style via required flag.
  std::string take_arg(std::map<std::string, std::string>& args, const std::string& key,
                       std::size_t line, bool required = false,
                       const std::string& fallback = "") const {
    const auto it = args.find(key);
    if (it == args.end()) {
      if (required) fail(line, "missing required argument '" + key + "'");
      return fallback;
    }
    std::string value = it->second;
    args.erase(it);
    return value;
  }

  void reject_leftovers(const std::map<std::string, std::string>& args, std::size_t line,
                        const std::string& context) const {
    if (!args.empty()) {
      fail(line, "unknown " + context + " argument '" + args.begin()->first + "'");
    }
  }

  // --- grammar -----------------------------------------------------------

  void parse_scenario_header() {
    const auto [head, tail] = split_head(current().text);
    if (head != "scenario" || tail.empty()) {
      fail(current().number, "scenario must start with 'scenario <name>'");
    }
    spec_.name = tail;
    ++index_;
  }

  void parse_top_level() {
    const Line& line = current();
    const auto [head, tail] = split_head(line.text);
    if (head == "scenario") fail(line.number, "duplicate 'scenario' directive");
    if (head == "seed") {
      spec_.seed = parse_unsigned(tail, line.number);
      ++index_;
    } else if (head == "duration") {
      spec_.duration = parse_duration(tail, line.number);
      if (spec_.duration <= 0) fail(line.number, "scenario duration must be positive");
      ++index_;
    } else if (head == "tick") {
      spec_.tick = parse_duration(tail, line.number);
      if (spec_.tick <= 0) fail(line.number, "tick must be positive");
      ++index_;
    } else if (head == "cpu") {
      parse_cpu(tail, line.number);
    } else if (head == "workload") {
      parse_workload(tail, line.number);
    } else if (head == "host") {
      parse_host(tail, line.number);
    } else if (head == "monitor") {
      parse_monitor(tail, line.number);
      ++index_;
    } else if (head == "formula") {
      parse_formula(tail, line.number);
      ++index_;
    } else if (head == "calibration") {
      parse_calibration(tail, line.number);
      ++index_;
    } else if (head == "observe") {
      parse_observe(tail, line.number);
      ++index_;
    } else if (head == "govern") {
      parse_govern(tail, line.number);
      ++index_;
    } else if (head == "fleet") {
      parse_fleet(tail, line.number);
      ++index_;
    } else if (head == "inject") {
      parse_inject(tail, line.number);
      ++index_;
    } else if (head == "end") {
      fail(line.number, "'end' without an open section");
    } else {
      fail(line.number, "unknown directive '" + head + "'");
    }
  }

  /// Consumes section body lines until 'end'; invokes handler(head, tail,
  /// line). Errors out at EOF (truncated file).
  template <typename Handler>
  void parse_section(std::size_t opened_at, const std::string& what, Handler&& handler) {
    ++index_;  // Past the section opener.
    while (true) {
      if (index_ >= lines_.size()) {
        fail(lines_.back().number,
             "unexpected end of file: '" + what + "' section opened at line " +
                 std::to_string(opened_at) + " has no 'end'");
      }
      const Line& line = current();
      const auto [head, tail] = split_head(line.text);
      if (head == "end") {
        ++index_;
        return;
      }
      handler(head, tail, line.number);
      ++index_;
    }
  }

  void declare_id(std::map<std::string, std::size_t>& table, const std::string& id,
                  std::size_t line, const std::string& what) {
    if (id.empty()) fail(line, what + " needs an id");
    if (id.find_first_of(" \t:,=") != std::string::npos) {
      fail(line, what + " id '" + id + "' contains forbidden characters");
    }
    const auto [it, inserted] = table.emplace(id, line);
    if (!inserted) {
      fail(line, "duplicate " + what + " id '" + id + "' (first declared at line " +
                     std::to_string(it->second) + ")");
    }
  }

  void parse_cpu(const std::string& tail, std::size_t line) {
    const auto [id, preset] = split_head(tail);
    declare_id(cpu_lines_, id, line, "cpu");
    if (preset.empty()) fail(line, "cpu needs a preset: 'cpu <id> <preset|custom>'");
    CpuDecl cpu;
    cpu.id = id;
    cpu.preset = preset;
    static const std::set<std::string> kPresets = {
        "i3_2120", "i3_2120_no_smt", "i7_2600", "quad_core", "big_little", "custom"};
    if (!kPresets.count(preset)) {
      fail(line, "unknown cpu preset '" + preset +
                     "' (expected i3_2120, i3_2120_no_smt, i7_2600, quad_core, "
                     "big_little or custom)");
    }
    if (preset != "custom") {
      spec_.cpus.push_back(std::move(cpu));
      ++index_;
      return;
    }
    parse_section(line, "cpu", [&](const std::string& head, const std::string& args,
                                   std::size_t body_line) {
      if (head == "cores") {
        cpu.cores = parse_unsigned(args, body_line);
      } else if (head == "threads_per_core") {
        cpu.threads_per_core = parse_unsigned(args, body_line);
      } else if (head == "tdp") {
        cpu.tdp_watts = parse_number(args, body_line);
      } else if (head == "speedstep") {
        cpu.speedstep = parse_bool(args, body_line);
      } else if (head == "c_states") {
        cpu.c_states = parse_bool(args, body_line);
      } else if (head == "ladder") {
        cpu.ladder = parse_frequency_list(args, body_line);
      } else if (head == "cluster") {
        auto kv = parse_args(args, body_line);
        CpuDecl::Cluster cl;
        cl.name = take_arg(kv, "name", body_line, /*required=*/true);
        cl.cores = parse_unsigned(take_arg(kv, "cores", body_line, true), body_line);
        cl.ladder = parse_frequency_list(take_arg(kv, "ladder", body_line, true), body_line);
        cl.perf = parse_number(take_arg(kv, "perf", body_line, false, "1"), body_line);
        cl.energy = parse_number(take_arg(kv, "energy", body_line, false, "1"), body_line);
        reject_leftovers(kv, body_line, "cluster");
        cpu.clusters.push_back(std::move(cl));
      } else {
        fail(body_line, "unknown cpu key '" + head + "'");
      }
    });
    if (cpu.cores == 0) fail(line, "custom cpu '" + id + "' needs 'cores'");
    if (cpu.ladder.empty() && cpu.clusters.empty()) {
      fail(line, "custom cpu '" + id + "' needs a 'ladder' or at least one 'cluster'");
    }
    spec_.cpus.push_back(std::move(cpu));
  }

  ProfileSpec parse_profile(const std::string& args, std::size_t line) const {
    const auto [kind, rest] = split_head(args);
    ProfileSpec p;
    p.kind = kind;
    static const std::set<std::string> kKinds = {"cpu", "memory", "mixed", "branchy",
                                                 "idle"};
    if (!kKinds.count(kind)) {
      fail(line, "unknown profile kind '" + kind +
                     "' (expected cpu, memory, mixed, branchy or idle)");
    }
    auto kv = parse_args(rest, line);
    if (auto v = take_arg(kv, "intensity", line); !v.empty()) {
      p.intensity = parse_number(v, line);
    }
    if (auto v = take_arg(kv, "working_set", line); !v.empty()) {
      p.working_set_bytes = parse_size(v, line);
    }
    if (auto v = take_arg(kv, "share", line); !v.empty()) {
      p.memory_share = parse_number(v, line);
    }
    reject_leftovers(kv, line, "profile");
    return p;
  }

  void parse_workload(const std::string& tail, std::size_t line) {
    declare_id(workload_lines_, tail, line, "workload");
    WorkloadDecl w;
    w.id = tail;
    bool kind_seen = false;
    parse_section(line, "workload", [&](const std::string& head, const std::string& args,
                                        std::size_t body_line) {
      if (head == "kind") {
        static const std::set<std::string> kKinds = {"steady", "bursty", "phased", "llm",
                                                     "diurnal"};
        if (!kKinds.count(args)) {
          fail(body_line, "unknown workload kind '" + args +
                              "' (expected steady, bursty, phased, llm or diurnal)");
        }
        w.kind = args;
        kind_seen = true;
      } else if (head == "profile") {
        w.profile = parse_profile(args, body_line);
      } else if (head == "phase") {
        auto kv = parse_args(args, body_line);
        PhaseSpec phase;
        phase.profile.kind = take_arg(kv, "profile", body_line, /*required=*/true);
        static const std::set<std::string> kKinds = {"cpu", "memory", "mixed", "branchy",
                                                     "idle"};
        if (!kKinds.count(phase.profile.kind)) {
          fail(body_line, "unknown profile kind '" + phase.profile.kind + "'");
        }
        if (auto v = take_arg(kv, "intensity", body_line); !v.empty()) {
          phase.profile.intensity = parse_number(v, body_line);
        }
        if (auto v = take_arg(kv, "working_set", body_line); !v.empty()) {
          phase.profile.working_set_bytes = parse_size(v, body_line);
        }
        if (auto v = take_arg(kv, "share", body_line); !v.empty()) {
          phase.profile.memory_share = parse_number(v, body_line);
        }
        phase.duration =
            parse_duration(take_arg(kv, "duration", body_line, true), body_line);
        if (phase.duration <= 0) fail(body_line, "phase duration must be positive");
        reject_leftovers(kv, body_line, "phase");
        w.phases.push_back(std::move(phase));
      } else if (head == "loop") {
        w.loop = parse_bool(args, body_line);
      } else if (head == "duration") {
        w.duration = parse_duration(args, body_line);
      } else if (head == "jitter") {
        w.jitter = parse_bool(args, body_line);
      } else if (head == "mean_burst") {
        w.mean_burst = parse_duration(args, body_line);
      } else if (head == "mean_gap") {
        w.mean_gap = parse_duration(args, body_line);
      } else if (head == "mean_interarrival") {
        w.mean_interarrival = parse_duration(args, body_line);
      } else if (head == "mean_prefill") {
        w.mean_prefill = parse_duration(args, body_line);
      } else if (head == "mean_decode") {
        w.mean_decode = parse_duration(args, body_line);
      } else if (head == "working_set") {
        w.working_set_bytes = parse_size(args, body_line);
      } else if (head == "period") {
        w.period = parse_duration(args, body_line);
      } else if (head == "valley") {
        w.valley = parse_number(args, body_line);
      } else if (head == "peak") {
        w.peak = parse_number(args, body_line);
      } else if (head == "flash_crowds") {
        w.flash_crowds = parse_bool(args, body_line);
      } else if (head == "spread_phase") {
        w.spread_phase = parse_bool(args, body_line);
      } else {
        fail(body_line, "unknown workload key '" + head + "'");
      }
    });
    if (!kind_seen) fail(line, "workload '" + w.id + "' needs a 'kind'");
    if (w.kind == "phased" && w.phases.empty()) {
      fail(line, "phased workload '" + w.id + "' needs at least one 'phase'");
    }
    if (w.kind != "phased" && !w.phases.empty()) {
      fail(line, "workload '" + w.id + "' has 'phase' lines but kind is not 'phased'");
    }
    spec_.workloads.push_back(std::move(w));
  }

  void parse_host(const std::string& tail, std::size_t line) {
    declare_id(host_lines_, tail, line, "host");
    HostDecl h;
    h.id = tail;
    parse_section(line, "host", [&](const std::string& head, const std::string& args,
                                    std::size_t body_line) {
      if (head == "count") {
        h.count = parse_unsigned(args, body_line);
        if (h.count == 0) fail(body_line, "host count must be at least 1");
      } else if (head == "cpu") {
        if (!cpu_lines_.count(args)) {
          fail(body_line, "host references undeclared cpu '" + args + "'");
        }
        h.cpu = args;
      } else if (head == "daemon") {
        h.daemon = parse_bool(args, body_line);
      } else if (head == "run") {
        const auto [workload, rest] = split_head(args);
        if (!workload_lines_.count(workload)) {
          fail(body_line, "run references undeclared workload '" + workload + "'");
        }
        RunDecl r;
        r.workload = workload;
        r.name = workload;
        auto kv = parse_args(rest, body_line);
        if (auto v = take_arg(kv, "copies", body_line); !v.empty()) {
          r.copies = parse_unsigned(v, body_line);
          if (r.copies == 0) fail(body_line, "run copies must be at least 1");
        }
        if (auto v = take_arg(kv, "name", body_line); !v.empty()) r.name = v;
        reject_leftovers(kv, body_line, "run");
        h.runs.push_back(std::move(r));
      } else {
        fail(body_line, "unknown host key '" + head + "'");
      }
    });
    if (h.cpu.empty()) fail(line, "host '" + h.id + "' needs a 'cpu'");
    spec_.hosts.push_back(std::move(h));
  }

  void parse_monitor(const std::string& tail, std::size_t line) {
    auto kv = parse_args(tail, line);
    if (auto v = take_arg(kv, "period", line); !v.empty()) {
      spec_.monitor.period = parse_duration(v, line);
      if (spec_.monitor.period <= 0) fail(line, "monitor period must be positive");
    }
    if (auto v = take_arg(kv, "dimension", line); !v.empty()) {
      if (v != "timestamp" && v != "pid" && v != "group") {
        fail(line, "unknown aggregation dimension '" + v +
                       "' (expected timestamp, pid or group)");
      }
      spec_.monitor.dimension = v;
    }
    if (auto v = take_arg(kv, "powerspy", line); !v.empty()) {
      spec_.monitor.powerspy = parse_bool(v, line);
    }
    if (auto v = take_arg(kv, "rapl", line); !v.empty()) {
      spec_.monitor.rapl = parse_bool(v, line);
    }
    if (auto v = take_arg(kv, "all", line); !v.empty()) {
      spec_.monitor.all = parse_bool(v, line);
    }
    reject_leftovers(kv, line, "monitor");
  }

  void parse_formula(const std::string& tail, std::size_t line) {
    const auto [mode, rest] = split_head(tail);
    if (mode != "none" && mode != "fixed" && mode != "trained") {
      fail(line, "unknown formula mode '" + mode + "' (expected none, fixed or trained)");
    }
    spec_.formula.mode = mode;
    auto kv = parse_args(rest, line);
    if (mode == "fixed") {
      spec_.formula.idle_watts =
          parse_number(take_arg(kv, "idle", line, /*required=*/true), line);
      spec_.formula.coefficients =
          parse_number_list(take_arg(kv, "coefficients", line, true), line);
      if (spec_.formula.coefficients.size() != 3) {
        fail(line, "fixed formula needs exactly 3 coefficients "
                   "(instructions, cache-references, cache-misses)");
      }
    } else if (mode == "trained") {
      if (auto v = take_arg(kv, "intensities", line); !v.empty()) {
        spec_.formula.intensities = parse_number_list(v, line);
      }
      if (auto v = take_arg(kv, "memory_shares", line); !v.empty()) {
        spec_.formula.memory_shares = parse_number_list(v, line);
      }
      if (auto v = take_arg(kv, "point_duration", line); !v.empty()) {
        spec_.formula.point_duration = parse_duration(v, line);
      }
    }
    reject_leftovers(kv, line, "formula");
  }

  void parse_calibration(const std::string& tail, std::size_t line) {
    const auto [state, rest] = split_head(tail);
    spec_.calibration.enabled = parse_bool(state, line);
    auto kv = parse_args(rest, line);
    if (auto v = take_arg(kv, "drift_window", line); !v.empty()) {
      spec_.calibration.drift_window = parse_unsigned(v, line);
    }
    if (auto v = take_arg(kv, "threshold", line); !v.empty()) {
      spec_.calibration.threshold_watts = parse_number(v, line);
    }
    if (auto v = take_arg(kv, "min_samples", line); !v.empty()) {
      spec_.calibration.min_samples = parse_unsigned(v, line);
    }
    if (auto v = take_arg(kv, "refit_interval", line); !v.empty()) {
      spec_.calibration.refit_interval = parse_duration(v, line);
    }
    reject_leftovers(kv, line, "calibration");
  }

  void parse_observe(const std::string& tail, std::size_t line) {
    spec_.observe.enabled = true;  // Presence of the directive enables it.
    auto kv = parse_args(tail, line);
    if (auto v = take_arg(kv, "cadence", line); !v.empty()) {
      spec_.observe.cadence = parse_duration(v, line);
      if (spec_.observe.cadence <= 0) fail(line, "observe cadence must be positive");
    }
    if (auto v = take_arg(kv, "status_port", line); !v.empty()) {
      const std::uint64_t port = parse_unsigned(v, line);
      if (port > 65535) fail(line, "status_port out of range");
      spec_.observe.status_port = static_cast<std::uint16_t>(port);
    }
    if (auto v = take_arg(kv, "self_watts_budget", line); !v.empty()) {
      spec_.observe.self_watts_budget = parse_number(v, line);
      if (spec_.observe.self_watts_budget < 0) {
        fail(line, "self_watts_budget must be non-negative");
      }
    }
    reject_leftovers(kv, line, "observe");
  }

  void parse_govern(const std::string& tail, std::size_t line) {
    if (spec_.govern.enabled) fail(line, "duplicate 'govern' directive");
    spec_.govern.enabled = true;  // Presence of the directive enables it.
    auto kv = parse_args(tail, line);
    spec_.govern.budget_w =
        parse_number(take_arg(kv, "budget_w", line, /*required=*/true), line);
    if (spec_.govern.budget_w <= 0) fail(line, "govern budget_w must be positive");
    if (auto v = take_arg(kv, "policy", line); !v.empty()) {
      if (v != "pace" && v != "race") {
        fail(line, "unknown govern policy '" + v + "' (expected pace or race)");
      }
      spec_.govern.policy = v;
    }
    if (auto v = take_arg(kv, "hysteresis_w", line); !v.empty()) {
      spec_.govern.hysteresis_w = parse_number(v, line);
      if (spec_.govern.hysteresis_w < 0) fail(line, "hysteresis_w must be non-negative");
    }
    if (auto v = take_arg(kv, "cooldown_ms", line); !v.empty()) {
      spec_.govern.cooldown_ms = parse_number(v, line);
      if (spec_.govern.cooldown_ms < 0) fail(line, "cooldown_ms must be non-negative");
    }
    if (auto v = take_arg(kv, "interval_ms", line); !v.empty()) {
      spec_.govern.interval_ms = parse_number(v, line);
      if (spec_.govern.interval_ms <= 0) fail(line, "interval_ms must be positive");
    }
    if (auto v = take_arg(kv, "max_step", line); !v.empty()) {
      spec_.govern.max_step = parse_unsigned(v, line);
      if (spec_.govern.max_step == 0) fail(line, "max_step must be at least 1");
    }
    if (auto v = take_arg(kv, "min_active_cores", line); !v.empty()) {
      spec_.govern.min_active_cores = parse_unsigned(v, line);
      if (spec_.govern.min_active_cores == 0) {
        fail(line, "min_active_cores must be at least 1");
      }
    }
    reject_leftovers(kv, line, "govern");
  }

  void parse_fleet(const std::string& tail, std::size_t line) {
    auto kv = parse_args(tail, line);
    if (auto v = take_arg(kv, "aggregation", line); !v.empty()) {
      spec_.fleet_aggregation = parse_bool(v, line);
    }
    if (auto v = take_arg(kv, "workers", line); !v.empty()) {
      spec_.workers = parse_unsigned(v, line);
      if (spec_.workers == 0) fail(line, "fleet workers must be at least 1");
    }
    if (auto v = take_arg(kv, "chunk", line); !v.empty()) {
      spec_.hosts_per_chunk = parse_unsigned(v, line);
    }
    reject_leftovers(kv, line, "fleet");
  }

  void parse_inject(const std::string& tail, std::size_t line) {
    auto kv = parse_args(tail, line);
    InjectDecl inj;
    inj.at = parse_duration(take_arg(kv, "at", line, /*required=*/true), line);
    inj.host = take_arg(kv, "host", line, /*required=*/true);
    inj.cluster = take_arg(kv, "cluster", line);
    if (auto v = take_arg(kv, "frequency", line); !v.empty()) {
      inj.kind = "frequency";
      inj.frequency_hz = parse_frequency(v, line);
      if (inj.frequency_hz <= 0) fail(line, "injection frequency must be positive");
    } else if (auto v2 = take_arg(kv, "spawn", line); !v2.empty()) {
      inj.kind = "spawn";
      inj.workload = v2;
      inj.name = take_arg(kv, "name", line, /*required=*/false, v2);
      if (!workload_lines_.count(inj.workload)) {
        fail(line, "inject spawn references undeclared workload '" + inj.workload + "'");
      }
    } else if (auto v3 = take_arg(kv, "kill", line); !v3.empty()) {
      inj.kind = "kill";
      inj.name = v3;
    } else if (auto v4 = take_arg(kv, "shift", line); !v4.empty()) {
      const auto parts = util::split_trimmed(v4, ':');
      if (parts.size() != 2) {
        fail(line, "shift expects '<process-name>:<workload-id>', got '" + v4 + "'");
      }
      inj.kind = "shift";
      inj.name = parts[0];
      inj.workload = parts[1];
      if (!workload_lines_.count(inj.workload)) {
        fail(line, "inject shift references undeclared workload '" + inj.workload + "'");
      }
    } else {
      fail(line, "inject needs one of frequency=, spawn=, kill= or shift=");
    }
    if (!inj.cluster.empty() && inj.kind != "frequency") {
      fail(line, "inject cluster= is only valid with frequency=");
    }
    reject_leftovers(kv, line, "inject");
    inject_lines_.push_back(line);
    spec_.injections.push_back(std::move(inj));
  }

  /// Does the expanded id `id` name an instance of `host`?
  static bool host_matches(const HostDecl& host, const std::string& id) {
    if (host.count <= 1) return id == host.id;
    if (id.size() <= host.id.size() || id.compare(0, host.id.size(), host.id) != 0) {
      return false;
    }
    // The suffix must be a valid instance index (< count).
    const std::string suffix = id.substr(host.id.size());
    std::size_t index = 0;
    for (char c : suffix) {
      if (c < '0' || c > '9') return false;
      index = index * 10 + static_cast<std::size_t>(c - '0');
    }
    return index < host.count;
  }

  /// Fails unless the host's CPU declares a frequency cluster named
  /// `cluster` (cross-ref for `inject ... cluster=... frequency=...`).
  void check_cluster(const HostDecl& host, const std::string& cluster,
                     std::size_t line) {
    const CpuDecl* cpu = nullptr;
    for (const CpuDecl& decl : spec_.cpus) {
      if (decl.id == host.cpu) { cpu = &decl; break; }
    }
    if (!cpu) return;  // Unknown cpu id is reported by the host checks.
    std::vector<std::string> names;
    if (cpu->preset == "big_little") {
      names = {"big", "little"};
    } else if (cpu->preset == "custom") {
      for (const CpuDecl::Cluster& cl : cpu->clusters) names.push_back(cl.name);
    }
    if (names.empty()) {
      fail(line, "inject cluster='" + cluster + "' but cpu '" + cpu->id +
                     "' (host '" + host.id + "') declares no clusters");
    }
    for (const std::string& name : names) {
      if (name == cluster) return;
    }
    std::string known;
    for (const std::string& name : names) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    fail(line, "inject cluster='" + cluster + "' not found on cpu '" + cpu->id +
                   "' (host '" + host.id + "'; clusters: " + known + ")");
  }

  void validate() {
    if (spec_.hosts.empty()) {
      fail(lines_.back().number, "scenario declares no hosts");
    }
    const std::vector<std::string> host_ids = spec_.expanded_host_ids();
    const std::set<std::string> host_set(host_ids.begin(), host_ids.end());
    if (host_set.size() != host_ids.size()) {
      fail(lines_.back().number,
           "expanded host ids collide (a 'count' group overlaps another host id)");
    }
    for (std::size_t i = 0; i < spec_.injections.size(); ++i) {
      const InjectDecl& inj = spec_.injections[i];
      const std::size_t line = inject_lines_[i];
      if (inj.host != "all" && !host_set.count(inj.host)) {
        fail(line, "inject references unknown host '" + inj.host +
                       "' (use an expanded id like 'rack0', or 'all')");
      }
      if (inj.at > spec_.duration) {
        fail(line, "injection at " + std::to_string(inj.at) +
                       "ns is beyond the scenario duration");
      }
      if (!inj.cluster.empty()) {
        for (const HostDecl& host : spec_.hosts) {
          if (inj.host != "all" && !host_matches(host, inj.host)) continue;
          check_cluster(host, inj.cluster, line);
        }
      }
    }
    if (spec_.calibration.enabled && spec_.formula.mode == "none") {
      fail(lines_.back().number,
           "calibration requires a formula (mode 'fixed' or 'trained')");
    }
  }

  std::string file_;
  std::vector<Line> lines_;
  std::size_t index_ = 0;
  ScenarioSpec spec_;
  std::map<std::string, std::size_t> cpu_lines_;
  std::map<std::string, std::size_t> workload_lines_;
  std::map<std::string, std::size_t> host_lines_;
  std::vector<std::size_t> inject_lines_;
};

}  // namespace

ScenarioSpec ScenarioParser::parse_string(std::string_view text,
                                          const std::string& filename) {
  return Parser(text, filename).run();
}

ScenarioSpec ScenarioParser::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_string(buffer.str(), path);
}

}  // namespace powerapi::scenario
