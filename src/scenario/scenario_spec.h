// The declarative scenario layer: a whole monitored deployment — machines,
// their CPUs (including heterogeneous big.LITTLE parts), the workload mix,
// the monitoring pipeline configuration and timed fault injections — as one
// validated value type.
//
// A ScenarioSpec is produced by ScenarioParser from a line-oriented text
// file (see DESIGN.md §"Scenario layer" for the grammar) and consumed by
// ScenarioRunner, which lowers it onto PipelineSpec/FleetMonitor. The spec
// is a plain value: comparable (operator==) and serializable (serialize()),
// so `parse(serialize(spec)) == spec` round-trips exactly — the property
// scripts/check_scenarios.py enforces for every committed scenario.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace powerapi::scenario {

/// One execution-profile reference: a stress-factory kind plus parameters.
struct ProfileSpec {
  /// "cpu", "memory", "mixed", "branchy" or "idle".
  std::string kind = "cpu";
  double intensity = 1.0;
  double working_set_bytes = 8.0 * 1024 * 1024;  ///< memory/mixed kinds.
  double memory_share = 0.5;                     ///< mixed kind only.

  bool operator==(const ProfileSpec&) const = default;
};

/// One stage of a phased workload.
struct PhaseSpec {
  ProfileSpec profile;
  util::DurationNs duration = 0;

  bool operator==(const PhaseSpec&) const = default;
};

/// A CPU declaration: either a named preset or a custom (possibly
/// clustered) part.
struct CpuDecl {
  std::string id;
  /// "i3_2120", "i3_2120_no_smt", "i7_2600", "quad_core", "big_little" or
  /// "custom" (then the remaining fields describe the part).
  std::string preset = "i3_2120";

  // --- custom parts only ---
  std::size_t cores = 0;
  std::size_t threads_per_core = 1;
  double tdp_watts = 65.0;
  bool speedstep = true;
  bool c_states = true;
  /// DVFS ladder (Hz, ascending) for non-clustered custom parts. Clustered
  /// parts take the primary (first) cluster's ladder instead.
  std::vector<double> ladder;

  struct Cluster {
    std::string name;
    std::size_t cores = 0;
    std::vector<double> ladder;  ///< Hz, ascending.
    double perf = 1.0;
    double energy = 1.0;

    bool operator==(const Cluster&) const = default;
  };
  std::vector<Cluster> clusters;

  bool operator==(const CpuDecl&) const = default;
};

/// A reusable workload declaration, instantiated per host by `run` lines.
struct WorkloadDecl {
  std::string id;
  /// "steady", "bursty", "phased", "llm" or "diurnal".
  std::string kind = "steady";
  ProfileSpec profile;           ///< steady/bursty/diurnal peak profile.
  std::vector<PhaseSpec> phases; ///< phased kind: ordered stages.
  bool loop = true;              ///< phased kind: repeat forever.
  util::DurationNs duration = 0; ///< Per-instance bound; 0 = unbounded.
  bool jitter = false;           ///< Wrap in JitterBehavior (seeded).

  // bursty kind:
  util::DurationNs mean_burst = util::ms_to_ns(60);
  util::DurationNs mean_gap = util::ms_to_ns(120);

  // llm kind:
  util::DurationNs mean_interarrival = util::ms_to_ns(400);
  util::DurationNs mean_prefill = util::ms_to_ns(60);
  util::DurationNs mean_decode = util::ms_to_ns(250);
  double working_set_bytes = 48.0 * 1024 * 1024;

  // diurnal kind:
  util::DurationNs period = util::seconds_to_ns(120);
  double valley = 0.15;
  double peak = 0.95;
  bool flash_crowds = true;
  /// Rotate each instance's day by instance_index/instances of a period so
  /// one declaration spreads a fleet-wide traffic wave.
  bool spread_phase = true;

  bool operator==(const WorkloadDecl&) const = default;
};

/// One `run` line inside a host: instantiate a workload N times.
struct RunDecl {
  std::string workload;   ///< WorkloadDecl id.
  std::size_t copies = 1;
  std::string name;       ///< Process name; defaults to the workload id.

  bool operator==(const RunDecl&) const = default;
};

/// A host (or, with count > 1, a group of identical hosts "id0".."idN-1").
struct HostDecl {
  std::string id;
  std::size_t count = 1;
  std::string cpu;        ///< CpuDecl id.
  bool daemon = true;     ///< Spawn the background OS daemon.
  std::vector<RunDecl> runs;

  bool operator==(const HostDecl&) const = default;
};

/// Monitoring pipeline configuration shared by every host.
struct MonitorSpec {
  util::DurationNs period = util::ms_to_ns(250);
  bool powerspy = true;
  bool rapl = false;
  /// "timestamp", "pid" or "group".
  std::string dimension = "timestamp";
  bool all = true;  ///< monitor_all vs machine scope only.

  bool operator==(const MonitorSpec&) const = default;
};

/// How the per-host regression model is obtained.
struct FormulaSpec {
  /// "none"    — no powerapi-hpc series;
  /// "fixed"   — idle + per-event coefficients, scaled per DVFS point by
  ///             hz/hz_max (instant, fully deterministic — golden tests);
  /// "trained" — run the Figure 1 Trainer per distinct CPU declaration.
  std::string mode = "none";
  double idle_watts = 0.0;             ///< fixed mode.
  std::vector<double> coefficients;    ///< fixed mode; paper-event order.
  std::vector<double> intensities{0.5, 1.0};  ///< trained: grid duty cycles.
  std::vector<double> memory_shares;   ///< trained: grid blend; empty = default.
  util::DurationNs point_duration = util::seconds_to_ns(1);  ///< trained.

  bool operator==(const FormulaSpec&) const = default;
};

/// Online calibration (drift-triggered refit + registry hot swap).
struct CalibrationSpec {
  bool enabled = false;
  std::size_t drift_window = 12;
  double threshold_watts = 2.0;
  std::size_t min_samples = 24;
  util::DurationNs refit_interval = util::seconds_to_ns(5);

  bool operator==(const CalibrationSpec&) const = default;
};

/// Observability plane: runtime metrics/trace collection plus the fleet
/// watchdog ("observe" directive; presence enables it).
struct ObserveSpec {
  bool enabled = false;
  /// Watchdog evaluation cadence (also the run-loop chunking grain).
  util::DurationNs cadence = util::seconds_to_ns(1);
  /// Line-oriented TCP status port (0 = no listener).
  std::uint16_t status_port = 0;
  /// Fleet self-monitoring watts budget for the watchdog (0 = rule off).
  double self_watts_budget = 0.0;

  bool operator==(const ObserveSpec&) const = default;
};

/// The closed-loop power governor ("govern" directive; presence enables).
struct GovernSpec {
  bool enabled = false;
  double budget_w = 0.0;       ///< Fleet watt cap (required, > 0).
  std::string policy = "pace"; ///< "pace" (DVFS first) or "race" (park first).
  double hysteresis_w = 2.0;   ///< Dead band around each host's share.
  double cooldown_ms = 1000.0; ///< Up-step cooldown after any actuation.
  double interval_ms = 500.0;  ///< Decision cadence.
  std::uint64_t max_step = 1;  ///< Max rungs per proportional down-step.
  std::uint64_t min_active_cores = 1;  ///< Parking floor per host.

  bool operator==(const GovernSpec&) const = default;
};

/// A timed fault/control injection.
struct InjectDecl {
  util::TimestampNs at = 0;
  std::string host;       ///< Expanded host id, or "all".
  /// "frequency" — pin the package DVFS set point (or, with `cluster` set,
  ///               that one cluster's domain on a big.LITTLE part);
  /// "spawn"     — start `workload` as a process called `name`;
  /// "kill"      — kill every process called `name`;
  /// "shift"     — kill `name` then respawn it running `workload`.
  std::string kind;
  std::string cluster;    ///< frequency kind: cluster name; empty = package.
  double frequency_hz = 0.0;
  std::string workload;
  std::string name;

  bool operator==(const InjectDecl&) const = default;
};

/// The whole scenario.
struct ScenarioSpec {
  std::string name;
  std::uint64_t seed = 42;
  util::DurationNs duration = util::seconds_to_ns(10);
  util::DurationNs tick = util::ms_to_ns(1);  ///< OS scheduler quantum.

  std::vector<CpuDecl> cpus;
  std::vector<WorkloadDecl> workloads;
  std::vector<HostDecl> hosts;
  MonitorSpec monitor;
  FormulaSpec formula;
  CalibrationSpec calibration;
  ObserveSpec observe;
  GovernSpec govern;

  bool fleet_aggregation = true;
  std::size_t workers = 4;          ///< Threaded dispatch only.
  std::size_t hosts_per_chunk = 8;

  std::vector<InjectDecl> injections;

  bool operator==(const ScenarioSpec&) const = default;

  /// Expanded host ids in declaration order ("web" count=3 → web0 web1
  /// web2; count=1 keeps the bare id).
  std::vector<std::string> expanded_host_ids() const;
};

/// Canonical text form; parse(serialize(spec)) == spec. Numeric fields are
/// emitted in base units (ns, Hz, bytes) with %.17g so doubles survive the
/// round trip bit-exactly.
std::string serialize(const ScenarioSpec& spec);

}  // namespace powerapi::scenario
