// ScenarioRunner: lowers a validated ScenarioSpec onto the real middleware —
// builds one os::System per expanded host (CpuSpec from the declaration,
// workloads from the zoo/stress factories, all RNG streams forked from the
// scenario seed), obtains the regression model per the formula mode, wires
// every host into one FleetMonitor (kManual for bit-exact determinism or
// threaded for throughput), applies timed injections between run chunks and
// returns every aggregated row for inspection or CSV export.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "actors/actor_system.h"
#include "obs/metrics.h"
#include "powerapi/messages.h"
#include "scenario/scenario_spec.h"

namespace powerapi::scenario {

struct RunOptions {
  actors::ActorSystem::Mode mode = actors::ActorSystem::Mode::kManual;
  /// Caps the simulated duration; <= 0 runs the spec's full duration. CI
  /// smoke runs use this to bound long scenarios.
  util::DurationNs max_duration = 0;
};

/// One host's aggregated output, labelled with its expanded id.
struct HostSeries {
  std::string id;
  std::vector<api::AggregatedPower> rows;
};

struct RunResult {
  std::vector<HostSeries> hosts;            ///< Expanded-declaration order.
  std::vector<api::AggregatedPower> fleet;  ///< "(fleet)" rows; may be empty.
  std::size_t model_swaps = 0;              ///< Calibration registry swaps.
  /// Final fleet metrics snapshot; empty unless the spec's `observe`
  /// directive enabled the observability plane.
  obs::MetricsSnapshot metrics;
  /// Alerts the fleet watchdog raised during the run (observe only).
  std::uint64_t watchdog_alerts = 0;
  /// DVFS/parking steps the power governor applied (govern only).
  std::uint64_t governor_actuations = 0;
};

/// Writes the result as CSV: host,formula,timestamp,pid,group,watts — watts
/// in C99 hexfloat so byte-identical files mean bit-identical runs.
void write_csv(std::ostream& out, const RunResult& result);

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  const ScenarioSpec& spec() const noexcept { return spec_; }

  /// Builds the fleet and simulates the scenario. One run per runner.
  RunResult run(const RunOptions& options = {});

 private:
  struct Impl;
  ScenarioSpec spec_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace powerapi::scenario
