#include "scenario/scenario_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "governor/governor.h"
#include "hpc/events.h"
#include "model/trainer.h"
#include "net/collector_status.h"
#include "net/watchdog.h"
#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "util/rng.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"
#include "workloads/zoo.h"

namespace powerapi::scenario {

namespace {

simcpu::CpuSpec resolve_cpu(const CpuDecl& decl) {
  if (decl.preset == "i3_2120") return simcpu::i3_2120();
  if (decl.preset == "i3_2120_no_smt") return simcpu::i3_2120_no_smt();
  if (decl.preset == "i7_2600") return simcpu::i7_2600();
  if (decl.preset == "quad_core") return simcpu::quad_core();
  if (decl.preset == "big_little") return simcpu::big_little();
  // Custom part.
  simcpu::CpuSpec spec;
  spec.vendor = "Scenario";
  spec.model = decl.id;
  spec.cores = decl.cores;
  spec.threads_per_core = decl.threads_per_core;
  spec.tdp_watts = decl.tdp_watts;
  spec.speedstep = decl.speedstep;
  spec.c_states = decl.c_states;
  spec.turbo_boost = false;
  if (!decl.clusters.empty()) {
    for (const CpuDecl::Cluster& cl : decl.clusters) {
      simcpu::CoreClusterSpec cluster;
      cluster.name = cl.name;
      cluster.cores = cl.cores;
      cluster.frequencies_hz = cl.ladder;
      cluster.perf_scale = cl.perf;
      cluster.energy_scale = cl.energy;
      spec.clusters.push_back(std::move(cluster));
    }
    spec.frequencies_hz = spec.clusters.front().frequencies_hz;
  } else {
    spec.frequencies_hz = decl.ladder;
  }
  spec.caches = {
      {"L1d", 32 * 1024, false, 4},
      {"L2", 256 * 1024, false, 12},
      {"L3", 4 * 1024 * 1024, true, 30},
  };
  try {
    spec.validate();
  } catch (const std::exception& e) {
    throw std::runtime_error("scenario cpu '" + decl.id + "': " + e.what());
  }
  return spec;
}

simcpu::ExecProfile resolve_profile(const ProfileSpec& p) {
  if (p.kind == "cpu") return workloads::cpu_stress(p.intensity);
  if (p.kind == "memory") return workloads::memory_stress(p.working_set_bytes, p.intensity);
  if (p.kind == "mixed") {
    return workloads::mixed_stress(p.memory_share, p.working_set_bytes, p.intensity);
  }
  if (p.kind == "branchy") return workloads::branchy_stress(p.intensity);
  return workloads::idle_profile();
}

/// Builds one behavior instance. `instance`/`instances` index this copy
/// among every instance of the declaration scenario-wide (diurnal phase
/// spreading); `rng` is already forked uniquely for this instance.
std::unique_ptr<os::TaskBehavior> make_behavior(const WorkloadDecl& w, util::Rng rng,
                                                std::size_t instance,
                                                std::size_t instances) {
  std::unique_ptr<os::TaskBehavior> behavior;
  if (w.kind == "steady") {
    behavior = std::make_unique<workloads::SteadyBehavior>(resolve_profile(w.profile),
                                                           w.duration);
  } else if (w.kind == "bursty") {
    behavior = std::make_unique<workloads::BurstyBehavior>(
        resolve_profile(w.profile), w.mean_burst, w.mean_gap, w.duration, rng.fork(1));
  } else if (w.kind == "phased") {
    std::vector<workloads::Phase> phases;
    for (const PhaseSpec& phase : w.phases) {
      phases.push_back({resolve_profile(phase.profile), phase.duration});
    }
    behavior = std::make_unique<workloads::PhasedBehavior>(std::move(phases), w.loop);
  } else if (w.kind == "llm") {
    workloads::LlmInferenceBehavior::Options options;
    options.mean_interarrival = w.mean_interarrival;
    options.mean_prefill = w.mean_prefill;
    options.mean_decode = w.mean_decode;
    options.working_set_bytes = w.working_set_bytes;
    options.duration = w.duration;
    behavior = workloads::make_llm_inference(options, rng.fork(1));
  } else if (w.kind == "diurnal") {
    workloads::DiurnalBehavior::Options options;
    options.peak_profile = resolve_profile(w.profile);
    options.period = w.period;
    options.valley_load = w.valley;
    options.peak_load = w.peak;
    if (!w.flash_crowds) options.mean_flash_interarrival = 0;
    if (w.spread_phase && instances > 1) {
      options.phase_offset = static_cast<util::DurationNs>(
          static_cast<double>(w.period) * static_cast<double>(instance) /
          static_cast<double>(instances));
    }
    options.duration = w.duration;
    behavior = workloads::make_diurnal(options, rng.fork(1));
  } else {
    throw std::runtime_error("scenario workload '" + w.id + "': unknown kind '" + w.kind +
                             "'");
  }
  if (w.jitter) {
    behavior = std::make_unique<workloads::JitterBehavior>(std::move(behavior), rng.fork(2));
  }
  return behavior;
}

model::CpuPowerModel fixed_model(const FormulaSpec& formula, const simcpu::CpuSpec& cpu) {
  std::vector<model::FrequencyFormula> formulas;
  const double hz_max = cpu.max_frequency_hz();
  for (const double hz : cpu.frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events.assign(hpc::paper_events().begin(), hpc::paper_events().end());
    const double scale = hz / hz_max;
    for (const double c : formula.coefficients) f.coefficients.push_back(c * scale);
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(formula.idle_watts, std::move(formulas));
}

model::CpuPowerModel trained_model(const FormulaSpec& formula, const simcpu::CpuSpec& cpu,
                                   std::uint64_t seed) {
  model::TrainerOptions options;
  options.grid.intensities = formula.intensities;
  if (!formula.memory_shares.empty()) options.grid.memory_shares = formula.memory_shares;
  options.point_duration = formula.point_duration;
  options.seed = seed;
  model::Trainer trainer(cpu, simcpu::GroundTruthParams{}, options);
  return trainer.train().model;
}

api::AggregationDimension resolve_dimension(const std::string& name) {
  if (name == "pid") return api::AggregationDimension::kPid;
  if (name == "group") return api::AggregationDimension::kGroup;
  return api::AggregationDimension::kTimestamp;
}

std::string hex_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

const char* kind_name(obs::MetricKind kind) {
  switch (kind) {
    case obs::MetricKind::kCounter: return "counter";
    case obs::MetricKind::kGauge: return "gauge";
    case obs::MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Status-listener payload: the live fleet metrics snapshot as text lines
/// ("name kind value") or one flat JSON object.
void render_metrics(std::ostream& out, obs::Observability& obs, bool json) {
  const obs::MetricsSnapshot snapshot = obs.metrics.snapshot();
  if (!json) {
    for (const obs::MetricValue& metric : snapshot.metrics) {
      out << metric.name << ' ' << kind_name(metric.kind) << ' ' << metric.value
          << '\n';
    }
    return;
  }
  out << '{';
  bool first = true;
  for (const obs::MetricValue& metric : snapshot.metrics) {
    if (!first) out << ',';
    first = false;
    obs::detail::write_json_string(out, metric.name);
    out << ':' << metric.value;
  }
  out << "}\n";
}

}  // namespace

void write_csv(std::ostream& out, const RunResult& result) {
  out << "host,formula,timestamp,pid,group,watts\n";
  for (const HostSeries& host : result.hosts) {
    for (const api::AggregatedPower& row : host.rows) {
      out << host.id << ',' << row.formula << ',' << row.timestamp << ',' << row.pid
          << ',' << row.group << ',' << hex_double(row.watts) << '\n';
    }
  }
  for (const api::AggregatedPower& row : result.fleet) {
    out << "(fleet)," << row.formula << ',' << row.timestamp << ',' << row.pid << ','
        << row.group << ',' << hex_double(row.watts) << '\n';
  }
}

/// Everything the run owns; hidden so the header stays light.
struct ScenarioRunner::Impl {
  struct Host {
    std::string id;
    const HostDecl* decl = nullptr;
    std::unique_ptr<os::System> system;
    /// Process name → live pids, for kill/shift injections.
    std::multimap<std::string, os::Pid> named_pids;
    util::Rng rng{0};
    std::size_t spawn_counter = 0;
  };
  std::vector<Host> hosts;
  bool ran = false;
};

ScenarioRunner::ScenarioRunner(ScenarioSpec spec)
    : spec_(std::move(spec)), impl_(std::make_unique<Impl>()) {}

ScenarioRunner::~ScenarioRunner() = default;

RunResult ScenarioRunner::run(const RunOptions& options) {
  if (impl_->ran) throw std::logic_error("ScenarioRunner: one run per runner");
  impl_->ran = true;

  // --- Resolve CPUs and models (one per distinct cpu declaration) ---
  std::map<std::string, simcpu::CpuSpec> cpu_specs;
  std::map<std::string, model::CpuPowerModel> cpu_models;
  for (const CpuDecl& decl : spec_.cpus) cpu_specs.emplace(decl.id, resolve_cpu(decl));
  for (const auto& [id, cpu] : cpu_specs) {
    if (spec_.formula.mode == "fixed") {
      cpu_models.emplace(id, fixed_model(spec_.formula, cpu));
    } else if (spec_.formula.mode == "trained") {
      cpu_models.emplace(id, trained_model(spec_.formula, cpu, spec_.seed));
    }
  }

  // --- Count instances per workload (diurnal phase spreading) ---
  std::map<std::string, std::size_t> workload_instances;
  for (const HostDecl& h : spec_.hosts) {
    for (const RunDecl& r : h.runs) workload_instances[r.workload] += h.count * r.copies;
  }
  std::map<std::string, const WorkloadDecl*> workloads_by_id;
  for (const WorkloadDecl& w : spec_.workloads) workloads_by_id.emplace(w.id, &w);
  std::map<std::string, std::size_t> next_instance;

  // --- Build hosts ---
  const util::Rng base_rng(spec_.seed);
  std::size_t host_index = 0;
  for (const HostDecl& decl : spec_.hosts) {
    for (std::size_t copy = 0; copy < decl.count; ++copy, ++host_index) {
      Impl::Host host;
      host.id = decl.count <= 1 ? decl.id : decl.id + std::to_string(copy);
      host.decl = &decl;
      host.rng = base_rng.fork(1000 + host_index);
      os::System::Options sys_options;
      sys_options.tick_ns = spec_.tick;
      host.system = std::make_unique<os::System>(cpu_specs.at(decl.cpu),
                                                 std::move(sys_options));
      if (decl.daemon) {
        host.system->spawn("kdaemon", workloads::make_background_daemon(host.rng.fork(0)));
      }
      for (const RunDecl& r : decl.runs) {
        const WorkloadDecl& w = *workloads_by_id.at(r.workload);
        for (std::size_t i = 0; i < r.copies; ++i) {
          const std::size_t instance = next_instance[r.workload]++;
          auto behavior = make_behavior(w, host.rng.fork(10 + host.spawn_counter++),
                                        instance, workload_instances[r.workload]);
          const os::Pid pid = host.system->spawn(r.name, std::move(behavior));
          host.named_pids.emplace(r.name, pid);
        }
      }
      impl_->hosts.push_back(std::move(host));
    }
  }

  // --- Wire the fleet ---
  api::FleetMonitor::Options fleet_options;
  fleet_options.mode = options.mode;
  fleet_options.workers = spec_.workers;
  fleet_options.fleet_aggregation = spec_.fleet_aggregation;
  fleet_options.hosts_per_chunk = spec_.hosts_per_chunk;
  fleet_options.with_observability = spec_.observe.enabled;
  api::FleetMonitor fleet(fleet_options);

  std::atomic<std::size_t> swaps{0};
  std::vector<api::MemoryReporter*> reporters;
  for (Impl::Host& host : impl_->hosts) {
    api::PipelineSpec pipeline;
    pipeline.period = spec_.monitor.period;
    pipeline.with_powerspy = spec_.monitor.powerspy;
    pipeline.with_rapl = spec_.monitor.rapl;
    pipeline.dimension = resolve_dimension(spec_.monitor.dimension);
    pipeline.seed = spec_.seed;
    const auto model_it = cpu_models.find(host.decl->cpu);
    if (model_it != cpu_models.end()) pipeline.model = model_it->second;
    if (spec_.calibration.enabled) {
      pipeline.with_calibration = true;
      pipeline.calibration.drift_window = spec_.calibration.drift_window;
      pipeline.calibration.drift_threshold_watts = spec_.calibration.threshold_watts;
      pipeline.calibration.min_samples_per_fit = spec_.calibration.min_samples;
      pipeline.calibration.min_refit_interval = spec_.calibration.refit_interval;
    }
    const std::size_t index = fleet.add_host(*host.system, std::move(pipeline));
    reporters.push_back(&fleet.add_memory_reporter(index));
    if (spec_.monitor.all) {
      fleet.monitor_all(index);
    } else {
      fleet.monitor(index, {});
    }
    if (spec_.calibration.enabled) {
      fleet.pipeline(index).add_model_update_callback(
          [&swaps](const api::ModelUpdated&) { swaps.fetch_add(1); });
    }
  }
  api::MemoryReporter* fleet_reporter =
      spec_.fleet_aggregation ? &fleet.add_fleet_reporter() : nullptr;

  // --- Observability plane (observe directive) ---
  // In-process there is no collector, so the watchdog probe synthesizes a
  // single "fleet" agent from the monitor's own metrics: trace drops feed
  // the drop-spike rule and the self-monitor gauge feeds the watts budget.
  // last_activity_wall_ns stays 0, which disables the staleness rule (it
  // only makes sense for remote agents).
  net::WatchdogActor* watchdog = nullptr;
  actors::ActorRef watchdog_ref;
  std::unique_ptr<net::StatusListener> status_listener;
  if (spec_.observe.enabled) {
    obs::Observability* obs = fleet.observability();
    net::WatchdogOptions watchdog_options;
    watchdog_options.self_watts_budget = spec_.observe.self_watts_budget;
    watchdog_options.obs = obs;
    const bool governing = spec_.govern.enabled;
    auto probe = [obs, governing] {
      net::WatchdogSample sample;
      const obs::MetricsSnapshot snapshot = obs->metrics.snapshot();
      sample.fleet_self_watts = snapshot.value_of("self.watts");
      if (governing) {
        // The governor's gauges feed the budget-violation rule.
        sample.fleet_power_watts = snapshot.value_of("governor.fleet_watts");
        sample.power_budget_watts = snapshot.value_of("governor.budget_watts");
      }
      net::WatchdogSample::Agent agent;
      agent.label = "fleet";
      agent.connected = true;
      agent.records_dropped = static_cast<std::uint64_t>(
          snapshot.value_of("obs.trace.spans_dropped"));
      sample.agents.push_back(std::move(agent));
      return sample;
    };
    auto actor = std::make_unique<net::WatchdogActor>(fleet.bus(), std::move(probe),
                                                      watchdog_options);
    watchdog = actor.get();
    watchdog_ref = fleet.actor_system().spawn("scenario-watchdog", std::move(actor));
    if (spec_.observe.status_port != 0) {
      status_listener = std::make_unique<net::StatusListener>(
          spec_.observe.status_port,
          [obs](std::ostream& out, bool json) { render_metrics(out, *obs, json); });
    }
  }

  // --- Power governor (govern directive) ---
  // One GovernorActor holds the fleet watt budget; each host gets a
  // SenseRelay forwarding its machine-scope aggregated rows to the governor
  // tagged with the host index. Decision ticks are sent between settled run
  // chunks (see advance below), so both modes yield the same decisions.
  governor::GovernorActor* gov = nullptr;
  actors::ActorRef gov_ref;
  if (spec_.govern.enabled) {
    governor::GovernorOptions gov_options;
    gov_options.budget_watts = spec_.govern.budget_w;
    gov_options.policy = spec_.govern.policy == "race"
                             ? governor::Policy::kRaceToIdle
                             : governor::Policy::kPaceToDeadline;
    gov_options.hysteresis_watts = spec_.govern.hysteresis_w;
    gov_options.cooldown_ns =
        static_cast<util::DurationNs>(spec_.govern.cooldown_ms * 1e6);
    gov_options.max_step = spec_.govern.max_step;
    gov_options.min_active_cores = spec_.govern.min_active_cores;
    gov_options.obs = fleet.observability();
    std::vector<governor::HostControl> controls;
    for (Impl::Host& host : impl_->hosts) {
      controls.push_back(governor::control_for(host.id, *host.system));
    }
    auto actor = std::make_unique<governor::GovernorActor>(
        fleet.bus(), std::move(gov_options), std::move(controls));
    gov = actor.get();
    gov_ref = fleet.actor_system().spawn("scenario-governor", std::move(actor));
    for (std::size_t i = 0; i < impl_->hosts.size(); ++i) {
      governor::GovernorActor::spawn_sense_relay(
          fleet.actor_system(), fleet.bus(), fleet.pipeline(i).aggregated_topic(),
          gov_ref, i, "scenario-sense-" + impl_->hosts[i].id);
    }
  }

  // --- Simulate, pausing at injection times ---
  util::DurationNs duration = spec_.duration;
  if (options.max_duration > 0) duration = std::min(duration, options.max_duration);

  std::vector<const InjectDecl*> injections;
  for (const InjectDecl& inj : spec_.injections) {
    if (inj.at <= duration) injections.push_back(&inj);
  }
  std::stable_sort(injections.begin(), injections.end(),
                   [](const InjectDecl* a, const InjectDecl* b) { return a->at < b->at; });

  auto apply = [&](const InjectDecl& inj) {
    for (Impl::Host& host : impl_->hosts) {
      if (inj.host != "all" && inj.host != host.id) continue;
      if (inj.kind == "frequency") {
        if (inj.cluster.empty()) {
          host.system->pin_frequency(inj.frequency_hz);
        } else {
          // Validated cross-ref: the cluster name exists on this host's CPU.
          const simcpu::CpuSpec& cpu = cpu_specs.at(host.decl->cpu);
          for (std::size_t c = 0; c < cpu.clusters.size(); ++c) {
            if (cpu.clusters[c].name == inj.cluster) {
              host.system->pin_cluster_frequency(c, inj.frequency_hz);
              break;
            }
          }
        }
        continue;
      }
      if (inj.kind == "kill" || inj.kind == "shift") {
        const auto [begin, end] = host.named_pids.equal_range(inj.name);
        for (auto it = begin; it != end; ++it) host.system->kill(it->second);
        host.named_pids.erase(begin, end);
      }
      if (inj.kind == "spawn" || inj.kind == "shift") {
        const WorkloadDecl& w = *workloads_by_id.at(inj.workload);
        auto behavior = make_behavior(w, host.rng.fork(10 + host.spawn_counter++),
                                      /*instance=*/0, /*instances=*/1);
        const os::Pid pid = host.system->spawn(inj.name, std::move(behavior));
        host.named_pids.emplace(inj.name, pid);
      }
    }
  };

  // The run advances on event boundaries: each enabled control plane (the
  // watchdog at the observe cadence, the governor at its decision interval)
  // keeps a persistent next-fire timestamp, and every chunk runs the fleet
  // exactly to the nearest boundary, settles, and fires the due ticks —
  // governor first, so the watchdog's probe reads fresh fleet gauges. The
  // timestamps persist across advance() calls, so injection pauses never
  // shift the control-plane phase.
  util::TimestampNs now = 0;
  constexpr util::TimestampNs kNever = std::numeric_limits<util::TimestampNs>::max();
  const util::DurationNs governor_interval =
      static_cast<util::DurationNs>(spec_.govern.interval_ms * 1e6);
  util::TimestampNs next_watchdog =
      (watchdog != nullptr && spec_.observe.cadence > 0) ? spec_.observe.cadence
                                                         : kNever;
  util::TimestampNs next_governor =
      (gov != nullptr && governor_interval > 0) ? governor_interval : kNever;
  auto settle = [&] {
    if (options.mode == actors::ActorSystem::Mode::kManual) {
      fleet.actor_system().drain();
    } else {
      fleet.actor_system().await_idle();
    }
  };
  auto advance = [&](util::DurationNs amount) {
    const util::TimestampNs until = now + amount;
    while (now < until) {
      const util::TimestampNs stop =
          std::min(until, std::min(next_watchdog, next_governor));
      fleet.run_for(stop - now);
      now = stop;
      if (now >= next_governor) {
        fleet.actor_system().tell(gov_ref,
                                  actors::Payload(governor::GovernorTick{now}));
        settle();
        next_governor += governor_interval;
      }
      if (now >= next_watchdog) {
        fleet.actor_system().tell(watchdog_ref,
                                  actors::Payload(net::WatchdogTick{now}));
        settle();
        next_watchdog += spec_.observe.cadence;
      }
      if (status_listener != nullptr) status_listener->poll_once(0);
    }
  };

  std::size_t next = 0;
  while (next < injections.size()) {
    const util::TimestampNs at = injections[next]->at;
    if (at > now) advance(at - now);
    while (next < injections.size() && injections[next]->at == at) {
      apply(*injections[next]);
      ++next;
    }
  }
  if (duration > now) advance(duration - now);
  fleet.finish();

  // --- Collect ---
  RunResult result;
  for (std::size_t i = 0; i < impl_->hosts.size(); ++i) {
    result.hosts.push_back({impl_->hosts[i].id, reporters[i]->all()});
  }
  if (fleet_reporter) result.fleet = fleet_reporter->all();
  result.model_swaps = swaps.load();
  if (fleet.observability() != nullptr) {
    result.metrics = fleet.observability()->metrics.snapshot();
  }
  if (watchdog != nullptr) result.watchdog_alerts = watchdog->alerts_raised();
  if (gov != nullptr) result.governor_actuations = gov->actuation_count();
  return result;
}

}  // namespace powerapi::scenario
