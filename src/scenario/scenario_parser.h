// Parser for the scenario text format (grammar in DESIGN.md §"Scenario
// layer"). Strict by construction: unknown keys, bad enum values, duplicate
// ids, dangling references and truncated sections are all errors, and every
// error carries the offending <file>:<line> so a scenario typo reads like a
// compiler diagnostic, never a crash or a silently-ignored setting.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "scenario/scenario_spec.h"

namespace powerapi::scenario {

/// Thrown on any parse or validation failure; what() starts with
/// "<file>:<line>:".
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(const std::string& file, std::size_t line, const std::string& message)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " + message),
        file_(file),
        line_(line) {}

  const std::string& file() const noexcept { return file_; }
  std::size_t line() const noexcept { return line_; }

 private:
  std::string file_;
  std::size_t line_;
};

class ScenarioParser {
 public:
  /// Parses scenario text; `filename` labels diagnostics only.
  static ScenarioSpec parse_string(std::string_view text, const std::string& filename);

  /// Reads and parses a scenario file; throws ScenarioError (parse errors)
  /// or std::runtime_error (unreadable file).
  static ScenarioSpec parse_file(const std::string& path);
};

}  // namespace powerapi::scenario
