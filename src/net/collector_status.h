// CollectorStatus: the collector's per-agent health ledger plus a tiny
// line-oriented TCP status listener.
//
// CollectorStatus is a CollectorSink decorator — chain it in front of the
// BusBridge (or any sink) and it passively accounts every connection:
// record counts, last-activity stamps, the agent's self-reported drop /
// reconnect counters and self-watts (extracted from remote metrics
// snapshots), and the per-connection clock-offset estimate. When a
// TraceMerger is attached, remote spans and (send, recv) clock pairs flow
// into it, building the single merged Chrome trace across the fleet.
//
// The surface is pull-based: render_text() for humans ("status" command /
// periodic dumps), render_json() for machines (one line, JSONL-friendly),
// watchdog_sample() for the WatchdogActor. StatusListener serves the same
// renders over TCP — `echo status | nc host port` — without letting a
// slow reader touch the collection path.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/collector_server.h"
#include "net/watchdog.h"
#include "obs/trace_merge.h"

namespace powerapi::net {

struct CollectorStatusOptions {
  /// Merged-trace destination (non-owning; null = spans are dropped here).
  obs::TraceMerger* merger = nullptr;
  /// Staleness clock override for deterministic tests (default
  /// obs::wall_now_ns).
  std::function<std::int64_t()> clock;
  /// Disconnected agents retained for post-mortem renders (oldest evicted).
  std::size_t max_dead_agents = 16;
};

class CollectorStatus final : public CollectorSink {
 public:
  struct AgentStatus {
    ConnId conn = 0;
    std::string label;
    bool connected = false;
    std::uint64_t estimates = 0;
    std::uint64_t aggregated = 0;
    std::uint64_t metric_records = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t spans = 0;
    std::int64_t last_record_wall_ns = 0;    ///< Collector clock.
    std::int64_t last_snapshot_wall_ns = 0;  ///< Collector clock.
    std::int64_t clock_offset_ns = 0;
    bool has_offset = false;
    // Self-reported by the agent's metrics snapshots.
    double self_watts = 0.0;
    std::uint64_t records_dropped = 0;
    std::uint64_t reconnects = 0;
    /// Governor actuations the agent has applied (its "governor.actuations"
    /// counter); stays 0 for agents running uncapped.
    std::uint64_t governor_actuations = 0;
    std::string disconnect_reason;  ///< Set once disconnected.
  };

  /// Decorates `next`; both must outlive the server feeding this sink.
  CollectorStatus(CollectorSink& next, CollectorStatusOptions options = {});

  /// Lets renders include the server's wire totals (bytes, decode errors).
  /// Non-owning; call before the server starts feeding this sink.
  void attach_server(const CollectorServer* server) { server_ = server; }

  /// Point-in-time copy of every tracked agent (live first, then retained
  /// dead ones), sorted by connection id.
  std::vector<AgentStatus> agents() const;

  /// Sum of connected agents' self-reported watts.
  double fleet_self_watts() const;

  /// Human-readable multi-line table.
  void render_text(std::ostream& out) const;
  /// Single-line JSON object (JSONL-friendly).
  void render_json(std::ostream& out) const;

  /// The watchdog's view of the fleet.
  WatchdogSample watchdog_sample() const;

  // CollectorSink (server event-loop thread): account, then forward.
  void on_connect(ConnId conn) override;
  void on_hello(ConnId conn, std::string_view agent_id, std::uint8_t version) override;
  void on_estimate(ConnId conn, const api::PowerEstimate& estimate) override;
  void on_aggregated(ConnId conn, const api::AggregatedPower& row) override;
  void on_metric(ConnId conn, std::string_view name, obs::MetricKind kind,
                 double value) override;
  void on_metrics_snapshot(ConnId conn, std::int64_t send_wall_ns,
                           std::int64_t recv_wall_ns,
                           const obs::MetricsSnapshot& snapshot) override;
  void on_spans(ConnId conn, std::int64_t send_wall_ns, std::int64_t recv_wall_ns,
                const std::vector<RemoteSpan>& spans) override;
  void on_disconnect(ConnId conn, std::string_view reason) override;

 private:
  struct Entry {
    AgentStatus status;
    obs::TraceMerger::SourceId source = 0;
    bool has_source = false;
  };

  Entry& entry_locked(ConnId conn);
  std::int64_t now_ns() const;
  void refresh_offset_locked(Entry& entry);

  CollectorSink& next_;
  CollectorStatusOptions options_;
  const CollectorServer* server_ = nullptr;

  mutable std::mutex mutex_;
  std::map<ConnId, Entry> live_;
  std::vector<Entry> dead_;  ///< Bounded post-mortem retention.
};

/// Line-oriented TCP status listener: each received line is a command —
/// "status" (or an empty line) answers with the text render, "json" with
/// the JSONL render. Runs on manual poll_once() pumping, single-threaded,
/// bounded connections and line lengths; it shares no locks with the
/// collection hot path beyond the status object's own mutex.
class StatusListener {
 public:
  /// Renders a response; `json` selects the format.
  using Render = std::function<void(std::ostream& out, bool json)>;

  StatusListener(std::uint16_t port, Render render,
                 std::string bind_addr = "127.0.0.1");
  ~StatusListener();

  StatusListener(const StatusListener&) = delete;
  StatusListener& operator=(const StatusListener&) = delete;

  bool listening() const noexcept { return listener_.valid(); }
  const std::string& error() const noexcept { return error_; }
  std::uint16_t port() const noexcept { return port_; }

  /// Accepts + serves ready clients; blocks at most `timeout_ms`.
  /// Returns true when it made progress.
  bool poll_once(int timeout_ms);

 private:
  struct Client {
    Socket socket;
    std::string in;   ///< Partial command line.
    std::string out;  ///< Unwritten response bytes.
  };

  static constexpr std::size_t kMaxClients = 8;
  static constexpr std::size_t kMaxLineBytes = 128;

  bool serve_client(Client& client);

  Render render_;
  Socket listener_;
  std::string error_;
  std::uint16_t port_ = 0;
  std::vector<Client> clients_;
};

}  // namespace powerapi::net
