#include "net/bus_bridge.h"

#include <utility>

namespace powerapi::net {

BusBridge::BusBridge(actors::EventBus& bus, BusBridgeOptions options)
    : bus_(&bus),
      options_(std::move(options)),
      merged_estimate_(bus.intern(options_.topic_prefix + "power:estimation")),
      merged_aggregated_(bus.intern(options_.topic_prefix + "power:aggregated")) {}

BusBridge::AgentState& BusBridge::state(ConnId conn) {
  auto [it, inserted] = agents_.try_emplace(conn);
  if (inserted) {
    it->second.label = "conn" + std::to_string(conn);
    if (options_.per_agent_topics) {
      const std::string ns = options_.topic_prefix + it->second.label + "/";
      it->second.estimate_topic = bus_->intern(ns + "power:estimation");
      it->second.aggregated_topic = bus_->intern(ns + "power:aggregated");
    }
  }
  return it->second;
}

void BusBridge::on_connect(ConnId conn) { state(conn); }

void BusBridge::on_hello(ConnId conn, std::string_view agent_id,
                         std::uint8_t /*version*/) {
  AgentState& agent = state(conn);
  agent.label.assign(agent_id);
  if (options_.per_agent_topics) {
    const std::string ns = options_.topic_prefix + agent.label + "/";
    agent.estimate_topic = bus_->intern(ns + "power:estimation");
    agent.aggregated_topic = bus_->intern(ns + "power:aggregated");
  }
}

void BusBridge::on_estimate(ConnId conn, const api::PowerEstimate& estimate) {
  const AgentState& agent = state(conn);
  if (agent.estimate_topic != actors::EventBus::kNoTopic) {
    bus_->publish(agent.estimate_topic, estimate);
  }
  bus_->publish(merged_estimate_, estimate);
}

void BusBridge::on_aggregated(ConnId conn, const api::AggregatedPower& row) {
  const AgentState& agent = state(conn);
  if (agent.aggregated_topic != actors::EventBus::kNoTopic) {
    bus_->publish(agent.aggregated_topic, row);
  }
  bus_->publish(merged_aggregated_, row);
}

void BusBridge::on_metric(ConnId conn, std::string_view name,
                          obs::MetricKind /*kind*/, double value) {
  if (options_.obs == nullptr) return;
  // Every remote metric kind lands as a gauge: the wire carries point-in-
  // time values (a remote counter's running total IS a gauge here).
  const AgentState& agent = state(conn);
  options_.obs->metrics
      .gauge("remote." + agent.label + "." + std::string(name))
      .set(value);
}

void BusBridge::on_disconnect(ConnId conn, std::string_view /*reason*/) {
  agents_.erase(conn);
}

}  // namespace powerapi::net
