#include "net/bus_bridge.h"

#include <utility>

#include "obs/trace.h"

namespace powerapi::net {

BusBridge::BusBridge(actors::EventBus& bus, BusBridgeOptions options)
    : bus_(&bus),
      options_(std::move(options)),
      merged_estimate_(bus.intern(options_.topic_prefix + "power:estimation")),
      merged_aggregated_(bus.intern(options_.topic_prefix + "power:aggregated")) {
  if (options_.obs != nullptr) {
    collector_id_ = options_.obs->metrics.add_collector(
        [this](obs::SnapshotBuilder& builder) { collect(builder); });
  }
}

BusBridge::~BusBridge() {
  if (options_.obs != nullptr) {
    options_.obs->metrics.remove_collector(collector_id_);
  }
}

std::size_t BusBridge::live_agents() const {
  std::lock_guard lock(mutex_);
  return agents_.size();
}

void BusBridge::set_clock(std::function<std::int64_t()> clock) {
  std::lock_guard lock(mutex_);
  clock_ = std::move(clock);
}

std::int64_t BusBridge::now_ns() const {
  return clock_ ? clock_() : obs::wall_now_ns();
}

void BusBridge::assign_label_locked(ConnId conn, AgentState& agent,
                                    std::string label) {
  // Two live agents with the same hello id must not share a namespace —
  // suffix the newcomer with its connection id.
  for (const auto& [other_conn, other] : agents_) {
    if (other_conn != conn && other.label == label) {
      label += "#" + std::to_string(conn);
      break;
    }
  }
  agent.label = std::move(label);
  if (options_.per_agent_topics) {
    const std::string ns = options_.topic_prefix + agent.label + "/";
    agent.estimate_topic = bus_->intern(ns + "power:estimation");
    agent.aggregated_topic = bus_->intern(ns + "power:aggregated");
  }
}

BusBridge::AgentState& BusBridge::state_locked(ConnId conn) {
  auto [it, inserted] = agents_.try_emplace(conn);
  if (inserted) {
    assign_label_locked(conn, it->second, "conn" + std::to_string(conn));
    it->second.last_update_ns = now_ns();
  }
  return it->second;
}

void BusBridge::on_connect(ConnId conn) {
  std::lock_guard lock(mutex_);
  state_locked(conn);
}

void BusBridge::on_hello(ConnId conn, std::string_view agent_id,
                         std::uint8_t /*version*/) {
  std::lock_guard lock(mutex_);
  AgentState& agent = state_locked(conn);
  assign_label_locked(conn, agent, std::string(agent_id));
  agent.last_update_ns = now_ns();
}

void BusBridge::on_estimate(ConnId conn, const api::PowerEstimate& estimate) {
  actors::EventBus::TopicId topic = actors::EventBus::kNoTopic;
  {
    std::lock_guard lock(mutex_);
    AgentState& agent = state_locked(conn);
    agent.last_update_ns = now_ns();
    topic = agent.estimate_topic;
  }
  // Publish outside the lock: subscribers run arbitrary code.
  if (topic != actors::EventBus::kNoTopic) bus_->publish(topic, estimate);
  bus_->publish(merged_estimate_, estimate);
}

void BusBridge::on_aggregated(ConnId conn, const api::AggregatedPower& row) {
  actors::EventBus::TopicId topic = actors::EventBus::kNoTopic;
  {
    std::lock_guard lock(mutex_);
    AgentState& agent = state_locked(conn);
    agent.last_update_ns = now_ns();
    topic = agent.aggregated_topic;
  }
  if (topic != actors::EventBus::kNoTopic) bus_->publish(topic, row);
  bus_->publish(merged_aggregated_, row);
}

void BusBridge::on_metric(ConnId conn, std::string_view name,
                          obs::MetricKind /*kind*/, double value) {
  if (options_.obs == nullptr) return;
  std::lock_guard lock(mutex_);
  AgentState& agent = state_locked(conn);
  // Every remote metric kind lands as a gauge: the wire carries point-in-
  // time values (a remote counter's running total IS a gauge here).
  agent.metrics[std::string(name)] = value;
  agent.last_update_ns = now_ns();
}

void BusBridge::on_metrics_snapshot(ConnId conn, std::int64_t /*send_wall_ns*/,
                                    std::int64_t /*recv_wall_ns*/,
                                    const obs::MetricsSnapshot& snapshot) {
  if (options_.obs == nullptr) return;
  std::lock_guard lock(mutex_);
  AgentState& agent = state_locked(conn);
  for (const obs::MetricValue& metric : snapshot.metrics) {
    const std::string base = "obs." + metric.name;
    if (metric.kind == obs::MetricKind::kHistogram) {
      agent.metrics[base + ".count"] = static_cast<double>(metric.hist.count);
      agent.metrics[base + ".mean"] = metric.hist.mean();
      agent.metrics[base + ".p99"] = metric.hist.percentile(0.99);
    } else {
      agent.metrics[base] = metric.value;
    }
  }
  agent.last_update_ns = now_ns();
}

void BusBridge::on_disconnect(ConnId conn, std::string_view /*reason*/) {
  std::lock_guard lock(mutex_);
  agents_.erase(conn);
}

void BusBridge::collect(obs::SnapshotBuilder& builder) const {
  std::lock_guard lock(mutex_);
  const std::int64_t now = now_ns();
  for (const auto& [conn, agent] : agents_) {
    if (options_.metrics_stale_after_ns > 0 &&
        now - agent.last_update_ns > options_.metrics_stale_after_ns) {
      continue;  // Silent agent: withhold rather than serve stale values.
    }
    for (const auto& [name, value] : agent.metrics) {
      builder.gauge("remote." + agent.label + "." + name, value);
    }
  }
}

}  // namespace powerapi::net
