#include "net/collector_server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.h"

namespace powerapi::net {

namespace {
constexpr const char* kLog = "net.server";
}  // namespace

/// One accepted client: its socket, its decode state, and a WireSink
/// adapter stamping the connection id onto every callback.
struct CollectorServer::Connection : WireSink {
  Connection(ConnId id_in, Socket socket_in, std::size_t max_frame_bytes,
             CollectorSink& sink_in)
      : id(id_in),
        socket(std::move(socket_in)),
        decoder(max_frame_bytes),
        sink(sink_in) {}

  void on_hello(std::string_view agent_id_in, std::uint8_t version) override {
    agent_id.assign(agent_id_in);
    sink.on_hello(id, agent_id_in, version);
  }
  void on_estimate(const api::PowerEstimate& estimate) override {
    sink.on_estimate(id, estimate);
  }
  void on_aggregated(const api::AggregatedPower& row) override {
    sink.on_aggregated(id, row);
  }
  void on_metric(std::string_view name, obs::MetricKind kind,
                 double value) override {
    sink.on_metric(id, name, kind, value);
  }
  void on_metrics_snapshot(std::int64_t send_wall_ns,
                           const obs::MetricsSnapshot& snapshot) override {
    sink.on_metrics_snapshot(id, send_wall_ns, obs::wall_now_ns(), snapshot);
  }
  void on_spans(std::int64_t send_wall_ns,
                const std::vector<RemoteSpan>& spans) override {
    sink.on_spans(id, send_wall_ns, obs::wall_now_ns(), spans);
  }
  void on_bye() override { said_bye = true; }

  ConnId id;
  Socket socket;
  FrameDecoder decoder;
  CollectorSink& sink;
  std::string agent_id;
  bool said_bye = false;
};

CollectorServer::CollectorServer(CollectorServerOptions options,
                                 CollectorSink& sink)
    : options_(std::move(options)), sink_(sink) {
  if (obs::Observability* obs = options_.obs) {
    obs_accepted_ = &obs->metrics.counter("net.server.connections_accepted");
    obs_closed_ = &obs->metrics.counter("net.server.connections_closed");
    obs_bytes_ = &obs->metrics.counter("net.server.bytes_received");
    obs_frames_ = &obs->metrics.counter("net.server.frames_decoded");
    obs_records_ = &obs->metrics.counter("net.server.records_decoded");
    obs_decode_errors_ = &obs->metrics.counter("net.server.decode_errors");
  }
  listener_ = listen_tcp(options_.bind_addr, options_.port, &error_);
  if (listener_.valid()) {
    port_ = local_port(listener_);
    POWERAPI_LOG_INFO(kLog) << "listening on " << options_.bind_addr << ":"
                            << port_;
  } else {
    POWERAPI_LOG_ERROR(kLog) << "listen failed: " << error_;
  }
}

CollectorServer::~CollectorServer() { stop(); }

void CollectorServer::start() {
  if (thread_.joinable() || !listening()) return;
  stop_requested_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
}

void CollectorServer::loop() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    poll_once(20);
  }
}

void CollectorServer::stop() {
  if (thread_.joinable()) {
    stop_requested_.store(true, std::memory_order_relaxed);
    thread_.join();
  }
  while (!connections_.empty()) {
    close_connection(connections_.size() - 1, "server shutdown");
  }
  listener_.close();
}

bool CollectorServer::poll_once(int timeout_ms) {
  if (!listening() && connections_.empty()) return false;
  std::vector<struct pollfd> fds;
  fds.reserve(connections_.size() + 1);
  if (listening()) {
    fds.push_back({listener_.fd(), POLLIN, 0});
  }
  for (const auto& conn : connections_) {
    fds.push_back({conn->socket.fd(), POLLIN, 0});
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return false;

  bool progress = false;
  std::size_t fd_index = 0;
  if (listening()) {
    if ((fds[fd_index].revents & POLLIN) != 0) progress |= accept_ready();
    ++fd_index;
  }
  // Walk backwards so close_connection's swap-and-pop never disturbs the
  // indices still to visit. fds was captured before any accept, so it lines
  // up with the first connections_ entries even after new accepts.
  const std::size_t polled = fds.size() - fd_index;
  for (std::size_t i = polled; i-- > 0;) {
    if ((fds[fd_index + i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) {
      continue;
    }
    progress |= read_connection(*connections_[i]);
    if (!connections_[i]->socket.valid()) {
      close_connection(i, connections_[i]->decoder.failed()
                              ? connections_[i]->decoder.error()
                              : (connections_[i]->said_bye ? "bye" : "eof"));
      progress = true;
    }
  }
  return progress;
}

bool CollectorServer::accept_ready() {
  bool progress = false;
  for (;;) {
    Socket client(::accept(listener_.fd(), nullptr, nullptr));
    if (!client.valid()) break;  // EAGAIN / transient — try next poll.
    if (connections_.size() >= options_.max_connections) {
      POWERAPI_LOG_WARN(kLog) << "connection limit reached ("
                              << options_.max_connections << "), refusing";
      continue;  // client's dtor closes it.
    }
    set_nonblocking(client.fd());
    const int one = 1;
    ::setsockopt(client.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const ConnId id = next_conn_id_++;
    connections_.push_back(std::make_unique<Connection>(
        id, std::move(client), options_.max_frame_bytes, sink_));
    connection_count_.store(connections_.size(), std::memory_order_relaxed);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (obs_accepted_ != nullptr) obs_accepted_->add(1);
    sink_.on_connect(id);
    progress = true;
  }
  return progress;
}

bool CollectorServer::read_connection(Connection& conn) {
  bool progress = false;
  std::uint8_t buf[4096];
  std::size_t budget = options_.max_read_bytes_per_poll == 0
                           ? SIZE_MAX
                           : options_.max_read_bytes_per_poll;
  while (budget > 0) {
    const std::size_t want = std::min(budget, sizeof(buf));
    const ssize_t n = ::read(conn.socket.fd(), buf, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      POWERAPI_LOG_WARN(kLog) << "conn " << conn.id
                              << ": read failed: " << std::strerror(errno);
      conn.socket.close();
      return true;
    }
    if (n == 0) {  // EOF.
      conn.socket.close();
      return true;
    }
    progress = true;
    budget -= static_cast<std::size_t>(n);
    bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
    if (obs_bytes_ != nullptr) obs_bytes_->add(static_cast<std::uint64_t>(n));

    const std::uint64_t frames_before = conn.decoder.frames_decoded();
    const std::uint64_t records_before = conn.decoder.records_decoded();
    const std::uint64_t snapshots_before = conn.decoder.snapshots_decoded();
    const std::uint64_t spans_before = conn.decoder.spans_decoded();
    const bool ok =
        conn.decoder.consume(buf, static_cast<std::size_t>(n), conn);
    const std::uint64_t new_frames = conn.decoder.frames_decoded() - frames_before;
    const std::uint64_t new_records =
        conn.decoder.records_decoded() - records_before;
    snapshots_decoded_.fetch_add(
        conn.decoder.snapshots_decoded() - snapshots_before,
        std::memory_order_relaxed);
    spans_decoded_.fetch_add(conn.decoder.spans_decoded() - spans_before,
                             std::memory_order_relaxed);
    if (new_frames > 0) {
      frames_decoded_.fetch_add(new_frames, std::memory_order_relaxed);
      if (obs_frames_ != nullptr) obs_frames_->add(new_frames);
    }
    if (new_records > 0) {
      records_decoded_.fetch_add(new_records, std::memory_order_relaxed);
      if (obs_records_ != nullptr) obs_records_->add(new_records);
    }
    if (!ok) {
      // Protocol violation: this connection is beyond recovery (stream
      // state is lost), but only this connection.
      POWERAPI_LOG_WARN(kLog) << "conn " << conn.id << " ("
                              << (conn.agent_id.empty() ? "?" : conn.agent_id)
                              << "): " << conn.decoder.error();
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      if (obs_decode_errors_ != nullptr) obs_decode_errors_->add(1);
      conn.socket.close();
      return true;
    }
  }
  return progress;
}

void CollectorServer::close_connection(std::size_t index,
                                       std::string_view reason) {
  const std::unique_ptr<Connection> conn = std::move(connections_[index]);
  connections_[index] = std::move(connections_.back());
  connections_.pop_back();
  connection_count_.store(connections_.size(), std::memory_order_relaxed);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  if (obs_closed_ != nullptr) obs_closed_->add(1);
  POWERAPI_LOG_INFO(kLog) << "conn " << conn->id << " ("
                          << (conn->agent_id.empty() ? "?" : conn->agent_id)
                          << ") closed: " << reason;
  sink_.on_disconnect(conn->id, reason);
}

CollectorServer::Stats CollectorServer::stats() const {
  Stats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  stats.frames_decoded = frames_decoded_.load(std::memory_order_relaxed);
  stats.records_decoded = records_decoded_.load(std::memory_order_relaxed);
  stats.snapshots_decoded = snapshots_decoded_.load(std::memory_order_relaxed);
  stats.spans_decoded = spans_decoded_.load(std::memory_order_relaxed);
  stats.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace powerapi::net
