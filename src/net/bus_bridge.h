// BusBridge: a CollectorSink that republishes decoded telemetry onto a
// local event bus, so everything downstream of a bus — aggregators,
// reporters, the obs metrics reporter — works unchanged on remote data.
//
// Topic scheme mirrors the fleet namespaces ("h<i>/..."): each record is
// published twice, once under its agent's namespace and once merged:
//
//   remote/<agent>/power:estimation    remote/power:estimation
//   remote/<agent>/power:aggregated    remote/power:aggregated
//
// The merged topics are what a collector-side FleetAggregator subscribes
// to; the per-agent topics let a reporter follow one machine. Agents are
// named by their hello frame; records arriving before a hello (a protocol-
// tolerated but unusual ordering) fall back to the "conn<id>" label. Two
// live agents claiming the same hello id stay distinguishable: the later
// one is suffixed "#<conn>" so their metrics never collide.
//
// Remote metrics re-export as gauges at the fleet collection point: metric
// records surface as "remote.<agent>.<name>", full metrics-snapshot frames
// as "remote.<agent>.obs.<name>" (histograms flattened to .count / .mean /
// .p99). The bridge holds them per agent and contributes them through a
// registry snapshot collector, so a disconnected agent's metrics vanish
// with it, a reconnect starts from a clean slate, and agents silent past
// `metrics_stale_after_ns` are withheld rather than served stale.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "actors/event_bus.h"
#include "net/collector_server.h"
#include "obs/observability.h"

namespace powerapi::net {

struct BusBridgeOptions {
  /// Prepended to every topic the bridge publishes on.
  std::string topic_prefix = "remote/";
  /// Also publish under "remote/<agent>/..." per-agent namespaces.
  bool per_agent_topics = true;
  /// Republish remote metrics as gauges here (non-owning; may be null to
  /// drop them).
  obs::Observability* obs = nullptr;
  /// Withhold an agent's gauges from snapshots once it has been silent
  /// this long (0 = never expire). Measured on the bridge's clock.
  std::int64_t metrics_stale_after_ns = 0;
};

class BusBridge final : public CollectorSink {
 public:
  BusBridge(actors::EventBus& bus, BusBridgeOptions options = {});
  ~BusBridge() override;

  /// Merged topics (every agent's records): subscribe aggregators here.
  actors::EventBus::TopicId estimate_topic() const noexcept { return merged_estimate_; }
  actors::EventBus::TopicId aggregated_topic() const noexcept { return merged_aggregated_; }

  /// Agents that have connected and not yet disconnected.
  std::size_t live_agents() const;

  /// Overrides the staleness clock (defaults to obs::wall_now_ns) for
  /// deterministic expiry tests.
  void set_clock(std::function<std::int64_t()> clock);

  // CollectorSink (server event-loop thread).
  void on_connect(ConnId conn) override;
  void on_hello(ConnId conn, std::string_view agent_id, std::uint8_t version) override;
  void on_estimate(ConnId conn, const api::PowerEstimate& estimate) override;
  void on_aggregated(ConnId conn, const api::AggregatedPower& row) override;
  void on_metric(ConnId conn, std::string_view name, obs::MetricKind kind,
                 double value) override;
  void on_metrics_snapshot(ConnId conn, std::int64_t send_wall_ns,
                           std::int64_t recv_wall_ns,
                           const obs::MetricsSnapshot& snapshot) override;
  void on_disconnect(ConnId conn, std::string_view reason) override;

 private:
  struct AgentState {
    std::string label;  ///< agent_id after hello; "conn<id>" before.
    actors::EventBus::TopicId estimate_topic = actors::EventBus::kNoTopic;
    actors::EventBus::TopicId aggregated_topic = actors::EventBus::kNoTopic;
    /// Re-exported remote metrics, keyed by unprefixed name.
    std::map<std::string, double> metrics;
    std::int64_t last_update_ns = 0;
  };

  AgentState& state_locked(ConnId conn);
  void assign_label_locked(ConnId conn, AgentState& agent, std::string label);
  std::int64_t now_ns() const;
  void collect(obs::SnapshotBuilder& builder) const;

  actors::EventBus* bus_;
  BusBridgeOptions options_;
  actors::EventBus::TopicId merged_estimate_;
  actors::EventBus::TopicId merged_aggregated_;

  /// Guards agents_ and clock_: sink callbacks run on the server loop
  /// thread while snapshot collectors may pull from any thread.
  mutable std::mutex mutex_;
  std::map<ConnId, AgentState> agents_;
  std::function<std::int64_t()> clock_;
  obs::MetricsRegistry::CollectorId collector_id_ = 0;
};

}  // namespace powerapi::net
