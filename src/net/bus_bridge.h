// BusBridge: a CollectorSink that republishes decoded telemetry onto a
// local event bus, so everything downstream of a bus — aggregators,
// reporters, the obs metrics reporter — works unchanged on remote data.
//
// Topic scheme mirrors the fleet namespaces ("h<i>/..."): each record is
// published twice, once under its agent's namespace and once merged:
//
//   remote/<agent>/power:estimation    remote/power:estimation
//   remote/<agent>/power:aggregated    remote/power:aggregated
//
// The merged topics are what a collector-side FleetAggregator subscribes
// to; the per-agent topics let a reporter follow one machine. Agents are
// named by their hello frame; records arriving before a hello (a protocol-
// tolerated but unusual ordering) fall back to the "conn<id>" label.
//
// Remote metric records become gauges "remote.<agent>.<metric-name>" in the
// bridge's observability registry — an agent's self-observability counters,
// re-exported at the fleet collection point.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "actors/event_bus.h"
#include "net/collector_server.h"
#include "obs/observability.h"

namespace powerapi::net {

struct BusBridgeOptions {
  /// Prepended to every topic the bridge publishes on.
  std::string topic_prefix = "remote/";
  /// Also publish under "remote/<agent>/..." per-agent namespaces.
  bool per_agent_topics = true;
  /// Republish remote metric records as gauges here (non-owning; may be
  /// null to drop them).
  obs::Observability* obs = nullptr;
};

class BusBridge final : public CollectorSink {
 public:
  BusBridge(actors::EventBus& bus, BusBridgeOptions options = {});

  /// Merged topics (every agent's records): subscribe aggregators here.
  actors::EventBus::TopicId estimate_topic() const noexcept { return merged_estimate_; }
  actors::EventBus::TopicId aggregated_topic() const noexcept { return merged_aggregated_; }

  /// Agents that have said hello and not yet disconnected.
  std::size_t live_agents() const noexcept { return agents_.size(); }

  // CollectorSink (server event-loop thread).
  void on_connect(ConnId conn) override;
  void on_hello(ConnId conn, std::string_view agent_id, std::uint8_t version) override;
  void on_estimate(ConnId conn, const api::PowerEstimate& estimate) override;
  void on_aggregated(ConnId conn, const api::AggregatedPower& row) override;
  void on_metric(ConnId conn, std::string_view name, obs::MetricKind kind,
                 double value) override;
  void on_disconnect(ConnId conn, std::string_view reason) override;

 private:
  struct AgentState {
    std::string label;  ///< agent_id after hello; "conn<id>" before.
    actors::EventBus::TopicId estimate_topic = actors::EventBus::kNoTopic;
    actors::EventBus::TopicId aggregated_topic = actors::EventBus::kNoTopic;
  };

  AgentState& state(ConnId conn);

  actors::EventBus* bus_;
  BusBridgeOptions options_;
  actors::EventBus::TopicId merged_estimate_;
  actors::EventBus::TopicId merged_aggregated_;
  std::map<ConnId, AgentState> agents_;
};

}  // namespace powerapi::net
