// CollectorServer: the collector side of the telemetry wire — accepts
// TelemetryClient connections and decodes their frames into a CollectorSink.
//
// Single-threaded poll(2) event loop over the listener plus every live
// connection; run it on the start() background thread or pump poll_once()
// manually for deterministic tests. Each connection owns an independent
// FrameDecoder (wire dictionaries and timestamp bases are per-connection
// state), so agents never interfere with each other's streams.
//
// Fault containment: a malformed frame — bad magic, corrupt CRC, truncated
// record, hostile length — poisons only that connection's decoder. The
// server counts the error ("net.server.decode_errors"), closes that
// connection, and keeps serving everyone else. The server never writes to
// clients, so it cannot block on a slow peer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "obs/observability.h"

namespace powerapi::net {

/// Identifies one accepted connection for the lifetime of the server
/// (monotonic, never reused).
using ConnId = std::uint64_t;

/// Receiver for decoded telemetry, tagged with the originating connection.
/// Callbacks run on the server's event-loop thread.
class CollectorSink {
 public:
  virtual ~CollectorSink() = default;
  virtual void on_connect(ConnId /*conn*/) {}
  /// First frame of a well-behaved client; `agent_id` identifies the peer.
  virtual void on_hello(ConnId /*conn*/, std::string_view /*agent_id*/,
                        std::uint8_t /*version*/) {}
  virtual void on_estimate(ConnId /*conn*/, const api::PowerEstimate& /*estimate*/) {}
  virtual void on_aggregated(ConnId /*conn*/, const api::AggregatedPower& /*row*/) {}
  virtual void on_metric(ConnId /*conn*/, std::string_view /*name*/,
                         obs::MetricKind /*kind*/, double /*value*/) {}
  /// A remote metrics snapshot. `send_wall_ns` is the agent's local clock at
  /// emission; `recv_wall_ns` is this process's clock at decode — the pair
  /// feeds per-connection clock-offset estimation.
  virtual void on_metrics_snapshot(ConnId /*conn*/, std::int64_t /*send_wall_ns*/,
                                   std::int64_t /*recv_wall_ns*/,
                                   const obs::MetricsSnapshot& /*snapshot*/) {}
  /// Remote trace spans (agent-local timestamps; see on_metrics_snapshot
  /// for the clock stamps).
  virtual void on_spans(ConnId /*conn*/, std::int64_t /*send_wall_ns*/,
                        std::int64_t /*recv_wall_ns*/,
                        const std::vector<RemoteSpan>& /*spans*/) {}
  /// `reason` is "bye", "eof", or a decode/read error description.
  virtual void on_disconnect(ConnId /*conn*/, std::string_view /*reason*/) {}
};

struct CollectorServerOptions {
  std::string bind_addr = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port().
  std::uint16_t port = 0;
  std::size_t max_connections = 64;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection read budget per poll_once (0 = unlimited). Small values
  /// simulate a slow reader: the client's unsent-bytes cap then engages and
  /// its drop accounting becomes observable in tests.
  std::size_t max_read_bytes_per_poll = 0;
  /// Optional self-observability (non-owning): "net.server.*" counters.
  obs::Observability* obs = nullptr;
};

class CollectorServer {
 public:
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t frames_decoded = 0;
    std::uint64_t records_decoded = 0;
    std::uint64_t snapshots_decoded = 0;  ///< Remote metrics snapshots.
    std::uint64_t spans_decoded = 0;      ///< Remote trace spans.
    std::uint64_t bytes_received = 0;
    std::uint64_t decode_errors = 0;  ///< Connections killed by bad input.
  };

  /// Binds and listens immediately; on failure listening() is false and
  /// error() says why. `sink` must outlive the server.
  CollectorServer(CollectorServerOptions options, CollectorSink& sink);
  ~CollectorServer();

  CollectorServer(const CollectorServer&) = delete;
  CollectorServer& operator=(const CollectorServer&) = delete;

  bool listening() const noexcept { return listener_.valid(); }
  const std::string& error() const noexcept { return error_; }
  /// The bound port (resolves ephemeral port 0 requests).
  std::uint16_t port() const noexcept { return port_; }

  /// Runs the loop on a background thread until stop().
  void start();
  /// Stops the background loop (if running) and closes every connection.
  void stop();
  /// One loop step — accept + read every ready connection — blocking at
  /// most `timeout_ms`. Manual mode only (not concurrently with start()).
  /// Returns true when it made progress (accepted, read, or closed).
  bool poll_once(int timeout_ms);

  std::size_t connection_count() const noexcept {
    return connection_count_.load(std::memory_order_relaxed);
  }
  Stats stats() const;

 private:
  struct Connection;

  bool accept_ready();
  bool read_connection(Connection& conn);
  void close_connection(std::size_t index, std::string_view reason);
  void loop();

  CollectorServerOptions options_;
  CollectorSink& sink_;
  Socket listener_;
  std::string error_;
  std::uint16_t port_ = 0;
  ConnId next_conn_id_ = 1;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<std::size_t> connection_count_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> frames_decoded_{0};
  std::atomic<std::uint64_t> records_decoded_{0};
  std::atomic<std::uint64_t> snapshots_decoded_{0};
  std::atomic<std::uint64_t> spans_decoded_{0};
  std::atomic<std::uint64_t> decode_errors_{0};

  obs::Counter* obs_accepted_ = nullptr;
  obs::Counter* obs_closed_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_frames_ = nullptr;
  obs::Counter* obs_records_ = nullptr;
  obs::Counter* obs_decode_errors_ = nullptr;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace powerapi::net
