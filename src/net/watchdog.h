// WatchdogActor: rate-limited, structured anomaly alerts over the fleet's
// observability plane.
//
// The watchdog is the first consumer of the collector's merged view (and
// the hook the future GovernorActor will reuse): on every WatchdogTick it
// pulls a WatchdogSample from a probe (CollectorStatus::watchdog_sample in
// production, a scripted lambda in tests) and publishes an Alert on topic
// "obs/alert" for each tripped rule:
//
//   kDropSpike       — an agent dropped more than `drop_spike` records
//                      since the previous tick;
//   kReconnectStorm  — an agent's reconnect counter grew by more than
//                      `reconnect_storm` since the previous tick;
//   kStale           — a connected agent produced no records for longer
//                      than `staleness_ns`;
//   kSelfWattsBudget — fleet-wide self-monitoring watts exceed
//                      `self_watts_budget` (the observer-effect cap);
//   kBudgetViolation — sensed fleet power has exceeded the governor's watt
//                      budget for `budget_violation_ticks` consecutive
//                      ticks (the cap is being violated faster than the
//                      governor can throttle — or actuation is pinned at
//                      the ladder floor).
//
// Alerts are rate-limited per (kind, agent): repeats inside
// `min_alert_interval_ns` are suppressed and counted, so a flapping agent
// cannot flood the bus. Both raised and suppressed alerts surface as
// "obs.watchdog.*" counters. Time comes exclusively from WatchdogTick's
// now_ns, so every rule is deterministic under kManual dispatch.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "actors/actor.h"
#include "actors/event_bus.h"
#include "obs/observability.h"

namespace powerapi::net {

/// Point-in-time fleet view the watchdog evaluates (a snapshot of
/// CollectorStatus, decoupled so tests can script it).
struct WatchdogSample {
  struct Agent {
    std::string label;
    bool connected = false;
    std::uint64_t records_dropped = 0;  ///< Running total (deltas evaluated).
    std::uint64_t reconnects = 0;       ///< Running total (deltas evaluated).
    std::int64_t last_activity_wall_ns = 0;
  };
  std::vector<Agent> agents;
  double fleet_self_watts = 0.0;
  /// Governor plane (0/0 when no governor runs): the sensed fleet draw and
  /// the configured cap, as of this tick.
  double fleet_power_watts = 0.0;
  double power_budget_watts = 0.0;
};

/// Tick message: drives evaluation; `now_ns` is the evaluation clock.
struct WatchdogTick {
  std::int64_t now_ns = 0;
};

struct WatchdogOptions {
  /// Per-tick drop delta that trips kDropSpike.
  std::uint64_t drop_spike = 100;
  /// Per-tick reconnect delta that trips kReconnectStorm.
  std::uint64_t reconnect_storm = 3;
  /// Silence that trips kStale for a connected agent.
  std::int64_t staleness_ns = 5'000'000'000;
  /// Fleet self-watts cap for kSelfWattsBudget (0 disables the rule).
  double self_watts_budget = 0.0;
  /// Consecutive over-budget ticks before kBudgetViolation raises (the
  /// governor gets this many ticks to throttle before the alarm; sample
  /// power_budget_watts == 0 disables the rule).
  std::uint64_t budget_violation_ticks = 3;
  /// Minimum spacing between repeats of the same (kind, agent) alert.
  std::int64_t min_alert_interval_ns = 1'000'000'000;
  /// Optional counters "obs.watchdog.alerts" / ".suppressed" (non-owning).
  obs::Observability* obs = nullptr;
};

struct Alert {
  enum class Kind {
    kDropSpike,
    kReconnectStorm,
    kStale,
    kSelfWattsBudget,
    kBudgetViolation,
  };

  Kind kind = Kind::kDropSpike;
  std::string agent;  ///< Empty for fleet-wide alerts.
  double value = 0.0;
  double threshold = 0.0;
  std::int64_t wall_ns = 0;
  std::string message;
};

std::string_view to_string(Alert::Kind kind) noexcept;

class WatchdogActor final : public actors::Actor {
 public:
  using Probe = std::function<WatchdogSample()>;

  /// Alerts publish on `bus` topic "obs/alert"; `probe` supplies the fleet
  /// view per tick.
  WatchdogActor(actors::EventBus& bus, Probe probe, WatchdogOptions options = {});

  actors::EventBus::TopicId alert_topic() const noexcept { return alert_topic_; }

  std::uint64_t alerts_raised() const noexcept { return alerts_raised_; }
  std::uint64_t alerts_suppressed() const noexcept { return alerts_suppressed_; }

  void receive(actors::Envelope& envelope) override;

 private:
  struct AgentBaseline {
    std::uint64_t records_dropped = 0;
    std::uint64_t reconnects = 0;
    bool seen = false;
  };

  void evaluate(std::int64_t now_ns);
  void raise(Alert::Kind kind, const std::string& agent, double value,
             double threshold, std::int64_t now_ns, std::string message);

  actors::EventBus* bus_;
  Probe probe_;
  WatchdogOptions options_;
  actors::EventBus::TopicId alert_topic_;

  std::map<std::string, AgentBaseline> baselines_;
  std::map<std::pair<int, std::string>, std::int64_t> last_alert_ns_;
  /// Consecutive ticks the sensed fleet power exceeded the budget; resets
  /// to zero the moment a tick lands back under (re-baselining, like the
  /// per-agent counters above).
  std::uint64_t over_budget_ticks_ = 0;
  std::uint64_t alerts_raised_ = 0;
  std::uint64_t alerts_suppressed_ = 0;
  obs::Counter* obs_alerts_ = nullptr;
  obs::Counter* obs_suppressed_ = nullptr;
};

}  // namespace powerapi::net
