#include "net/watchdog.h"

#include <sstream>

#include "util/logging.h"

namespace powerapi::net {

namespace {
constexpr const char* kLog = "net.watchdog";
}  // namespace

std::string_view to_string(Alert::Kind kind) noexcept {
  switch (kind) {
    case Alert::Kind::kDropSpike: return "drop_spike";
    case Alert::Kind::kReconnectStorm: return "reconnect_storm";
    case Alert::Kind::kStale: return "stale";
    case Alert::Kind::kSelfWattsBudget: return "self_watts_budget";
    case Alert::Kind::kBudgetViolation: return "budget_violation";
  }
  return "?";
}

WatchdogActor::WatchdogActor(actors::EventBus& bus, Probe probe,
                             WatchdogOptions options)
    : bus_(&bus),
      probe_(std::move(probe)),
      options_(options),
      alert_topic_(bus.intern("obs/alert")) {
  if (options_.obs != nullptr) {
    obs_alerts_ = &options_.obs->metrics.counter("obs.watchdog.alerts");
    obs_suppressed_ = &options_.obs->metrics.counter("obs.watchdog.suppressed");
  }
}

void WatchdogActor::receive(actors::Envelope& envelope) {
  if (const WatchdogTick* tick = envelope.payload.get<WatchdogTick>()) {
    evaluate(tick->now_ns);
  }
}

void WatchdogActor::evaluate(std::int64_t now_ns) {
  const WatchdogSample sample = probe_ ? probe_() : WatchdogSample{};
  for (const WatchdogSample::Agent& agent : sample.agents) {
    AgentBaseline& base = baselines_[agent.label];
    if (base.seen) {
      // Counters are monotone per agent; a reconnect-reset (smaller value)
      // just re-baselines without alerting.
      const std::uint64_t drop_delta =
          agent.records_dropped >= base.records_dropped
              ? agent.records_dropped - base.records_dropped
              : 0;
      const std::uint64_t reconnect_delta = agent.reconnects >= base.reconnects
                                                ? agent.reconnects - base.reconnects
                                                : 0;
      if (drop_delta > options_.drop_spike) {
        raise(Alert::Kind::kDropSpike, agent.label,
              static_cast<double>(drop_delta),
              static_cast<double>(options_.drop_spike), now_ns,
              agent.label + " dropped " + std::to_string(drop_delta) +
                  " records since last tick");
      }
      if (reconnect_delta > options_.reconnect_storm) {
        raise(Alert::Kind::kReconnectStorm, agent.label,
              static_cast<double>(reconnect_delta),
              static_cast<double>(options_.reconnect_storm), now_ns,
              agent.label + " reconnected " + std::to_string(reconnect_delta) +
                  " times since last tick");
      }
    }
    base.records_dropped = agent.records_dropped;
    base.reconnects = agent.reconnects;
    base.seen = true;

    if (agent.connected && agent.last_activity_wall_ns > 0 &&
        now_ns - agent.last_activity_wall_ns > options_.staleness_ns) {
      const double silent_ns =
          static_cast<double>(now_ns - agent.last_activity_wall_ns);
      raise(Alert::Kind::kStale, agent.label, silent_ns,
            static_cast<double>(options_.staleness_ns), now_ns,
            agent.label + " silent for " +
                std::to_string(silent_ns / 1e9) + " s");
    }
  }
  if (options_.self_watts_budget > 0.0 &&
      sample.fleet_self_watts > options_.self_watts_budget) {
    std::ostringstream message;
    message << "fleet self-monitoring at " << sample.fleet_self_watts
            << " W exceeds budget " << options_.self_watts_budget << " W";
    raise(Alert::Kind::kSelfWattsBudget, "", sample.fleet_self_watts,
          options_.self_watts_budget, now_ns, message.str());
  }
  if (sample.power_budget_watts > 0.0) {
    if (sample.fleet_power_watts > sample.power_budget_watts) {
      ++over_budget_ticks_;
      if (over_budget_ticks_ >= options_.budget_violation_ticks) {
        std::ostringstream message;
        message << "fleet at " << sample.fleet_power_watts
                << " W over governor budget " << sample.power_budget_watts
                << " W for " << over_budget_ticks_ << " ticks";
        raise(Alert::Kind::kBudgetViolation, "", sample.fleet_power_watts,
              sample.power_budget_watts, now_ns, message.str());
      }
    } else {
      over_budget_ticks_ = 0;  // Back under the cap: re-baseline.
    }
  }
}

void WatchdogActor::raise(Alert::Kind kind, const std::string& agent,
                          double value, double threshold, std::int64_t now_ns,
                          std::string message) {
  std::int64_t& last = last_alert_ns_[{static_cast<int>(kind), agent}];
  // `last` is one-past the real stamp so a legitimate tick at now_ns == 0
  // (deterministic tests start there) is not mistaken for "never raised".
  if (last != 0 && now_ns - (last - 1) < options_.min_alert_interval_ns) {
    ++alerts_suppressed_;
    if (obs_suppressed_ != nullptr) obs_suppressed_->add(1);
    return;
  }
  last = now_ns + 1;
  ++alerts_raised_;
  if (obs_alerts_ != nullptr) obs_alerts_->add(1);
  Alert alert;
  alert.kind = kind;
  alert.agent = agent;
  alert.value = value;
  alert.threshold = threshold;
  alert.wall_ns = now_ns;
  alert.message = std::move(message);
  POWERAPI_LOG_WARN(kLog) << to_string(kind) << ": " << alert.message;
  bus_->publish(alert_topic_, alert, self());
}

}  // namespace powerapi::net
