// TelemetryClient: the agent side of the telemetry wire — batches pipeline
// records and ships them to a CollectorServer over non-blocking TCP.
//
// Producers (reporter actors, any thread) call report(); records land in a
// bounded queue. The event loop — either the start() background thread or
// manual poll_once() calls for deterministic tests — drains the queue into
// the wire encoder and flushes a frame when the batch hits a size bound or
// its deadline (flush-on-size / flush-on-deadline).
//
// Failure policy is "monitoring must not become the workload": the send
// queue is bounded with drop-oldest backpressure (a slow or dead collector
// costs a bounded amount of memory and zero blocking on the report path),
// every drop is counted (obs "net.client.records_dropped"), and a lost
// connection is retried with exponentially backed-off, jittered reconnects
// that re-emit the wire dictionary on the fresh connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "obs/observability.h"
#include "util/rng.h"

namespace powerapi::net {

struct TelemetryClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Identifies this agent to the collector (hello frame; the collector
  /// bridges records under "remote/<agent_id>/...").
  std::string agent_id = "agent";

  // Batching: a frame closes when it reaches either size bound, or when
  // the oldest record in the open batch is flush_interval_ms old.
  std::size_t batch_max_records = 128;
  std::size_t batch_max_bytes = 32 * 1024;
  std::int64_t flush_interval_ms = 50;

  /// Bounded record queue; when full the OLDEST record is dropped (fresh
  /// telemetry beats stale telemetry) and counted.
  std::size_t queue_max_records = 8192;
  /// Encoded-but-unwritten bytes cap: past it the client stops encoding
  /// (the queue then absorbs, and eventually drops) — the slow-reader
  /// guard.
  std::size_t max_unsent_bytes = 256 * 1024;

  // Reconnect: exponential backoff with jitter in [backoff/2, backoff).
  std::int64_t backoff_initial_ms = 10;
  std::int64_t backoff_max_ms = 2000;
  std::uint64_t jitter_seed = 1;

  /// Optional self-observability (non-owning): "net.client.*" counters and
  /// batch-size / flush-latency histograms.
  obs::Observability* obs = nullptr;

  /// Cadence for shipping the agent's own observability over the wire
  /// (metrics-snapshot frame + drained trace spans). 0 disables the obs
  /// frames entirely — the stream is then byte-identical to the base wire.
  /// Requires `obs` to be set.
  std::int64_t obs_interval_ms = 0;
};

class TelemetryClient {
 public:
  struct Stats {
    std::uint64_t records_enqueued = 0;
    std::uint64_t records_sent = 0;     ///< Fully written to the socket.
    std::uint64_t records_dropped = 0;  ///< Queue overflow + lost in-flight.
    std::uint64_t frames_sent = 0;
    std::uint64_t obs_frames_sent = 0;  ///< Metrics-snapshot + span frames.
    std::uint64_t bytes_sent = 0;
    std::uint64_t connects = 0;         ///< Successful connections.
    std::uint64_t reconnects = 0;       ///< Backoff cycles scheduled.
  };

  explicit TelemetryClient(TelemetryClientOptions options);
  ~TelemetryClient();

  TelemetryClient(const TelemetryClient&) = delete;
  TelemetryClient& operator=(const TelemetryClient&) = delete;

  // --- Producers (any thread, never blocks on the network) ---
  void report(const api::PowerEstimate& estimate);
  void report(const api::AggregatedPower& row);
  void report_metric(std::string name, obs::MetricKind kind, double value);

  // --- Event loop ---
  /// Runs the loop on a background thread until stop().
  void start();
  /// Stops the loop (if running), then pumps the connection until every
  /// queued record is on the wire or `flush_timeout_ms` elapses, sends a
  /// bye frame, and closes. Idempotent.
  void stop(std::int64_t flush_timeout_ms = 200);
  /// One loop step, blocking at most `timeout_ms`. Manual mode only (not
  /// concurrently with start()). Returns true when it made progress.
  bool poll_once(int timeout_ms);
  /// Blocks until queue + encoder + socket buffers are empty or timeout.
  /// Pumps the loop itself in manual mode; waits on the thread otherwise.
  bool flush(std::int64_t timeout_ms);

  bool connected() const noexcept {
    return connected_.load(std::memory_order_relaxed);
  }
  Stats stats() const;

 private:
  struct Metric {
    std::string name;
    obs::MetricKind kind = obs::MetricKind::kGauge;
    double value = 0.0;
  };
  using Record = std::variant<api::PowerEstimate, api::AggregatedPower, Metric>;

  struct OutFrame {
    std::vector<std::uint8_t> bytes;
    std::size_t offset = 0;     ///< Written so far (partial writes).
    std::size_t records = 0;
    std::int64_t opened_ms = 0; ///< When the batch opened (flush latency).
  };

  enum class ConnState { kDisconnected, kConnecting, kConnected };

  void enqueue(Record record);
  bool step_disconnected(int timeout_ms);
  bool step_connecting(int timeout_ms);
  bool step_connected(int timeout_ms);
  bool encode_batches(std::int64_t now_ms);
  void close_batch(std::int64_t now_ms);
  bool maybe_emit_obs(std::int64_t now_ms);
  bool write_frames();
  void handle_disconnect(bool failure);
  void schedule_backoff(std::int64_t now_ms);
  void update_inflight() noexcept;
  bool drained() const noexcept;
  void loop();

  TelemetryClientOptions options_;
  util::Rng rng_;

  // Producer side.
  mutable std::mutex mutex_;
  std::deque<Record> pending_;

  // Loop-owned connection state.
  Socket socket_;
  ConnState state_ = ConnState::kDisconnected;
  WireEncoder encoder_;
  std::deque<OutFrame> out_frames_;
  std::size_t unsent_bytes_ = 0;
  std::int64_t batch_opened_ms_ = 0;
  std::int64_t last_obs_ms_ = 0;
  std::vector<obs::TraceCollector::Span> span_buf_;
  std::int64_t next_attempt_ms_ = 0;
  std::uint32_t backoff_attempts_ = 0;

  // Shared observation of loop state.
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> inflight_records_{0};

  // Stats (relaxed atomics; readable from any thread).
  std::atomic<std::uint64_t> records_enqueued_{0};
  std::atomic<std::uint64_t> records_sent_{0};
  std::atomic<std::uint64_t> records_dropped_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> obs_frames_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> reconnects_{0};

  // Observability handles (null when options_.obs is null).
  obs::Counter* obs_enqueued_ = nullptr;
  obs::Counter* obs_sent_ = nullptr;
  obs::Counter* obs_dropped_ = nullptr;
  obs::Counter* obs_frames_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_reconnects_ = nullptr;
  obs::Counter* obs_obs_frames_ = nullptr;
  obs::Histogram* obs_batch_records_ = nullptr;
  obs::Histogram* obs_flush_latency_ = nullptr;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  bool stopped_ = false;
};

}  // namespace powerapi::net
