#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace powerapi::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool parse_addr(const std::string& text, std::uint16_t port, sockaddr_in& out,
                std::string* error) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  if (::inet_pton(AF_INET, text.c_str(), &out.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address '" + text + "'";
    return false;
  }
  return true;
}

}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Socket listen_tcp(const std::string& bind_addr, std::uint16_t port,
                  std::string* error) {
  sockaddr_in addr{};
  if (!parse_addr(bind_addr, port, addr, error)) return Socket{};
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    if (error != nullptr) *error = errno_text("socket");
    return Socket{};
  }
  const int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = errno_text("bind");
    return Socket{};
  }
  if (::listen(socket.fd(), 64) != 0) {
    if (error != nullptr) *error = errno_text("listen");
    return Socket{};
  }
  if (!set_nonblocking(socket.fd())) {
    if (error != nullptr) *error = errno_text("fcntl(O_NONBLOCK)");
    return Socket{};
  }
  return socket;
}

std::uint16_t local_port(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (!socket.valid() ||
      ::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::string* error) {
  sockaddr_in addr{};
  if (!parse_addr(host, port, addr, error)) return Socket{};
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    if (error != nullptr) *error = errno_text("socket");
    return Socket{};
  }
  if (!set_nonblocking(socket.fd())) {
    if (error != nullptr) *error = errno_text("fcntl(O_NONBLOCK)");
    return Socket{};
  }
  const int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    if (error != nullptr) *error = errno_text("connect");
    return Socket{};
  }
  return socket;
}

int connect_error(const Socket& socket) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return errno;
  }
  return err;
}

}  // namespace powerapi::net
