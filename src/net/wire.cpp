#include "net/wire.h"

#include <cstring>

#include "util/crc32c.h"
#include "util/varint.h"

namespace powerapi::net {

namespace {

enum RecordKind : std::uint8_t {
  kDict = 1,
  kEstimate = 2,
  kAggregated = 3,
  kMetric = 4,
};

/// Largest record kind the decoder knows; anything above is a violation.
constexpr std::uint8_t kMaxRecordKind = kMetric;

// Record kinds inside the obs-frame payloads (metrics snapshot / spans).
// Kind 1 is the dict record in every payload flavor, so the shared
// per-connection dictionary grows identically whichever frame defines a
// string first.
enum ObsRecordKind : std::uint8_t {
  kObsDict = 1,
  kObsValue = 2,      ///< Metrics frame: counter or gauge.
  kObsHistogram = 3,  ///< Metrics frame: histogram with buckets.
  kObsComplete = 2,   ///< Spans frame: complete span (with duration).
  kObsInstant = 3,    ///< Spans frame: instant event.
};

/// Histograms larger than this are a protocol violation (a real HDR
/// histogram has at most a few hundred non-empty buckets).
constexpr std::uint64_t kMaxHistogramBuckets = 1u << 16;

/// Dictionary ids per connection are capped so a corrupt stream cannot make
/// the decoder allocate unboundedly.
constexpr std::uint64_t kMaxDictEntries = 1u << 16;
constexpr std::uint64_t kMaxDictStringBytes = 4096;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

// Doubles travel as their 8-byte little-endian bit pattern: exact
// round-trip (the e2e determinism check depends on it), no text formatting.
void put_f64(std::vector<std::uint8_t>& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(bits >> shift));
  }
}

double get_f64(const std::uint8_t* p) noexcept {
  std::uint64_t bits = 0;
  for (int i = 7; i >= 0; --i) bits = (bits << 8) | p[i];
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Cursor over a payload: varint/f64 readers that fail on truncation.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool done() const noexcept { return pos >= size; }

  bool u8(std::uint8_t& out) noexcept {
    if (pos + 1 > size) return false;
    out = data[pos++];
    return true;
  }
  bool varint(std::uint64_t& out) noexcept {
    const std::size_t used = util::get_varint(data + pos, size - pos, out);
    pos += used;
    return used != 0;
  }
  bool svarint(std::int64_t& out) noexcept {
    const std::size_t used = util::get_varint_signed(data + pos, size - pos, out);
    pos += used;
    return used != 0;
  }
  bool f64(double& out) noexcept {
    if (pos + 8 > size) return false;
    out = get_f64(data + pos);
    pos += 8;
    return true;
  }
  bool bytes(std::size_t n, std::string_view& out) noexcept {
    if (pos + n > size) return false;
    out = std::string_view(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return true;
  }
};

}  // namespace

// --- WireEncoder ---

std::uint64_t WireEncoder::intern(std::string_view text) {
  const auto it = dict_.find(text);
  if (it != dict_.end()) return it->second;
  const std::uint64_t id = dict_.size();
  dict_.emplace(std::string(text), id);
  batch_.push_back(kDict);
  util::put_varint(batch_, id);
  util::put_varint(batch_, text.size());
  batch_.insert(batch_.end(), text.begin(), text.end());
  return id;
}

void WireEncoder::put_timestamp(util::TimestampNs timestamp) {
  util::put_varint_signed(batch_, timestamp - last_ts_);
  last_ts_ = timestamp;
}

void WireEncoder::add(const api::PowerEstimate& estimate) {
  const std::uint64_t formula = intern(estimate.formula);
  batch_.push_back(kEstimate);
  put_timestamp(estimate.timestamp);
  util::put_varint_signed(batch_, estimate.pid);
  util::put_varint(batch_, formula);
  put_f64(batch_, estimate.watts);
  util::put_varint(batch_, estimate.model_version);
  ++records_;
}

void WireEncoder::add(const api::AggregatedPower& row) {
  const std::uint64_t formula = intern(row.formula);
  const std::uint64_t group = intern(row.group);
  batch_.push_back(kAggregated);
  put_timestamp(row.timestamp);
  util::put_varint_signed(batch_, row.pid);
  util::put_varint(batch_, formula);
  util::put_varint(batch_, group);
  put_f64(batch_, row.watts);
  ++records_;
}

void WireEncoder::add_metric(std::string_view name, obs::MetricKind kind,
                             double value) {
  const std::uint64_t id = intern(name);
  batch_.push_back(kMetric);
  batch_.push_back(static_cast<std::uint8_t>(kind));
  util::put_varint(batch_, id);
  put_f64(batch_, value);
  ++records_;
}

std::vector<std::uint8_t> WireEncoder::take_batch_frame() {
  std::vector<std::uint8_t> frame = make_frame(FrameType::kBatch, batch_);
  batch_.clear();
  records_ = 0;
  return frame;
}

std::vector<std::uint8_t> WireEncoder::take_metrics_frame(
    const obs::MetricsSnapshot& snapshot, std::int64_t send_wall_ns) {
  // batch_ doubles as the build buffer so intern() lands dict records in
  // stream order; the precondition (no pending batch) makes that safe.
  batch_.push_back(kObsPayloadVersion);
  util::put_varint_signed(batch_, send_wall_ns);
  for (const obs::MetricValue& metric : snapshot.metrics) {
    const std::uint64_t name = intern(metric.name);
    if (metric.kind == obs::MetricKind::kHistogram) {
      batch_.push_back(kObsHistogram);
      util::put_varint(batch_, name);
      util::put_varint(batch_, metric.hist.count);
      util::put_varint(batch_, metric.hist.overflow);
      put_f64(batch_, metric.hist.sum);
      util::put_varint(batch_, metric.hist.buckets.size());
      std::int64_t last_lower = 0;
      for (const auto& [lower, count] : metric.hist.buckets) {
        util::put_varint_signed(batch_, lower - last_lower);
        util::put_varint(batch_, count);
        last_lower = lower;
      }
    } else {
      batch_.push_back(kObsValue);
      batch_.push_back(static_cast<std::uint8_t>(metric.kind));
      util::put_varint(batch_, name);
      put_f64(batch_, metric.value);
    }
  }
  std::vector<std::uint8_t> frame = make_frame(FrameType::kMetricsSnapshot, batch_);
  batch_.clear();
  return frame;
}

std::vector<std::uint8_t> WireEncoder::take_spans_frame(
    const std::vector<obs::TraceCollector::Span>& spans,
    const obs::TraceCollector& trace, std::int64_t send_wall_ns) {
  batch_.push_back(kObsPayloadVersion);
  util::put_varint_signed(batch_, send_wall_ns);
  for (const obs::TraceCollector::Span& span : spans) {
    const std::uint64_t name = intern(trace.name_of(span.name));
    const bool instant = span.dur_ns < 0;
    batch_.push_back(instant ? kObsInstant : kObsComplete);
    util::put_varint(batch_, name);
    util::put_varint(batch_, span.tid);
    // Spans are roughly time-ordered per shard, so deltas against their own
    // base stay small without disturbing the batch-record timestamp base.
    util::put_varint_signed(batch_, span.ts_ns - last_span_ts_);
    last_span_ts_ = span.ts_ns;
    if (!instant) util::put_varint(batch_, static_cast<std::uint64_t>(span.dur_ns));
    util::put_varint(batch_, span.seq);
  }
  std::vector<std::uint8_t> frame = make_frame(FrameType::kSpans, batch_);
  batch_.clear();
  return frame;
}

void WireEncoder::reset() {
  batch_.clear();
  records_ = 0;
  dict_.clear();
  last_ts_ = 0;
  last_span_ts_ = 0;
}

std::vector<std::uint8_t> WireEncoder::make_frame(
    FrameType type, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  put_u32(frame, kWireMagic);
  frame.push_back(kWireVersion);
  frame.push_back(static_cast<std::uint8_t>(type));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = util::crc32c(frame.data(), frame.size());
  crc = util::crc32c_extend(crc, payload.data(), payload.size());
  put_u32(frame, crc);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::vector<std::uint8_t> WireEncoder::hello_frame(std::string_view agent_id) {
  std::vector<std::uint8_t> payload;
  util::put_varint(payload, kWireVersion);
  util::put_varint(payload, agent_id.size());
  payload.insert(payload.end(), agent_id.begin(), agent_id.end());
  return make_frame(FrameType::kHello, payload);
}

std::vector<std::uint8_t> WireEncoder::bye_frame() {
  return make_frame(FrameType::kBye, {});
}

// --- FrameDecoder ---

bool FrameDecoder::fail(std::string why) {
  failed_ = true;
  error_ = std::move(why);
  return false;
}

void FrameDecoder::reset() {
  buffer_.clear();
  consumed_ = 0;
  failed_ = false;
  error_.clear();
  dict_.clear();
  last_ts_ = 0;
  last_span_ts_ = 0;
}

bool FrameDecoder::consume(const std::uint8_t* data, std::size_t size,
                           WireSink& sink) {
  if (failed_) return false;
  buffer_.insert(buffer_.end(), data, data + size);
  while (buffer_.size() - consumed_ >= kFrameHeaderBytes) {
    const std::uint8_t* head = buffer_.data() + consumed_;
    if (get_u32(head) != kWireMagic) return fail("bad frame magic");
    const std::uint8_t version = head[4];
    if (version != kWireVersion) {
      return fail("unsupported wire version " + std::to_string(version));
    }
    const std::uint8_t type = head[5];
    const std::size_t payload_len = get_u32(head + 6);
    if (payload_len > max_frame_bytes_) {
      return fail("frame payload " + std::to_string(payload_len) +
                  " bytes exceeds limit " + std::to_string(max_frame_bytes_));
    }
    if (buffer_.size() - consumed_ < kFrameHeaderBytes + payload_len) {
      break;  // Torn frame: wait for the rest.
    }
    const std::uint8_t* payload = head + kFrameHeaderBytes;
    std::uint32_t crc = util::crc32c(head, 10);
    crc = util::crc32c_extend(crc, payload, payload_len);
    if (crc != get_u32(head + 10)) return fail("frame crc32c mismatch");
    if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
        type > static_cast<std::uint8_t>(FrameType::kSpans)) {
      return fail("unknown frame type " + std::to_string(type));
    }
    if (!decode_frame(static_cast<FrameType>(type), payload, payload_len, sink)) {
      return false;
    }
    ++frames_;
    consumed_ += kFrameHeaderBytes + payload_len;
  }
  // Compact: drop the decoded prefix once it dominates the buffer.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return true;
}

bool FrameDecoder::decode_frame(FrameType type, const std::uint8_t* payload,
                                std::size_t size, WireSink& sink) {
  if (type == FrameType::kBye) {
    if (size != 0) return fail("bye frame with payload");
    sink.on_bye();
    return true;
  }
  if (type == FrameType::kHello) {
    Reader r{payload, size};
    std::uint64_t version = 0;
    std::uint64_t name_len = 0;
    std::string_view agent_id;
    if (!r.varint(version) || !r.varint(name_len) || name_len > kMaxDictStringBytes ||
        !r.bytes(name_len, agent_id) || !r.done()) {
      return fail("malformed hello payload");
    }
    sink.on_hello(agent_id, static_cast<std::uint8_t>(version));
    return true;
  }
  if (type == FrameType::kMetricsSnapshot) {
    return decode_metrics_snapshot(payload, size, sink);
  }
  if (type == FrameType::kSpans) return decode_spans(payload, size, sink);
  return decode_batch(payload, size, sink);
}

bool FrameDecoder::decode_batch(const std::uint8_t* payload, std::size_t size,
                                WireSink& sink) {
  Reader r{payload, size};
  while (!r.done()) {
    std::uint8_t kind = 0;
    if (!r.u8(kind)) return fail("truncated record kind");
    if (kind == 0 || kind > kMaxRecordKind) {
      return fail("unknown record kind " + std::to_string(kind));
    }
    switch (kind) {
      case kDict: {
        std::uint64_t id = 0;
        std::uint64_t len = 0;
        std::string_view text;
        if (!r.varint(id) || !r.varint(len) || len > kMaxDictStringBytes ||
            !r.bytes(len, text)) {
          return fail("truncated dict record");
        }
        // Ids are assigned densely in stream order on the encoder side.
        if (id != dict_.size() || id >= kMaxDictEntries) {
          return fail("dict id " + std::to_string(id) + " out of sequence");
        }
        dict_.emplace_back(text);
        break;
      }
      case kEstimate: {
        api::PowerEstimate estimate;
        std::int64_t ts_delta = 0;
        std::int64_t pid = 0;
        std::uint64_t formula = 0;
        std::uint64_t model_version = 0;
        if (!r.svarint(ts_delta) || !r.svarint(pid) || !r.varint(formula) ||
            !r.f64(estimate.watts) || !r.varint(model_version)) {
          return fail("truncated estimate record");
        }
        if (formula >= dict_.size()) return fail("estimate formula id undefined");
        last_ts_ += ts_delta;
        estimate.timestamp = last_ts_;
        estimate.pid = pid;
        estimate.formula = dict_[formula];
        estimate.model_version = model_version;
        sink.on_estimate(estimate);
        ++records_;
        break;
      }
      case kAggregated: {
        api::AggregatedPower row;
        std::int64_t ts_delta = 0;
        std::int64_t pid = 0;
        std::uint64_t formula = 0;
        std::uint64_t group = 0;
        if (!r.svarint(ts_delta) || !r.svarint(pid) || !r.varint(formula) ||
            !r.varint(group) || !r.f64(row.watts)) {
          return fail("truncated aggregated record");
        }
        if (formula >= dict_.size() || group >= dict_.size()) {
          return fail("aggregated string id undefined");
        }
        last_ts_ += ts_delta;
        row.timestamp = last_ts_;
        row.pid = pid;
        row.formula = dict_[formula];
        row.group = dict_[group];
        sink.on_aggregated(row);
        ++records_;
        break;
      }
      case kMetric: {
        std::uint8_t metric_kind = 0;
        std::uint64_t name = 0;
        double value = 0.0;
        if (!r.u8(metric_kind) ||
            metric_kind > static_cast<std::uint8_t>(obs::MetricKind::kHistogram) ||
            !r.varint(name) || !r.f64(value)) {
          return fail("truncated metric record");
        }
        if (name >= dict_.size()) return fail("metric name id undefined");
        sink.on_metric(dict_[name], static_cast<obs::MetricKind>(metric_kind), value);
        ++records_;
        break;
      }
      default:
        return fail("unknown record kind " + std::to_string(kind));
    }
  }
  return true;
}

bool FrameDecoder::decode_metrics_snapshot(const std::uint8_t* payload,
                                           std::size_t size, WireSink& sink) {
  Reader r{payload, size};
  std::uint8_t payload_version = 0;
  std::int64_t send_wall_ns = 0;
  if (!r.u8(payload_version) || !r.svarint(send_wall_ns)) {
    return fail("truncated metrics-snapshot header");
  }
  if (payload_version != kObsPayloadVersion) {
    return fail("unsupported metrics-snapshot payload version " +
                std::to_string(payload_version));
  }
  obs::MetricsSnapshot snapshot;
  while (!r.done()) {
    std::uint8_t kind = 0;
    if (!r.u8(kind)) return fail("truncated metrics record kind");
    switch (kind) {
      case kObsDict: {
        std::uint64_t id = 0;
        std::uint64_t len = 0;
        std::string_view text;
        if (!r.varint(id) || !r.varint(len) || len > kMaxDictStringBytes ||
            !r.bytes(len, text)) {
          return fail("truncated dict record");
        }
        if (id != dict_.size() || id >= kMaxDictEntries) {
          return fail("dict id " + std::to_string(id) + " out of sequence");
        }
        dict_.emplace_back(text);
        break;
      }
      case kObsValue: {
        obs::MetricValue metric;
        std::uint8_t metric_kind = 0;
        std::uint64_t name = 0;
        if (!r.u8(metric_kind) ||
            metric_kind > static_cast<std::uint8_t>(obs::MetricKind::kHistogram) ||
            !r.varint(name) || !r.f64(metric.value)) {
          return fail("truncated metric value record");
        }
        if (name >= dict_.size()) return fail("metric name id undefined");
        metric.name = dict_[name];
        metric.kind = static_cast<obs::MetricKind>(metric_kind);
        snapshot.metrics.push_back(std::move(metric));
        break;
      }
      case kObsHistogram: {
        obs::MetricValue metric;
        metric.kind = obs::MetricKind::kHistogram;
        std::uint64_t name = 0;
        std::uint64_t bucket_count = 0;
        if (!r.varint(name) || !r.varint(metric.hist.count) ||
            !r.varint(metric.hist.overflow) || !r.f64(metric.hist.sum) ||
            !r.varint(bucket_count) || bucket_count > kMaxHistogramBuckets) {
          return fail("truncated histogram record");
        }
        if (name >= dict_.size()) return fail("metric name id undefined");
        metric.name = dict_[name];
        metric.hist.buckets.reserve(bucket_count);
        std::int64_t last_lower = 0;
        for (std::uint64_t i = 0; i < bucket_count; ++i) {
          std::int64_t lower_delta = 0;
          std::uint64_t count = 0;
          if (!r.svarint(lower_delta) || !r.varint(count)) {
            return fail("truncated histogram bucket");
          }
          last_lower += lower_delta;
          metric.hist.buckets.emplace_back(last_lower, count);
        }
        metric.value = static_cast<double>(metric.hist.count);
        snapshot.metrics.push_back(std::move(metric));
        break;
      }
      default:
        return fail("unknown metrics record kind " + std::to_string(kind));
    }
  }
  ++snapshots_;
  sink.on_metrics_snapshot(send_wall_ns, snapshot);
  return true;
}

bool FrameDecoder::decode_spans(const std::uint8_t* payload, std::size_t size,
                                WireSink& sink) {
  Reader r{payload, size};
  std::uint8_t payload_version = 0;
  std::int64_t send_wall_ns = 0;
  if (!r.u8(payload_version) || !r.svarint(send_wall_ns)) {
    return fail("truncated spans header");
  }
  if (payload_version != kObsPayloadVersion) {
    return fail("unsupported spans payload version " +
                std::to_string(payload_version));
  }
  std::vector<RemoteSpan> decoded;
  std::vector<std::uint64_t> name_ids;
  while (!r.done()) {
    std::uint8_t kind = 0;
    if (!r.u8(kind)) return fail("truncated span record kind");
    switch (kind) {
      case kObsDict: {
        std::uint64_t id = 0;
        std::uint64_t len = 0;
        std::string_view text;
        if (!r.varint(id) || !r.varint(len) || len > kMaxDictStringBytes ||
            !r.bytes(len, text)) {
          return fail("truncated dict record");
        }
        if (id != dict_.size() || id >= kMaxDictEntries) {
          return fail("dict id " + std::to_string(id) + " out of sequence");
        }
        dict_.emplace_back(text);
        break;
      }
      case kObsComplete:
      case kObsInstant: {
        RemoteSpan span;
        std::uint64_t name = 0;
        std::uint64_t tid = 0;
        std::int64_t ts_delta = 0;
        std::uint64_t dur = 0;
        const bool instant = kind == kObsInstant;
        if (!r.varint(name) || !r.varint(tid) || !r.svarint(ts_delta) ||
            (!instant && !r.varint(dur)) || !r.varint(span.seq)) {
          return fail("truncated span record");
        }
        if (name >= dict_.size()) return fail("span name id undefined");
        last_span_ts_ += ts_delta;
        name_ids.push_back(name);
        span.tid = static_cast<std::uint32_t>(tid);
        span.ts_ns = last_span_ts_;
        span.dur_ns = instant ? -1 : static_cast<std::int64_t>(dur);
        decoded.push_back(span);
        break;
      }
      default:
        return fail("unknown span record kind " + std::to_string(kind));
    }
  }
  // Name views are resolved only now: a dict record later in the frame grows
  // dict_, and the reallocation moves small-string buffers, so a view taken
  // mid-loop could dangle by the time the sink sees it.
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    decoded[i].name = dict_[name_ids[i]];
  }
  spans_ += decoded.size();
  sink.on_spans(send_wall_ns, decoded);
  return true;
}

}  // namespace powerapi::net
