#include "net/collector_status.h"

#include <algorithm>
#include <cerrno>
#include <iomanip>
#include <ostream>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/trace.h"
#include "util/logging.h"

namespace powerapi::net {

namespace {
constexpr const char* kLog = "net.status";
}  // namespace

// --- CollectorStatus ---

CollectorStatus::CollectorStatus(CollectorSink& next, CollectorStatusOptions options)
    : next_(next), options_(std::move(options)) {}

std::int64_t CollectorStatus::now_ns() const {
  return options_.clock ? options_.clock() : obs::wall_now_ns();
}

CollectorStatus::Entry& CollectorStatus::entry_locked(ConnId conn) {
  auto [it, inserted] = live_.try_emplace(conn);
  if (inserted) {
    Entry& entry = it->second;
    entry.status.conn = conn;
    entry.status.label = "conn" + std::to_string(conn);
    entry.status.connected = true;
    if (options_.merger != nullptr) {
      entry.source = options_.merger->add_source(entry.status.label);
      entry.has_source = true;
    }
  }
  return it->second;
}

void CollectorStatus::refresh_offset_locked(Entry& entry) {
  if (!entry.has_source) return;
  entry.status.clock_offset_ns = options_.merger->offset_ns(entry.source);
  entry.status.has_offset = options_.merger->has_offset(entry.source);
}

void CollectorStatus::on_connect(ConnId conn) {
  {
    std::lock_guard lock(mutex_);
    Entry& entry = entry_locked(conn);
    entry.status.last_record_wall_ns = now_ns();
  }
  next_.on_connect(conn);
}

void CollectorStatus::on_hello(ConnId conn, std::string_view agent_id,
                               std::uint8_t version) {
  {
    std::lock_guard lock(mutex_);
    Entry& entry = entry_locked(conn);
    entry.status.label.assign(agent_id);
    entry.status.last_record_wall_ns = now_ns();
    if (entry.has_source) {
      options_.merger->set_label(entry.source, entry.status.label);
    }
  }
  next_.on_hello(conn, agent_id, version);
}

void CollectorStatus::on_estimate(ConnId conn, const api::PowerEstimate& estimate) {
  {
    std::lock_guard lock(mutex_);
    Entry& entry = entry_locked(conn);
    ++entry.status.estimates;
    entry.status.last_record_wall_ns = now_ns();
  }
  next_.on_estimate(conn, estimate);
}

void CollectorStatus::on_aggregated(ConnId conn, const api::AggregatedPower& row) {
  {
    std::lock_guard lock(mutex_);
    Entry& entry = entry_locked(conn);
    ++entry.status.aggregated;
    entry.status.last_record_wall_ns = now_ns();
  }
  next_.on_aggregated(conn, row);
}

void CollectorStatus::on_metric(ConnId conn, std::string_view name,
                                obs::MetricKind kind, double value) {
  {
    std::lock_guard lock(mutex_);
    Entry& entry = entry_locked(conn);
    ++entry.status.metric_records;
    entry.status.last_record_wall_ns = now_ns();
  }
  next_.on_metric(conn, name, kind, value);
}

void CollectorStatus::on_metrics_snapshot(ConnId conn, std::int64_t send_wall_ns,
                                          std::int64_t recv_wall_ns,
                                          const obs::MetricsSnapshot& snapshot) {
  {
    std::lock_guard lock(mutex_);
    Entry& entry = entry_locked(conn);
    ++entry.status.snapshots;
    entry.status.last_record_wall_ns = recv_wall_ns;
    entry.status.last_snapshot_wall_ns = recv_wall_ns;
    // The agent's self-reported health rides in its own metrics.
    entry.status.self_watts = snapshot.value_of("self.watts");
    entry.status.records_dropped = static_cast<std::uint64_t>(
        snapshot.value_of("net.client.records_dropped"));
    entry.status.reconnects =
        static_cast<std::uint64_t>(snapshot.value_of("net.client.reconnects"));
    entry.status.governor_actuations =
        static_cast<std::uint64_t>(snapshot.value_of("governor.actuations"));
    if (entry.has_source) {
      options_.merger->observe_offset(entry.source, send_wall_ns, recv_wall_ns);
      options_.merger->set_dropped(
          entry.source, static_cast<std::uint64_t>(
                            snapshot.value_of("obs.trace.spans_dropped")));
      refresh_offset_locked(entry);
    }
  }
  next_.on_metrics_snapshot(conn, send_wall_ns, recv_wall_ns, snapshot);
}

void CollectorStatus::on_spans(ConnId conn, std::int64_t send_wall_ns,
                               std::int64_t recv_wall_ns,
                               const std::vector<RemoteSpan>& spans) {
  {
    std::lock_guard lock(mutex_);
    Entry& entry = entry_locked(conn);
    entry.status.spans += spans.size();
    entry.status.last_record_wall_ns = recv_wall_ns;
    if (entry.has_source) {
      options_.merger->observe_offset(entry.source, send_wall_ns, recv_wall_ns);
      for (const RemoteSpan& span : spans) {
        options_.merger->add_span(entry.source, span.name, span.tid, span.ts_ns,
                                  span.dur_ns, span.seq);
      }
      refresh_offset_locked(entry);
    }
  }
  next_.on_spans(conn, send_wall_ns, recv_wall_ns, spans);
}

void CollectorStatus::on_disconnect(ConnId conn, std::string_view reason) {
  {
    std::lock_guard lock(mutex_);
    const auto it = live_.find(conn);
    if (it != live_.end()) {
      Entry entry = std::move(it->second);
      live_.erase(it);
      entry.status.connected = false;
      entry.status.disconnect_reason.assign(reason);
      dead_.push_back(std::move(entry));
      if (dead_.size() > options_.max_dead_agents) {
        dead_.erase(dead_.begin());
      }
    }
  }
  next_.on_disconnect(conn, reason);
}

std::vector<CollectorStatus::AgentStatus> CollectorStatus::agents() const {
  std::vector<AgentStatus> out;
  std::lock_guard lock(mutex_);
  out.reserve(live_.size() + dead_.size());
  for (const auto& [conn, entry] : live_) out.push_back(entry.status);
  for (const Entry& entry : dead_) out.push_back(entry.status);
  std::sort(out.begin(), out.end(),
            [](const AgentStatus& a, const AgentStatus& b) { return a.conn < b.conn; });
  return out;
}

double CollectorStatus::fleet_self_watts() const {
  std::lock_guard lock(mutex_);
  double total = 0.0;
  for (const auto& [conn, entry] : live_) total += entry.status.self_watts;
  return total;
}

void CollectorStatus::render_text(std::ostream& out) const {
  const std::vector<AgentStatus> all = agents();
  out << "collector status: " << all.size() << " agent(s), fleet self-watts "
      << fleet_self_watts() << "\n";
  if (server_ != nullptr) {
    const CollectorServer::Stats stats = server_->stats();
    out << "wire: " << stats.bytes_received << " B, " << stats.frames_decoded
        << " frames, " << stats.records_decoded << " records, "
        << stats.snapshots_decoded << " snapshots, " << stats.spans_decoded
        << " spans, " << stats.decode_errors << " decode errors\n";
  }
  for (const AgentStatus& agent : all) {
    out << "  " << agent.label << " (conn " << agent.conn << ") "
        << (agent.connected ? "up" : "down");
    if (!agent.connected && !agent.disconnect_reason.empty()) {
      out << " [" << agent.disconnect_reason << "]";
    }
    out << ": est=" << agent.estimates << " agg=" << agent.aggregated
        << " metrics=" << agent.metric_records << " snaps=" << agent.snapshots
        << " spans=" << agent.spans << " drops=" << agent.records_dropped
        << " reconnects=" << agent.reconnects << " gov_act="
        << agent.governor_actuations << " self_watts=" << agent.self_watts;
    if (agent.has_offset) {
      out << " clock_offset_ns=" << agent.clock_offset_ns;
    }
    out << "\n";
  }
}

void CollectorStatus::render_json(std::ostream& out) const {
  const std::vector<AgentStatus> all = agents();
  out << "{\"fleet_self_watts\":" << fleet_self_watts();
  if (server_ != nullptr) {
    const CollectorServer::Stats stats = server_->stats();
    out << ",\"wire\":{\"bytes_received\":" << stats.bytes_received
        << ",\"frames_decoded\":" << stats.frames_decoded
        << ",\"records_decoded\":" << stats.records_decoded
        << ",\"snapshots_decoded\":" << stats.snapshots_decoded
        << ",\"spans_decoded\":" << stats.spans_decoded
        << ",\"decode_errors\":" << stats.decode_errors << "}";
  }
  out << ",\"agents\":[";
  bool first = true;
  for (const AgentStatus& agent : all) {
    if (!first) out << ',';
    first = false;
    out << "{\"label\":";
    obs::detail::write_json_string(out, agent.label);
    out << ",\"conn\":" << agent.conn
        << ",\"connected\":" << (agent.connected ? "true" : "false")
        << ",\"estimates\":" << agent.estimates
        << ",\"aggregated\":" << agent.aggregated
        << ",\"metric_records\":" << agent.metric_records
        << ",\"snapshots\":" << agent.snapshots << ",\"spans\":" << agent.spans
        << ",\"records_dropped\":" << agent.records_dropped
        << ",\"reconnects\":" << agent.reconnects
        << ",\"governor_actuations\":" << agent.governor_actuations
        << ",\"self_watts\":" << agent.self_watts
        << ",\"clock_offset_ns\":" << agent.clock_offset_ns
        << ",\"has_offset\":" << (agent.has_offset ? "true" : "false");
    if (!agent.connected) {
      out << ",\"disconnect_reason\":";
      obs::detail::write_json_string(out, agent.disconnect_reason);
    }
    out << "}";
  }
  out << "]}";
}

WatchdogSample CollectorStatus::watchdog_sample() const {
  WatchdogSample sample;
  std::lock_guard lock(mutex_);
  sample.agents.reserve(live_.size());
  for (const auto& [conn, entry] : live_) {
    WatchdogSample::Agent agent;
    agent.label = entry.status.label;
    agent.connected = entry.status.connected;
    agent.records_dropped = entry.status.records_dropped;
    agent.reconnects = entry.status.reconnects;
    agent.last_activity_wall_ns = entry.status.last_record_wall_ns;
    sample.agents.push_back(std::move(agent));
    sample.fleet_self_watts += entry.status.self_watts;
  }
  return sample;
}

// --- StatusListener ---

StatusListener::StatusListener(std::uint16_t port, Render render,
                               std::string bind_addr)
    : render_(std::move(render)) {
  listener_ = listen_tcp(bind_addr, port, &error_);
  if (listener_.valid()) {
    port_ = local_port(listener_);
    POWERAPI_LOG_INFO(kLog) << "status listener on " << bind_addr << ":" << port_;
  } else {
    POWERAPI_LOG_WARN(kLog) << "status listen failed: " << error_;
  }
}

StatusListener::~StatusListener() = default;

bool StatusListener::poll_once(int timeout_ms) {
  if (!listening()) return false;
  std::vector<struct pollfd> fds;
  fds.reserve(clients_.size() + 1);
  fds.push_back({listener_.fd(), POLLIN, 0});
  for (const Client& client : clients_) {
    fds.push_back({client.socket.fd(),
                   static_cast<short>(POLLIN | (client.out.empty() ? 0 : POLLOUT)),
                   0});
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return false;

  bool progress = false;
  if ((fds[0].revents & POLLIN) != 0) {
    for (;;) {
      Socket client(::accept(listener_.fd(), nullptr, nullptr));
      if (!client.valid()) break;
      if (clients_.size() >= kMaxClients) continue;  // Refuse: dtor closes.
      set_nonblocking(client.fd());
      Client entry;
      entry.socket = std::move(client);
      clients_.push_back(std::move(entry));
      progress = true;
    }
  }
  // Backwards: serve_client may invalidate its socket, and swap-and-pop
  // must not disturb indices still to visit.
  for (std::size_t i = clients_.size(); i-- > 0;) {
    const std::size_t fd_index = i + 1;
    if (fd_index < fds.size() &&
        (fds[fd_index].revents & (POLLIN | POLLOUT | POLLERR | POLLHUP)) == 0) {
      continue;
    }
    progress |= serve_client(clients_[i]);
    if (!clients_[i].socket.valid()) {
      clients_[i] = std::move(clients_.back());
      clients_.pop_back();
      progress = true;
    }
  }
  return progress;
}

bool StatusListener::serve_client(Client& client) {
  bool progress = false;
  // Drain input, answering each complete line.
  char buf[256];
  for (;;) {
    const ssize_t n = ::read(client.socket.fd(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      client.socket.close();
      return true;
    }
    if (n == 0) {
      client.socket.close();
      return true;
    }
    progress = true;
    client.in.append(buf, static_cast<std::size_t>(n));
    if (client.in.size() > kMaxLineBytes) {
      client.socket.close();  // Hostile line length: drop.
      return true;
    }
    std::size_t newline;
    while ((newline = client.in.find('\n')) != std::string::npos) {
      std::string line = client.in.substr(0, newline);
      client.in.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::ostringstream response;
      render_(response, line == "json");
      client.out += response.str();
      if (client.out.empty() || client.out.back() != '\n') client.out += '\n';
    }
  }
  // Flush what we can; the rest waits for POLLOUT.
  while (!client.out.empty()) {
    const ssize_t n = ::send(client.socket.fd(), client.out.data(),
                             client.out.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      client.socket.close();
      return true;
    }
    progress = true;
    client.out.erase(0, static_cast<std::size_t>(n));
  }
  return progress;
}

}  // namespace powerapi::net
