#include "net/telemetry_client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.h"

namespace powerapi::net {

namespace {

constexpr const char* kLog = "net.client";

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void idle_wait(int timeout_ms) {
  if (timeout_ms > 0) ::poll(nullptr, 0, timeout_ms);
}

}  // namespace

TelemetryClient::TelemetryClient(TelemetryClientOptions options)
    : options_(std::move(options)), rng_(options_.jitter_seed) {
  if (options_.batch_max_records == 0) options_.batch_max_records = 1;
  if (options_.queue_max_records == 0) options_.queue_max_records = 1;
  if (obs::Observability* obs = options_.obs) {
    obs_enqueued_ = &obs->metrics.counter("net.client.records_enqueued");
    obs_sent_ = &obs->metrics.counter("net.client.records_sent");
    obs_dropped_ = &obs->metrics.counter("net.client.records_dropped");
    obs_frames_ = &obs->metrics.counter("net.client.frames_sent");
    obs_bytes_ = &obs->metrics.counter("net.client.bytes_sent");
    obs_reconnects_ = &obs->metrics.counter("net.client.reconnects");
    obs_obs_frames_ = &obs->metrics.counter("net.client.obs_frames_sent");
    obs_batch_records_ = &obs->metrics.histogram("net.client.batch_records",
                                                 std::int64_t{1} << 20);
    obs_flush_latency_ = &obs->metrics.histogram("net.client.flush_latency_ns");
  }
}

TelemetryClient::~TelemetryClient() { stop(0); }

// --- Producers ---

void TelemetryClient::enqueue(Record record) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.size() >= options_.queue_max_records) {
      pending_.pop_front();  // Drop-oldest backpressure.
      records_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (obs_dropped_ != nullptr) obs_dropped_->add(1);
    }
    pending_.push_back(std::move(record));
  }
  records_enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (obs_enqueued_ != nullptr) obs_enqueued_->add(1);
}

void TelemetryClient::report(const api::PowerEstimate& estimate) {
  enqueue(estimate);
}

void TelemetryClient::report(const api::AggregatedPower& row) { enqueue(row); }

void TelemetryClient::report_metric(std::string name, obs::MetricKind kind,
                                    double value) {
  enqueue(Metric{std::move(name), kind, value});
}

// --- Event loop ---

void TelemetryClient::start() {
  if (thread_.joinable()) return;
  stop_requested_.store(false, std::memory_order_relaxed);
  stopped_ = false;
  thread_ = std::thread([this] { loop(); });
}

void TelemetryClient::loop() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    poll_once(20);
  }
}

void TelemetryClient::stop(std::int64_t flush_timeout_ms) {
  if (thread_.joinable()) {
    stop_requested_.store(true, std::memory_order_relaxed);
    thread_.join();
  }
  if (stopped_) return;
  stopped_ = true;
  // Best-effort final drain + orderly bye on whatever connection we have.
  const std::int64_t deadline = now_ms() + flush_timeout_ms;
  while (!drained() && now_ms() < deadline) {
    if (!poll_once(5) && state_ != ConnState::kConnecting) break;
  }
  if (state_ == ConnState::kConnected) {
    // Final obs emission so the collector sees the agent's last word
    // (terminal drop counts, final self-watts) before the bye.
    if (options_.obs != nullptr && options_.obs_interval_ms > 0) {
      last_obs_ms_ = 0;
      maybe_emit_obs(now_ms());
    }
    OutFrame bye;
    bye.bytes = WireEncoder::bye_frame();
    bye.opened_ms = now_ms();
    unsent_bytes_ += bye.bytes.size();
    out_frames_.push_back(std::move(bye));
    const std::int64_t bye_deadline = now_ms() + 50;
    while (!out_frames_.empty() && now_ms() < bye_deadline) {
      if (!write_frames()) break;
      if (!out_frames_.empty()) idle_wait(2);
    }
  }
  socket_.close();
  state_ = ConnState::kDisconnected;
  connected_.store(false, std::memory_order_relaxed);
  // Whatever the final drain could not deliver is lost for good now — count
  // it. Drops are never silent, including the ones at shutdown.
  std::uint64_t lost = encoder_.pending_records();
  for (const OutFrame& frame : out_frames_) lost += frame.records;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    lost += pending_.size();
    pending_.clear();
  }
  if (lost > 0) {
    POWERAPI_LOG_WARN(kLog) << options_.agent_id << ": stopping with " << lost
                            << " undelivered records (counted as dropped)";
    records_dropped_.fetch_add(lost, std::memory_order_relaxed);
    if (obs_dropped_ != nullptr) obs_dropped_->add(lost);
  }
  encoder_.reset();
  out_frames_.clear();
  unsent_bytes_ = 0;
  update_inflight();
}

bool TelemetryClient::poll_once(int timeout_ms) {
  switch (state_) {
    case ConnState::kDisconnected:
      return step_disconnected(timeout_ms);
    case ConnState::kConnecting:
      return step_connecting(timeout_ms);
    case ConnState::kConnected:
      return step_connected(timeout_ms);
  }
  return false;
}

bool TelemetryClient::step_disconnected(int timeout_ms) {
  const std::int64_t now = now_ms();
  if (now < next_attempt_ms_) {
    idle_wait(static_cast<int>(
        std::min<std::int64_t>(timeout_ms, next_attempt_ms_ - now)));
    return false;
  }
  std::string error;
  socket_ = connect_tcp(options_.host, options_.port, &error);
  if (!socket_.valid()) {
    POWERAPI_LOG_WARN(kLog) << options_.agent_id << ": connect failed: " << error;
    schedule_backoff(now);
    return false;
  }
  state_ = ConnState::kConnecting;
  return step_connecting(timeout_ms);
}

bool TelemetryClient::step_connecting(int timeout_ms) {
  struct pollfd pfd {
    socket_.fd(), POLLOUT, 0
  };
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return false;
  const int err = connect_error(socket_);
  if (err != 0) {
    POWERAPI_LOG_WARN(kLog) << options_.agent_id
                            << ": connect failed: " << std::strerror(err);
    handle_disconnect(true);
    return false;
  }
  // Connected: fresh wire state, hello first.
  encoder_.reset();
  OutFrame hello;
  hello.bytes = WireEncoder::hello_frame(options_.agent_id);
  hello.opened_ms = now_ms();
  unsent_bytes_ += hello.bytes.size();
  out_frames_.push_back(std::move(hello));
  state_ = ConnState::kConnected;
  connected_.store(true, std::memory_order_relaxed);
  connects_.fetch_add(1, std::memory_order_relaxed);
  backoff_attempts_ = 0;
  last_obs_ms_ = 0;  // First obs emission goes out right away.
  POWERAPI_LOG_INFO(kLog) << options_.agent_id << ": connected to "
                          << options_.host << ":" << options_.port;
  return true;
}

bool TelemetryClient::step_connected(int timeout_ms) {
  bool progress = encode_batches(now_ms());
  progress |= maybe_emit_obs(now_ms());
  progress |= write_frames();
  if (state_ != ConnState::kConnected) return progress;

  // Sleep only when nothing moved; cap the sleep at the batch deadline (so
  // flush-on-deadline fires on time) and at the obs cadence deadline.
  int timeout = progress ? 0 : timeout_ms;
  if (encoder_.pending_records() > 0) {
    const std::int64_t due =
        batch_opened_ms_ + options_.flush_interval_ms - now_ms();
    timeout = static_cast<int>(
        std::clamp<std::int64_t>(due, 0, static_cast<std::int64_t>(timeout)));
  }
  if (options_.obs != nullptr && options_.obs_interval_ms > 0) {
    const std::int64_t due = last_obs_ms_ + options_.obs_interval_ms - now_ms();
    timeout = static_cast<int>(
        std::clamp<std::int64_t>(due, 0, static_cast<std::int64_t>(timeout)));
  }
  struct pollfd pfd {
    socket_.fd(),
        static_cast<short>(POLLIN | (out_frames_.empty() ? 0 : POLLOUT)), 0
  };
  const int ready = ::poll(&pfd, 1, timeout);
  if (ready > 0) {
    if ((pfd.revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      // The collector never speaks in this protocol: readable means EOF or
      // error (or stray bytes we discard).
      char buf[256];
      const ssize_t n = ::read(socket_.fd(), buf, sizeof(buf));
      if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR)) {
        POWERAPI_LOG_WARN(kLog) << options_.agent_id
                                << ": collector closed the connection";
        handle_disconnect(true);
        return progress;
      }
    }
    if ((pfd.revents & POLLOUT) != 0) progress |= write_frames();
  }
  progress |= encode_batches(now_ms());
  if (state_ == ConnState::kConnected) progress |= maybe_emit_obs(now_ms());
  if (state_ == ConnState::kConnected) progress |= write_frames();
  return progress;
}

bool TelemetryClient::maybe_emit_obs(std::int64_t now) {
  if (options_.obs == nullptr || options_.obs_interval_ms <= 0 ||
      state_ != ConnState::kConnected) {
    return false;
  }
  if (now - last_obs_ms_ < options_.obs_interval_ms) return false;
  // Obs frames yield to the slow-reader guard like everything else; the
  // cadence just slips until the socket drains.
  if (unsent_bytes_ >= options_.max_unsent_bytes) return false;
  last_obs_ms_ = now;
  // Close any open batch first: the obs frames intern into the shared
  // dictionary, and dict definitions must reach the decoder in stream
  // order.
  if (encoder_.pending_records() > 0) close_batch(now);
  const std::int64_t wall = obs::wall_now_ns();
  OutFrame metrics;
  metrics.bytes = encoder_.take_metrics_frame(options_.obs->metrics.snapshot(), wall);
  metrics.opened_ms = now;
  unsent_bytes_ += metrics.bytes.size();
  out_frames_.push_back(std::move(metrics));
  obs_frames_sent_.fetch_add(1, std::memory_order_relaxed);
  if (obs_obs_frames_ != nullptr) obs_obs_frames_->add(1);
  span_buf_.clear();
  if (options_.obs->trace.drain(span_buf_) > 0) {
    OutFrame spans;
    spans.bytes =
        encoder_.take_spans_frame(span_buf_, options_.obs->trace, wall);
    spans.opened_ms = now;
    unsent_bytes_ += spans.bytes.size();
    out_frames_.push_back(std::move(spans));
    obs_frames_sent_.fetch_add(1, std::memory_order_relaxed);
    if (obs_obs_frames_ != nullptr) obs_obs_frames_->add(1);
  }
  return true;
}

bool TelemetryClient::encode_batches(std::int64_t now) {
  bool progress = false;
  std::lock_guard<std::mutex> lock(mutex_);
  while (!pending_.empty() && unsent_bytes_ < options_.max_unsent_bytes) {
    if (encoder_.pending_records() == 0) batch_opened_ms_ = now;
    std::visit(
        [this](const auto& record) {
          using T = std::decay_t<decltype(record)>;
          if constexpr (std::is_same_v<T, Metric>) {
            encoder_.add_metric(record.name, record.kind, record.value);
          } else {
            encoder_.add(record);
          }
        },
        pending_.front());
    pending_.pop_front();
    progress = true;
    if (encoder_.pending_records() >= options_.batch_max_records ||
        encoder_.pending_bytes() >= options_.batch_max_bytes) {
      close_batch(now);
    }
  }
  if (encoder_.pending_records() > 0 &&
      now - batch_opened_ms_ >= options_.flush_interval_ms) {
    close_batch(now);
    progress = true;
  }
  update_inflight();
  return progress;
}

void TelemetryClient::close_batch(std::int64_t now) {
  OutFrame frame;
  frame.records = encoder_.pending_records();
  frame.bytes = encoder_.take_batch_frame();
  frame.opened_ms = batch_opened_ms_;
  unsent_bytes_ += frame.bytes.size();
  if (obs_batch_records_ != nullptr) {
    obs_batch_records_->record(static_cast<std::int64_t>(frame.records));
  }
  (void)now;
  out_frames_.push_back(std::move(frame));
}

bool TelemetryClient::write_frames() {
  bool progress = false;
  while (!out_frames_.empty()) {
    OutFrame& frame = out_frames_.front();
    const std::size_t remaining = frame.bytes.size() - frame.offset;
    // MSG_NOSIGNAL: a peer that vanished mid-stream must surface as EPIPE
    // (handled as a disconnect below), not as a process-killing SIGPIPE.
    const ssize_t n = ::send(socket_.fd(), frame.bytes.data() + frame.offset,
                             remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      POWERAPI_LOG_WARN(kLog) << options_.agent_id
                              << ": write failed: " << std::strerror(errno);
      handle_disconnect(true);
      return progress;
    }
    progress = true;
    frame.offset += static_cast<std::size_t>(n);
    unsent_bytes_ -= static_cast<std::size_t>(n);
    bytes_sent_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    if (obs_bytes_ != nullptr) obs_bytes_->add(static_cast<std::uint64_t>(n));
    if (frame.offset < frame.bytes.size()) break;  // Partial write: wait.
    records_sent_.fetch_add(frame.records, std::memory_order_relaxed);
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    if (obs_sent_ != nullptr) obs_sent_->add(frame.records);
    if (obs_frames_ != nullptr) obs_frames_->add(1);
    if (obs_flush_latency_ != nullptr && frame.records > 0) {
      obs_flush_latency_->record((now_ms() - frame.opened_ms) * 1'000'000);
    }
    out_frames_.pop_front();
  }
  update_inflight();
  return progress;
}

void TelemetryClient::handle_disconnect(bool failure) {
  // Whatever was encoded for this connection dies with it: the dictionary
  // state it depends on is gone. Count it — drops are never silent.
  std::uint64_t lost = encoder_.pending_records();
  for (const OutFrame& frame : out_frames_) lost += frame.records;
  if (lost > 0) {
    records_dropped_.fetch_add(lost, std::memory_order_relaxed);
    if (obs_dropped_ != nullptr) obs_dropped_->add(lost);
  }
  out_frames_.clear();
  unsent_bytes_ = 0;
  encoder_.reset();
  socket_.close();
  state_ = ConnState::kDisconnected;
  connected_.store(false, std::memory_order_relaxed);
  update_inflight();
  if (failure) schedule_backoff(now_ms());
}

void TelemetryClient::schedule_backoff(std::int64_t now) {
  const std::uint32_t shift = std::min<std::uint32_t>(backoff_attempts_, 16);
  const std::int64_t ceiling = std::min<std::int64_t>(
      options_.backoff_max_ms, options_.backoff_initial_ms << shift);
  // Jitter in [ceiling/2, ceiling): desynchronizes a fleet of agents all
  // orphaned by the same collector restart.
  const std::int64_t wait =
      ceiling / 2 +
      static_cast<std::int64_t>(rng_.uniform(0.0, static_cast<double>(
                                                      std::max<std::int64_t>(1, ceiling / 2))));
  next_attempt_ms_ = now + wait;
  ++backoff_attempts_;
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  if (obs_reconnects_ != nullptr) obs_reconnects_->add(1);
}

void TelemetryClient::update_inflight() noexcept {
  std::uint64_t inflight = encoder_.pending_records();
  for (const OutFrame& frame : out_frames_) inflight += frame.records;
  inflight_records_.store(inflight, std::memory_order_relaxed);
}

bool TelemetryClient::drained() const noexcept {
  if (inflight_records_.load(std::memory_order_relaxed) != 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.empty();
}

bool TelemetryClient::flush(std::int64_t timeout_ms) {
  const std::int64_t deadline = now_ms() + timeout_ms;
  while (!drained()) {
    if (now_ms() >= deadline) return false;
    if (thread_.joinable()) {
      idle_wait(2);  // The background thread is pumping.
    } else {
      poll_once(5);
    }
  }
  return true;
}

TelemetryClient::Stats TelemetryClient::stats() const {
  Stats stats;
  stats.records_enqueued = records_enqueued_.load(std::memory_order_relaxed);
  stats.records_sent = records_sent_.load(std::memory_order_relaxed);
  stats.records_dropped = records_dropped_.load(std::memory_order_relaxed);
  stats.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  stats.obs_frames_sent = obs_frames_sent_.load(std::memory_order_relaxed);
  stats.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  stats.connects = connects_.load(std::memory_order_relaxed);
  stats.reconnects = reconnects_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace powerapi::net
