// Thin RAII + helper layer over non-blocking TCP sockets — just enough
// POSIX for the telemetry client/server event loops. IPv4 numeric
// addresses only: telemetry links are loopback/LAN plumbing, and keeping
// DNS out keeps the event loop free of blocking calls.
#pragma once

#include <cstdint>
#include <string>

namespace powerapi::net {

/// Move-only owner of a file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Binds + listens a non-blocking TCP socket on `bind_addr:port`
/// (SO_REUSEADDR; port 0 picks an ephemeral port — read it back with
/// local_port). Invalid socket + `*error` on failure.
Socket listen_tcp(const std::string& bind_addr, std::uint16_t port,
                  std::string* error);

/// The locally bound port of a listening/connected socket (0 on error).
std::uint16_t local_port(const Socket& socket);

/// Starts a non-blocking connect to `host:port`. Returns the socket with
/// the connect in flight (or already established — loopback often
/// completes immediately); completion is observed via POLLOUT + SO_ERROR.
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::string* error);

/// Pending SO_ERROR of an in-flight connect; 0 = connected.
int connect_error(const Socket& socket);

bool set_nonblocking(int fd);

}  // namespace powerapi::net
