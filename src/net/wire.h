// The telemetry wire format: versioned, length-prefixed binary frames
// carrying batched pipeline records between an agent (TelemetryClient) and
// a collector (CollectorServer).
//
// Frame layout (multi-byte fields little-endian):
//
//   offset 0   u32  magic        0x50415750 ("PWAP")
//          4   u8   version      kWireVersion
//          5   u8   type         FrameType (hello / batch / bye)
//          6   u32  payload_len  bytes following the header
//         10   u32  crc32c       over header bytes [0,10) ++ payload
//         14   payload
//
// A batch payload is a concatenation of records, each introduced by a kind
// byte and packed with LEB128 varints (util/varint.h):
//
//   dict        id, strlen, bytes      — defines a string id (see below)
//   estimate    Δts, pid, formula-id, watts(f64), model-version
//   aggregated  Δts, pid, formula-id, group-id, watts(f64)
//   metric      metric-kind(u8), name-id, value(f64)
//
// Two further frame kinds carry the observability plane (emitted only when
// an obs cadence is configured, so a PR 5 stream is byte-identical): a
// metrics-snapshot frame (full obs::MetricsRegistry snapshot — values plus
// histogram buckets) and a spans frame (drained obs::TraceCollector spans).
// Both start with a payload version byte and the agent's send wall clock,
// and intern names into the same per-connection dictionary as batches.
//
// Two stream-stateful compressions keep hot records small:
//  * Timestamps are delta-encoded (zigzag) against the previous record's
//    timestamp in stream order — at a fixed monitoring period the delta is
//    a repeating small constant, 1–3 bytes instead of 9.
//  * Strings (formula names, group labels, metric names) are interned into
//    a per-connection dictionary, mirroring the event bus's topic
//    interning: the first use emits a dict record (id + bytes), every later
//    use is a 1–2 byte id. A reconnect resets both sides' state (the
//    encoder re-emits its dictionary), so frames are self-contained per
//    connection, never per process lifetime.
//
// Observability-correlation fields (seq, tick_wall_ns) are process-local
// and do not cross the wire; decoded records carry zeros there.
//
// The decoder is an incremental state machine fed arbitrary byte chunks
// (torn frames, short reads). Any violation — bad magic/version, oversize
// length, CRC mismatch, truncated or unknown record — poisons the decoder
// and reports an error; the server drops that connection and keeps serving
// the rest.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "powerapi/messages.h"

namespace powerapi::net {

inline constexpr std::uint32_t kWireMagic = 0x50415750u;  // "PWAP" LE.
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 14;
/// Frames larger than this are a protocol violation (guards the collector
/// against hostile or corrupt length fields).
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,            ///< First frame on a connection: protocol version + agent id.
  kBatch = 2,            ///< Batched records.
  kBye = 3,              ///< Orderly shutdown (empty payload).
  kMetricsSnapshot = 4,  ///< Full obs::MetricsRegistry snapshot (versioned payload).
  kSpans = 5,            ///< Drained obs::TraceCollector spans (versioned payload).
};

/// Version byte leading every obs-frame payload (metrics snapshot / spans),
/// independent of the frame header version: the obs payloads can evolve
/// without a wire-wide version bump.
inline constexpr std::uint8_t kObsPayloadVersion = 1;

/// One decoded remote trace span. `name` views the decoder's dictionary and
/// is only valid for the duration of the on_spans() callback.
struct RemoteSpan {
  std::string_view name;
  std::uint32_t tid = 0;
  std::int64_t ts_ns = 0;   ///< Agent-local wall_now_ns() clock.
  std::int64_t dur_ns = 0;  ///< < 0 marks an instant event.
  std::uint64_t seq = 0;
};

/// Receiver interface for decoded frames/records.
class WireSink {
 public:
  virtual ~WireSink() = default;
  virtual void on_hello(std::string_view /*agent_id*/, std::uint8_t /*version*/) {}
  virtual void on_estimate(const api::PowerEstimate& /*estimate*/) {}
  virtual void on_aggregated(const api::AggregatedPower& /*row*/) {}
  virtual void on_metric(std::string_view /*name*/, obs::MetricKind /*kind*/,
                         double /*value*/) {}
  /// A full remote metrics snapshot; `send_wall_ns` is the agent's local
  /// wall clock at emission (clock-offset estimation pairs it with the
  /// receiver's clock at decode).
  virtual void on_metrics_snapshot(std::int64_t /*send_wall_ns*/,
                                   const obs::MetricsSnapshot& /*snapshot*/) {}
  virtual void on_spans(std::int64_t /*send_wall_ns*/,
                        const std::vector<RemoteSpan>& /*spans*/) {}
  virtual void on_bye() {}
};

/// Per-connection encoder: accumulates records into a batch payload and
/// frames it on demand. Owns the connection's string dictionary and
/// timestamp delta base; reset() on reconnect.
class WireEncoder {
 public:
  void add(const api::PowerEstimate& estimate);
  void add(const api::AggregatedPower& row);
  void add_metric(std::string_view name, obs::MetricKind kind, double value);

  /// Semantic records buffered (dict entries not counted).
  std::size_t pending_records() const noexcept { return records_; }
  /// Encoded payload bytes buffered (dict entries counted — they ship).
  std::size_t pending_bytes() const noexcept { return batch_.size(); }

  /// Frames the buffered batch and clears it (dictionary and timestamp
  /// base persist — they are connection state, not batch state).
  std::vector<std::uint8_t> take_batch_frame();

  /// Frames a full metrics snapshot (counters/gauges as values, histograms
  /// with their bucket vectors), stamped with the agent's wall clock.
  /// Precondition: no pending batch records — the snapshot interns names
  /// into the shared connection dictionary, so its dict definitions must
  /// not jump ahead of an unframed batch.
  std::vector<std::uint8_t> take_metrics_frame(const obs::MetricsSnapshot& snapshot,
                                               std::int64_t send_wall_ns);

  /// Frames drained trace spans; `trace` resolves interned span names.
  /// Same precondition as take_metrics_frame().
  std::vector<std::uint8_t> take_spans_frame(
      const std::vector<obs::TraceCollector::Span>& spans,
      const obs::TraceCollector& trace, std::int64_t send_wall_ns);

  /// Forgets all connection state; the next batch re-emits dictionary
  /// entries and a full first timestamp. Call when (re)connecting.
  void reset();

  static std::vector<std::uint8_t> make_frame(FrameType type,
                                              const std::vector<std::uint8_t>& payload);
  static std::vector<std::uint8_t> hello_frame(std::string_view agent_id);
  static std::vector<std::uint8_t> bye_frame();

 private:
  std::uint64_t intern(std::string_view text);
  void put_timestamp(util::TimestampNs timestamp);

  std::vector<std::uint8_t> batch_;
  std::size_t records_ = 0;
  std::map<std::string, std::uint64_t, std::less<>> dict_;
  std::int64_t last_ts_ = 0;
  std::int64_t last_span_ts_ = 0;  ///< Span-stream delta base (separate clock).
};

/// Incremental frame decoder + per-connection decode state.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Feeds `size` bytes (any chunking). Complete frames are decoded into
  /// `sink` as they close. Returns false on a protocol violation: error()
  /// says why, and the decoder rejects further input until reset().
  bool consume(const std::uint8_t* data, std::size_t size, WireSink& sink);

  const std::string& error() const noexcept { return error_; }
  bool failed() const noexcept { return failed_; }
  std::uint64_t frames_decoded() const noexcept { return frames_; }
  std::uint64_t records_decoded() const noexcept { return records_; }
  std::uint64_t snapshots_decoded() const noexcept { return snapshots_; }
  std::uint64_t spans_decoded() const noexcept { return spans_; }
  /// Bytes buffered waiting for the rest of a frame.
  std::size_t buffered_bytes() const noexcept { return buffer_.size() - consumed_; }

  /// Back to a fresh connection state (dictionary, timestamps, error).
  void reset();

 private:
  bool fail(std::string why);
  bool decode_frame(FrameType type, const std::uint8_t* payload, std::size_t size,
                    WireSink& sink);
  bool decode_batch(const std::uint8_t* payload, std::size_t size, WireSink& sink);
  bool decode_metrics_snapshot(const std::uint8_t* payload, std::size_t size,
                               WireSink& sink);
  bool decode_spans(const std::uint8_t* payload, std::size_t size, WireSink& sink);

  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< Prefix of buffer_ already decoded.
  bool failed_ = false;
  std::string error_;
  std::uint64_t frames_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t spans_ = 0;
  std::vector<std::string> dict_;
  std::int64_t last_ts_ = 0;
  std::int64_t last_span_ts_ = 0;
};

}  // namespace powerapi::net
