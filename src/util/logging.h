// Thread-safe leveled logging.
//
// The library logs sparingly (model training milestones, backend fallbacks,
// actor supervision events); experiments and examples raise the level for
// narration. Output goes to a configurable sink, stderr by default.
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace powerapi::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

std::string_view to_string(LogLevel level) noexcept;

/// Process-wide logger configuration. Cheap enough that call sites simply
/// check `enabled(level)` before formatting.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component, std::string_view msg)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept;
  LogLevel level() const noexcept;
  bool enabled(LogLevel level) const noexcept;

  /// Replaces the output sink; pass nullptr to restore the stderr default.
  /// Safe against concurrent log() calls: a thread mid-log finishes on the
  /// sink it snapshotted (kept alive by refcount), so the sink must be
  /// thread-safe and the caller must expect it to run briefly past the
  /// swap. Sinks are invoked WITHOUT any logger lock held — a sink may
  /// itself log without deadlocking.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();
  struct Impl;
  Impl* impl_;  // Intentionally leaked singleton state: outlives static dtors.
};

/// Stream-style log statement builder:
///   LogMessage(LogLevel::kInfo, "model").stream() << "trained " << n << " rows";
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

inline bool log_enabled(LogLevel level) { return Logger::instance().enabled(level); }

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive;
/// "warning" also accepted); nullopt on anything else.
std::optional<LogLevel> parse_log_level(std::string_view text) noexcept;

/// Applies the POWERAPI_LOG_LEVEL environment variable (if set and valid)
/// to the global logger. Shared by examples and benches so every binary
/// honors the same knob.
void configure_logging();

/// configure_logging() plus command-line handling: consumes a leading
/// "--log-level=X" (or "--log-level X") argument from argv, which wins over
/// the environment. Unrecognized levels warn and are otherwise ignored.
void configure_logging(int& argc, char** argv);

}  // namespace powerapi::util

/// Convenience macros gated on the active level; they expand to a dead branch
/// when disabled so argument formatting is never paid for suppressed levels.
#define POWERAPI_LOG(level, component)                       \
  if (!::powerapi::util::log_enabled(level)) {               \
  } else                                                     \
    ::powerapi::util::LogMessage(level, component).stream()

#define POWERAPI_LOG_DEBUG(component) POWERAPI_LOG(::powerapi::util::LogLevel::kDebug, component)
#define POWERAPI_LOG_INFO(component) POWERAPI_LOG(::powerapi::util::LogLevel::kInfo, component)
#define POWERAPI_LOG_WARN(component) POWERAPI_LOG(::powerapi::util::LogLevel::kWarn, component)
#define POWERAPI_LOG_ERROR(component) POWERAPI_LOG(::powerapi::util::LogLevel::kError, component)
