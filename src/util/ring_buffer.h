// Fixed-capacity ring buffer: keeps the most recent N samples for the
// sliding-window reporters and the PowerSpy smoothing filter.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace powerapi::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buffer_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer capacity must be > 0");
  }

  /// Appends `value`, overwriting the oldest element when full.
  void push(T value) {
    buffer_[head_] = std::move(value);
    head_ = (head_ + 1) % buffer_.size();
    if (size_ < buffer_.size()) ++size_;
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return buffer_.size(); }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == buffer_.size(); }

  /// Element `i` counting from the oldest retained element (0 == oldest).
  const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("RingBuffer index");
    const std::size_t start = full() ? head_ : 0;
    return buffer_[(start + i) % buffer_.size()];
  }

  /// Most recently pushed element.
  const T& back() const {
    if (empty()) throw std::out_of_range("RingBuffer::back on empty buffer");
    return buffer_[(head_ + buffer_.size() - 1) % buffer_.size()];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Copies the retained elements oldest-first.
  std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
    return out;
  }

 private:
  std::vector<T> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace powerapi::util
