// LEB128 variable-length integers + ZigZag signed mapping — the packing
// primitive of the telemetry wire format (net/wire.h).
//
// Unsigned values encode little-endian base-128, 7 bits per byte, high bit
// as the continuation flag: values < 128 cost one byte, and the pipeline's
// common quantities (dictionary ids, record counts, small pids, delta
// timestamps at a fixed period) stay in 1–3 bytes. Signed values go through
// ZigZag first so small negatives stay small. Header-only: every function
// is a few instructions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace powerapi::util {

/// Longest encoding of a uint64: ceil(64 / 7) bytes.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Appends the LEB128 encoding of `value` to `out`.
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Decodes a LEB128 value from `data[0..size)`. Returns the number of bytes
/// consumed, or 0 when the input is truncated or overlong (> 10 bytes /
/// bits beyond 64 set) — a malformed-frame signal, never UB.
inline std::size_t get_varint(const std::uint8_t* data, std::size_t size,
                              std::uint64_t& value) noexcept {
  std::uint64_t result = 0;
  for (std::size_t i = 0; i < size && i < kMaxVarintBytes; ++i) {
    const std::uint8_t byte = data[i];
    if (i == kMaxVarintBytes - 1 && (byte & ~0x01u) != 0) return 0;  // > 64 bits.
    result |= static_cast<std::uint64_t>(byte & 0x7Fu) << (7 * i);
    if ((byte & 0x80u) == 0) {
      value = result;
      return i + 1;
    }
  }
  return 0;  // Ran out of input mid-value (or 10 continuation bytes).
}

/// ZigZag: maps signed to unsigned so small-magnitude values (of either
/// sign) get short varints: 0→0, -1→1, 1→2, -2→3, ...
inline constexpr std::uint64_t zigzag_encode(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

inline constexpr std::int64_t zigzag_decode(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

inline void put_varint_signed(std::vector<std::uint8_t>& out, std::int64_t value) {
  put_varint(out, zigzag_encode(value));
}

inline std::size_t get_varint_signed(const std::uint8_t* data, std::size_t size,
                                     std::int64_t& value) noexcept {
  std::uint64_t raw = 0;
  const std::size_t used = get_varint(data, size, raw);
  if (used != 0) value = zigzag_decode(raw);
  return used;
}

}  // namespace powerapi::util
