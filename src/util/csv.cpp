#include "util/csv.h"

#include <charconv>
#include <limits>
#include <stdexcept>

namespace powerapi::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::header(std::span<const std::string> columns) {
  if (header_written_) throw std::logic_error("CsvWriter: header written twice");
  if (columns.empty()) throw std::invalid_argument("CsvWriter: empty header");
  columns_ = columns.size();
  header_written_ = true;
  write_fields(columns);
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  std::vector<std::string> copy(columns.begin(), columns.end());
  header(std::span<const std::string>(copy));
}

void CsvWriter::row(std::span<const std::string> fields) {
  if (header_written_ && fields.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width does not match header");
  }
  write_fields(fields);
  ++rows_;
}

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> copy(fields.begin(), fields.end());
  row(std::span<const std::string>(copy));
}

void CsvWriter::numeric_row(std::span<const double> values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_double(v));
  row(std::span<const std::string>(fields));
}

void CsvWriter::write_fields(std::span<const std::string> fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << csv_escape(f);
  }
  *out_ << '\n';
}

std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general,
                                 std::numeric_limits<double>::max_digits10);
  return std::string(buf, res.ptr);
}

}  // namespace powerapi::util
