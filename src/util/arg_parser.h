// Minimal command-line option parser shared by the examples and harnesses.
//
// Every example used to hand-roll its `--hosts` / `--duration` handling (or
// skip it and hard-code constants). ArgParser is the one implementation:
// register options bound to caller variables (whose initializers remain the
// visible defaults), then parse(argc, argv) consumes every recognized
// "--name value" / "--name=value" token from argv — the same
// strip-before-downstream pattern as util::configure_logging, so positional
// arguments (model paths, CSV outputs) flow through untouched — and prints
// a uniform --help for every binary.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace powerapi::util {

class ArgParser {
 public:
  /// `program` names the binary in usage output; `description` is the
  /// one-line summary printed under it.
  ArgParser(std::string program, std::string description);

  // Registration: `value` must outlive parse(); its current content is
  // shown as the default in --help. Names are given without the leading
  // "--".
  void add_flag(std::string name, bool* value, std::string help);
  void add_int64(std::string name, std::int64_t* value, std::string help);
  void add_size(std::string name, std::size_t* value, std::string help);
  void add_double(std::string name, double* value, std::string help);
  void add_string(std::string name, std::string* value, std::string help);

  /// Consumes recognized options from argv (argc is rewritten, like
  /// configure_logging). Returns nullopt to continue, or the process exit
  /// code the caller should return with: 0 after printing --help, 2 after
  /// reporting a bad option / unparsable value to stderr. Unrecognized
  /// "--" options are errors; bare positionals are left in place.
  std::optional<int> parse(int& argc, char** argv);

  void print_help(std::ostream& out) const;

 private:
  enum class Kind { kFlag, kInt64, kSize, kDouble, kString };

  struct Option {
    std::string name;
    Kind kind = Kind::kFlag;
    void* target = nullptr;
    std::string help;
    std::string default_text;
  };

  void add_option(std::string name, Kind kind, void* target, std::string help,
                  std::string default_text);
  const Option* find(std::string_view name) const noexcept;
  /// Applies one value; false when the text does not parse as the kind.
  bool apply(const Option& option, const std::string& text) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
};

}  // namespace powerapi::util
