// Small string helpers shared by the config parser, model serialization and
// reporters. Kept deliberately minimal; no locale dependence.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace powerapi::util {

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Splits on `sep`, without trimming; adjacent separators yield empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits and trims each field, dropping fields that become empty.
std::vector<std::string> split_trimmed(std::string_view s, char sep);

bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Case-sensitive key=value parse; returns nullopt when '=' is absent.
std::optional<std::pair<std::string, std::string>> parse_key_value(std::string_view line);

/// Locale-independent double parse; returns nullopt on trailing garbage.
std::optional<double> parse_double(std::string_view s) noexcept;

/// Locale-independent integer parse (base 10).
std::optional<long long> parse_int(std::string_view s) noexcept;

/// Joins the items with `sep`.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view s);

}  // namespace powerapi::util
