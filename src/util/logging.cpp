#include "util/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace powerapi::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

struct Logger::Impl {
  std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  std::mutex mutex;
  Sink sink;  // Empty => stderr default.
};

Logger::Logger() : impl_(new Impl) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) noexcept {
  impl_->level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::level() const noexcept {
  return static_cast<LogLevel>(impl_->level.load(std::memory_order_relaxed));
}

bool Logger::enabled(LogLevel level) const noexcept {
  return static_cast<int>(level) >= impl_->level.load(std::memory_order_relaxed);
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(impl_->mutex);
  impl_->sink = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  std::lock_guard lock(impl_->mutex);
  if (impl_->sink) {
    impl_->sink(level, component, message);
    return;
  }
  std::cerr << "[" << to_string(level) << "] " << component << ": " << message << "\n";
}

LogMessage::~LogMessage() {
  Logger::instance().log(level_, component_, stream_.str());
}

}  // namespace powerapi::util
