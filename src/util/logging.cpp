#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <utility>

namespace powerapi::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

struct Logger::Impl {
  std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  // Guards only the `sink` pointer itself (copy on log, swap on set_sink) —
  // never held while a sink runs, so a swap can't tear a sink out from
  // under a logging thread and a sink that itself logs can't deadlock.
  // The shared_ptr keeps a replaced sink alive until in-flight calls drain.
  std::mutex sink_mutex;
  std::shared_ptr<const Sink> sink;  // Null => stderr default.
  // Serializes only the built-in stderr path so interleaved default output
  // stays line-atomic; custom sinks synchronize themselves.
  std::mutex io_mutex;
};

Logger::Logger() : impl_(new Impl) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) noexcept {
  impl_->level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::level() const noexcept {
  return static_cast<LogLevel>(impl_->level.load(std::memory_order_relaxed));
}

bool Logger::enabled(LogLevel level) const noexcept {
  return static_cast<int>(level) >= impl_->level.load(std::memory_order_relaxed);
}

void Logger::set_sink(Sink sink) {
  std::shared_ptr<const Sink> next;
  if (sink) next = std::make_shared<const Sink>(std::move(sink));
  std::shared_ptr<const Sink> previous;  // Destroyed after the unlock: a
  {                                      // sink whose captures log on
    std::lock_guard lock(impl_->sink_mutex);  // destruction must not deadlock.
    previous = std::exchange(impl_->sink, std::move(next));
  }
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  // Snapshot the sink under the swap lock, invoke it outside: the copy
  // keeps it alive even if another thread swaps it while we are writing.
  std::shared_ptr<const Sink> sink;
  {
    std::lock_guard lock(impl_->sink_mutex);
    sink = impl_->sink;
  }
  if (sink) {
    (*sink)(level, component, message);
    return;
  }
  std::lock_guard lock(impl_->io_mutex);
  std::cerr << "[" << to_string(level) << "] " << component << ": " << message << "\n";
}

LogMessage::~LogMessage() {
  Logger::instance().log(level_, component_, stream_.str());
}

std::optional<LogLevel> parse_log_level(std::string_view text) noexcept {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

namespace {

void apply_level_or_warn(std::string_view text, std::string_view origin) {
  if (const auto level = parse_log_level(text)) {
    Logger::instance().set_level(*level);
  } else {
    POWERAPI_LOG_WARN("logging")
        << "ignoring unrecognized log level '" << text << "' from " << origin
        << " (expected debug|info|warn|error|off)";
  }
}

}  // namespace

void configure_logging() {
  if (const char* env = std::getenv("POWERAPI_LOG_LEVEL"); env != nullptr && *env != '\0') {
    apply_level_or_warn(env, "POWERAPI_LOG_LEVEL");
  }
}

void configure_logging(int& argc, char** argv) {
  configure_logging();
  constexpr std::string_view kFlag = "--log-level";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    int consumed = 0;
    if (arg.size() > kFlag.size() + 1 && arg.substr(0, kFlag.size()) == kFlag &&
        arg[kFlag.size()] == '=') {
      value = arg.substr(kFlag.size() + 1);
      consumed = 1;
    } else if (arg == kFlag && i + 1 < argc) {
      value = argv[i + 1];
      consumed = 2;
    } else {
      continue;
    }
    apply_level_or_warn(value, "--log-level");
    // Strip the consumed argument(s) so downstream flag parsing never sees
    // them.
    for (int j = i; j + consumed <= argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
    return;
  }
}

}  // namespace powerapi::util
