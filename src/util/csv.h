// Tiny CSV writer used by reporters and benchmark harnesses to dump time
// series the user can plot (gnuplot/python) against the paper's figures.
#pragma once

#include <initializer_list>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace powerapi::util {

/// Escapes a field per RFC 4180 when it contains separators/quotes/newlines.
std::string csv_escape(std::string_view field);

/// Streams rows to an std::ostream owned by the caller. Enforces a constant
/// column count after the header has been written.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes the header row; must be called at most once and first.
  void header(std::span<const std::string> columns);
  void header(std::initializer_list<std::string_view> columns);

  void row(std::span<const std::string> fields);
  void row(std::initializer_list<std::string_view> fields);

  /// Convenience for numeric series: formats doubles with enough precision
  /// to round-trip.
  void numeric_row(std::span<const double> values);

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_fields(std::span<const std::string> fields);

  std::ostream* out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Formats a double compactly but losslessly (max_digits10).
std::string format_double(double v);

}  // namespace powerapi::util
