// Streaming and batch statistics used by the regression toolkit, the
// benchmark harnesses (error metrics) and the reporters.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace powerapi::util {

/// Welford's online algorithm: numerically stable streaming mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of `xs`; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation of `xs`; 0 for fewer than two values.
double stddev(std::span<const double> xs);

/// p-th percentile (p in [0,100]) with linear interpolation between ranks.
/// Copies and sorts internally; throws std::invalid_argument on empty input.
double percentile(std::span<const double> xs, double p);

/// Median: percentile(xs, 50).
double median(std::span<const double> xs);

/// Absolute percentage errors |est-ref|/|ref| * 100 for each pair. Pairs with
/// |ref| < `floor` are skipped (avoids exploding errors near zero watts).
std::vector<double> absolute_percentage_errors(std::span<const double> reference,
                                               std::span<const double> estimate,
                                               double floor = 1e-9);

/// Mean absolute percentage error over the pairs (see above for `floor`).
double mape(std::span<const double> reference, std::span<const double> estimate);

/// Median absolute percentage error — the headline metric of the paper's
/// Figure 3 ("median error of 15%").
double median_ape(std::span<const double> reference, std::span<const double> estimate);

/// Root mean squared error between the two series.
double rmse(std::span<const double> reference, std::span<const double> estimate);

/// Fixed-width histogram for dispersion summaries in reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  double bin_low(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace powerapi::util
