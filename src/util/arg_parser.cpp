#include "util/arg_parser.h"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/string_util.h"

namespace powerapi::util {

namespace {

std::string format_default(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(std::string name, Kind kind, void* target,
                           std::string help, std::string default_text) {
  Option option;
  option.name = std::move(name);
  option.kind = kind;
  option.target = target;
  option.help = std::move(help);
  option.default_text = std::move(default_text);
  options_.push_back(std::move(option));
}

void ArgParser::add_flag(std::string name, bool* value, std::string help) {
  add_option(std::move(name), Kind::kFlag, value, std::move(help),
             *value ? "on" : "off");
}

void ArgParser::add_int64(std::string name, std::int64_t* value, std::string help) {
  add_option(std::move(name), Kind::kInt64, value, std::move(help),
             std::to_string(*value));
}

void ArgParser::add_size(std::string name, std::size_t* value, std::string help) {
  add_option(std::move(name), Kind::kSize, value, std::move(help),
             std::to_string(*value));
}

void ArgParser::add_double(std::string name, double* value, std::string help) {
  add_option(std::move(name), Kind::kDouble, value, std::move(help),
             format_default(*value));
}

void ArgParser::add_string(std::string name, std::string* value, std::string help) {
  add_option(std::move(name), Kind::kString, value, std::move(help), *value);
}

const ArgParser::Option* ArgParser::find(std::string_view name) const noexcept {
  for (const Option& option : options_) {
    if (option.name == name) return &option;
  }
  return nullptr;
}

bool ArgParser::apply(const Option& option, const std::string& text) const {
  switch (option.kind) {
    case Kind::kFlag:
      // Explicit value form (--flag=true); bare --flag is handled in parse().
      if (text == "true" || text == "1" || text == "on") {
        *static_cast<bool*>(option.target) = true;
        return true;
      }
      if (text == "false" || text == "0" || text == "off") {
        *static_cast<bool*>(option.target) = false;
        return true;
      }
      return false;
    case Kind::kInt64:
    case Kind::kSize: {
      const auto parsed = parse_double(text);
      if (!parsed || *parsed != static_cast<std::int64_t>(*parsed)) return false;
      if (option.kind == Kind::kSize) {
        if (*parsed < 0) return false;
        *static_cast<std::size_t*>(option.target) =
            static_cast<std::size_t>(*parsed);
      } else {
        *static_cast<std::int64_t*>(option.target) =
            static_cast<std::int64_t>(*parsed);
      }
      return true;
    }
    case Kind::kDouble: {
      const auto parsed = parse_double(text);
      if (!parsed) return false;
      *static_cast<double*>(option.target) = *parsed;
      return true;
    }
    case Kind::kString:
      *static_cast<std::string*>(option.target) = text;
      return true;
  }
  return false;
}

std::optional<int> ArgParser::parse(int& argc, char** argv) {
  int out = 1;  // argv[0] stays.
  std::optional<int> exit_code;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (exit_code || arg.size() < 3 || arg.substr(0, 2) != "--") {
      argv[out++] = argv[i];
      continue;
    }
    if (arg == "--help") {
      print_help(std::cout);
      exit_code = 0;
      continue;
    }
    std::string_view name = arg.substr(2);
    std::string value;
    bool have_value = false;
    const std::size_t eq = name.find('=');
    if (eq != std::string_view::npos) {
      value = std::string(name.substr(eq + 1));
      name = name.substr(0, eq);
      have_value = true;
    }
    const Option* option = find(name);
    if (option == nullptr) {
      std::fprintf(stderr, "%s: unknown option --%.*s (try --help)\n",
                   program_.c_str(), static_cast<int>(name.size()), name.data());
      exit_code = 2;
      continue;
    }
    if (!have_value && option->kind == Kind::kFlag) {
      *static_cast<bool*>(option->target) = true;
      continue;
    }
    if (!have_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --%s needs a value (try --help)\n",
                     program_.c_str(), option->name.c_str());
        exit_code = 2;
        continue;
      }
      value = argv[++i];
    }
    if (!apply(*option, value)) {
      std::fprintf(stderr, "%s: bad value '%s' for --%s (try --help)\n",
                   program_.c_str(), value.c_str(), option->name.c_str());
      exit_code = 2;
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return exit_code;
}

void ArgParser::print_help(std::ostream& out) const {
  out << "usage: " << program_ << " [options]\n  " << description_ << "\n\noptions:\n";
  for (const Option& option : options_) {
    std::string left = "--" + option.name;
    if (option.kind != Kind::kFlag) left += " <value>";
    out << "  " << left;
    for (std::size_t pad = left.size(); pad < 24; ++pad) out << ' ';
    out << option.help << " (default: " << option.default_text << ")\n";
  }
  out << "  --log-level <level>     debug|info|warn|error|off (also via "
         "POWERAPI_LOG_LEVEL)\n  --help                  show this message\n";
}

}  // namespace powerapi::util
