#include "util/clock.h"

#include <chrono>
#include <stdexcept>

namespace powerapi::util {

void SimClock::set(TimestampNs t) {
  TimestampNs current = now_.load(std::memory_order_acquire);
  if (t < current) {
    throw std::invalid_argument("SimClock::set would move time backwards");
  }
  now_.store(t, std::memory_order_release);
}

namespace {
TimestampNs steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

WallClock::WallClock() : epoch_(steady_now_ns()) {}

TimestampNs WallClock::now() const { return steady_now_ns() - epoch_; }

}  // namespace powerapi::util
