// Clock abstraction.
//
// Everything in the library reads time through `Clock` so that experiments
// run on a simulated clock (deterministic, fast-forwardable) while the same
// code paths work against the wall clock when monitoring real processes via
// the perf backend.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/units.h"

namespace powerapi::util {

/// Source of the current time. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in nanoseconds since this clock's epoch.
  virtual TimestampNs now() const = 0;
};

/// Manually advanced clock used by the simulator and all tests.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimestampNs start = 0) noexcept : now_(start) {}

  TimestampNs now() const override { return now_.load(std::memory_order_acquire); }

  /// Advances the clock by `dt` nanoseconds and returns the new time.
  TimestampNs advance(DurationNs dt) {
    return now_.fetch_add(dt, std::memory_order_acq_rel) + dt;
  }

  /// Jumps directly to `t`; `t` must not be in this clock's past.
  void set(TimestampNs t);

 private:
  std::atomic<TimestampNs> now_;
};

/// Monotonic wall clock (epoch = first use within the process).
class WallClock final : public Clock {
 public:
  WallClock();
  TimestampNs now() const override;

 private:
  TimestampNs epoch_;
};

}  // namespace powerapi::util
