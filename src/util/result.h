// Minimal Result<T> type for fallible operations on paths where exceptions
// are not appropriate (per-sample sensor reads, parsing). Construction-time
// failures still throw; see the Core Guidelines (E.*) discussion mirrored in
// DESIGN.md.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace powerapi::util {

/// Error payload: a category-free human-readable message. The library keeps
/// error taxonomies local to each module; crossing a module boundary the
/// message is all downstream code acts on (log and fall back).
struct Error {
  std::string message;
};

/// A value-or-error sum type. Intentionally tiny: no monadic combinators
/// beyond map/and_then, which covers every use in this codebase.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

  static Result failure(std::string message) { return Result(Error{std::move(message)}); }

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    require_ok();
    return std::get<T>(data_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(data_);
  }
  T&& take() && {
    require_ok();
    return std::get<T>(std::move(data_));
  }

  const std::string& error_message() const {
    if (ok()) throw std::logic_error("Result::error_message called on success value");
    return std::get<Error>(data_).message;
  }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? std::get<T>(data_) : std::move(fallback); }

  template <typename F>
  auto map(F&& f) const -> Result<decltype(f(std::declval<const T&>()))> {
    using U = decltype(f(std::declval<const T&>()));
    if (!ok()) return Result<U>(Error{error_message()});
    return Result<U>(f(std::get<T>(data_)));
  }

  template <typename F>
  auto and_then(F&& f) const -> decltype(f(std::declval<const T&>())) {
    using R = decltype(f(std::declval<const T&>()));
    if (!ok()) return R(Error{error_message()});
    return f(std::get<T>(data_));
  }

 private:
  void require_ok() const {
    if (!ok()) throw std::runtime_error("Result accessed on error: " + error_message());
  }

  std::variant<T, Error> data_;
};

}  // namespace powerapi::util
