#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace powerapi::util {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const auto& field : split(s, sep)) {
    auto t = trim(field);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<std::pair<std::string, std::string>> parse_key_value(std::string_view line) {
  const auto eq = line.find('=');
  if (eq == std::string_view::npos) return std::nullopt;
  return std::make_pair(std::string(trim(line.substr(0, eq))),
                        std::string(trim(line.substr(eq + 1))));
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, value);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, value, 10);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace powerapi::util
