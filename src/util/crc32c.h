// CRC-32C (Castagnoli, poly 0x1EDC6F41) — the checksum of the telemetry
// wire format's frame check and the .model file integrity footer.
//
// Software table-driven implementation (slice-by-4): no SSE4.2 dependency,
// ~1 byte/cycle — far faster than the sub-MB/s rates telemetry frames and
// model files need. The value convention is the standard reflected CRC32C
// (init/final xor 0xFFFFFFFF): crc32c("123456789") == 0xE3069283.
#pragma once

#include <cstddef>
#include <cstdint>

namespace powerapi::util {

/// CRC-32C of `size` bytes at `data`.
std::uint32_t crc32c(const void* data, std::size_t size) noexcept;

/// Streaming extension: returns the CRC of `prefix + data` given
/// `crc = crc32c(prefix)`. crc32c(x) == crc32c_extend(crc32c(""), x).
std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t size) noexcept;

}  // namespace powerapi::util
