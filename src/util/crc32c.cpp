#include "util/crc32c.h"

#include <array>

namespace powerapi::util {

namespace {

/// Reflected CRC-32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // tables[0] is the classic byte-at-a-time table; tables[1..3] fold the
  // remaining bytes of a 32-bit word so the hot loop eats 4 bytes per step.
  std::array<std::array<std::uint32_t, 256>, 4> t{};
};

Tables build_tables() {
  Tables tables;
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (std::size_t slice = 1; slice < 4; ++slice) {
      crc = tables.t[0][crc & 0xFFu] ^ (crc >> 8);
      tables.t[slice][i] = crc;
    }
  }
  return tables;
}

const Tables& tables() {
  static const Tables instance = build_tables();
  return instance;
}

std::uint32_t update(std::uint32_t crc, const unsigned char* p,
                     std::size_t size) noexcept {
  const Tables& tb = tables();
  while (size >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xFFu] ^ tb.t[2][(crc >> 8) & 0xFFu] ^
          tb.t[1][(crc >> 16) & 0xFFu] ^ tb.t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size) noexcept {
  return crc32c_extend(0, data, size);
}

std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t size) noexcept {
  return ~update(~crc, static_cast<const unsigned char*>(data), size);
}

}  // namespace powerapi::util
