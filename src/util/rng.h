// Deterministic random number generation.
//
// Library code never touches a global RNG: every stochastic component
// (meter noise, workload phase jitter, scheduler tie-breaking) receives an
// explicitly seeded Rng so experiments replay bit-identically. Benchmarks and
// tests derive child seeds with `fork()` so adding a consumer does not
// perturb the streams of existing ones.
#pragma once

#include <cstdint>
#include <random>

namespace powerapi::util {

/// SplitMix64: tiny, fast, and good enough for seeding / stream splitting.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// The library-wide RNG: a seeded mersenne twister with convenience
/// distributions and deterministic stream splitting.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Exponentially distributed value with the given rate (lambda).
  double exponential(double lambda) {
    std::exponential_distribution<double> d(lambda);
    return d(engine_);
  }

  /// Derives an independent child stream; `salt` distinguishes siblings.
  Rng fork(std::uint64_t salt) const {
    SplitMix64 mix(seed_ ^ (salt * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL));
    return Rng(mix.next());
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace powerapi::util
