// Units and physical-quantity helpers used across the library.
//
// Power and energy values flow through many layers (simulator ground truth,
// meter samples, model estimates). To keep hot paths cheap we represent them
// as plain doubles, but every variable and accessor names its unit, and this
// header centralizes the conversion constants so magic numbers never appear
// at call sites.
#pragma once

#include <cstdint>

namespace powerapi::util {

/// Nanoseconds since the start of the (simulated or wall) clock epoch.
using TimestampNs = std::int64_t;

/// A duration expressed in nanoseconds.
using DurationNs = std::int64_t;

inline constexpr double kNsPerSec = 1e9;
inline constexpr double kNsPerMs = 1e6;
inline constexpr double kNsPerUs = 1e3;

/// Converts a nanosecond duration to seconds.
constexpr double ns_to_seconds(DurationNs ns) { return static_cast<double>(ns) / kNsPerSec; }

/// Converts seconds to a nanosecond duration (truncating).
constexpr DurationNs seconds_to_ns(double s) { return static_cast<DurationNs>(s * kNsPerSec); }

/// Converts milliseconds to a nanosecond duration.
constexpr DurationNs ms_to_ns(std::int64_t ms) { return ms * static_cast<DurationNs>(kNsPerMs); }

/// Frequencies are carried in hertz; DVFS tables are small so doubles are fine.
inline constexpr double kHzPerGHz = 1e9;
inline constexpr double kHzPerMHz = 1e6;

constexpr double ghz_to_hz(double ghz) { return ghz * kHzPerGHz; }
constexpr double hz_to_ghz(double hz) { return hz / kHzPerGHz; }

/// Energy in joules accumulated from power (watts) over a duration.
constexpr double energy_joules(double watts, DurationNs dt) {
  return watts * ns_to_seconds(dt);
}

}  // namespace powerapi::util
