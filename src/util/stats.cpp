#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerapi::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sq = 0.0;
  for (double x : xs) sq += (x - m) * (x - m);
  return std::sqrt(sq / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty span");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

std::vector<double> absolute_percentage_errors(std::span<const double> reference,
                                               std::span<const double> estimate,
                                               double floor) {
  if (reference.size() != estimate.size()) {
    throw std::invalid_argument("APE series length mismatch");
  }
  std::vector<double> errs;
  errs.reserve(reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double ref = reference[i];
    if (std::abs(ref) < floor) continue;
    errs.push_back(std::abs(estimate[i] - ref) / std::abs(ref) * 100.0);
  }
  return errs;
}

double mape(std::span<const double> reference, std::span<const double> estimate) {
  const auto errs = absolute_percentage_errors(reference, estimate);
  return mean(errs);
}

double median_ape(std::span<const double> reference, std::span<const double> estimate) {
  const auto errs = absolute_percentage_errors(reference, estimate);
  if (errs.empty()) return 0.0;
  return median(errs);
}

double rmse(std::span<const double> reference, std::span<const double> estimate) {
  if (reference.size() != estimate.size()) {
    throw std::invalid_argument("RMSE series length mismatch");
  }
  if (reference.empty()) return 0.0;
  double sq = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d = estimate[i] - reference[i];
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(reference.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (bins == 0) throw std::invalid_argument("Histogram needs at least one bin");
  if (hi <= lo) throw std::invalid_argument("Histogram range must be non-empty");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

double Histogram::bin_low(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram bin index");
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace powerapi::util
