// MPSC actor mailbox: many producers (any thread may tell), one consumer
// (the dispatcher guarantees single-threaded processing per actor).
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "actors/message.h"

namespace powerapi::actors {

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues; returns the queue length after insertion (1 means the
  /// mailbox was empty and the actor needs scheduling).
  std::size_t push(Envelope envelope) {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(envelope));
    return queue_.size();
  }

  std::optional<Envelope> pop() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    Envelope e = std::move(queue_.front());
    queue_.pop_front();
    return e;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::deque<Envelope> queue_;
};

}  // namespace powerapi::actors
