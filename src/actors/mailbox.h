// MPSC actor mailbox: many producers (any thread may tell), one consumer
// (the dispatcher guarantees single-threaded processing per actor).
//
// Implementation: Vyukov-style intrusive MPSC node queue. push() is
// wait-free for practical purposes (one atomic exchange + one store, no
// locks, no CAS loop); pop() is a single-consumer dequeue that touches at
// most two cache lines. A separate approximate size counter preserves the
// "did the mailbox transition empty -> non-empty" signal the scheduling
// protocol needs, and lets empty() be queried from any thread.
//
// pop() may transiently return nullopt while size() > 0 when a producer has
// exchanged the head but not yet linked its node; callers treat that as
// "retry later" (the dispatcher re-schedules the actor), never as loss.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "actors/message.h"

namespace powerapi::actors {

class Mailbox {
 public:
  Mailbox() noexcept : head_(&stub_), tail_(&stub_) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  ~Mailbox() {
    // Drain remaining nodes (messages abandoned at system shutdown).
    while (pop()) {
    }
  }

  /// Enqueues; returns the queue length after insertion (1 means the
  /// mailbox was empty and the actor needs scheduling). Any thread.
  std::size_t push(Envelope&& envelope) {
    Node* node = new (allocate_block()) Node(std::move(envelope));
    // seq_cst so the consumer's "release token, then re-check size" path
    // cannot miss this increment while our schedule CAS misses its token
    // release (the classic schedule/unschedule store-load race).
    const std::size_t prior = size_.fetch_add(1, std::memory_order_seq_cst);
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
    return prior + 1;
  }

  /// Dequeues one envelope. Single consumer only.
  std::optional<Envelope> pop() {
    Node* node = pop_node();
    if (node == nullptr) return std::nullopt;
    std::optional<Envelope> out(std::move(node->envelope));
    recycle(node);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return out;
  }

  /// Batch drain: pops up to `max` envelopes, invoking `fn(Envelope&&)` for
  /// each; `fn` returns false to stop early (the popped envelope is still
  /// consumed). The size counter is folded once per batch rather than per
  /// message. Returns the number consumed. Single consumer only.
  template <typename Fn>
  std::size_t consume(std::size_t max, Fn&& fn) {
    std::size_t n = 0;
    while (n < max) {
      Node* node = pop_node();
      if (node == nullptr) break;
      const bool keep_going = fn(std::move(node->envelope));
      recycle(node);
      ++n;
      if (!keep_going) break;
    }
    if (n != 0) size_.fetch_sub(n, std::memory_order_relaxed);
    return n;
  }

  /// Approximate from producers' perspective; exact once quiescent.
  std::size_t size() const noexcept { return size_.load(std::memory_order_seq_cst); }

  bool empty() const noexcept { return size() == 0; }

 private:
  struct Node {
    Node() = default;
    explicit Node(Envelope&& e) : envelope(std::move(e)) {}
    std::atomic<Node*> next{nullptr};
    Envelope envelope;
  };

  // A fixed 64 avoids the ABI-instability of hardware_destructive_
  // interference_size (and its -Winterference-size noise): the exact
  // constant only affects padding, not correctness.
  static constexpr std::size_t kCacheLine = 64;

  // --- Node block recycling -------------------------------------------
  // Steady-state messaging must never hit the global allocator: a
  // per-thread cache of raw node blocks fronts a process-wide spill pool.
  // Producer and consumer are usually different threads, so blocks drift
  // from consumer caches (which free) to producer caches (which allocate)
  // through the spill pool in batches of kTransferBatch — one pool mutex
  // acquisition per kTransferBatch messages, not per message.
  static constexpr std::size_t kLocalCacheCap = 256;
  static constexpr std::size_t kTransferBatch = 128;
  static constexpr std::size_t kSpillPoolCap = 1u << 14;  ///< ~1 MiB of nodes.

  struct SpillPool {
    std::mutex mutex;
    std::vector<void*> blocks;
  };

  static SpillPool& spill_pool() {
    // Leaked singleton: thread caches spill into it from thread_local
    // destructors, whose run order vs. static destruction is unsequenced.
    static SpillPool* pool = new SpillPool();
    return *pool;
  }

  struct LocalCache {
    std::array<void*, kLocalCacheCap> blocks;
    std::size_t count = 0;

    ~LocalCache() {
      SpillPool& pool = spill_pool();
      std::lock_guard lock(pool.mutex);
      while (count != 0) {
        void* block = blocks[--count];
        if (pool.blocks.size() < kSpillPoolCap) {
          pool.blocks.push_back(block);
        } else {
          ::operator delete(block);
        }
      }
    }
  };

  static LocalCache& local_cache() {
    static thread_local LocalCache cache;
    return cache;
  }

  static void* allocate_block() {
    LocalCache& cache = local_cache();
    if (cache.count == 0) {
      SpillPool& pool = spill_pool();
      std::lock_guard lock(pool.mutex);
      while (cache.count < kTransferBatch && !pool.blocks.empty()) {
        cache.blocks[cache.count++] = pool.blocks.back();
        pool.blocks.pop_back();
      }
    }
    if (cache.count != 0) return cache.blocks[--cache.count];
    return ::operator new(sizeof(Node));
  }

  static void release_block(void* block) {
    LocalCache& cache = local_cache();
    if (cache.count == kLocalCacheCap) {
      SpillPool& pool = spill_pool();
      std::lock_guard lock(pool.mutex);
      if (pool.blocks.size() + kTransferBatch <= kSpillPoolCap) {
        while (cache.count > kLocalCacheCap - kTransferBatch) {
          pool.blocks.push_back(cache.blocks[--cache.count]);
        }
      } else {
        while (cache.count > kLocalCacheCap - kTransferBatch) {
          ::operator delete(cache.blocks[--cache.count]);
        }
      }
    }
    cache.blocks[cache.count++] = block;
  }

  /// Destroys a popped node and returns its block to the pool. The stub is
  /// part of the mailbox object itself and is never reclaimed.
  void recycle(Node* node) {
    if (node == &stub_) return;
    node->~Node();
    release_block(node);
  }

  /// Vyukov MPSC dequeue. Returns the node owning the front envelope, or
  /// nullptr when empty (or transiently mid-push). The returned node is
  /// owned by the caller except when it is &stub_ (whose envelope was
  /// moved in by a producer and is safe to move out exactly once).
  Node* pop_node() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return nullptr;  // Empty (or producer mid-push).
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {  // At least two nodes: pop the front one.
      tail_ = next;
      return tail;
    }
    Node* head = head_.load(std::memory_order_acquire);
    if (tail != head) return nullptr;  // Producer mid-push: transient empty.
    // Single node left: re-insert the stub behind it so the queue is never
    // without a node, then pop.
    push_node(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    return nullptr;  // Another producer slipped in between; retry later.
  }

  void push_node(Node* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  alignas(kCacheLine) std::atomic<Node*> head_;        ///< Producer side.
  alignas(kCacheLine) Node* tail_;                     ///< Consumer side.
  Node stub_;
  alignas(kCacheLine) std::atomic<std::size_t> size_{0};
};

}  // namespace powerapi::actors
