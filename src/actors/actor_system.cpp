#include "actors/actor_system.h"

#include <stdexcept>

#include "util/logging.h"

namespace powerapi::actors {

void ActorRef::tell(std::any payload) const { tell(std::move(payload), ActorRef()); }

void ActorRef::tell(std::any payload, ActorRef sender) const {
  if (!valid()) return;
  system_->tell(*this, std::move(payload), sender);
}

ActorSystem::ActorSystem(Mode mode, std::size_t workers) : mode_(mode) {
  if (mode_ == Mode::kThreaded) {
    if (workers == 0) throw std::invalid_argument("ActorSystem: zero workers");
    running_.store(true, std::memory_order_release);
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

ActorSystem::~ActorSystem() { shutdown(); }

ActorRef ActorSystem::spawn(std::string name, std::unique_ptr<Actor> actor) {
  if (!actor) throw std::invalid_argument("ActorSystem::spawn: null actor");
  auto cell = std::make_unique<Cell>();
  cell->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  cell->name = std::move(name);
  cell->actor = std::move(actor);
  const ActorRef ref(this, cell->id);
  cell->actor->self_ = ref;
  cell->actor->name_ = cell->name;
  cell->actor->pre_start();
  {
    std::lock_guard lock(cells_mutex_);
    cells_.push_back(std::move(cell));
  }
  return ref;
}

ActorSystem::Cell* ActorSystem::find_cell(ActorId id) const {
  std::lock_guard lock(cells_mutex_);
  for (const auto& cell : cells_) {
    if (cell->id == id && !cell->stopped.load(std::memory_order_acquire)) {
      return cell.get();
    }
  }
  return nullptr;
}

std::size_t ActorSystem::actor_count() const {
  std::lock_guard lock(cells_mutex_);
  std::size_t n = 0;
  for (const auto& cell : cells_) {
    if (!cell->stopped.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

void ActorSystem::tell(const ActorRef& target, std::any payload, ActorRef sender) {
  Cell* cell = target.system() == this ? find_cell(target.id()) : nullptr;
  if (cell == nullptr) {
    dead_letters_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Envelope envelope{std::move(payload), sender,
                    next_sequence_.fetch_add(1, std::memory_order_relaxed)};
  pending_.fetch_add(1, std::memory_order_acq_rel);
  cell->mailbox.push(std::move(envelope));
  if (mode_ == Mode::kThreaded) schedule(*cell);
}

void ActorSystem::schedule(Cell& cell) {
  bool expected = false;
  if (!cell.scheduled.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    return;  // Already queued or being processed.
  }
  {
    std::lock_guard lock(runq_mutex_);
    runq_.push_back(&cell);
  }
  runq_cv_.notify_one();
}

void ActorSystem::handle_failure(Cell& cell, const std::exception& error) {
  failures_.fetch_add(1, std::memory_order_relaxed);
  const SupervisionDirective directive = cell.actor->on_failure(error);
  switch (directive) {
    case SupervisionDirective::kResume:
      POWERAPI_LOG_WARN("actors") << cell.name << " resumed after failure: " << error.what();
      break;
    case SupervisionDirective::kRestart:
      POWERAPI_LOG_WARN("actors") << cell.name << " restarting after failure: " << error.what();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      cell.actor->post_stop();
      cell.actor->pre_start();
      break;
    case SupervisionDirective::kStop:
      POWERAPI_LOG_WARN("actors") << cell.name << " stopped after failure: " << error.what();
      cell.stopped.store(true, std::memory_order_release);
      cell.actor->post_stop();
      break;
  }
}

void ActorSystem::process_one(Cell& cell, Envelope& envelope) {
  try {
    cell.actor->receive(envelope);
  } catch (const std::exception& e) {
    handle_failure(cell, e);
  }
  messages_processed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

std::size_t ActorSystem::drain(std::size_t max_messages) {
  if (mode_ != Mode::kManual) {
    throw std::logic_error("ActorSystem::drain: only valid in manual mode");
  }
  std::size_t processed = 0;
  bool progressed = true;
  while (progressed && processed < max_messages) {
    progressed = false;
    // Snapshot cells to allow spawn during drain.
    std::vector<Cell*> snapshot;
    {
      std::lock_guard lock(cells_mutex_);
      snapshot.reserve(cells_.size());
      for (const auto& cell : cells_) snapshot.push_back(cell.get());
    }
    for (Cell* cell : snapshot) {
      if (processed >= max_messages) break;
      if (cell->stopped.load(std::memory_order_acquire)) {
        // Drain dead mailbox into dead letters.
        while (auto e = cell->mailbox.pop()) {
          dead_letters_.fetch_add(1, std::memory_order_relaxed);
          pending_.fetch_sub(1, std::memory_order_acq_rel);
        }
        continue;
      }
      if (auto envelope = cell->mailbox.pop()) {
        process_one(*cell, *envelope);
        ++processed;
        progressed = true;
      }
    }
  }
  return processed;
}

void ActorSystem::worker_loop() {
  constexpr std::size_t kThroughput = 64;  // Messages per scheduling slot.
  while (true) {
    Cell* cell = nullptr;
    {
      std::unique_lock lock(runq_mutex_);
      runq_cv_.wait(lock, [this] {
        return !runq_.empty() || !running_.load(std::memory_order_acquire);
      });
      if (!running_.load(std::memory_order_acquire) && runq_.empty()) return;
      cell = runq_.front();
      runq_.pop_front();
    }

    std::size_t handled = 0;
    while (handled < kThroughput) {
      if (cell->stopped.load(std::memory_order_acquire)) {
        while (auto e = cell->mailbox.pop()) {
          dead_letters_.fetch_add(1, std::memory_order_relaxed);
          pending_.fetch_sub(1, std::memory_order_acq_rel);
        }
        break;
      }
      auto envelope = cell->mailbox.pop();
      if (!envelope) break;
      process_one(*cell, *envelope);
      ++handled;
    }

    // Release the scheduling token, then re-check for late arrivals.
    cell->scheduled.store(false, std::memory_order_release);
    if (!cell->mailbox.empty() && !cell->stopped.load(std::memory_order_acquire)) {
      schedule(*cell);
    }
  }
}

void ActorSystem::await_idle() {
  if (mode_ != Mode::kThreaded) {
    throw std::logic_error("ActorSystem::await_idle: only valid in threaded mode");
  }
  std::unique_lock lock(idle_mutex_);
  idle_cv_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

void ActorSystem::stop(const ActorRef& ref) {
  Cell* cell = ref.system() == this ? find_cell(ref.id()) : nullptr;
  if (cell == nullptr) return;
  cell->stopped.store(true, std::memory_order_release);
  cell->actor->post_stop();
}

void ActorSystem::shutdown() {
  if (mode_ == Mode::kThreaded && running_.exchange(false, std::memory_order_acq_rel)) {
    runq_cv_.notify_all();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
  }
  // Mark everything stopped under the lock, but run post_stop hooks outside
  // it: a hook may legitimately publish (e.g. an aggregator flushing), which
  // re-enters tell()/find_cell() and would deadlock on cells_mutex_.
  std::vector<Cell*> to_stop;
  {
    std::lock_guard lock(cells_mutex_);
    for (auto& cell : cells_) {
      if (!cell->stopped.exchange(true, std::memory_order_acq_rel)) {
        to_stop.push_back(cell.get());
      }
    }
  }
  for (Cell* cell : to_stop) cell->actor->post_stop();
}

}  // namespace powerapi::actors
