#include "actors/actor_system.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/observability.h"
#include "util/logging.h"

namespace powerapi::actors {

namespace {

// Identifies the worker thread's home system/queue so schedule() can push
// to the local run queue without any shared round-robin traffic.
thread_local ActorSystem* tls_worker_system = nullptr;
thread_local std::size_t tls_worker_index = 0;

std::uint64_t xorshift64(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

void ActorRef::tell(Payload payload) const { tell(std::move(payload), ActorRef()); }

void ActorRef::tell(Payload payload, ActorRef sender) const {
  if (!valid()) return;
  system_->tell(*this, std::move(payload), sender);
}

ActorSystem::ActorSystem(Mode mode, std::size_t workers, obs::Observability* obs)
    : mode_(mode), obs_(obs) {
  if (obs_ != nullptr) {
    steals_metric_ = &obs_->metrics.counter("actors.dispatch.steals");
    parks_metric_ = &obs_->metrics.counter("actors.dispatch.parks");
    mailbox_latency_ = &obs_->metrics.histogram("actors.mailbox.latency_ns");
    // Depth-style gauges are computed only when someone snapshots — per-event
    // bookkeeping for them would cost more than the metrics are worth.
    obs_collector_ = obs_->metrics.add_collector([this](obs::SnapshotBuilder& builder) {
      std::size_t actors = 0;
      std::size_t depth_total = 0;
      std::size_t depth_max = 0;
      {
        std::lock_guard lock(cells_mutex_);
        for (const auto& cell : cells_) {
          if (cell->stopped.load(std::memory_order_acquire)) continue;
          ++actors;
          const std::size_t depth = cell->mailbox.size();
          depth_total += depth;
          depth_max = std::max(depth_max, depth);
        }
      }
      std::size_t queued = 0;
      for (const auto& queue : worker_queues_) {
        std::lock_guard lock(queue->mutex);
        queued += queue->cells.size();
      }
      builder.gauge("actors.count", static_cast<double>(actors));
      builder.gauge("actors.mailbox.depth", static_cast<double>(depth_total));
      builder.gauge("actors.mailbox.max_depth", static_cast<double>(depth_max));
      builder.gauge("actors.dispatch.queue_depth", static_cast<double>(queued));
      builder.gauge("actors.messages_processed",
                    static_cast<double>(messages_processed()));
      builder.gauge("actors.dead_letters", static_cast<double>(dead_letters()));
      builder.gauge("actors.failures", static_cast<double>(failures()));
      builder.gauge("actors.restarts", static_cast<double>(restarts()));
    });
  }
  if (mode_ == Mode::kThreaded) {
    if (workers == 0) throw std::invalid_argument("ActorSystem: zero workers");
    running_.store(true, std::memory_order_release);
    worker_queues_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      worker_queues_.push_back(std::make_unique<WorkerQueue>());
    }
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }
}

ActorSystem::~ActorSystem() {
  shutdown();
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

ActorRef ActorSystem::spawn(std::string name, std::unique_ptr<Actor> actor) {
  if (!actor) throw std::invalid_argument("ActorSystem::spawn: null actor");
  auto cell = std::make_unique<Cell>();
  cell->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if ((cell->id >> kChunkBits) >= kMaxChunks) {
    throw std::length_error("ActorSystem::spawn: actor id space exhausted");
  }
  cell->name = std::move(name);
  cell->actor = std::move(actor);
  const ActorRef ref(this, cell->id);
  cell->actor->self_ = ref;
  cell->actor->name_ = cell->name;
  cell->actor->pre_start();
  {
    std::lock_guard lock(cells_mutex_);
    const std::size_t chunk_index = cell->id >> kChunkBits;
    SlotChunk* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new SlotChunk();
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    chunk->slots[cell->id & kChunkMask].store(cell.get(), std::memory_order_release);
    cells_.push_back(std::move(cell));
    cells_version_.fetch_add(1, std::memory_order_release);
  }
  return ref;
}

ActorSystem::Cell* ActorSystem::lookup(ActorId id) const noexcept {
  const std::size_t chunk_index = id >> kChunkBits;
  if (chunk_index >= kMaxChunks) return nullptr;
  const SlotChunk* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  return chunk->slots[id & kChunkMask].load(std::memory_order_acquire);
}

ActorSystem::Cell* ActorSystem::find_cell(ActorId id) const noexcept {
  Cell* cell = lookup(id);
  if (cell == nullptr || cell->stopped.load(std::memory_order_acquire)) return nullptr;
  return cell;
}

std::size_t ActorSystem::actor_count() const {
  std::lock_guard lock(cells_mutex_);
  std::size_t n = 0;
  for (const auto& cell : cells_) {
    if (!cell->stopped.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

void ActorSystem::tell(const ActorRef& target, Payload payload, ActorRef sender) {
  Cell* cell = target.system() == this ? find_cell(target.id()) : nullptr;
  if (cell == nullptr) {
    dead_letters_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Envelope envelope{std::move(payload), sender};
  if (obs_ != nullptr && obs_->enabled()) envelope.enqueue_ns = obs::wall_now_ns();
  if (mode_ == Mode::kThreaded) {
    // pending_ feeds await_idle(), which only exists in threaded mode;
    // manual mode skips the counter traffic entirely.
    pending_.fetch_add(1, std::memory_order_relaxed);
    cell->mailbox.push(std::move(envelope));
    schedule(*cell);
  } else {
    cell->mailbox.push(std::move(envelope));
    // Publish the drain hint after the push so a drain round that observes
    // the hint also observes the message (push's size increment is seq_cst).
    cell->has_mail.store(true, std::memory_order_release);
  }
}

void ActorSystem::enqueue_cell(Cell& cell) {
  std::size_t index;
  if (tls_worker_system == this) {
    index = tls_worker_index;  // Local queue: no shared counter traffic.
  } else {
    index = external_rr_.fetch_add(1, std::memory_order_relaxed) % worker_queues_.size();
  }
  {
    std::lock_guard lock(worker_queues_[index]->mutex);
    worker_queues_[index]->cells.push_back(&cell);
  }
  // Wake a parked worker, if any. The epoch bump happens-before the parked_
  // check so a worker that re-scans after recording the epoch cannot miss
  // this enqueue; notify_one is only reached when someone actually parked,
  // keeping the loaded hot path free of condvar traffic.
  unpark_epoch_.fetch_add(1, std::memory_order_release);
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    { std::lock_guard lock(park_mutex_); }
    park_cv_.notify_one();
  }
}

void ActorSystem::schedule(Cell& cell) {
  // Cheap pre-check before the CAS: on the loaded path the cell is almost
  // always already scheduled, and a seq_cst load (a plain load on x86) is
  // far cheaper than a failing locked CAS. Safety: our mailbox push's
  // seq_cst size increment precedes this load in program order, and the
  // consumer's seq_cst "release token, then re-check size" sequence means
  // that if we read a stale `true` the consumer's subsequent size check is
  // after our increment in the seq_cst total order — it sees the message
  // and re-schedules. No lost wakeup.
  if (cell.scheduled.load(std::memory_order_seq_cst)) return;
  bool expected = false;
  if (!cell.scheduled.compare_exchange_strong(expected, true, std::memory_order_seq_cst)) {
    return;  // Another producer won the race.
  }
  enqueue_cell(cell);
}

void ActorSystem::handle_failure(Cell& cell, const std::exception& error) {
  failures_.fetch_add(1, std::memory_order_relaxed);
  const SupervisionDirective directive = cell.actor->on_failure(error);
  switch (directive) {
    case SupervisionDirective::kResume:
      POWERAPI_LOG_WARN("actors") << cell.name << " resumed after failure: " << error.what();
      break;
    case SupervisionDirective::kRestart:
      POWERAPI_LOG_WARN("actors") << cell.name << " restarting after failure: " << error.what();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      cell.actor->post_stop();
      cell.actor->pre_start();
      break;
    case SupervisionDirective::kStop:
      POWERAPI_LOG_WARN("actors") << cell.name << " stopped after failure: " << error.what();
      cell.stopped.store(true, std::memory_order_release);
      cell.actor->post_stop();
      break;
  }
}

void ActorSystem::process_one(Cell& cell, Envelope& envelope) {
  try {
    cell.actor->receive(envelope);
  } catch (const std::exception& e) {
    handle_failure(cell, e);
  }
}

std::size_t ActorSystem::drain_dead_letters(Cell& cell) {
  // Single place that converts a stopped actor's backlog into dead letters,
  // so the pending/dead-letter books are kept exactly once per message.
  const std::size_t n = cell.mailbox.consume(
      SIZE_MAX, [](Envelope&&) { return true; /* dropped */ });
  if (n != 0) dead_letters_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

void ActorSystem::fold_processed(std::uint64_t handled) {
  if (handled == 0) return;
  const auto signed_handled = static_cast<std::int64_t>(handled);
  if (pending_.fetch_sub(signed_handled, std::memory_order_acq_rel) == signed_handled) {
    std::lock_guard lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

std::size_t ActorSystem::drain(std::size_t max_messages) {
  if (mode_ != Mode::kManual) {
    throw std::logic_error("ActorSystem::drain: only valid in manual mode");
  }
  std::size_t processed = 0;
  bool progressed = true;
  // Snapshot cells so spawn-during-drain is legal; the snapshot is cached
  // across rounds and rebuilt only when a spawn bumps cells_version_, so
  // the per-round cost is one relaxed load instead of a lock + allocation.
  std::vector<Cell*> snapshot;
  std::uint64_t snapshot_version = 0;  // cells_version_ starts at 1: first round always builds.
  while (progressed && processed < max_messages) {
    progressed = false;
    if (cells_version_.load(std::memory_order_acquire) != snapshot_version) {
      std::lock_guard lock(cells_mutex_);
      snapshot.clear();
      snapshot.reserve(cells_.size());
      for (const auto& cell : cells_) snapshot.push_back(cell.get());
      snapshot_version = cells_version_.load(std::memory_order_relaxed);
    }
    for (Cell* cell : snapshot) {
      if (processed >= max_messages) break;
      // Idle skip: most visits in a steady tick hit an empty mailbox, and
      // the hint turns each of those into a single relaxed-ish load. The
      // visit order over non-idle cells is unchanged, so kManual message
      // ordering (and therefore golden output) is identical.
      if (!cell->has_mail.load(std::memory_order_acquire)) continue;
      if (cell->stopped.load(std::memory_order_acquire)) {
        drain_dead_letters(*cell);
        cell->has_mail.store(false, std::memory_order_relaxed);
        if (!cell->mailbox.empty()) cell->has_mail.store(true, std::memory_order_relaxed);
        continue;
      }
      // One message per visit, processed in place (no move out of the node).
      const std::size_t n = cell->mailbox.consume(1, [&](Envelope&& envelope) {
        if (mailbox_latency_ != nullptr && envelope.enqueue_ns != 0) {
          mailbox_latency_->record(obs::wall_now_ns() - envelope.enqueue_ns);
        }
        process_one(*cell, envelope);
        return true;
      });
      if (n != 0) {
        ++processed;
        progressed = true;
      }
      if (cell->mailbox.empty()) {
        // Clear-then-recheck: if a concurrent tell lands between the empty()
        // observation and the clear, the recheck re-arms the hint, so no
        // message is stranded behind a cleared flag.
        cell->has_mail.store(false, std::memory_order_relaxed);
        if (!cell->mailbox.empty()) cell->has_mail.store(true, std::memory_order_relaxed);
      }
    }
  }
  if (processed != 0) messages_processed_.fetch_add(processed, std::memory_order_relaxed);
  return processed;
}

ActorSystem::Cell* ActorSystem::try_pop_local(std::size_t index) {
  WorkerQueue& q = *worker_queues_[index];
  std::lock_guard lock(q.mutex);
  if (q.cells.empty()) return nullptr;
  Cell* cell = q.cells.front();  // FIFO locally: fair across actors.
  q.cells.pop_front();
  return cell;
}

ActorSystem::Cell* ActorSystem::try_steal(std::size_t thief_index, std::uint64_t& rng_state) {
  const std::size_t n = worker_queues_.size();
  if (n <= 1) return nullptr;
  const std::size_t offset = static_cast<std::size_t>(xorshift64(rng_state));
  for (std::size_t attempt = 0; attempt < n - 1; ++attempt) {
    const std::size_t victim = (thief_index + 1 + (offset + attempt) % (n - 1)) % n;
    WorkerQueue& q = *worker_queues_[victim];
    std::lock_guard lock(q.mutex);
    if (q.cells.empty()) continue;
    Cell* cell = q.cells.back();  // Steal the newest: leaves the victim's FIFO head alone.
    q.cells.pop_back();
    if (steals_metric_ != nullptr && obs_->enabled()) steals_metric_->add();
    return cell;
  }
  return nullptr;
}

ActorSystem::Cell* ActorSystem::acquire_work(std::size_t index, std::uint64_t& rng_state) {
  for (;;) {
    if (Cell* cell = try_pop_local(index)) return cell;
    if (Cell* cell = try_steal(index, rng_state)) return cell;

    if (!running_.load(std::memory_order_acquire)) {
      // Shutdown: one final sweep so queued work never strands; exit only
      // when every queue is observed empty.
      if (Cell* cell = try_pop_local(index)) return cell;
      if (Cell* cell = try_steal(index, rng_state)) return cell;
      return nullptr;
    }

    // Park. Epoch is read BEFORE the re-scan: any enqueue that the re-scan
    // misses bumps the epoch afterwards and fails the wait predicate.
    parked_.fetch_add(1, std::memory_order_seq_cst);
    const std::uint64_t epoch = unpark_epoch_.load(std::memory_order_acquire);
    Cell* cell = try_pop_local(index);
    if (cell == nullptr) cell = try_steal(index, rng_state);
    if (cell != nullptr) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      return cell;
    }
    if (parks_metric_ != nullptr && obs_->enabled()) parks_metric_->add();
    {
      std::unique_lock lock(park_mutex_);
      // Bounded wait as a belt-and-braces backstop: a missed wakeup costs a
      // millisecond, never a hang.
      park_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return unpark_epoch_.load(std::memory_order_acquire) != epoch ||
               !running_.load(std::memory_order_acquire);
      });
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ActorSystem::run_cell(Cell& cell) {
  constexpr std::size_t kThroughput = 64;  // Messages per scheduling slot.
  std::uint64_t handled = 0;
  std::uint64_t folded = 0;
  if (cell.stopped.load(std::memory_order_acquire)) {
    folded = drain_dead_letters(cell);
  } else {
    // Batch drain: envelopes are processed in place (no per-message move
    // out of the node) and the mailbox folds its size counter once. The
    // lambda's return value stops the batch as soon as the actor stops
    // (e.g. a kStop supervision directive mid-slot). Enqueue-to-drain
    // latency reads the clock once per slot, not per message.
    const std::int64_t drain_ns =
        mailbox_latency_ != nullptr ? obs::wall_now_ns() : 0;
    handled = cell.mailbox.consume(kThroughput, [&](Envelope&& envelope) {
      if (drain_ns != 0 && envelope.enqueue_ns != 0) {
        mailbox_latency_->record(drain_ns - envelope.enqueue_ns);
      }
      process_one(cell, envelope);
      return !cell.stopped.load(std::memory_order_acquire);
    });
    if (cell.stopped.load(std::memory_order_acquire)) folded = drain_dead_letters(cell);
  }
  if (handled != 0) messages_processed_.fetch_add(handled, std::memory_order_relaxed);
  fold_processed(handled + folded);

  // Release the scheduling token, then re-check for late arrivals. A
  // stopped cell with a non-empty backlog is re-scheduled too: the next
  // slot converts the backlog to dead letters, keeping await_idle() exact.
  cell.scheduled.store(false, std::memory_order_seq_cst);
  if (!cell.mailbox.empty()) schedule(cell);
}

void ActorSystem::worker_loop(std::size_t index) {
  tls_worker_system = this;
  tls_worker_index = index;
  std::uint64_t rng_state = 0x9E3779B97F4A7C15ull ^ (index + 1);
  while (Cell* cell = acquire_work(index, rng_state)) {
    run_cell(*cell);
  }
  tls_worker_system = nullptr;
}

void ActorSystem::await_idle() {
  if (mode_ != Mode::kThreaded) {
    throw std::logic_error("ActorSystem::await_idle: only valid in threaded mode");
  }
  std::unique_lock lock(idle_mutex_);
  idle_cv_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

void ActorSystem::stop(const ActorRef& ref) {
  Cell* cell = ref.system() == this ? find_cell(ref.id()) : nullptr;
  if (cell == nullptr) return;
  cell->stopped.store(true, std::memory_order_release);
  cell->actor->post_stop();
  // Flush any backlog to dead letters so await_idle() cannot strand on a
  // stopped-but-unscheduled mailbox.
  if (mode_ == Mode::kThreaded && !cell->mailbox.empty()) schedule(*cell);
}

void ActorSystem::shutdown() {
  // Drop the snapshot collector first: it walks cells_ and worker_queues_
  // through `this`, which must not happen once teardown begins. Idempotent.
  if (obs_ != nullptr && obs_collector_ != 0) {
    obs_->metrics.remove_collector(obs_collector_);
    obs_collector_ = 0;
  }
  if (mode_ == Mode::kThreaded && running_.exchange(false, std::memory_order_acq_rel)) {
    {
      std::lock_guard lock(park_mutex_);
    }
    park_cv_.notify_all();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
  }
  // Mark everything stopped under the lock, but run post_stop hooks outside
  // it: a hook may legitimately publish (e.g. an aggregator flushing), which
  // re-enters tell()/find_cell() and would deadlock on cells_mutex_.
  std::vector<Cell*> to_stop;
  {
    std::lock_guard lock(cells_mutex_);
    for (auto& cell : cells_) {
      if (!cell->stopped.exchange(true, std::memory_order_acq_rel)) {
        to_stop.push_back(cell.get());
      }
    }
  }
  for (Cell* cell : to_stop) cell->actor->post_stop();
}

}  // namespace powerapi::actors
