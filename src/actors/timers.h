// Clock-driven periodic trigger.
//
// PowerAPI's monitoring loop ticks at a user-chosen period ("monitor every
// 250 ms"). The Ticker converts an advancing Clock into a count of due
// ticks, working identically for simulated and wall clocks, so the same
// monitor code runs in experiments and live.
#pragma once

#include <cstdint>

#include "util/clock.h"
#include "util/units.h"

namespace powerapi::actors {

class Ticker {
 public:
  /// First tick fires once `period` has elapsed from `start`.
  Ticker(util::TimestampNs start, util::DurationNs period);

  /// Number of ticks that became due since the last call, given `now`.
  /// Catch-up semantics: a long stall yields multiple ticks.
  std::uint64_t due(util::TimestampNs now);

  util::DurationNs period() const noexcept { return period_; }
  /// Timestamp of the most recently consumed tick.
  util::TimestampNs last_tick() const noexcept { return next_ - period_; }

 private:
  util::DurationNs period_;
  util::TimestampNs next_;
};

}  // namespace powerapi::actors
