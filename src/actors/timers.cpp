#include "actors/timers.h"

#include <stdexcept>

namespace powerapi::actors {

Ticker::Ticker(util::TimestampNs start, util::DurationNs period)
    : period_(period), next_(start + period) {
  if (period <= 0) throw std::invalid_argument("Ticker: non-positive period");
}

std::uint64_t Ticker::due(util::TimestampNs now) {
  std::uint64_t count = 0;
  while (now >= next_) {
    ++count;
    next_ += period_;
  }
  return count;
}

}  // namespace powerapi::actors
