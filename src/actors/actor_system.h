// The actor runtime.
//
// Two dispatch modes cover the library's needs:
//  * kManual    — no threads; drain() processes messages deterministically.
//                 All simulation experiments and most tests run here.
//  * kThreaded  — a worker pool dispatches actors concurrently with the
//                 classic schedule-on-first-message protocol; used for live
//                 monitoring and exercised by the concurrency tests and the
//                 Figure-2 throughput benchmark.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "actors/actor.h"
#include "actors/mailbox.h"
#include "actors/message.h"

namespace powerapi::actors {

class ActorSystem {
 public:
  enum class Mode { kManual, kThreaded };

  explicit ActorSystem(Mode mode, std::size_t workers = 2);
  ~ActorSystem();

  ActorSystem(const ActorSystem&) = delete;
  ActorSystem& operator=(const ActorSystem&) = delete;

  /// Spawns an actor; pre_start() runs before the first message.
  ActorRef spawn(std::string name, std::unique_ptr<Actor> actor);

  template <typename A, typename... Args>
  ActorRef spawn_as(std::string name, Args&&... args) {
    return spawn(std::move(name), std::make_unique<A>(std::forward<Args>(args)...));
  }

  /// Enqueues a message (any thread). Messages to stopped/unknown actors
  /// count as dead letters.
  void tell(const ActorRef& target, std::any payload, ActorRef sender = {});

  /// Stops an actor after its current message: post_stop() runs, its
  /// remaining mailbox drains to dead letters.
  void stop(const ActorRef& ref);

  /// kManual only: processes messages until quiescent or `max_messages`
  /// processed. Returns the number processed. Deterministic: actors are
  /// visited in spawn order, one message per visit (fair round-robin).
  std::size_t drain(std::size_t max_messages = SIZE_MAX);

  /// kThreaded only: blocks until every mailbox is empty and no message is
  /// being processed.
  void await_idle();

  /// Stops workers (threaded) and all actors. Idempotent; runs in ~dtor.
  void shutdown();

  Mode mode() const noexcept { return mode_; }
  std::uint64_t messages_processed() const noexcept {
    return messages_processed_.load(std::memory_order_relaxed);
  }
  std::uint64_t dead_letters() const noexcept {
    return dead_letters_.load(std::memory_order_relaxed);
  }
  std::uint64_t failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts() const noexcept {
    return restarts_.load(std::memory_order_relaxed);
  }
  std::size_t actor_count() const;

 private:
  struct Cell {
    ActorId id = kNoActor;
    std::string name;
    std::unique_ptr<Actor> actor;
    Mailbox mailbox;
    std::atomic<bool> scheduled{false};
    std::atomic<bool> stopped{false};
  };

  Cell* find_cell(ActorId id) const;
  void process_one(Cell& cell, Envelope& envelope);
  void schedule(Cell& cell);
  void worker_loop();
  void handle_failure(Cell& cell, const std::exception& error);

  Mode mode_;
  mutable std::mutex cells_mutex_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::atomic<ActorId> next_id_{1};
  std::atomic<std::uint64_t> next_sequence_{0};
  std::atomic<std::uint64_t> messages_processed_{0};
  std::atomic<std::uint64_t> dead_letters_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> restarts_{0};

  // Threaded dispatch state.
  std::mutex runq_mutex_;
  std::condition_variable runq_cv_;
  std::deque<Cell*> runq_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> pending_{0};  ///< Enqueued but not yet processed.
  std::condition_variable idle_cv_;
  std::mutex idle_mutex_;
};

}  // namespace powerapi::actors
