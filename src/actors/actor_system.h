// The actor runtime.
//
// Two dispatch modes cover the library's needs:
//  * kManual    — no threads; drain() processes messages deterministically.
//                 All simulation experiments and most tests run here.
//  * kThreaded  — a work-stealing worker pool dispatches actors concurrently
//                 with the classic schedule-on-first-message protocol; used
//                 for live monitoring and exercised by the concurrency tests
//                 and the Figure-2 throughput benchmark.
//
// Hot-path design (see DESIGN.md §4 "Dispatcher architecture"):
//  * Actor lookup is a wait-free chunked slot table indexed by ActorId —
//    tell() never scans the actor list or blocks on a concurrent spawn.
//  * Mailboxes are lock-free Vyukov MPSC queues (see mailbox.h).
//  * Each worker owns a run queue; idle workers steal from random victims
//    and park on a condition variable only when the whole system is empty.
//  * Idle tracking folds per-message counter traffic into one atomic
//    add/sub per scheduling slot instead of two per message.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "actors/actor.h"
#include "actors/mailbox.h"
#include "actors/message.h"

namespace powerapi::obs {
class Counter;
class Histogram;
class Observability;
}  // namespace powerapi::obs

namespace powerapi::actors {

class ActorSystem {
 public:
  enum class Mode { kManual, kThreaded };

  /// `obs` (optional, non-owning, must outlive the system) turns on runtime
  /// self-instrumentation: mailbox enqueue-to-drain latency, dispatcher
  /// steal/park counters, and a snapshot collector exposing actor counts,
  /// mailbox depths and run-queue depth as "actors.*" metrics.
  explicit ActorSystem(Mode mode, std::size_t workers = 2,
                       obs::Observability* obs = nullptr);
  ~ActorSystem();

  ActorSystem(const ActorSystem&) = delete;
  ActorSystem& operator=(const ActorSystem&) = delete;

  /// Spawns an actor; pre_start() runs before the first message.
  ActorRef spawn(std::string name, std::unique_ptr<Actor> actor);

  template <typename A, typename... Args>
  ActorRef spawn_as(std::string name, Args&&... args) {
    return spawn(std::move(name), std::make_unique<A>(std::forward<Args>(args)...));
  }

  /// Enqueues a message (any thread). Messages to stopped/unknown actors
  /// count as dead letters.
  void tell(const ActorRef& target, Payload payload, ActorRef sender = {});

  /// Stops an actor after its current message: post_stop() runs, its
  /// remaining mailbox drains to dead letters.
  void stop(const ActorRef& ref);

  /// kManual only: processes messages until quiescent or `max_messages`
  /// processed. Returns the number processed. Deterministic: actors are
  /// visited in spawn order, one message per visit (fair round-robin).
  std::size_t drain(std::size_t max_messages = SIZE_MAX);

  /// kThreaded only: blocks until every mailbox is empty and no message is
  /// being processed.
  void await_idle();

  /// Stops workers (threaded) and all actors. Idempotent; runs in ~dtor.
  void shutdown();

  Mode mode() const noexcept { return mode_; }
  std::uint64_t messages_processed() const noexcept {
    return messages_processed_.load(std::memory_order_relaxed);
  }
  std::uint64_t dead_letters() const noexcept {
    return dead_letters_.load(std::memory_order_relaxed);
  }
  std::uint64_t failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts() const noexcept {
    return restarts_.load(std::memory_order_relaxed);
  }
  std::size_t actor_count() const;
  obs::Observability* observability() const noexcept { return obs_; }

 private:
  struct Cell {
    ActorId id = kNoActor;
    std::string name;
    std::unique_ptr<Actor> actor;
    Mailbox mailbox;
    std::atomic<bool> scheduled{false};
    std::atomic<bool> stopped{false};
    /// Manual-mode drain hint: set after every push, cleared by drain() when
    /// the mailbox is observed empty (with a re-check for a racing push).
    /// Lets drain rounds skip idle actors with one load instead of a consume
    /// attempt; in a steady fleet tick ~95% of per-round visits are idle.
    std::atomic<bool> has_mail{false};
  };

  // --- O(1) registry: a lazily grown chunked slot table indexed by id. ---
  // Lookup is two acquire loads; chunks are allocated under cells_mutex_ at
  // spawn time and never freed before the system is destroyed, so readers
  // need no locks and no hazard tracking.
  static constexpr std::size_t kChunkBits = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;  // 1024
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  static constexpr std::size_t kMaxChunks = 4096;  // ~4M actors per system.

  struct SlotChunk {
    std::array<std::atomic<Cell*>, kChunkSize> slots{};
  };

  // --- Work-stealing dispatcher state. ---
  struct alignas(64) WorkerQueue {
    std::mutex mutex;
    std::deque<Cell*> cells;
  };

  Cell* lookup(ActorId id) const noexcept;
  Cell* find_cell(ActorId id) const noexcept;  ///< lookup + not-stopped.
  void process_one(Cell& cell, Envelope& envelope);
  std::size_t drain_dead_letters(Cell& cell);
  void schedule(Cell& cell);
  void enqueue_cell(Cell& cell);
  Cell* try_pop_local(std::size_t index);
  Cell* try_steal(std::size_t thief_index, std::uint64_t& rng_state);
  Cell* acquire_work(std::size_t index, std::uint64_t& rng_state);
  void run_cell(Cell& cell);
  void worker_loop(std::size_t index);
  void handle_failure(Cell& cell, const std::exception& error);
  void fold_processed(std::uint64_t handled);

  Mode mode_;
  // Observability handles, interned once at construction; null when the
  // system is not observed, so hot paths pay one pointer test.
  obs::Observability* obs_ = nullptr;
  obs::Counter* steals_metric_ = nullptr;
  obs::Counter* parks_metric_ = nullptr;
  obs::Histogram* mailbox_latency_ = nullptr;
  std::uint64_t obs_collector_ = 0;
  mutable std::mutex cells_mutex_;  ///< Guards spawns/chunk growth, not lookups.
  std::vector<std::unique_ptr<Cell>> cells_;
  std::atomic<std::uint64_t> cells_version_{1};  ///< Bumped per spawn; lets drain() cache its snapshot.
  std::array<std::atomic<SlotChunk*>, kMaxChunks> chunks_{};
  std::atomic<ActorId> next_id_{1};
  // Hot counters on separate cache lines: producers hammer pending_ while
  // workers hammer messages_processed_.
  alignas(64) std::atomic<std::uint64_t> messages_processed_{0};
  alignas(64) std::atomic<std::uint64_t> dead_letters_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> restarts_{0};

  // Threaded dispatch state.
  std::vector<std::unique_ptr<WorkerQueue>> worker_queues_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> external_rr_{0};  ///< Round-robin for non-worker producers.

  // Parked-worker wakeup protocol: producers bump the epoch after enqueueing
  // and notify only when someone is actually parked.
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<int> parked_{0};
  std::atomic<std::uint64_t> unpark_epoch_{0};

  // Idle tracking: producers add one relaxed increment per tell; workers
  // fold one subtraction per scheduling slot (not per message).
  alignas(64) std::atomic<std::int64_t> pending_{0};  ///< Enqueued but not yet processed.
  std::condition_variable idle_cv_;
  std::mutex idle_mutex_;
};

}  // namespace powerapi::actors
