// Topic-based publish/subscribe event bus.
//
// The paper's architecture routes SensorMessages and PowerEstimations over
// an event bus with topic classification (Akka's EventBus); Sensors publish,
// Formulas subscribe, and so on down the pipeline. Topics are strings like
// "sensor:hpc" or "power:estimation".
#pragma once

#include <any>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "actors/actor_system.h"
#include "actors/message.h"

namespace powerapi::actors {

class EventBus {
 public:
  explicit EventBus(ActorSystem& system) : system_(&system) {}

  void subscribe(const std::string& topic, ActorRef subscriber);
  void unsubscribe(const std::string& topic, ActorRef subscriber);

  /// Delivers `payload` to every subscriber of `topic` (copying the payload
  /// per subscriber). Returns the number of actors notified.
  std::size_t publish(const std::string& topic, const std::any& payload,
                      ActorRef sender = {});

  std::size_t subscriber_count(const std::string& topic) const;

 private:
  ActorSystem* system_;
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::vector<ActorRef>> topics_;
};

}  // namespace powerapi::actors
