// Topic-based publish/subscribe event bus.
//
// The paper's architecture routes SensorMessages and PowerEstimations over
// an event bus with topic classification (Akka's EventBus); Sensors publish,
// Formulas subscribe, and so on down the pipeline. Topics are strings like
// "sensor:hpc" or "power:estimation".
//
// Hot-path design: topic strings are interned to dense integer TopicIds at
// subscribe time (one string lookup ever, integer indexing per publish), and
// subscriber lists are copy-on-write snapshots, so a publish is: one shared
// lock, one shared_ptr copy, one payload allocation — then a refcount bump
// per subscriber. Publishing to a topic with no subscribers constructs and
// copies nothing — but it IS counted: a zero-subscriber publish is a dead
// letter (a typo'd topic silently eats the whole pipeline downstream of it),
// tallied always and warned about at a rate-limited cadence.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "actors/actor_system.h"
#include "actors/message.h"
#include "obs/observability.h"

namespace powerapi::actors {

class EventBus {
 public:
  /// Dense handle for an interned topic string.
  using TopicId = std::uint32_t;
  static constexpr TopicId kNoTopic = std::numeric_limits<TopicId>::max();

  explicit EventBus(ActorSystem& system) : system_(&system) {}
  ~EventBus();

  /// Attaches an observability bundle (non-owning; must outlive the bus):
  /// registers a snapshot collector exposing per-topic publish/drop counts
  /// ("bus.topic.<name>.publishes" / ".drops") and "bus.dead_letters", and
  /// turns on per-publish counting. Call before concurrent use.
  void set_observability(obs::Observability* obs);

  /// Publishes that reached zero subscribers (counted with or without an
  /// observability bundle attached).
  std::uint64_t dead_letter_count() const noexcept {
    return dead_letters_.load(std::memory_order_relaxed);
  }

  /// Returns the id for `topic`, interning it on first use. Components
  /// call this once (typically at construction) and publish by id.
  TopicId intern(std::string_view topic);

  /// Id lookup without interning; kNoTopic when the topic was never seen.
  TopicId find(std::string_view topic) const;

  void subscribe(std::string_view topic, ActorRef subscriber);
  void subscribe(TopicId topic, ActorRef subscriber);
  void unsubscribe(std::string_view topic, ActorRef subscriber);
  void unsubscribe(TopicId topic, ActorRef subscriber);

  /// Delivers `payload` to every subscriber of `topic`: the payload is
  /// materialized once and shared by refcount across deliveries. Returns
  /// the number of actors notified. With zero subscribers the payload is
  /// never constructed.
  template <typename T>
  std::size_t publish(TopicId topic, T&& payload, ActorRef sender = {}) {
    const auto subs = snapshot(topic);
    const std::size_t n = deliver(subs, std::forward<T>(payload), sender);
    // record_publish is off the delivered fast path: it is only entered for
    // dead letters or when observability is attached AND enabled, so a
    // dormant bundle costs one relaxed load + one branch per publish.
    if (n == 0 || observing()) {
      record_publish(topic, n);
    }
    return n;
  }

  /// String-topic convenience overload (cold paths and tests). An unknown
  /// topic is the zero-subscriber fast path: nothing is constructed, but the
  /// dead letter is still counted (the topic is interned to track it).
  template <typename T>
  std::size_t publish(std::string_view topic, T&& payload, ActorRef sender = {}) {
    const auto subs = snapshot_named(topic);
    const std::size_t n = deliver(subs, std::forward<T>(payload), sender);
    if (n == 0 || observing()) {
      record_publish(intern(topic), n);
    }
    return n;
  }

  std::size_t subscriber_count(std::string_view topic) const;
  std::size_t subscriber_count(TopicId topic) const;

 private:
  using SubscriberList = std::vector<ActorRef>;

  /// Per-topic tallies; heap-allocated so the vector can grow while
  /// publishers hold only the shared lock.
  struct TopicStats {
    std::atomic<std::uint64_t> publishes{0};
    std::atomic<std::uint64_t> drops{0};
  };

  std::shared_ptr<const SubscriberList> snapshot(TopicId topic) const;
  std::shared_ptr<const SubscriberList> snapshot_named(std::string_view topic) const;
  TopicId intern_locked(std::string_view topic);
  void record_publish(TopicId topic, std::size_t delivered);

  /// True when an observability bundle is attached and currently enabled.
  bool observing() const noexcept {
    const auto* obs = obs_.load(std::memory_order_relaxed);
    return obs != nullptr && obs->enabled();
  }

  /// A single subscriber gets the payload inline (no refcount allocation).
  /// Fan-out of a value small enough for std::any's inline storage is
  /// copied per delivery — cheaper than a refcount bump, and allocation-
  /// free either way. Larger values are materialized once and shared by
  /// refcount across deliveries.
  template <typename T>
  std::size_t deliver(const std::shared_ptr<const SubscriberList>& subs, T&& payload,
                      ActorRef sender) {
    using Value = std::decay_t<T>;
    if (!subs || subs->empty()) return 0;
    if (subs->size() == 1) {
      system_->tell(subs->front(), Payload(std::forward<T>(payload)), sender);
      return 1;
    }
    if constexpr (std::is_trivially_copyable_v<Value> && sizeof(Value) <= sizeof(void*)) {
      const Value& value = payload;
      for (const auto& ref : *subs) {
        system_->tell(ref, Payload(value), sender);
      }
    } else {
      const Payload shared = Payload::shared(std::forward<T>(payload));
      for (const auto& ref : *subs) {
        system_->tell(ref, shared, sender);
      }
    }
    return subs->size();
  }

  ActorSystem* system_;
  std::atomic<obs::Observability*> obs_{nullptr};
  std::uint64_t obs_collector_ = 0;
  std::atomic<std::uint64_t> dead_letters_{0};
  mutable std::shared_mutex mutex_;
  std::map<std::string, TopicId, std::less<>> ids_;
  std::vector<std::shared_ptr<const SubscriberList>> topics_;  ///< Indexed by TopicId.
  std::vector<std::string> names_;  ///< Topic names, indexed by TopicId.
  std::vector<std::unique_ptr<TopicStats>> stats_;  ///< Indexed by TopicId.
};

}  // namespace powerapi::actors
