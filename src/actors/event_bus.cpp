#include "actors/event_bus.h"

#include <algorithm>

#include "obs/observability.h"
#include "util/logging.h"

namespace powerapi::actors {

EventBus::~EventBus() {
  obs::Observability* obs = obs_.load(std::memory_order_relaxed);
  if (obs != nullptr && obs_collector_ != 0) {
    obs->metrics.remove_collector(obs_collector_);
  }
}

void EventBus::set_observability(obs::Observability* obs) {
  obs::Observability* previous = obs_.exchange(obs, std::memory_order_relaxed);
  if (previous != nullptr && obs_collector_ != 0) {
    previous->metrics.remove_collector(obs_collector_);
    obs_collector_ = 0;
  }
  if (obs == nullptr) return;
  obs_collector_ = obs->metrics.add_collector([this](obs::SnapshotBuilder& builder) {
    builder.gauge("bus.dead_letters", static_cast<double>(dead_letter_count()));
    std::shared_lock lock(mutex_);
    for (TopicId id = 0; id < stats_.size(); ++id) {
      const std::uint64_t publishes =
          stats_[id]->publishes.load(std::memory_order_relaxed);
      const std::uint64_t drops = stats_[id]->drops.load(std::memory_order_relaxed);
      if (publishes == 0 && drops == 0) continue;
      builder.gauge("bus.topic." + names_[id] + ".publishes",
                    static_cast<double>(publishes));
      if (drops != 0) {
        builder.gauge("bus.topic." + names_[id] + ".drops",
                      static_cast<double>(drops));
      }
    }
  });
}

void EventBus::record_publish(TopicId topic, std::size_t delivered) {
  if (delivered == 0) dead_letters_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t drops = 0;
  std::string name;
  {
    std::shared_lock lock(mutex_);
    if (topic >= stats_.size()) return;
    TopicStats& stats = *stats_[topic];
    stats.publishes.fetch_add(1, std::memory_order_relaxed);
    if (delivered != 0) return;
    drops = stats.drops.fetch_add(1, std::memory_order_relaxed) + 1;
    // Rate-limit the warning: first drop per topic, then every 4096th —
    // a misrouted 1 kHz sensor stream must not melt the log.
    if (drops != 1 && drops % 4096 != 0) return;
    name = names_[topic];
  }
  POWERAPI_LOG_WARN("bus") << "publish to topic '" << name
                           << "' reached no subscribers (" << drops
                           << " dead letters)";
}

EventBus::TopicId EventBus::intern_locked(std::string_view topic) {
  const auto it = ids_.find(topic);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<TopicId>(topics_.size());
  ids_.emplace(std::string(topic), id);
  topics_.push_back(std::make_shared<const SubscriberList>());
  names_.emplace_back(topic);
  stats_.push_back(std::make_unique<TopicStats>());
  return id;
}

EventBus::TopicId EventBus::intern(std::string_view topic) {
  std::unique_lock lock(mutex_);
  return intern_locked(topic);
}

EventBus::TopicId EventBus::find(std::string_view topic) const {
  std::shared_lock lock(mutex_);
  const auto it = ids_.find(topic);
  return it == ids_.end() ? kNoTopic : it->second;
}

void EventBus::subscribe(std::string_view topic, ActorRef subscriber) {
  if (!subscriber.valid()) return;
  std::unique_lock lock(mutex_);
  const TopicId id = intern_locked(topic);
  const auto& current = topics_[id];
  if (std::find(current->begin(), current->end(), subscriber) != current->end()) {
    return;  // Duplicate ignored.
  }
  auto next = std::make_shared<SubscriberList>(*current);
  next->push_back(subscriber);
  topics_[id] = std::move(next);
}

void EventBus::subscribe(TopicId topic, ActorRef subscriber) {
  if (!subscriber.valid()) return;
  std::unique_lock lock(mutex_);
  if (topic >= topics_.size()) return;
  const auto& current = topics_[topic];
  if (std::find(current->begin(), current->end(), subscriber) != current->end()) {
    return;
  }
  auto next = std::make_shared<SubscriberList>(*current);
  next->push_back(subscriber);
  topics_[topic] = std::move(next);
}

void EventBus::unsubscribe(std::string_view topic, ActorRef subscriber) {
  unsubscribe(find(topic), subscriber);
}

void EventBus::unsubscribe(TopicId topic, ActorRef subscriber) {
  std::unique_lock lock(mutex_);
  if (topic >= topics_.size()) return;
  const auto& current = topics_[topic];
  if (std::find(current->begin(), current->end(), subscriber) == current->end()) return;
  auto next = std::make_shared<SubscriberList>();
  next->reserve(current->size() - 1);
  for (const auto& ref : *current) {
    if (!(ref == subscriber)) next->push_back(ref);
  }
  topics_[topic] = std::move(next);
}

std::shared_ptr<const EventBus::SubscriberList> EventBus::snapshot(TopicId topic) const {
  std::shared_lock lock(mutex_);
  if (topic >= topics_.size()) return nullptr;
  return topics_[topic];
}

std::shared_ptr<const EventBus::SubscriberList> EventBus::snapshot_named(
    std::string_view topic) const {
  std::shared_lock lock(mutex_);
  const auto it = ids_.find(topic);
  if (it == ids_.end()) return nullptr;
  return topics_[it->second];
}

std::size_t EventBus::subscriber_count(std::string_view topic) const {
  return subscriber_count(find(topic));
}

std::size_t EventBus::subscriber_count(TopicId topic) const {
  const auto subs = snapshot(topic);
  return subs ? subs->size() : 0;
}

}  // namespace powerapi::actors
