#include "actors/event_bus.h"

#include <algorithm>

namespace powerapi::actors {

void EventBus::subscribe(const std::string& topic, ActorRef subscriber) {
  if (!subscriber.valid()) return;
  std::unique_lock lock(mutex_);
  auto& subs = topics_[topic];
  if (std::find(subs.begin(), subs.end(), subscriber) == subs.end()) {
    subs.push_back(subscriber);
  }
}

void EventBus::unsubscribe(const std::string& topic, ActorRef subscriber) {
  std::unique_lock lock(mutex_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  auto& subs = it->second;
  subs.erase(std::remove(subs.begin(), subs.end(), subscriber), subs.end());
  if (subs.empty()) topics_.erase(it);
}

std::size_t EventBus::publish(const std::string& topic, const std::any& payload,
                              ActorRef sender) {
  std::vector<ActorRef> subs;
  {
    std::shared_lock lock(mutex_);
    const auto it = topics_.find(topic);
    if (it == topics_.end()) return 0;
    subs = it->second;  // Copy out so delivery runs without the lock.
  }
  for (const auto& ref : subs) {
    system_->tell(ref, payload, sender);
  }
  return subs.size();
}

std::size_t EventBus::subscriber_count(const std::string& topic) const {
  std::shared_lock lock(mutex_);
  const auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.size();
}

}  // namespace powerapi::actors
