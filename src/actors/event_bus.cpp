#include "actors/event_bus.h"

#include <algorithm>

namespace powerapi::actors {

EventBus::TopicId EventBus::intern_locked(std::string_view topic) {
  const auto it = ids_.find(topic);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<TopicId>(topics_.size());
  ids_.emplace(std::string(topic), id);
  topics_.push_back(std::make_shared<const SubscriberList>());
  return id;
}

EventBus::TopicId EventBus::intern(std::string_view topic) {
  std::unique_lock lock(mutex_);
  return intern_locked(topic);
}

EventBus::TopicId EventBus::find(std::string_view topic) const {
  std::shared_lock lock(mutex_);
  const auto it = ids_.find(topic);
  return it == ids_.end() ? kNoTopic : it->second;
}

void EventBus::subscribe(std::string_view topic, ActorRef subscriber) {
  if (!subscriber.valid()) return;
  std::unique_lock lock(mutex_);
  const TopicId id = intern_locked(topic);
  const auto& current = topics_[id];
  if (std::find(current->begin(), current->end(), subscriber) != current->end()) {
    return;  // Duplicate ignored.
  }
  auto next = std::make_shared<SubscriberList>(*current);
  next->push_back(subscriber);
  topics_[id] = std::move(next);
}

void EventBus::subscribe(TopicId topic, ActorRef subscriber) {
  if (!subscriber.valid()) return;
  std::unique_lock lock(mutex_);
  if (topic >= topics_.size()) return;
  const auto& current = topics_[topic];
  if (std::find(current->begin(), current->end(), subscriber) != current->end()) {
    return;
  }
  auto next = std::make_shared<SubscriberList>(*current);
  next->push_back(subscriber);
  topics_[topic] = std::move(next);
}

void EventBus::unsubscribe(std::string_view topic, ActorRef subscriber) {
  unsubscribe(find(topic), subscriber);
}

void EventBus::unsubscribe(TopicId topic, ActorRef subscriber) {
  std::unique_lock lock(mutex_);
  if (topic >= topics_.size()) return;
  const auto& current = topics_[topic];
  if (std::find(current->begin(), current->end(), subscriber) == current->end()) return;
  auto next = std::make_shared<SubscriberList>();
  next->reserve(current->size() - 1);
  for (const auto& ref : *current) {
    if (!(ref == subscriber)) next->push_back(ref);
  }
  topics_[topic] = std::move(next);
}

std::shared_ptr<const EventBus::SubscriberList> EventBus::snapshot(TopicId topic) const {
  std::shared_lock lock(mutex_);
  if (topic >= topics_.size()) return nullptr;
  return topics_[topic];
}

std::shared_ptr<const EventBus::SubscriberList> EventBus::snapshot_named(
    std::string_view topic) const {
  std::shared_lock lock(mutex_);
  const auto it = ids_.find(topic);
  if (it == ids_.end()) return nullptr;
  return topics_[it->second];
}

std::size_t EventBus::subscriber_count(std::string_view topic) const {
  return subscriber_count(find(topic));
}

std::size_t EventBus::subscriber_count(TopicId topic) const {
  const auto subs = snapshot(topic);
  return subs ? subs->size() : 0;
}

}  // namespace powerapi::actors
