// Message envelope and actor identity.
//
// Messages are immutable std::any payloads behind a refcounted handle:
// actors pattern-match with Payload::get<T>() — the C++ analogue of the
// Scala receive block the paper's toolkit uses. The refcount makes 1-to-N
// event-bus fan-out a pointer copy per subscriber instead of a deep copy
// of the payload (one allocation per publish, not per delivery). Envelopes
// carry the sender for reply patterns.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

namespace powerapi::actors {

using ActorId = std::uint64_t;
inline constexpr ActorId kNoActor = 0;

class ActorSystem;

/// Immutable, cheaply copyable message payload with two representations:
///  * inline  — a plain std::any, used for point-to-point tells so small
///              values (ints, ticks) keep std::any's no-allocation storage;
///  * shared  — a refcounted std::any, produced by Payload::shared() for
///              event-bus fan-out so a 1-to-N publish materializes the value
///              once and each delivery is a refcount bump, not a deep copy.
/// Implicitly constructible from any copyable value so `ref.tell(42)` works.
class Payload {
 public:
  Payload() = default;

  template <typename T,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<T>, Payload> &&
                                        !std::is_same_v<std::decay_t<T>, std::any>>>
  Payload(T&& value)  // NOLINT(google-explicit-constructor): message sugar.
      : inline_(std::in_place_type<std::decay_t<T>>, std::forward<T>(value)) {}

  /// Wraps an existing std::any directly (no any-in-any nesting).
  Payload(std::any value)  // NOLINT(google-explicit-constructor)
      : inline_(std::move(value)) {}

  /// Builds a refcounted payload: copies of it share one materialized value.
  template <typename T>
  static Payload shared(T&& value) {
    Payload p;
    p.shared_ = std::make_shared<const std::any>(std::in_place_type<std::decay_t<T>>,
                                                 std::forward<T>(value));
    return p;
  }

  /// Typed view of the payload; nullptr when empty or a different type.
  template <typename T>
  const T* get() const noexcept {
    if (shared_) return std::any_cast<T>(shared_.get());
    return std::any_cast<T>(&inline_);
  }

  bool has_value() const noexcept { return shared_ != nullptr || inline_.has_value(); }

 private:
  std::any inline_;
  std::shared_ptr<const std::any> shared_;
};

/// Cheap copyable handle to an actor. Valid as long as its system lives;
/// telling a stopped actor is a silent no-op (dead letter), as in Akka.
class ActorRef {
 public:
  ActorRef() = default;
  ActorRef(ActorSystem* system, ActorId id) : system_(system), id_(id) {}

  bool valid() const noexcept { return system_ != nullptr && id_ != kNoActor; }
  ActorId id() const noexcept { return id_; }
  ActorSystem* system() const noexcept { return system_; }

  /// Enqueues `payload` to this actor. Implemented in actor_system.cpp.
  void tell(Payload payload) const;
  void tell(Payload payload, ActorRef sender) const;

  bool operator==(const ActorRef& other) const noexcept {
    return system_ == other.system_ && id_ == other.id_;
  }

 private:
  ActorSystem* system_ = nullptr;
  ActorId id_ = kNoActor;
};

struct Envelope {
  Payload payload;
  ActorRef sender;
  /// obs::wall_now_ns() at enqueue when observability is enabled, else 0;
  /// lets the consumer side report enqueue-to-drain mailbox latency.
  std::int64_t enqueue_ns = 0;
};

}  // namespace powerapi::actors
