// Message envelope and actor identity.
//
// Messages are immutable-by-convention std::any payloads; actors pattern-
// match with std::any_cast, the C++ analogue of the Scala receive block the
// paper's toolkit uses. Envelopes carry the sender for reply patterns and a
// sequence number for deterministic ordering diagnostics.
#pragma once

#include <any>
#include <cstdint>
#include <string>

namespace powerapi::actors {

using ActorId = std::uint64_t;
inline constexpr ActorId kNoActor = 0;

class ActorSystem;

/// Cheap copyable handle to an actor. Valid as long as its system lives;
/// telling a stopped actor is a silent no-op (dead letter), as in Akka.
class ActorRef {
 public:
  ActorRef() = default;
  ActorRef(ActorSystem* system, ActorId id) : system_(system), id_(id) {}

  bool valid() const noexcept { return system_ != nullptr && id_ != kNoActor; }
  ActorId id() const noexcept { return id_; }
  ActorSystem* system() const noexcept { return system_; }

  /// Enqueues `payload` to this actor. Implemented in actor_system.cpp.
  void tell(std::any payload) const;
  void tell(std::any payload, ActorRef sender) const;

  bool operator==(const ActorRef& other) const noexcept {
    return system_ == other.system_ && id_ == other.id_;
  }

 private:
  ActorSystem* system_ = nullptr;
  ActorId id_ = kNoActor;
};

struct Envelope {
  std::any payload;
  ActorRef sender;
  std::uint64_t sequence = 0;  ///< System-wide enqueue order (diagnostics).
};

}  // namespace powerapi::actors
