// Actor base class and supervision policy.
//
// The paper's architecture (Figure 2) is a pipeline of actor components —
// Sensor, Formula, Aggregator, Reporter — processing messages event-driven.
// This base class provides the single-threaded receive guarantee, lifecycle
// hooks and a per-actor supervision directive applied by the system when
// receive throws.
#pragma once

#include <any>
#include <string>

#include "actors/message.h"

namespace powerapi::actors {

enum class SupervisionDirective {
  kResume,   ///< Drop the failing message, keep state, keep going.
  kRestart,  ///< post_stop() + pre_start(): fresh state, mailbox retained.
  kStop,     ///< Remove the actor; remaining messages become dead letters.
};

class Actor {
 public:
  virtual ~Actor() = default;

  /// Handles one message. Must only be called by the dispatcher (the system
  /// guarantees no concurrent invocations for the same actor).
  virtual void receive(Envelope& envelope) = 0;

  /// Lifecycle hooks.
  virtual void pre_start() {}
  virtual void post_stop() {}

  /// Policy the system applies when receive() throws.
  virtual SupervisionDirective on_failure(const std::exception& /*error*/) {
    return SupervisionDirective::kRestart;
  }

  /// Set by the system at spawn time, before pre_start().
  ActorRef self() const noexcept { return self_; }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class ActorSystem;
  ActorRef self_;
  std::string name_;
};

}  // namespace powerapi::actors
