#!/usr/bin/env python3
"""Validate every committed .scenario file against the built scenario_runner.

Two levels:

  parse (default)  — `scenario_runner --check` on every file: the scenario
                     parses and its serialize/parse round trip reproduces
                     the spec exactly.
  --smoke          — additionally run each scenario twice under kManual
                     dispatch with a bounded duration and byte-compare the
                     CSV outputs: bit-identical files mean bit-identical
                     runs (watts are serialized as C99 hexfloats). For
                     scenarios with a `govern` directive the smoke run must
                     also report at least one governor actuation — the
                     closed loop demonstrably closes within the smoke
                     window.

Usage:
  python3 scripts/check_scenarios.py --runner build/examples/scenario_runner
  python3 scripts/check_scenarios.py --runner build/examples/scenario_runner --smoke
"""

import argparse
import pathlib
import re
import subprocess
import sys
import tempfile


def find_scenarios(scenario_dir: pathlib.Path) -> list[pathlib.Path]:
    files = sorted(scenario_dir.glob("*.scenario"))
    if not files:
        sys.exit(f"error: no .scenario files under {scenario_dir}")
    return files


def run(cmd: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(cmd, capture_output=True, text=True)


def check_parse(runner: str, files: list[pathlib.Path]) -> bool:
    proc = run([runner, "--check"] + [str(f) for f in files])
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    return proc.returncode == 0


def declares_govern(path: pathlib.Path) -> bool:
    """Does the scenario file carry a top-level `govern` directive?"""
    for line in path.read_text().splitlines():
        if line.strip().startswith("govern "):
            return True
    return False


def governor_actuations(stdout: str) -> int:
    """Actuation count from the runner's governor summary line, or -1."""
    match = re.search(r"governor: .* -> (\d+) actuation", stdout)
    return int(match.group(1)) if match else -1


def check_smoke(runner: str, files: list[pathlib.Path]) -> bool:
    ok = True
    with tempfile.TemporaryDirectory(prefix="scenario_smoke_") as tmp:
        for f in files:
            csvs = []
            stdout = ""
            for attempt in (1, 2):
                out = pathlib.Path(tmp) / f"{f.stem}.{attempt}.csv"
                proc = run([runner, "--smoke", "--csv", str(out), str(f)])
                if proc.returncode != 0:
                    print(f"FAIL {f}: smoke run {attempt} exited "
                          f"{proc.returncode}\n{proc.stderr}", file=sys.stderr)
                    ok = False
                    break
                stdout = proc.stdout
                csvs.append(out.read_bytes())
            else:
                if not csvs[0]:
                    print(f"FAIL {f}: smoke run produced an empty CSV",
                          file=sys.stderr)
                    ok = False
                elif csvs[0] != csvs[1]:
                    print(f"FAIL {f}: two kManual smoke runs are not "
                          "byte-identical", file=sys.stderr)
                    ok = False
                elif declares_govern(f) and governor_actuations(stdout) <= 0:
                    print(f"FAIL {f}: scenario declares `govern` but the "
                          f"smoke run reported "
                          f"{governor_actuations(stdout)} actuations — the "
                          "loop never closed", file=sys.stderr)
                    ok = False
                else:
                    extra = ""
                    if declares_govern(f):
                        extra = (f", {governor_actuations(stdout)} governor "
                                 "actuations")
                    print(f"OK {f} smoke: {len(csvs[0])} CSV bytes, "
                          f"run-twice byte-identical{extra}")
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runner", default="build/examples/scenario_runner",
                        help="path to the built scenario_runner binary")
    parser.add_argument("--scenario-dir", default="examples/scenarios",
                        help="directory holding the committed .scenario files")
    parser.add_argument("--smoke", action="store_true",
                        help="also run each scenario twice (bounded, kManual) "
                             "and byte-compare the CSVs")
    args = parser.parse_args()

    runner = pathlib.Path(args.runner)
    if not runner.is_file():
        sys.exit(f"error: scenario_runner not found at {runner} (build first)")

    files = find_scenarios(pathlib.Path(args.scenario_dir))
    ok = check_parse(str(runner), files)
    if ok and args.smoke:
        ok = check_smoke(str(runner), files)
    print("check_scenarios:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
