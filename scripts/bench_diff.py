#!/usr/bin/env python3
"""Diff BENCH_<name>.json sidecars against committed baselines.

Usage:
    bench_diff.py CURRENT BASELINE [CURRENT BASELINE ...]
    bench_diff.py --current-dir build --baseline-dir bench/baselines
    bench_diff.py CURRENT BASELINE --tolerance 'BM_FleetTick_Manual/128=0.30' \
        --require-all

Compares every metric shared by a current sidecar and its baseline and
fails loudly (exit 1, per-metric report) when any regresses by more than
the threshold (BENCH_DIFF_THRESHOLD env var, default 0.15 = 15 %).
--tolerance KEY=FRACTION (repeatable; KEY may use fnmatch globs such as
'BM_FleetTick_*/128') overrides the threshold per metric, so a noisy
high-host-count configuration can run looser than the rest without
loosening the whole gate — and a win at one key cannot hide behind a
blanket threshold bump that would mask a regression at another.

Regression direction is unit-aware: for "ns" (and any *seconds/*time
unit) bigger is worse; for "items/s" (and any *…/s rate) smaller is worse.
Metrics present on only one side are reported but by default never fail
the diff, so adding or renaming benchmarks does not require touching
baselines in the same commit. --require-all hardens that: every baseline
key must be present in the current sidecar (a dropped host-count
configuration then fails instead of silently shrinking coverage).
Machines differ; the threshold gates relative movement on one machine (CI
runner vs its own committed baseline), not absolute numbers.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import sys
from pathlib import Path


def load_metrics(path: Path) -> dict[str, dict]:
    with path.open() as fh:
        doc = json.load(fh)
    metrics = {}
    for metric in doc.get("metrics", []):
        metrics[metric["name"]] = metric
    return metrics


def lower_is_better(unit: str) -> bool:
    """ns / seconds-like units: lower is better. Rates (…/s): higher is."""
    unit = unit.lower()
    if unit.endswith("/s"):
        return False
    return True


def threshold_for(name: str, default: float, overrides: list[tuple[str, float]]) -> float:
    """Last matching --tolerance override wins; fnmatch-style patterns."""
    chosen = default
    for pattern, value in overrides:
        if name == pattern or fnmatch.fnmatchcase(name, pattern):
            chosen = value
    return chosen


def diff_pair(
    current_path: Path,
    baseline_path: Path,
    threshold: float,
    overrides: list[tuple[str, float]] | None = None,
    require_all: bool = False,
) -> list[str]:
    overrides = overrides or []
    current = load_metrics(current_path)
    if not baseline_path.exists():
        # A sidecar with no committed baseline is a new benchmark, not a
        # regression: report it so someone records a baseline, never fail.
        print(f"--- {current_path}: new benchmark — no baseline at {baseline_path}")
        print(f"    record it: cp {current_path} {baseline_path}")
        for name in sorted(current):
            print(f"  NEW      {name}: {current[name]['value']:.6g} {current[name]['unit']}")
        return []
    baseline = load_metrics(baseline_path)
    failures = []
    print(f"--- {current_path} vs {baseline_path} (threshold {threshold:.0%})")
    for name in sorted(set(current) | set(baseline)):
        if name not in baseline:
            print(f"  NEW      {name}: {current[name]['value']:.6g} {current[name]['unit']}")
            continue
        if name not in current:
            print(f"  REMOVED  {name} (baseline {baseline[name]['value']:.6g})")
            if require_all:
                failures.append(
                    f"{current_path.name}:{name} missing from current sidecar "
                    f"(--require-all: every baseline key must be measured)"
                )
            continue
        cur, base = current[name], baseline[name]
        if base["value"] == 0:
            print(f"  SKIP     {name}: baseline is 0")
            continue
        key_threshold = threshold_for(name, threshold, overrides)
        ratio = cur["value"] / base["value"]
        if lower_is_better(cur.get("unit", "ns")):
            regressed = ratio > 1.0 + key_threshold
            change = ratio - 1.0
        else:
            regressed = ratio < 1.0 - key_threshold
            change = 1.0 - ratio
        verdict = "REGRESSED" if regressed else "ok"
        suffix = f" [tol {key_threshold:.0%}]" if key_threshold != threshold else ""
        print(
            f"  {verdict:9} {name}: {base['value']:.6g} -> {cur['value']:.6g} "
            f"{cur.get('unit', '')} ({change:+.1%} worse){suffix}"
            if regressed
            else f"  {verdict:9} {name}: {base['value']:.6g} -> {cur['value']:.6g} "
            f"{cur.get('unit', '')}{suffix}"
        )
        if regressed:
            failures.append(
                f"{current_path.name}:{name} regressed {change:+.1%} "
                f"({base['value']:.6g} -> {cur['value']:.6g} {cur.get('unit', '')}, "
                f"tolerance {key_threshold:.0%})"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("pairs", nargs="*", help="CURRENT BASELINE file pairs")
    parser.add_argument("--current-dir", help="directory holding fresh BENCH_*.json")
    parser.add_argument(
        "--baseline-dir", help="directory holding committed BENCH_*.json baselines"
    )
    parser.add_argument(
        "--tolerance",
        action="append",
        default=[],
        metavar="KEY=FRACTION",
        help="per-metric threshold override, e.g. 'BM_FleetTick_Manual/128=0.30'; "
        "KEY may be an fnmatch glob; repeatable, last match wins",
    )
    parser.add_argument(
        "--require-all",
        action="store_true",
        help="fail when a baseline key is missing from the current sidecar "
        "(compare every host-count key, not just the shared ones)",
    )
    args = parser.parse_args()

    threshold = float(os.environ.get("BENCH_DIFF_THRESHOLD", "0.15"))
    overrides: list[tuple[str, float]] = []
    for spec in args.tolerance:
        key, sep, value = spec.rpartition("=")
        if not sep or not key:
            parser.error(f"--tolerance must be KEY=FRACTION, got {spec!r}")
        try:
            overrides.append((key, float(value)))
        except ValueError:
            parser.error(f"--tolerance fraction must be a number, got {spec!r}")

    pairs: list[tuple[Path, Path]] = []
    if args.current_dir and args.baseline_dir:
        baseline_dir = Path(args.baseline_dir)
        for baseline in sorted(baseline_dir.glob("BENCH_*.json")):
            current = Path(args.current_dir) / baseline.name
            if current.exists():
                pairs.append((current, baseline))
            else:
                print(f"note: no fresh {baseline.name} under {args.current_dir}; skipping")
        # Fresh sidecars with no committed baseline: new benchmarks. Pair
        # them anyway — diff_pair reports them and points at the cp command
        # to record a baseline, and never fails the run.
        for current in sorted(Path(args.current_dir).glob("BENCH_*.json")):
            baseline = baseline_dir / current.name
            if not baseline.exists():
                pairs.append((current, baseline))
    if args.pairs:
        if len(args.pairs) % 2 != 0:
            parser.error("positional arguments must come in CURRENT BASELINE pairs")
        it = iter(args.pairs)
        pairs.extend((Path(c), Path(b)) for c, b in zip(it, it))
    if not pairs:
        parser.error("nothing to diff: pass file pairs or --current-dir/--baseline-dir")

    failures: list[str] = []
    for current, baseline in pairs:
        failures.extend(diff_pair(current, baseline, threshold, overrides, args.require_all))

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed past {threshold:.0%}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nAll shared metrics within threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
