#!/usr/bin/env python3
"""Diff BENCH_<name>.json sidecars against committed baselines.

Usage:
    bench_diff.py CURRENT BASELINE [CURRENT BASELINE ...]
    bench_diff.py --current-dir build --baseline-dir bench/baselines

Compares every metric shared by a current sidecar and its baseline and
fails loudly (exit 1, per-metric report) when any regresses by more than
the threshold (BENCH_DIFF_THRESHOLD env var, default 0.15 = 15 %).

Regression direction is unit-aware: for "ns" (and any *seconds/*time
unit) bigger is worse; for "items/s" (and any *…/s rate) smaller is worse.
Metrics present on only one side are reported but never fail the diff, so
adding or renaming benchmarks does not require touching baselines in the
same commit. Machines differ; the threshold gates relative movement on one
machine (CI runner vs its own committed baseline), not absolute numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def load_metrics(path: Path) -> dict[str, dict]:
    with path.open() as fh:
        doc = json.load(fh)
    metrics = {}
    for metric in doc.get("metrics", []):
        metrics[metric["name"]] = metric
    return metrics


def lower_is_better(unit: str) -> bool:
    """ns / seconds-like units: lower is better. Rates (…/s): higher is."""
    unit = unit.lower()
    if unit.endswith("/s"):
        return False
    return True


def diff_pair(current_path: Path, baseline_path: Path, threshold: float) -> list[str]:
    current = load_metrics(current_path)
    if not baseline_path.exists():
        # A sidecar with no committed baseline is a new benchmark, not a
        # regression: report it so someone records a baseline, never fail.
        print(f"--- {current_path}: new benchmark — no baseline at {baseline_path}")
        print(f"    record it: cp {current_path} {baseline_path}")
        for name in sorted(current):
            print(f"  NEW      {name}: {current[name]['value']:.6g} {current[name]['unit']}")
        return []
    baseline = load_metrics(baseline_path)
    failures = []
    print(f"--- {current_path} vs {baseline_path} (threshold {threshold:.0%})")
    for name in sorted(set(current) | set(baseline)):
        if name not in baseline:
            print(f"  NEW      {name}: {current[name]['value']:.6g} {current[name]['unit']}")
            continue
        if name not in current:
            print(f"  REMOVED  {name} (baseline {baseline[name]['value']:.6g})")
            continue
        cur, base = current[name], baseline[name]
        if base["value"] == 0:
            print(f"  SKIP     {name}: baseline is 0")
            continue
        ratio = cur["value"] / base["value"]
        if lower_is_better(cur.get("unit", "ns")):
            regressed = ratio > 1.0 + threshold
            change = ratio - 1.0
        else:
            regressed = ratio < 1.0 - threshold
            change = 1.0 - ratio
        verdict = "REGRESSED" if regressed else "ok"
        print(
            f"  {verdict:9} {name}: {base['value']:.6g} -> {cur['value']:.6g} "
            f"{cur.get('unit', '')} ({change:+.1%} worse)"
            if regressed
            else f"  {verdict:9} {name}: {base['value']:.6g} -> {cur['value']:.6g} "
            f"{cur.get('unit', '')}"
        )
        if regressed:
            failures.append(
                f"{current_path.name}:{name} regressed {change:+.1%} "
                f"({base['value']:.6g} -> {cur['value']:.6g} {cur.get('unit', '')})"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("pairs", nargs="*", help="CURRENT BASELINE file pairs")
    parser.add_argument("--current-dir", help="directory holding fresh BENCH_*.json")
    parser.add_argument(
        "--baseline-dir", help="directory holding committed BENCH_*.json baselines"
    )
    args = parser.parse_args()

    threshold = float(os.environ.get("BENCH_DIFF_THRESHOLD", "0.15"))

    pairs: list[tuple[Path, Path]] = []
    if args.current_dir and args.baseline_dir:
        baseline_dir = Path(args.baseline_dir)
        for baseline in sorted(baseline_dir.glob("BENCH_*.json")):
            current = Path(args.current_dir) / baseline.name
            if current.exists():
                pairs.append((current, baseline))
            else:
                print(f"note: no fresh {baseline.name} under {args.current_dir}; skipping")
        # Fresh sidecars with no committed baseline: new benchmarks. Pair
        # them anyway — diff_pair reports them and points at the cp command
        # to record a baseline, and never fails the run.
        for current in sorted(Path(args.current_dir).glob("BENCH_*.json")):
            baseline = baseline_dir / current.name
            if not baseline.exists():
                pairs.append((current, baseline))
    if args.pairs:
        if len(args.pairs) % 2 != 0:
            parser.error("positional arguments must come in CURRENT BASELINE pairs")
        it = iter(args.pairs)
        pairs.extend((Path(c), Path(b)) for c, b in zip(it, it))
    if not pairs:
        parser.error("nothing to diff: pass file pairs or --current-dir/--baseline-dir")

    failures: list[str] = []
    for current, baseline in pairs:
        failures.extend(diff_pair(current, baseline, threshold))

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed past {threshold:.0%}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nAll shared metrics within threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
