// Experiment C1 — the paper's §4 comparison with Bertran et al. (ICS'10):
// a decomposable per-component counter model evaluated on six SPEC CPU2006
// applications on a SIMPLE architecture (no HyperThreading, no TurboBoost —
// the paper names the Core 2 Duo; we disable SMT on the simulated part).
// Bertran et al. report 4.63% average error; the paper's own 3-counter model
// is expected to do worse on the same suite (which motivates its future
// work). This bench reproduces that ordering.
#include <cstdio>

#include "baselines/bertran_model.h"
#include "baselines/cpuload_model.h"
#include "harness.h"
#include "model/trainer.h"
#include "workloads/spec2006.h"
#include "workloads/stress.h"

using namespace powerapi;

int main() {
  std::printf("=== C1: Bertran et al. comparison — 6x SPEC CPU2006-like, SMT off ===\n");
  const simcpu::CpuSpec spec = simcpu::i3_2120_no_smt();

  // Bertran et al. train on component-targeted microbenchmarks: the full
  // stress grid (duty + mix + working-set sweep) is the closest analogue.
  model::TrainerOptions options;  // Default: full grid, paper's 3 events.
  options.grid.thread_counts = {1, 2};  // No SMT: at most one task per core.
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, options);
  const model::SampleSet samples = trainer.collect();
  std::printf("training samples: %zu, idle %.2f W\n\n", samples.total_samples(),
              samples.idle_watts);

  // Fit all competitors on the SAME samples.
  const model::TrainingResult paper_model = trainer.fit(samples);
  const baselines::HpcModelEstimator powerapi_est(paper_model.model);
  const baselines::BertranModel bertran = baselines::BertranModel::train(samples);
  const baselines::CpuLoadModel cpuload = baselines::CpuLoadModel::train(samples);

  // Evaluate per application.
  const auto suite = workloads::spec2006_suite();
  std::vector<double> all_measured;
  std::vector<std::vector<double>> all_estimated(3);

  std::printf("%-18s %14s %14s %14s\n", "application", "bertran", "powerapi-3ctr",
              "cpu-load");
  util::Rng rng(77);
  for (const auto& app : suite) {
    os::System system(spec);
    system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));
    system.spawn(app.name, app.make(util::seconds_to_ns(120), rng.fork(2)));
    system.run_for(util::seconds_to_ns(2));  // Warm the caches.
    const auto observations = benchx::collect_observations(
        system, util::seconds_to_ns(60), util::ms_to_ns(500), rng.fork(3));

    const auto e_bertran = benchx::evaluate(bertran, observations);
    const auto e_powerapi = benchx::evaluate(powerapi_est, observations);
    const auto e_cpuload = benchx::evaluate(cpuload, observations);
    std::printf("%-18s %12.2f %% %12.2f %% %12.2f %%\n", app.name.c_str(),
                e_bertran.mean_ape, e_powerapi.mean_ape, e_cpuload.mean_ape);

    for (const auto& obs : observations) {
      all_measured.push_back(obs.watts);
      all_estimated[0].push_back(bertran.estimate(obs));
      all_estimated[1].push_back(powerapi_est.estimate(obs));
      all_estimated[2].push_back(cpuload.estimate(obs));
    }
  }

  std::printf("\naverage error across the suite:\n");
  const char* names[3] = {"bertran-decomposed", "powerapi-3ctr", "cpu-load"};
  const double paper_refs[3] = {4.63, -1.0, -1.0};
  for (int m = 0; m < 3; ++m) {
    const double err = util::mape(all_measured, all_estimated[m]);
    if (paper_refs[m] > 0) {
      std::printf("  %-22s %6.2f %%   (Bertran et al. report %.2f %%)\n", names[m], err,
                  paper_refs[m]);
    } else {
      std::printf("  %-22s %6.2f %%\n", names[m], err);
    }
  }
  return 0;
}
