// Experiment O5 — SoA hot-path kernels in isolation. bench_pipeline
// measures the end-to-end fleet tick; this binary pins the two kernels the
// refactor vectorized — feature extraction (counter deltas → rate lanes)
// and per-frequency model evaluation (coefficient × lane sweep) — against
// their scalar per-row equivalents at 1, 8 and 64 targets, so a silent
// de-vectorization shows up as a batch-vs-scalar ratio collapse in the
// BENCH_features.json sidecar.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "gbench_json.h"
#include "model/feature_matrix.h"
#include "model/power_model.h"
#include "simcpu/counter_lanes.h"
#include "util/units.h"

using namespace powerapi;

namespace {

constexpr double kFreq = 3.3e9;
constexpr std::size_t kHwThreads = 4;

/// Deterministic cumulative counters with per-row/per-lane spread.
void fill_lanes(simcpu::CounterLanes& prev, simcpu::CounterLanes& cur,
                std::size_t rows) {
  prev.resize(rows);
  cur.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t l = 0; l < simcpu::CounterLanes::kLanes; ++l) {
      prev.lane(l)[r] = 1'000'000 + l * 977 + r * 131071;
      cur.lane(l)[r] = prev.lane(l)[r] + 40'000 + l * 311 + r * 701;
    }
    prev.cpu_time()[r] = static_cast<std::int64_t>(r) * 1'000'000;
    cur.cpu_time()[r] = prev.cpu_time()[r] + 500'000;
    cur.live()[r] = 1;
  }
}

model::CpuPowerModel eval_model() {
  model::FrequencyFormula f;
  f.frequency_hz = kFreq;
  f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheReferences,
              hpc::EventId::kCacheMisses};
  f.coefficients = {2.2e-9, 2.5e-8, 1.9e-7};
  return model::CpuPowerModel(31.48, {f});
}

// --- Feature extraction: scalar per-row vs batched lanes ---

void BM_ExtractFeatures_Scalar(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  simcpu::CounterLanes prev, cur;
  fill_lanes(prev, cur, rows);
  const double window = 0.01;
  for (auto _ : state) {
    for (std::size_t r = 0; r < rows; ++r) {
      hpc::EventValues delta;
      for (hpc::EventId id : hpc::all_events()) {
        const auto l = static_cast<std::size_t>(id);
        delta[id] = cur.lane(l)[r] - prev.lane(l)[r];
      }
      const std::uint64_t smt = cur.lane(simcpu::CounterLanes::kSmtLane)[r] -
                                prev.lane(simcpu::CounterLanes::kSmtLane)[r];
      model::FeatureVector features = model::extract_features(delta, smt, window, kFreq);
      features.utilization =
          r == 0 ? model::machine_utilization(features.rates, kFreq, kHwThreads)
                 : util::ns_to_seconds(cur.cpu_time()[r] - prev.cpu_time()[r]) / window;
      benchmark::DoNotOptimize(features);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ExtractFeatures_Scalar)->Arg(1)->Arg(8)->Arg(64);

void BM_ExtractFeatures_Batch(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  simcpu::CounterLanes prev, cur;
  fill_lanes(prev, cur, rows);
  std::vector<double> windows(rows, 0.01);
  model::FeatureMatrix out;
  out.frequency_hz = kFreq;
  out.resize(rows);
  for (std::size_t r = 1; r < rows; ++r) out.pids()[r] = static_cast<std::int64_t>(r);
  out.pids()[0] = -1;
  for (auto _ : state) {
    model::extract_features_rows(cur, prev, windows.data(), kHwThreads, out);
    benchmark::DoNotOptimize(out.lane(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ExtractFeatures_Batch)->Arg(1)->Arg(8)->Arg(64);

// --- Model evaluation: per-row dot product vs coefficient-lane sweep ---

void prepare_features(model::FeatureMatrix& features, std::size_t rows) {
  simcpu::CounterLanes prev, cur;
  fill_lanes(prev, cur, rows);
  std::vector<double> windows(rows, 0.01);
  features.frequency_hz = kFreq;
  features.resize(rows);
  for (std::size_t r = 1; r < rows; ++r) features.pids()[r] = static_cast<std::int64_t>(r);
  features.pids()[0] = -1;
  model::extract_features_rows(cur, prev, windows.data(), kHwThreads, features);
}

void BM_ModelEval_Scalar(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  model::FeatureMatrix features;
  prepare_features(features, rows);
  const model::CpuPowerModel model = eval_model();
  std::vector<model::FeatureVector> per_row(rows);
  for (std::size_t r = 0; r < rows; ++r) per_row[r] = features.row(r);
  for (auto _ : state) {
    for (std::size_t r = 0; r < rows; ++r) {
      const double watts = model.estimate_activity(per_row[r]);
      benchmark::DoNotOptimize(watts);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ModelEval_Scalar)->Arg(1)->Arg(8)->Arg(64);

void BM_ModelEval_Batch(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  model::FeatureMatrix features;
  prepare_features(features, rows);
  const model::CpuPowerModel model = eval_model();
  std::vector<double> watts(rows, 0.0);
  for (auto _ : state) {
    model.estimate_activity_rows(features, watts);
    benchmark::DoNotOptimize(watts.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ModelEval_Batch)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return powerapi::benchx::run_benchmarks_with_json(argc, argv, "features");
}
