// Experiment A2 — per-frequency modeling ablation. The paper's model is
// explicitly "one power model computed per frequency" (Figure 1); this
// ablation quantifies why: a single frequency-blind formula must average
// the V²f scaling of dynamic power across the DVFS ladder, so it misses
// badly whenever the governor moves the clock.
#include <cstdio>

#include "harness.h"
#include "mathx/ols.h"
#include "model/trainer.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

/// Frequency-blind competitor: one NNLS formula fitted on ALL samples
/// pooled across frequencies.
class GlobalModel final : public baselines::MachinePowerEstimator {
 public:
  static GlobalModel train(const model::SampleSet& samples,
                           const std::vector<hpc::EventId>& events) {
    mathx::Matrix design;
    std::vector<double> target;
    for (const auto& batch : samples.by_frequency) {
      for (const auto& s : batch) {
        std::vector<double> row;
        row.reserve(events.size());
        for (const hpc::EventId id : events) row.push_back(model::rate_of(s.rates, id));
        design.append_row(row);
        target.push_back(s.watts - samples.idle_watts);
      }
    }
    const auto fit = mathx::nnls(design, target);
    return GlobalModel(samples.idle_watts, events, fit.coefficients);
  }

  std::string name() const override { return "global-single-formula"; }

  double estimate(const baselines::Observation& obs) const override {
    return idle_ + estimate_task(obs);
  }

  double estimate_task(const baselines::Observation& obs) const override {
    double watts = 0.0;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      watts += coefficients_[i] * model::rate_of(obs.rates, events_[i]);
    }
    return watts;
  }

 private:
  GlobalModel(double idle, std::vector<hpc::EventId> events, std::vector<double> coefficients)
      : idle_(idle), events_(std::move(events)), coefficients_(std::move(coefficients)) {}

  double idle_;
  std::vector<hpc::EventId> events_;
  std::vector<double> coefficients_;
};

}  // namespace

int main() {
  std::printf("=== A2: one-model-per-frequency vs a single global formula ===\n");
  const simcpu::CpuSpec spec = simcpu::i3_2120();

  model::TrainerOptions options;  // Full grid, paper's 3 events.
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, options);
  const model::SampleSet samples = trainer.collect();

  const model::TrainingResult per_frequency = trainer.fit(samples);
  const baselines::HpcModelEstimator per_freq_est(per_frequency.model);
  const GlobalModel global = GlobalModel::train(samples, options.events);

  // Evaluate at three pinned frequencies and under the ondemand governor.
  util::Rng rng(4242);
  struct Scenario {
    const char* label;
    double pin_hz;  ///< 0 = ondemand governor.
  };
  const Scenario scenarios[] = {
      {"pinned 1.6 GHz", 1.6e9},
      {"pinned 2.4 GHz", 2.4e9},
      {"pinned 3.3 GHz", 3.3e9},
      {"ondemand governor", 0.0},
  };

  std::printf("\n%-22s %18s %18s\n", "scenario", "per-frequency", "global formula");
  std::vector<double> measured;
  std::vector<double> est_perf;
  std::vector<double> est_global;
  for (const auto& scenario : scenarios) {
    os::System::Options sys_options;
    sys_options.use_ondemand_governor = scenario.pin_hz == 0.0;
    os::System system(spec, std::move(sys_options));
    system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));
    if (scenario.pin_hz > 0.0) system.pin_frequency(scenario.pin_hz);

    // Mixed bursty load so the governor (when active) actually moves.
    util::Rng wl_rng = rng.fork(2);
    system.spawn("burst-mem",
                 std::make_unique<workloads::BurstyBehavior>(
                     workloads::memory_stress(20.0 * 1024 * 1024),
                     util::ms_to_ns(400), util::ms_to_ns(300),
                     util::seconds_to_ns(120), wl_rng.fork(1)));
    system.spawn("burst-cpu", std::make_unique<workloads::BurstyBehavior>(
                                  workloads::cpu_stress(), util::ms_to_ns(250),
                                  util::ms_to_ns(350), util::seconds_to_ns(120),
                                  wl_rng.fork(2)));
    system.run_for(util::seconds_to_ns(1));

    const auto observations = benchx::collect_observations(
        system, util::seconds_to_ns(40), util::ms_to_ns(500), rng.fork(3));
    const auto e_perf = benchx::evaluate(per_freq_est, observations);
    const auto e_global = benchx::evaluate(global, observations);
    std::printf("%-22s %16.2f %% %16.2f %%\n", scenario.label, e_perf.mean_ape,
                e_global.mean_ape);

    for (const auto& obs : observations) {
      measured.push_back(obs.watts);
      est_perf.push_back(per_freq_est.estimate(obs));
      est_global.push_back(global.estimate(obs));
    }
  }

  std::printf("\noverall mean error:\n");
  std::printf("  per-frequency models:  %6.2f %%\n", util::mape(measured, est_perf));
  std::printf("  single global formula: %6.2f %%\n", util::mape(measured, est_global));
  return 0;
}
