// Experiment O5 — observability-plane wire overhead. PR "distributed
// observability" claims shipping metrics snapshots and trace spans over the
// PWAP wire stays non-invasive: this binary measures (a) the pure obs codec
// cost (metrics-snapshot and span frames encoded + decoded, no sockets) and
// (b) loopback record throughput with the obs plane off / at 1 s cadence /
// at 100 ms cadence, so the delta against the obs-off row IS the overhead.
// Emits BENCH_obs_net.json for the results pipeline (bench_diff.py gates it
// against bench/baselines/BENCH_obs_net.json).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gbench_json.h"
#include "net/collector_server.h"
#include "net/telemetry_client.h"
#include "net/wire.h"
#include "obs/observability.h"

using namespace powerapi;

namespace {

constexpr int kBatchRecords = 128;
constexpr int kSpansPerFrame = 128;

api::PowerEstimate sample_estimate(std::int64_t tick) {
  api::PowerEstimate e;
  e.timestamp = tick * 250'000'000;
  e.pid = api::kMachinePid;
  e.formula = "powerapi-hpc";
  e.watts = 31.48 + 0.001 * static_cast<double>(tick % 97);
  e.model_version = 1;
  return e;
}

/// A registry shaped like a real agent's: counters, gauges, histograms.
obs::MetricsRegistry& agent_registry() {
  static obs::MetricsRegistry registry;
  static const bool initialized = [] {
    for (int i = 0; i < 12; ++i) {
      registry.counter("bench.counter." + std::to_string(i)).add(1000 + i);
      registry.gauge("bench.gauge." + std::to_string(i)).set(0.5 * i);
    }
    for (int i = 0; i < 4; ++i) {
      obs::Histogram& hist = registry.histogram("bench.hist." + std::to_string(i));
      for (int v = 0; v < 256; ++v) hist.record(1000 + v * 37);
    }
    return true;
  }();
  (void)initialized;
  return registry;
}

/// Pure codec cost of a metrics-snapshot frame: encode + frame + CRC + decode.
void metrics_frame_roundtrip(benchmark::State& state) {
  const obs::MetricsSnapshot snapshot = agent_registry().snapshot();
  net::WireEncoder encoder;
  net::FrameDecoder decoder;
  net::WireSink sink;
  std::int64_t stamp = 0;
  for (auto _ : state) {
    const auto frame = encoder.take_metrics_frame(snapshot, ++stamp);
    if (!decoder.consume(frame.data(), frame.size(), sink)) {
      state.SkipWithError("decode failed");
      break;
    }
    benchmark::DoNotOptimize(decoder.snapshots_decoded());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(snapshot.metrics.size()));
}

/// Pure codec cost of a span frame (dictionary warm after the first batch).
void spans_frame_roundtrip(benchmark::State& state) {
  obs::TraceCollector trace;
  const auto name = trace.intern("bench/span");
  net::WireEncoder encoder;
  net::FrameDecoder decoder;
  net::WireSink sink;
  std::vector<obs::TraceCollector::Span> drained;
  std::int64_t tick = 0;
  for (auto _ : state) {
    for (int i = 0; i < kSpansPerFrame; ++i) {
      trace.complete(name, ++tick * 1000, 500, static_cast<std::uint64_t>(tick));
    }
    drained.clear();
    trace.drain(drained);
    const auto frame = encoder.take_spans_frame(drained, trace, tick);
    if (!decoder.consume(frame.data(), frame.size(), sink)) {
      state.SkipWithError("decode failed");
      break;
    }
    benchmark::DoNotOptimize(decoder.spans_decoded());
  }
  state.SetItemsProcessed(state.iterations() * kSpansPerFrame);
}

/// Loopback record throughput with the obs plane at a given cadence.
/// range(0) is obs_interval_ms (0 = off). Identical record load across
/// rows: the throughput delta against the obs-off row is the obs overhead.
void loopback_obs_cadence(benchmark::State& state) {
  const int cadence_ms = static_cast<int>(state.range(0));

  net::CollectorSink discard;
  net::CollectorServer server({}, discard);
  if (!server.listening()) {
    state.SkipWithError("cannot bind loopback listener");
    return;
  }

  obs::Observability agent_obs;
  const auto span_name = agent_obs.trace.intern("bench/round");
  net::TelemetryClientOptions options;
  options.port = server.port();
  options.agent_id = "bench-agent";
  options.batch_max_records = kBatchRecords;
  options.flush_interval_ms = 1000;  // Size-driven flushes only.
  options.obs = &agent_obs;
  options.obs_interval_ms = cadence_ms;
  net::TelemetryClient client(options);
  for (int spin = 0; spin < 2000 && !client.connected(); ++spin) {
    client.poll_once(0);
    server.poll_once(0);
  }

  std::int64_t tick = 0;
  std::uint64_t expected = server.stats().records_decoded;
  for (auto _ : state) {
    ++tick;
    // The agent does observable work each round so obs frames carry a
    // realistic payload when the cadence fires.
    agent_obs.metrics.counter("bench.rounds").add(1);
    agent_obs.trace.complete(span_name, tick * 1'000'000, 250'000,
                             static_cast<std::uint64_t>(tick));
    for (int i = 0; i < kBatchRecords; ++i) client.report(sample_estimate(tick));
    expected += kBatchRecords;
    int spins = 0;
    while (server.stats().records_decoded < expected) {
      client.poll_once(0);
      server.poll_once(0);
      if (++spins > 1'000'000) {
        state.SkipWithError("loopback stalled — records never delivered");
        return;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatchRecords);
  state.counters["obs_frames"] =
      static_cast<double>(client.stats().obs_frames_sent);

  client.stop(/*flush_timeout_ms=*/50);
}

}  // namespace

BENCHMARK(metrics_frame_roundtrip)->Unit(benchmark::kMicrosecond);
BENCHMARK(spans_frame_roundtrip)->Unit(benchmark::kMicrosecond);
BENCHMARK(loopback_obs_cadence)
    ->Arg(0)      // Obs plane off: the PR 5 baseline.
    ->Arg(1000)   // Issue-spec cadence: 1 s.
    ->Arg(100)    // Aggressive cadence: 100 ms.
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return powerapi::benchx::run_benchmarks_with_json(argc, argv, "obs_net");
}
