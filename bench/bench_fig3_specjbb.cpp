// Experiment F3 — Figure 3 of the paper: run the SPECjbb2013-like workload
// on the simulated i3-2120, monitor it with PowerAPI (model trained per
// Figure 1) and compare the estimated power series against the PowerSpy
// wall meter. The paper reports the estimates following the measured trend
// with a median error of 15%.
//
// Output: a downsampled trace table (time, powerspy, powerapi), the error
// summary, and the full series in fig3_specjbb.csv for plotting.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "model/trainer.h"
#include "os/system.h"
#include "powerapi/power_meter.h"
#include "util/csv.h"
#include "util/stats.h"
#include "workloads/specjbb.h"
#include "workloads/stress.h"

using namespace powerapi;

int main() {
  std::printf("=== F3: SPECjbb2013-like trace, PowerSpy vs PowerAPI (paper Fig. 3) ===\n");

  // --- Figure 1 pipeline: learn the model with the paper's settings ---
  const simcpu::CpuSpec spec = simcpu::i3_2120();
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, model::paper_trainer_options());
  const model::TrainingResult trained = trainer.train();
  std::printf("trained model: idle=%.2f W, %zu frequency formulas\n",
              trained.model.idle_watts(), trained.model.formulas().size());

  // --- Evaluation run: a stock system, ondemand DVFS governor active (the
  // model must pick the right per-frequency formula as the clock moves) ---
  os::System system(spec);
  util::Rng rng(20140707);
  system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));
  const workloads::SpecJbbOptions jbb;  // Full-length run (~2.5 ks as in Fig. 3).
  const os::Pid pid = system.spawn("specjbb", workloads::make_specjbb(jbb, rng.fork(2)));

  api::PowerMeter::Config config;
  config.period = util::seconds_to_ns(1);  // 1 Hz sampling, like the figure.
  api::PowerMeter meter(system, trained.model, config);
  auto& memory = meter.add_memory_reporter();
  meter.monitor({pid});
  meter.run_for(workloads::specjbb_duration(jbb));
  meter.finish();

  const auto measured_rows = memory.series("powerspy");
  const auto estimated_rows = memory.series("powerapi-hpc");
  const std::size_t n = std::min(measured_rows.size(), estimated_rows.size());

  std::printf("\n%8s %14s %14s\n", "time(s)", "PowerSpy(W)", "PowerAPI(W)");
  for (std::size_t i = 0; i < n; i += 100) {
    std::printf("%8.0f %14.2f %14.2f\n", util::ns_to_seconds(measured_rows[i].timestamp),
                measured_rows[i].watts, estimated_rows[i].watts);
  }

  std::vector<double> measured;
  std::vector<double> estimated;
  for (std::size_t i = 0; i < n; ++i) {
    measured.push_back(measured_rows[i].watts);
    estimated.push_back(estimated_rows[i].watts);
  }

  std::printf("\nsamples:          %zu\n", n);
  std::printf("PowerSpy  mean:   %.2f W  (min %.2f, max %.2f)\n", util::mean(measured),
              util::percentile(measured, 0), util::percentile(measured, 100));
  std::printf("PowerAPI  mean:   %.2f W  (min %.2f, max %.2f)\n", util::mean(estimated),
              util::percentile(estimated, 0), util::percentile(estimated, 100));
  std::printf("median error:     %.1f %%   (paper: 15%%)\n",
              util::median_ape(measured, estimated));
  std::printf("mean error:       %.1f %%\n", util::mape(measured, estimated));
  std::printf("RMSE:             %.2f W\n", util::rmse(measured, estimated));

  std::ofstream csv("fig3_specjbb.csv");
  util::CsvWriter writer(csv);
  writer.header({"time_s", "powerspy_w", "powerapi_w"});
  for (std::size_t i = 0; i < n; ++i) {
    writer.row({util::format_double(util::ns_to_seconds(measured_rows[i].timestamp)),
                util::format_double(measured[i]), util::format_double(estimated[i])});
  }
  std::printf("full series written to fig3_specjbb.csv (%zu rows)\n", n);
  return 0;
}
