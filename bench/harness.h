// Shared helpers for the experiment harnesses: synchronized collection of
// (counter rates, measured watts) observations from a running system, and
// error-table printing. Header-only; used by the cmp_* and abl_* benches.
#pragma once

#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "baselines/estimator.h"
#include "hpc/events.h"
#include "os/system.h"
#include "powermeter/powerspy.h"
#include "util/rng.h"
#include "util/stats.h"

namespace powerapi::benchx {

/// Samples the machine every `period` for `duration`, returning observations
/// whose `watts` field holds the PowerSpy measurement (the evaluation
/// ground truth as a meter would see it).
inline std::vector<baselines::Observation> collect_observations(
    os::System& system, util::DurationNs duration, util::DurationNs period,
    util::Rng rng) {
  powermeter::PowerSpy meter(
      [&system] { return system.total_energy_joules(); },
      [&system] { return system.now_ns(); }, std::move(rng));

  std::vector<baselines::Observation> out;
  meter.sample();  // Prime.
  hpc::EventValues prev =
      hpc::EventValues::from_block(system.machine().machine_counters());
  std::uint64_t prev_smt = system.machine().machine_counters().smt_shared_cycles;
  util::TimestampNs prev_time = system.now_ns();

  for (util::DurationNs t = 0; t < duration; t += period) {
    system.run_for(period);
    const auto sample = meter.sample();
    const auto cur = hpc::EventValues::from_block(system.machine().machine_counters());
    const std::uint64_t cur_smt = system.machine().machine_counters().smt_shared_cycles;
    const util::TimestampNs now = system.now_ns();
    if (sample && now > prev_time) {
      const double window_s = util::ns_to_seconds(now - prev_time);
      baselines::Observation obs;
      obs.frequency_hz = system.machine().frequency();
      obs.rates = model::rates_from_delta(cur.delta_since(prev), window_s);
      obs.watts = sample->watts;
      obs.utilization =
          model::rate_of(obs.rates, hpc::EventId::kCycles) /
          (obs.frequency_hz * static_cast<double>(system.machine().spec().hw_threads()));
      obs.smt_shared_cycles_per_sec = static_cast<double>(cur_smt - prev_smt) / window_s;
      out.push_back(obs);
    }
    prev = cur;
    prev_smt = cur_smt;
    prev_time = now;
  }
  return out;
}

/// Per-task observations: one Observation per (pid, window), with `watts`
/// holding the simulator's GROUND-TRUTH attributed activity power for that
/// task — the reference for per-process attribution accuracy (what HAPPY
/// and PowerAPI are ultimately for).
inline std::map<std::int64_t, std::vector<baselines::Observation>>
collect_task_observations(os::System& system, std::span<const os::Pid> pids,
                          util::DurationNs duration, util::DurationNs period) {
  struct Prev {
    hpc::EventValues values;
    std::uint64_t smt = 0;
    double energy = 0.0;
    util::DurationNs cpu_time = 0;
  };
  std::map<std::int64_t, Prev> prev;
  for (const os::Pid pid : pids) {
    const auto stat = system.proc_stat(pid);
    if (!stat) continue;
    Prev p;
    p.values = hpc::EventValues::from_block(stat->counters);
    p.smt = stat->counters.smt_shared_cycles;
    p.energy = stat->attributed_energy_joules;
    p.cpu_time = stat->cpu_time_ns;
    prev[pid] = p;
  }
  util::TimestampNs prev_time = system.now_ns();

  std::map<std::int64_t, std::vector<baselines::Observation>> out;
  for (util::DurationNs t = 0; t < duration; t += period) {
    system.run_for(period);
    const util::TimestampNs now = system.now_ns();
    const double window_s = util::ns_to_seconds(now - prev_time);
    for (const os::Pid pid : pids) {
      const auto stat = system.proc_stat(pid);
      if (!stat) continue;
      auto it = prev.find(pid);
      if (it == prev.end() || window_s <= 0) continue;
      const auto values = hpc::EventValues::from_block(stat->counters);
      baselines::Observation obs;
      obs.frequency_hz = system.machine().frequency();
      obs.rates = model::rates_from_delta(values.delta_since(it->second.values), window_s);
      obs.watts = (stat->attributed_energy_joules - it->second.energy) / window_s;
      obs.utilization =
          util::ns_to_seconds(stat->cpu_time_ns - it->second.cpu_time) / window_s /
          static_cast<double>(system.machine().spec().hw_threads());
      obs.smt_shared_cycles_per_sec =
          static_cast<double>(stat->counters.smt_shared_cycles - it->second.smt) / window_s;
      out[pid].push_back(obs);

      it->second.values = values;
      it->second.smt = stat->counters.smt_shared_cycles;
      it->second.energy = stat->attributed_energy_joules;
      it->second.cpu_time = stat->cpu_time_ns;
    }
    prev_time = now;
  }
  return out;
}

/// Mean/median absolute percentage error of an estimator over observations.
struct ErrorSummary {
  double mean_ape = 0.0;
  double median_ape = 0.0;
  std::size_t samples = 0;
};

inline ErrorSummary evaluate(const baselines::MachinePowerEstimator& estimator,
                             const std::vector<baselines::Observation>& observations) {
  std::vector<double> measured;
  std::vector<double> estimated;
  measured.reserve(observations.size());
  estimated.reserve(observations.size());
  for (const auto& obs : observations) {
    measured.push_back(obs.watts);
    estimated.push_back(estimator.estimate(obs));
  }
  ErrorSummary s;
  s.samples = observations.size();
  if (!observations.empty()) {
    s.mean_ape = util::mape(measured, estimated);
    s.median_ape = util::median_ape(measured, estimated);
  }
  return s;
}

/// Per-task attribution error: estimator.estimate_task vs ground-truth
/// attributed activity power. Windows where the task burned < `floor_watts`
/// are skipped (percentage error is meaningless near zero).
inline ErrorSummary evaluate_task(const baselines::MachinePowerEstimator& estimator,
                                  const std::vector<baselines::Observation>& observations,
                                  double floor_watts = 0.5) {
  std::vector<double> measured;
  std::vector<double> estimated;
  for (const auto& obs : observations) {
    if (obs.watts < floor_watts) continue;
    measured.push_back(obs.watts);
    estimated.push_back(estimator.estimate_task(obs));
  }
  ErrorSummary s;
  s.samples = measured.size();
  if (!measured.empty()) {
    s.mean_ape = util::mape(measured, estimated);
    s.median_ape = util::median_ape(measured, estimated);
  }
  return s;
}

inline void print_error_row(const std::string& label, const ErrorSummary& summary) {
  std::printf("%-28s %10.2f %%%12.2f %%%10zu\n", label.c_str(), summary.mean_ape,
              summary.median_ape, summary.samples);
}

inline void print_error_header() {
  std::printf("%-28s %12s %13s %10s\n", "estimator / workload", "mean err", "median err",
              "samples");
}

}  // namespace powerapi::benchx
