// Shared helpers for the experiment harnesses: synchronized collection of
// (counter rates, measured watts) observations from a running system, and
// error-table printing. Header-only; used by the cmp_* and abl_* benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "baselines/estimator.h"
#include "hpc/events.h"
#include "model/sample.h"
#include "os/system.h"
#include "powermeter/powerspy.h"
#include "util/rng.h"
#include "util/stats.h"

namespace powerapi::benchx {

/// Samples the machine every `period` for `duration`, returning training
/// samples (the shared feature layer + watts) whose `watts` field holds the
/// PowerSpy measurement (the evaluation ground truth as a meter would see
/// it). Estimators consume these directly: a TrainingSample IS an
/// Observation.
inline std::vector<model::TrainingSample> collect_observations(
    os::System& system, util::DurationNs duration, util::DurationNs period,
    util::Rng rng) {
  powermeter::PowerSpy meter(
      [&system] { return system.total_energy_joules(); },
      [&system] { return system.now_ns(); }, std::move(rng));

  std::vector<model::TrainingSample> out;
  meter.sample();  // Prime.
  hpc::EventValues prev =
      hpc::EventValues::from_block(system.machine().machine_counters());
  std::uint64_t prev_smt = system.machine().machine_counters().smt_shared_cycles;
  util::TimestampNs prev_time = system.now_ns();

  for (util::DurationNs t = 0; t < duration; t += period) {
    system.run_for(period);
    const auto sample = meter.sample();
    const auto cur = hpc::EventValues::from_block(system.machine().machine_counters());
    const std::uint64_t cur_smt = system.machine().machine_counters().smt_shared_cycles;
    const util::TimestampNs now = system.now_ns();
    if (sample && now > prev_time) {
      const double window_s = util::ns_to_seconds(now - prev_time);
      model::TrainingSample obs;
      static_cast<model::FeatureVector&>(obs) =
          model::extract_features(cur.delta_since(prev), cur_smt - prev_smt, window_s,
                                  system.machine().frequency());
      obs.watts = sample->watts;
      obs.utilization = model::machine_utilization(obs.rates, obs.frequency_hz,
                                                   system.machine().spec().hw_threads());
      out.push_back(obs);
    }
    prev = cur;
    prev_smt = cur_smt;
    prev_time = now;
  }
  return out;
}

/// Per-task observations: one sample per (pid, window), with `watts`
/// holding the simulator's GROUND-TRUTH attributed activity power for that
/// task — the reference for per-process attribution accuracy (what HAPPY
/// and PowerAPI are ultimately for).
inline std::map<std::int64_t, std::vector<model::TrainingSample>>
collect_task_observations(os::System& system, std::span<const os::Pid> pids,
                          util::DurationNs duration, util::DurationNs period) {
  struct Prev {
    hpc::EventValues values;
    std::uint64_t smt = 0;
    double energy = 0.0;
    util::DurationNs cpu_time = 0;
  };
  std::map<std::int64_t, Prev> prev;
  for (const os::Pid pid : pids) {
    const auto stat = system.proc_stat(pid);
    if (!stat) continue;
    Prev p;
    p.values = hpc::EventValues::from_block(stat->counters);
    p.smt = stat->counters.smt_shared_cycles;
    p.energy = stat->attributed_energy_joules;
    p.cpu_time = stat->cpu_time_ns;
    prev[pid] = p;
  }
  util::TimestampNs prev_time = system.now_ns();

  std::map<std::int64_t, std::vector<model::TrainingSample>> out;
  for (util::DurationNs t = 0; t < duration; t += period) {
    system.run_for(period);
    const util::TimestampNs now = system.now_ns();
    const double window_s = util::ns_to_seconds(now - prev_time);
    for (const os::Pid pid : pids) {
      const auto stat = system.proc_stat(pid);
      if (!stat) continue;
      auto it = prev.find(pid);
      if (it == prev.end() || window_s <= 0) continue;
      const auto values = hpc::EventValues::from_block(stat->counters);
      model::TrainingSample obs;
      static_cast<model::FeatureVector&>(obs) = model::extract_features(
          values.delta_since(it->second.values),
          stat->counters.smt_shared_cycles - it->second.smt, window_s,
          system.machine().frequency());
      obs.watts = (stat->attributed_energy_joules - it->second.energy) / window_s;
      obs.utilization =
          util::ns_to_seconds(stat->cpu_time_ns - it->second.cpu_time) / window_s /
          static_cast<double>(system.machine().spec().hw_threads());
      out[pid].push_back(obs);

      it->second.values = values;
      it->second.smt = stat->counters.smt_shared_cycles;
      it->second.energy = stat->attributed_energy_joules;
      it->second.cpu_time = stat->cpu_time_ns;
    }
    prev_time = now;
  }
  return out;
}

/// Mean/median absolute percentage error of an estimator over observations.
struct ErrorSummary {
  double mean_ape = 0.0;
  double median_ape = 0.0;
  std::size_t samples = 0;
};

inline ErrorSummary evaluate(const baselines::MachinePowerEstimator& estimator,
                             const std::vector<model::TrainingSample>& observations) {
  std::vector<double> measured;
  std::vector<double> estimated;
  measured.reserve(observations.size());
  estimated.reserve(observations.size());
  for (const auto& obs : observations) {
    measured.push_back(obs.watts);
    estimated.push_back(estimator.estimate(obs));
  }
  ErrorSummary s;
  s.samples = observations.size();
  if (!observations.empty()) {
    s.mean_ape = util::mape(measured, estimated);
    s.median_ape = util::median_ape(measured, estimated);
  }
  return s;
}

/// Per-task attribution error: estimator.estimate_task vs ground-truth
/// attributed activity power. Windows where the task burned < `floor_watts`
/// are skipped (percentage error is meaningless near zero).
inline ErrorSummary evaluate_task(const baselines::MachinePowerEstimator& estimator,
                                  const std::vector<model::TrainingSample>& observations,
                                  double floor_watts = 0.5) {
  std::vector<double> measured;
  std::vector<double> estimated;
  for (const auto& obs : observations) {
    if (obs.watts < floor_watts) continue;
    measured.push_back(obs.watts);
    estimated.push_back(estimator.estimate_task(obs));
  }
  ErrorSummary s;
  s.samples = measured.size();
  if (!measured.empty()) {
    s.mean_ape = util::mape(measured, estimated);
    s.median_ape = util::median_ape(measured, estimated);
  }
  return s;
}

inline void print_error_row(const std::string& label, const ErrorSummary& summary) {
  std::printf("%-28s %10.2f %%%12.2f %%%10zu\n", label.c_str(), summary.mean_ape,
              summary.median_ape, summary.samples);
}

inline void print_error_header() {
  std::printf("%-28s %12s %13s %10s\n", "estimator / workload", "mean err", "median err",
              "samples");
}

// --- Machine-readable results -------------------------------------------
// Each benchmark binary can emit a BENCH_<name>.json sidecar so runs can be
// diffed across commits (pre/post optimisation bookkeeping in CHANGES.md,
// CI trend tracking) without scraping console output.

/// One metric row destined for the JSON sidecar.
struct BenchMetric {
  std::string name;          ///< e.g. "ThreadedDispatch/8192".
  double value = 0.0;
  std::string unit;          ///< e.g. "items/s" or "ns".
  std::uint64_t iterations = 0;
};

/// Short git revision of the working tree, or "unknown" outside a checkout.
inline std::string git_revision() {
  std::string rev = "unknown";
  if (FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buffer[64];
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      rev.assign(buffer);
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) rev.pop_back();
      if (rev.empty()) rev = "unknown";
    }
    ::pclose(pipe);
  }
  return rev;
}

/// Writes BENCH_<bench_name>.json in the current directory. Metric names in
/// this codebase are benchmark identifiers (no quotes/backslashes), so no
/// string escaping is needed.
inline void write_bench_json(const std::string& bench_name,
                             const std::vector<BenchMetric>& metrics) {
  const std::string path = "BENCH_" + bench_name + ".json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"%s\",\n  \"git_rev\": \"%s\",\n  \"metrics\": [\n",
               bench_name.c_str(), git_revision().c_str());
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const BenchMetric& m = metrics[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", "
                 "\"iterations\": %llu}%s\n",
                 m.name.c_str(), m.value, m.unit.c_str(),
                 static_cast<unsigned long long>(m.iterations),
                 i + 1 == metrics.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace powerapi::benchx
