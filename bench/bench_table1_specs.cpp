// Experiment T1 — Table 1 of the paper: the specification of the evaluation
// processor (Intel Core i3-2120) as modeled by the simulator, alongside the
// derived DVFS ladder and the idle-power decomposition the spec implies.
#include <cstdio>
#include <iostream>

#include "simcpu/cpu_spec.h"
#include "simcpu/dvfs.h"
#include "simcpu/machine.h"
#include "util/units.h"

using namespace powerapi;

int main() {
  const simcpu::CpuSpec spec = simcpu::i3_2120();
  std::printf("=== T1: Intel Core i3-2120 specification (paper Table 1) ===\n\n");
  std::cout << spec.describe();

  std::printf("\nDVFS ladder and modeled core voltage:\n");
  const simcpu::VoltageTable volts(spec);
  std::printf("%10s %10s %14s %14s\n", "f (GHz)", "Vcore (V)", "dyn scale", "static scale");
  for (const double hz : spec.frequencies_hz) {
    std::printf("%10.2f %10.3f %14.3f %14.3f\n", util::hz_to_ghz(hz), volts.voltage_at(hz),
                volts.dynamic_scale(hz), volts.static_scale(hz));
  }

  // Idle decomposition implied by the ground-truth parameters.
  const simcpu::GroundTruthParams gt;
  std::printf("\nIdle power decomposition (all cores in C0):\n");
  const double c0_idle =
      gt.platform_watts + static_cast<double>(spec.cores) * gt.cstates.c0_idle_watts;
  std::printf("  platform %.2f W + %zu cores x %.2f W = %.2f W"
              "   (paper's learned idle constant: 31.48 W)\n",
              gt.platform_watts, spec.cores, gt.cstates.c0_idle_watts, c0_idle);

  // Sanity: spec validates and a machine can be built from it.
  simcpu::Machine machine(spec);
  std::printf("\nmachine constructed: %zu hw threads @ %.2f GHz, TDP %.0f W\n",
              spec.hw_threads(), util::hz_to_ghz(machine.frequency()), spec.tdp_watts);
  return 0;
}
