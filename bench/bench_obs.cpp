// Experiment O1 — what does self-observability cost? The obs layer's pitch
// is "cheap enough to leave on": this binary measures the fleet monitoring
// tick (8 hosts, threaded dispatcher — the bench_pipeline configuration)
// in three states: no obs bundle compiled into the run at all, a bundle
// attached but disabled (the single-branch path every hot site pays), and
// fully enabled (counters + latency histograms + spans). Micro-benchmarks
// price the primitives themselves. Emits BENCH_obs.json; bench_diff.py
// gates regressions against the committed baseline.
#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>
#include <vector>

#include "gbench_json.h"
#include "model/power_model.h"
#include "obs/observability.h"
#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

model::CpuPowerModel tiny_model() {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheReferences,
                hpc::EventId::kCacheMisses};
    f.coefficients = {2.2e-9, 2.5e-8, 1.9e-7};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(31.48, std::move(formulas));
}

std::unique_ptr<os::System> loaded_host() {
  auto host = std::make_unique<os::System>(simcpu::i3_2120());
  for (int i = 0; i < 4; ++i) {
    host->spawn("app", std::make_unique<workloads::SteadyBehavior>(
                           workloads::mixed_stress(0.5, 4.0 * 1024 * 1024, 0.8),
                           /*duration=*/0));
  }
  host->run_for(util::ms_to_ns(10));
  return host;
}

enum class ObsState { kNone, kDisabled, kEnabled };

/// One fleet monitoring tick across 8 hosts on the threaded dispatcher —
/// the same configuration bench_pipeline measures — with the obs bundle in
/// the given state. kNone vs kDisabled prices the dormant branches; kNone
/// vs kEnabled is the headline overhead number.
void fleet_tick_obs_bench(benchmark::State& state, ObsState obs_state) {
  constexpr std::size_t kHostCount = 8;
  std::vector<std::unique_ptr<os::System>> hosts;
  for (std::size_t i = 0; i < kHostCount; ++i) hosts.push_back(loaded_host());

  api::FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kThreaded;
  options.workers = 4;
  // No fleet reporter is attached, so skip the fleet aggregator: its
  // unconsumed publishes would only add dead-letter noise to the run.
  options.fleet_aggregation = false;
  options.with_observability = obs_state != ObsState::kNone;
  api::FleetMonitor fleet(options);
  if (obs_state == ObsState::kDisabled) fleet.observability()->set_enabled(false);

  const model::CpuPowerModel model = tiny_model();
  for (auto& host : hosts) {
    api::PipelineSpec spec;
    spec.model = model;
    spec.period = util::ms_to_ns(1);
    spec.with_powerspy = false;
    const std::size_t index = fleet.add_host(*host, spec);
    fleet.monitor_all(index);
    // Consume the aggregated rows: a complete graph, no dead letters.
    fleet.add_callback_reporter(index, [](const api::AggregatedPower&) {});
  }

  for (auto _ : state) {
    fleet.run_for(util::ms_to_ns(1));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kHostCount));
  if (obs_state == ObsState::kEnabled) {
    const auto snap = fleet.observability()->metrics.snapshot();
    state.counters["trace_events"] =
        static_cast<double>(fleet.observability()->trace.size());
    state.counters["messages"] = snap.value_of("actors.messages_processed");
  }
}

void BM_FleetTick_NoObs(benchmark::State& state) {
  fleet_tick_obs_bench(state, ObsState::kNone);
}
BENCHMARK(BM_FleetTick_NoObs)->Unit(benchmark::kMicrosecond);

void BM_FleetTick_ObsDisabled(benchmark::State& state) {
  fleet_tick_obs_bench(state, ObsState::kDisabled);
}
BENCHMARK(BM_FleetTick_ObsDisabled)->Unit(benchmark::kMicrosecond);

void BM_FleetTick_ObsEnabled(benchmark::State& state) {
  fleet_tick_obs_bench(state, ObsState::kEnabled);
}
BENCHMARK(BM_FleetTick_ObsEnabled)->Unit(benchmark::kMicrosecond);

// --- Primitive costs ---

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) counter.add();
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram hist;
  std::int64_t v = 1;
  for (auto _ : state) {
    hist.record(v);
    v = (v * 2862933555777941757LL + 3037000493LL) & 0xFFFFF;  // Vary buckets.
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_TraceComplete(benchmark::State& state) {
  obs::TraceCollector trace;
  const auto name = trace.intern("bench.span");
  std::int64_t t = 0;
  for (auto _ : state) trace.complete(name, t++, 10, 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceComplete);

void BM_RegistrySnapshot(benchmark::State& state) {
  // A registry populated like a real 8-host run: ~40 metrics.
  obs::MetricsRegistry registry;
  for (int i = 0; i < 24; ++i) {
    registry.counter("bench.counter_" + std::to_string(i)).add(static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 8; ++i) {
    auto& hist = registry.histogram("bench.hist_" + std::to_string(i));
    for (std::int64_t v = 0; v < 1000; ++v) hist.record(v * 97);
  }
  for (auto _ : state) {
    const obs::MetricsSnapshot snap = registry.snapshot();
    benchmark::DoNotOptimize(snap.metrics.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistrySnapshot);

}  // namespace

int main(int argc, char** argv) {
  return powerapi::benchx::run_benchmarks_with_json(argc, argv, "obs");
}
