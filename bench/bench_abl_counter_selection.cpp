// Experiment A1 — counter-selection ablation. The paper's conclusion: "only
// consider the generic counters is not necessarily the most reliable
// solution leading to high errors. This is why we plan to improve our
// learning algorithm by using the Spearman rank correlation for finding
// automatically the most correlated ones." We implement that future work and
// measure it: fixed 3 generic counters vs Spearman-selected top-k vs all 10
// counters vs the CPU-load baseline, on a mixed out-of-training workload.
#include <cstdio>
#include <memory>

#include "baselines/cpuload_model.h"
#include "harness.h"
#include "mathx/feature_selection.h"
#include "model/trainer.h"
#include "workloads/spec2006.h"
#include "workloads/specjbb.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

std::vector<model::TrainingSample> evaluation_workload(const simcpu::CpuSpec& spec,
                                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<model::TrainingSample> all;

  // Phase A: SPECjbb-like (short run).
  {
    os::System system(spec);
    system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));
    workloads::SpecJbbOptions jbb;
    jbb.warmup = util::seconds_to_ns(5);
    jbb.staircase_step = util::seconds_to_ns(5);
    jbb.search_phase = util::seconds_to_ns(20);
    jbb.cooldown = util::seconds_to_ns(5);
    system.spawn("specjbb", workloads::make_specjbb(jbb, rng.fork(2)));
    const auto obs = benchx::collect_observations(system, workloads::specjbb_duration(jbb),
                                                  util::ms_to_ns(500), rng.fork(3));
    all.insert(all.end(), obs.begin(), obs.end());
  }
  // Phase B: two SPEC-like apps co-running.
  {
    os::System system(spec);
    system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(4)));
    const auto suite = workloads::spec2006_suite();
    system.spawn("mcf", workloads::spec2006_app(suite, "mcf-like")
                            .make(util::seconds_to_ns(60), rng.fork(5)));
    system.spawn("gobmk", workloads::spec2006_app(suite, "gobmk-like")
                              .make(util::seconds_to_ns(60), rng.fork(6)));
    system.run_for(util::seconds_to_ns(1));
    const auto obs = benchx::collect_observations(system, util::seconds_to_ns(30),
                                                  util::ms_to_ns(500), rng.fork(7));
    all.insert(all.end(), obs.begin(), obs.end());
  }
  return all;
}

}  // namespace

int main() {
  std::printf("=== A1: counter-selection ablation (paper conclusion / future work) ===\n");
  const simcpu::CpuSpec spec = simcpu::i3_2120();

  // One shared sampling phase (full grid).
  model::TrainerOptions base;
  model::Trainer collector(spec, simcpu::GroundTruthParams{}, base);
  const model::SampleSet samples = collector.collect();
  std::printf("training samples: %zu, idle %.2f W\n", samples.total_samples(),
              samples.idle_watts);

  // Candidate model variants.
  struct Variant {
    std::string label;
    model::TrainerOptions options;
  };
  std::vector<Variant> variants;
  {
    Variant v;
    v.label = "generic-3 (paper)";
    v.options = base;
    v.options.events.assign(hpc::paper_events().begin(), hpc::paper_events().end());
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "spearman-top4 (future work)";
    v.options = base;
    v.options.auto_select_events = true;
    v.options.selection.kind = mathx::CorrelationKind::kSpearman;
    v.options.selection.max_features = 4;
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "pearson-top4";
    v.options = base;
    v.options.auto_select_events = true;
    v.options.selection.kind = mathx::CorrelationKind::kPearson;
    v.options.selection.max_features = 4;
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "all-10-counters";
    v.options = base;
    v.options.events.assign(hpc::all_events().begin(), hpc::all_events().end());
    variants.push_back(v);
  }

  const auto observations = evaluation_workload(spec, 2014);
  std::printf("evaluation observations: %zu\n\n", observations.size());
  benchx::print_error_header();

  for (const auto& variant : variants) {
    model::Trainer trainer(spec, simcpu::GroundTruthParams{}, variant.options);
    const model::TrainingResult result = trainer.fit(samples);
    const baselines::HpcModelEstimator estimator(result.model);
    const auto summary = benchx::evaluate(estimator, observations);
    benchx::print_error_row(variant.label, summary);
    if (variant.options.auto_select_events) {
      std::printf("    selected:");
      for (const hpc::EventId id : result.selected_events) {
        std::printf(" %s", std::string(hpc::to_string(id)).c_str());
      }
      std::printf("\n");
    }
  }

  const baselines::CpuLoadModel cpuload = baselines::CpuLoadModel::train(samples);
  benchx::print_error_row("cpu-load (Versick et al.)", benchx::evaluate(cpuload, observations));
  return 0;
}
