// Experiment F1 — Figure 1 of the paper: the power-model learning process.
// Runs the full sampling + regression pipeline with the paper's settings and
// prints the learned per-frequency formulas, comparing the maximum-frequency
// coefficients and idle constant with the values published in the paper:
//
//   Power      = 31.48 + Σ_f Power_f
//   Power_3.30 = 2.22e-9·i + 2.48e-8·r + 1.87e-7·m
#include <cstdio>
#include <iostream>

#include "model/model_io.h"
#include "model/trainer.h"
#include "simcpu/cpu_spec.h"
#include "util/units.h"

using namespace powerapi;

namespace {
void compare(const char* label, double measured, double paper) {
  const double ratio = paper != 0.0 ? measured / paper : 0.0;
  std::printf("  %-18s measured %.3e   paper %.3e   ratio %.2fx\n", label, measured, paper,
              ratio);
}
}  // namespace

int main() {
  std::printf("=== F1: power-model learning process (paper Fig. 1) ===\n");
  const simcpu::CpuSpec spec = simcpu::i3_2120();
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, model::paper_trainer_options());

  std::printf("step 1-3: sampling stress workloads at %zu frequencies...\n",
              spec.frequencies_hz.size());
  const model::SampleSet samples = trainer.collect();
  std::printf("collected %zu samples, measured idle floor %.2f W\n", samples.total_samples(),
              samples.idle_watts);

  std::printf("step 4: multivariate regression per frequency...\n\n");
  const model::TrainingResult result = trainer.fit(samples);
  std::cout << result.model.describe() << "\n";

  std::printf("fit quality per frequency:\n");
  std::printf("%10s %10s %10s %14s\n", "f (GHz)", "samples", "R^2", "RMSE (W)");
  for (const auto& report : result.reports) {
    std::printf("%10.2f %10zu %10.4f %14.3f\n", util::hz_to_ghz(report.frequency_hz),
                report.samples, report.r_squared, report.residual_rmse_watts);
  }

  // Compare the maximum-frequency formula with the paper's published one.
  const auto* f_max = result.model.formula_for(spec.max_frequency_hz());
  std::printf("\ncomparison with the paper's published i3-2120 model:\n");
  compare("idle (W)", result.model.idle_watts(), 31.48);
  for (std::size_t i = 0; i < f_max->events.size(); ++i) {
    const hpc::EventId id = f_max->events[i];
    double paper_value = 0.0;
    if (id == hpc::EventId::kInstructions) paper_value = 2.22e-9;
    if (id == hpc::EventId::kCacheReferences) paper_value = 2.48e-8;
    if (id == hpc::EventId::kCacheMisses) paper_value = 1.87e-7;
    compare(std::string(hpc::to_string(id)).c_str(), f_max->coefficients[i], paper_value);
  }

  std::printf("\nserialized model (powerapi-model v1):\n%s",
              model::model_to_string(result.model).c_str());
  return 0;
}
