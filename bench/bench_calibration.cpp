// Experiment O2 — online calibration overhead. The model lifecycle claims
// the in-pipeline learn→deploy loop is cheap enough to leave on: this
// google-benchmark binary measures host monitoring throughput (host-ticks/s)
// with calibration off vs on — same host, same workload, same meters — in
// both dispatcher modes, plus the cost of one registry swap cycle. Emits
// BENCH_calibration.json for the results pipeline.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "gbench_json.h"
#include "model/model_registry.h"
#include "model/power_model.h"
#include "os/system.h"
#include "powerapi/power_meter.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

model::CpuPowerModel seed_model(double distortion) {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events.assign(hpc::paper_events().begin(), hpc::paper_events().end());
    const double scale = distortion * hz / 3.3e9;
    f.coefficients = {2.2e-9 * scale, 2.5e-8 * scale, 1.9e-7 * scale};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(31.48, std::move(formulas));
}

std::unique_ptr<os::System> loaded_host() {
  auto host = std::make_unique<os::System>(simcpu::i3_2120());
  for (int i = 0; i < 4; ++i) {
    host->spawn("app", std::make_unique<workloads::SteadyBehavior>(
                           workloads::mixed_stress(0.6, 6.0 * 1024 * 1024, 0.8),
                           /*duration=*/0));
  }
  host->run_for(util::ms_to_ns(10));
  return host;
}

/// One monitoring tick of a single-host pipeline, calibration on or off.
/// The distorted model keeps the drift trigger firing, so the "on" variant
/// pays for pairing, accumulation AND periodic refits — the worst case.
void meter_tick_bench(benchmark::State& state, bool with_calibration) {
  auto host = loaded_host();
  api::PowerMeter::Config config;
  config.period = util::ms_to_ns(1);
  config.with_powerspy = true;
  config.with_calibration = with_calibration;
  config.calibration.drift_window = 8;
  config.calibration.drift_threshold_watts = 1.0;
  config.calibration.min_samples_per_fit = 12;
  config.calibration.min_refit_interval = util::ms_to_ns(50);
  api::PowerMeter meter(*host, seed_model(with_calibration ? 4.0 : 1.0),
                        std::move(config));

  for (auto _ : state) {
    meter.run_for(util::ms_to_ns(1));
  }
  state.SetItemsProcessed(state.iterations());
  if (with_calibration) {
    state.counters["model_version"] =
        static_cast<double>(meter.pipeline().registry()->version());
  }
}

void BM_MeterTick_CalibrationOff(benchmark::State& state) {
  meter_tick_bench(state, /*with_calibration=*/false);
}
BENCHMARK(BM_MeterTick_CalibrationOff)->Unit(benchmark::kMicrosecond);

void BM_MeterTick_CalibrationOn(benchmark::State& state) {
  meter_tick_bench(state, /*with_calibration=*/true);
}
BENCHMARK(BM_MeterTick_CalibrationOn)->Unit(benchmark::kMicrosecond);

/// The swap primitive itself: publish a new snapshot into a registry that a
/// reader pins per estimate — the atomic shared_ptr exchange every refit pays.
void BM_RegistryPublish(benchmark::State& state) {
  model::ModelRegistry registry(seed_model(1.0));
  const model::CpuPowerModel next = seed_model(1.1);
  for (auto _ : state) {
    registry.publish(next);
    benchmark::DoNotOptimize(registry.current());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryPublish);

/// Reader side: pinning the current snapshot, as RegressionFormula does per
/// report.
void BM_RegistryRead(benchmark::State& state) {
  model::ModelRegistry registry(seed_model(1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.current());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryRead);

}  // namespace

int main(int argc, char** argv) {
  return powerapi::benchx::run_benchmarks_with_json(argc, argv, "calibration");
}
